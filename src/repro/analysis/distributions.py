"""Distribution analyses over dynamic traces (§V-G3's deeper cut).

The paper reports scalar region statistics (91.33 instructions, 11.29
stores per region).  These helpers compute the full distributions —
per-region instruction and store counts, persist-entry interarrival gaps
— which is what you need to *verify* the threshold argument of §IV-A: the
store-count histogram must sit below the threshold with room to spare,
and the interarrival distribution tells you how close the persist path
runs to its bandwidth limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..sim.trace import EK, TraceEvent

__all__ = ["Histogram", "region_size_histograms", "store_gap_histogram"]


@dataclass
class Histogram:
    """A tiny integer histogram with summary statistics."""

    counts: Dict[int, int] = field(default_factory=dict)

    def add(self, value: int) -> None:
        self.counts[value] = self.counts.get(value, 0) + 1

    @property
    def n(self) -> int:
        return sum(self.counts.values())

    def mean(self) -> float:
        if not self.counts:
            return 0.0
        return sum(v * c for v, c in self.counts.items()) / self.n

    def max(self) -> int:
        return max(self.counts) if self.counts else 0

    def min(self) -> int:
        return min(self.counts) if self.counts else 0

    def percentile(self, p: float) -> int:
        """The smallest value with cumulative share >= p (0 < p <= 1)."""
        if not self.counts:
            return 0
        if not 0.0 < p <= 1.0:
            raise ValueError("percentile wants 0 < p <= 1")
        target = p * self.n
        seen = 0
        for value in sorted(self.counts):
            seen += self.counts[value]
            if seen >= target:
                return value
        return self.max()

    def share_at_most(self, value: int) -> float:
        """Fraction of samples <= value."""
        if not self.counts:
            return 1.0
        within = sum(c for v, c in self.counts.items() if v <= value)
        return within / self.n

    def buckets(self, width: int = 4) -> List[Tuple[str, int]]:
        """Fixed-width buckets for display."""
        if not self.counts:
            return []
        top = self.max()
        out: List[Tuple[str, int]] = []
        lo = 0
        while lo <= top:
            hi = lo + width - 1
            total = sum(
                c for v, c in self.counts.items() if lo <= v <= hi
            )
            if total:
                out.append(("%d-%d" % (lo, hi), total))
            lo += width
        return out


def region_size_histograms(
    events: Sequence[TraceEvent],
) -> Tuple[Histogram, Histogram]:
    """Per-region (instructions, store-like entries) histograms, computed
    per thread (a region belongs to one thread; boundaries end it).  The
    trailing open region of each thread is excluded, as in §V-G3."""
    insts = Histogram()
    stores = Histogram()
    per_tid: Dict[int, List[int]] = {}
    for ev in events:
        if ev.kind == EK.HALT:
            continue
        counter = per_tid.setdefault(ev.tid, [0, 0])
        counter[0] += 1
        if ev.is_store_like():
            counter[1] += 1
        if ev.kind == EK.BOUNDARY:
            insts.add(counter[0])
            stores.add(counter[1])
            per_tid[ev.tid] = [0, 0]
    return insts, stores


def store_gap_histogram(events: Sequence[TraceEvent]) -> Histogram:
    """Instruction gaps between successive persist-path entries (per
    thread).  The gap distribution against the path's service interval
    (4 cycles at 4 GB/s) predicts front-end back-pressure (Fig. 15)."""
    gaps = Histogram()
    last_seen: Dict[int, int] = {}
    position: Dict[int, int] = {}
    for ev in events:
        if ev.kind == EK.HALT:
            continue
        pos = position.get(ev.tid, 0)
        position[ev.tid] = pos + 1
        if ev.is_store_like():
            if ev.tid in last_seen:
                gaps.add(pos - last_seen[ev.tid])
            last_seen[ev.tid] = pos
    return gaps
