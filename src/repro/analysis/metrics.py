"""Aggregation helpers for the experiment drivers."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = [
    "geomean",
    "slowdown",
    "per_suite",
    "overall",
    "percentile",
    "latency_summary",
]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper reports per-suite and overall geomeans."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def slowdown(cycles: float, baseline_cycles: float) -> float:
    """Execution slowdown relative to the memory-mode baseline."""
    if baseline_cycles <= 0:
        raise ValueError("baseline cycles must be positive")
    return cycles / baseline_cycles


def per_suite(
    rows: Sequence[Mapping],
    value_key: str,
    suite_key: str = "suite",
) -> Dict[str, float]:
    """Geomean of ``value_key`` per suite, preserving suite order of first
    appearance."""
    groups: Dict[str, List[float]] = {}
    for row in rows:
        groups.setdefault(row[suite_key], []).append(row[value_key])
    return {suite: geomean(vals) for suite, vals in groups.items()}


def overall(rows: Sequence[Mapping], value_key: str) -> float:
    return geomean([row[value_key] for row in rows])


def _reject_nan(values: Sequence[float]) -> None:
    """NaN poisons sorted() (its comparisons are all False, so ordering
    becomes arbitrary) and would silently corrupt every quantile the
    bench harness gates on — reject it loudly instead."""
    if any(isinstance(v, float) and math.isnan(v) for v in values):
        raise ValueError("latency samples must not contain NaN")


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0..100) with linear interpolation between
    order statistics — the tail-latency quantiles a serving system
    reports (p50/p95/p99).  NaN samples and a NaN ``p`` are rejected."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if isinstance(p, float) and math.isnan(p):
        raise ValueError("percentile must be in [0, 100], got NaN")
    if not 0.0 <= p <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    _reject_nan(values)
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    value = ordered[lo] * (1.0 - frac) + ordered[hi] * frac
    # round-off in the weighted sum can escape the bracketing order
    # statistics by an ulp; a quantile must never exceed the max sample
    return min(max(value, ordered[lo]), ordered[hi])


def latency_summary(
    values: Sequence[float],
    percentiles: Sequence[float] = (50.0, 95.0, 99.0),
) -> Dict[str, float]:
    """Count, mean, max, and the requested percentiles of a latency
    sample, keyed ``p50``/``p95``/``p99``-style.  Empty input yields all
    zeros (a crashed or empty epoch has no acknowledged requests); NaN
    samples are rejected."""
    summary: Dict[str, float] = {"count": float(len(values))}
    if not values:
        summary.update({"mean": 0.0, "max": 0.0})
        for p in percentiles:
            summary["p%g" % p] = 0.0
        return summary
    _reject_nan(values)
    summary["mean"] = sum(values) / len(values)
    summary["max"] = float(max(values))
    for p in percentiles:
        summary["p%g" % p] = percentile(values, p)
    return summary
