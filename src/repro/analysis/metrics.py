"""Aggregation helpers for the experiment drivers."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["geomean", "slowdown", "per_suite", "overall"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper reports per-suite and overall geomeans."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def slowdown(cycles: float, baseline_cycles: float) -> float:
    """Execution slowdown relative to the memory-mode baseline."""
    if baseline_cycles <= 0:
        raise ValueError("baseline cycles must be positive")
    return cycles / baseline_cycles


def per_suite(
    rows: Sequence[Mapping],
    value_key: str,
    suite_key: str = "suite",
) -> Dict[str, float]:
    """Geomean of ``value_key`` per suite, preserving suite order of first
    appearance."""
    groups: Dict[str, List[float]] = {}
    for row in rows:
        groups.setdefault(row[suite_key], []).append(row[value_key])
    return {suite: geomean(vals) for suite, vals in groups.items()}


def overall(rows: Sequence[Mapping], value_key: str) -> float:
    return geomean([row[value_key] for row in rows])
