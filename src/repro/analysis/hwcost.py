"""Hardware-cost accounting (§V-G4).

The paper's headline: LightWSP costs ~0.5 B per core — a 2-byte flush-ID
register per MC is the *only* new state; the front-end buffer fits in
Intel's existing 1 KB write-combining buffer and the 512 B WPQ already
exists in commodity iMCs.  PPA pays 337 B/core for store-integrity
tracking; Capri pays 54 KB/core for its dual redo+undo region buffers.

The functions below derive those numbers from the machine configuration
so the sensitivity studies (e.g. a 256-entry WPQ) update the cost model
consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import DEFAULT_CONFIG, SystemConfig

__all__ = ["SchemeCost", "lightwsp_cost", "ppa_cost", "capri_cost", "cost_table"]

#: Intel's write-combining buffer capacity per core (bytes) — LightWSP
#: repurposes it as the front-end buffer, so anything within it is free.
WCB_BYTES = 1024

#: PPA per-core cost from the paper: PRF pinning bitmap + replay metadata.
PPA_PER_CORE_BYTES = 337

#: Capri per-core cost from the paper: front-end + back-end buffers whose
#: entries each carry data + undo + redo images.
CAPRI_PER_CORE_BYTES = 54 * 1024

#: flush-ID register per MC (bytes)
FLUSH_ID_BYTES = 2


@dataclass(frozen=True)
class SchemeCost:
    name: str
    per_core_bytes: float
    new_state_bytes: float
    notes: str

    def per_core_str(self) -> str:
        if self.per_core_bytes >= 1024:
            return "%.0fKB" % (self.per_core_bytes / 1024.0)
        return "%.1fB" % self.per_core_bytes


def lightwsp_cost(config: SystemConfig = DEFAULT_CONFIG) -> SchemeCost:
    """New state: one flush ID per MC.  The FE buffer is free while it
    fits the WCB; beyond that the excess is charged."""
    fe_bytes = config.persist_path.fe_entries * config.persist_path.entry_bytes
    fe_extra = max(0, fe_bytes - WCB_BYTES)
    new_state = config.mc.n_mcs * FLUSH_ID_BYTES + fe_extra * config.cores
    per_core = new_state / config.cores
    return SchemeCost(
        name="LightWSP",
        per_core_bytes=per_core,
        new_state_bytes=new_state,
        notes="flush ID per MC; FE buffer within the existing %dB WCB; "
        "WPQ is the commodity iMC's" % WCB_BYTES,
    )


def ppa_cost(config: SystemConfig = DEFAULT_CONFIG) -> SchemeCost:
    return SchemeCost(
        name="PPA",
        per_core_bytes=float(PPA_PER_CORE_BYTES),
        new_state_bytes=float(PPA_PER_CORE_BYTES * config.cores),
        notes="store-integrity PRF pinning + replay metadata; also extends "
        "the rename-stage critical path",
    )


def capri_cost(config: SystemConfig = DEFAULT_CONFIG) -> SchemeCost:
    return SchemeCost(
        name="Capri",
        per_core_bytes=float(CAPRI_PER_CORE_BYTES),
        new_state_bytes=float(CAPRI_PER_CORE_BYTES * config.cores),
        notes="per-core front-end/back-end buffers holding undo+redo "
        "images per entry",
    )


def cost_table(config: SystemConfig = DEFAULT_CONFIG) -> Dict[str, SchemeCost]:
    return {
        cost.name: cost
        for cost in (lightwsp_cost(config), ppa_cost(config), capri_cost(config))
    }
