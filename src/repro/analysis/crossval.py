"""Cross-layer validation: the functional machine, the interpreter trace,
and the timing engine describe the *same* execution, so their independent
counters must agree.  These checks catch a whole class of silent bugs
(an event kind dropped by one layer, regions counted differently, stores
double-tagged) that no single layer's tests can see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..compiler.pipeline import CompiledProgram
from ..config import DEFAULT_CONFIG, SystemConfig
from ..core.lightwsp import LIGHTWSP, trace_of
from ..core.machine import PersistentMachine
from ..sim.engine import simulate
from ..sim.trace import count_events

__all__ = ["CrossCheck", "cross_validate"]

Entries = Sequence[Tuple[str, Sequence[int]]]


@dataclass
class CrossCheck:
    """One agreement (or disagreement) between two layers."""

    name: str
    functional: float
    timing: float

    @property
    def ok(self) -> bool:
        return self.functional == self.timing

    def __str__(self) -> str:
        mark = "OK " if self.ok else "FAIL"
        return "%s %-28s functional=%s timing=%s" % (
            mark, self.name, self.functional, self.timing
        )


def cross_validate(
    compiled: CompiledProgram,
    entries: Entries = (("main", ()),),
    config: SystemConfig = DEFAULT_CONFIG,
) -> List[CrossCheck]:
    """Run the same compiled program through the functional machine and
    the timing engine (same single-threaded schedule for determinism) and
    compare every counter both layers maintain.

    Multi-threaded programs interleave differently between the layers
    (the machine schedules, the engine replays the interpreter's
    schedule), so only schedule-independent counters are compared there.
    """
    events = trace_of(compiled, entries=entries)
    stats = count_events(events)
    timing = simulate(events, config, LIGHTWSP)

    machine = PersistentMachine(compiled, entries=entries, config=config)
    if not machine.run():
        raise RuntimeError("functional machine did not finish")

    single = len(entries) == 1
    checks = [
        CrossCheck(
            "instructions (trace vs engine)",
            stats.instructions,
            timing.instructions,
        ),
        CrossCheck(
            "persist entries (trace vs engine)",
            stats.persist_entries,
            timing.persist_entries,
        ),
        CrossCheck(
            "regions (trace vs engine)",
            stats.boundaries,
            timing.regions,
        ),
        CrossCheck(
            "stores (machine vs trace)",
            machine.stats.stores,
            stats.persist_entries,
        ),
    ]
    if single:
        checks.append(
            CrossCheck(
                "instructions (machine vs trace)",
                machine.stats.steps,
                stats.instructions + 1,  # trace counts exclude HALT
            )
        )
        checks.append(
            CrossCheck(
                "boundaries (machine vs trace)",
                machine.stats.boundaries,
                stats.boundaries,
            )
        )
    return checks
