"""Plain-text rendering of experiment results.

``format_figure`` prints the same rows/series a paper figure shows: one
line per benchmark, one column per series, then per-suite and overall
aggregates — the output the benchmark harness tees into bench logs and
EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping

from .experiments import FigureResult

__all__ = ["format_figure", "format_mapping"]


def _fmt(value) -> str:
    if isinstance(value, float):
        return "%.3f" % value
    return str(value)


def format_mapping(title: str, mapping: Mapping) -> str:
    width = max((len(str(k)) for k in mapping), default=0)
    lines = [title, "-" * len(title)]
    for key, value in mapping.items():
        lines.append("%-*s  %s" % (width, key, _fmt(value)))
    return "\n".join(lines)


def format_figure(result: FigureResult, per_benchmark: bool = True) -> str:
    """Render one figure's rows and aggregates."""
    series = list(result.series)
    name_w = max(
        [len("benchmark")]
        + [len(str(r.get("benchmark", ""))) for r in result.rows]
        + [len(s) for s in result.per_suite]
    )
    col_w = max([10] + [len(s) for s in series])

    def line(label: str, values: Iterable[str]) -> str:
        cells = "".join("%*s" % (col_w + 2, v) for v in values)
        return "%-*s%s" % (name_w + 2, label, cells)

    out: List[str] = []
    title = "%s  (%s)" % (result.figure, ", ".join(series))
    out.append(title)
    out.append("=" * len(title))
    if result.notes:
        out.append(result.notes)
    out.append(line("benchmark", series))
    if per_benchmark:
        for row in result.rows:
            out.append(
                line(
                    str(row.get("benchmark", "")),
                    [_fmt(row.get(s, "")) for s in series],
                )
            )
    for suite, values in result.per_suite.items():
        out.append(
            line("geomean(%s)" % suite, [_fmt(values.get(s, "")) for s in series])
        )
    if result.overall:
        out.append(
            line("geomean(all)", [_fmt(result.overall.get(s, "")) for s in series])
        )
    return "\n".join(out)
