"""Experiment drivers: one function per table/figure of the evaluation.

Each driver returns a :class:`FigureResult` — rows of per-benchmark (or
per-suite) values plus aggregate series — that the benchmark harness
prints and EXPERIMENTS.md records.  All drivers share an
:class:`ExperimentContext`, which caches generated traces so that, e.g.,
the four schemes of Fig. 7 replay the same dynamic execution.

Which trace a scheme replays (see DESIGN.md):

* **memory-mode baseline, PSP-Ideal, Capri, PPA, cWSP** — the original
  (uninstrumented) binary's trace; Capri/PPA/cWSP regions are hardware-
  delineated (``implicit_region_stores``);
* **LightWSP** — the LightWSP-compiled binary's trace (checkpoint and
  PC-checkpointing boundary stores included), honouring the store-count
  threshold under study.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines import CAPRI, CWSP, MEMORY_MODE, PPA, PSP_IDEAL
from ..compiler.interp import run_single, run_threads
from ..compiler.pipeline import compile_program
from ..config import CXL_PRESETS, DEFAULT_CONFIG, SystemConfig, VictimPolicy
from ..core.lightwsp import LIGHTWSP
from ..sim.engine import SchemePolicy, SimResult, simulate
from ..sim.trace import TraceEvent, count_events
from ..workloads.suite import BENCHMARKS, MEMORY_INTENSIVE, Benchmark
from .metrics import geomean, per_suite
from . import cacti, hwcost

__all__ = [
    "ExperimentContext",
    "FigureResult",
    "ablation_lrpo",
    "ablation_compiler",
    "fig7_slowdown",
    "fig8_efficiency",
    "fig9_psp_vs_wsp",
    "fig10_cwsp",
    "fig11_wpq_size",
    "fig12_threshold",
    "table2_conflict_rate",
    "fig13_victim_policy",
    "fig14_miss_rate",
    "fig15_bandwidth",
    "fig16_threads",
    "fig17_cxl",
    "fig18_wpq_hits",
    "table1_config",
    "table3_cxl",
    "vg2_cam_latency",
    "vg3_region_stats",
    "vg4_hw_cost",
]

_MAX_TRACE_STEPS = 12_000_000


@dataclass
class FigureResult:
    """Rows + aggregates for one table/figure."""

    figure: str
    series: Tuple[str, ...]
    rows: List[Dict] = field(default_factory=list)
    per_suite: Dict[str, Dict[str, float]] = field(default_factory=dict)
    overall: Dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def aggregate(self, agg=geomean) -> None:
        """Fill per_suite/overall aggregates of every series column."""
        suites: Dict[str, List[Dict]] = {}
        for row in self.rows:
            suites.setdefault(row["suite"], []).append(row)
        self.per_suite = {
            suite: {
                s: agg([r[s] for r in rows_ if s in r])
                for s in self.series
            }
            for suite, rows_ in suites.items()
        }
        self.overall = {
            s: agg([r[s] for r in self.rows if s in r]) for s in self.series
        }


class ExperimentContext:
    """Shared trace cache + defaults for one experiment campaign.

    ``scale`` multiplies every benchmark's dynamic op count: 1.0 is the
    documented full size (~30k-200k instructions per app), smaller values
    keep pytest-benchmark runs quick.
    """

    def __init__(
        self,
        scale: float = 1.0,
        config: SystemConfig = DEFAULT_CONFIG,
        benchmarks: Optional[Sequence[str]] = None,
    ) -> None:
        self.scale = scale
        self.config = config
        names = list(benchmarks) if benchmarks is not None else list(BENCHMARKS)
        unknown = [n for n in names if n not in BENCHMARKS]
        if unknown:
            raise KeyError("unknown benchmarks: %s" % ", ".join(unknown))
        self.names = names
        self._base: Dict[Tuple, List[TraceEvent]] = {}
        self._compiled: Dict[Tuple, List[TraceEvent]] = {}

    # ------------------------------------------------------------------
    def benchmarks(self) -> List[Benchmark]:
        return [BENCHMARKS[n] for n in self.names]

    def _trace(self, program, entries) -> List[TraceEvent]:
        if len(entries) == 1:
            fname, args = entries[0]
            events, _ = run_single(
                program, fname, args=args, max_steps=_MAX_TRACE_STEPS
            )
            return events
        events, _ = run_threads(program, entries, max_steps=_MAX_TRACE_STEPS)
        return events

    def baseline_trace(
        self, name: str, threads: Optional[int] = None
    ) -> List[TraceEvent]:
        bench = BENCHMARKS[name]
        key = (name, threads or bench.threads)
        if key not in self._base:
            program = bench.build(scale=self.scale, threads=threads)
            self._base[key] = self._trace(program, bench.entries(threads))
        return self._base[key]

    def compiled_trace(
        self,
        name: str,
        config: Optional[SystemConfig] = None,
        threads: Optional[int] = None,
    ) -> List[TraceEvent]:
        bench = BENCHMARKS[name]
        cc = (config or self.config).compiler
        key = (name, threads or bench.threads, cc)
        if key not in self._compiled:
            program = bench.build(scale=self.scale, threads=threads)
            compiled = compile_program(program, cc)
            self._compiled[key] = self._trace(
                compiled.program, bench.entries(threads)
            )
        return self._compiled[key]

    # ------------------------------------------------------------------
    def run(
        self,
        name: str,
        policy: SchemePolicy,
        config: Optional[SystemConfig] = None,
        threads: Optional[int] = None,
    ) -> SimResult:
        """``threads`` sets the *software* thread count; threads beyond
        ``config.cores`` hardware contexts time-share cores, as in the
        paper's Fig. 16 oversubscription study."""
        config = config or self.config
        hardware = None
        if threads is not None and threads > config.cores:
            hardware = config.cores
        if policy.name.startswith(LIGHTWSP.name):
            # LightWSP and its ablation variants replay the compiled trace
            events = self.compiled_trace(name, config, threads)
        else:
            events = self.baseline_trace(name, threads)
        return simulate(events, config, policy, hardware_cores=hardware)

    def slowdown(
        self,
        name: str,
        policy: SchemePolicy,
        config: Optional[SystemConfig] = None,
        threads: Optional[int] = None,
    ) -> Tuple[float, SimResult]:
        base = self.run(name, MEMORY_MODE, config=config, threads=threads)
        res = self.run(name, policy, config=config, threads=threads)
        return res.cycles / base.cycles, res


# ----------------------------------------------------------------------
# Fig. 7 — slowdown of Capri, PPA, LightWSP vs the memory-mode baseline
# ----------------------------------------------------------------------

def fig7_slowdown(ctx: ExperimentContext) -> FigureResult:
    out = FigureResult(
        figure="Fig. 7",
        series=("Capri", "PPA", "LightWSP"),
        notes="Execution slowdown over Optane memory mode; paper geomeans: "
        "Capri 1.505, PPA 1.081, LightWSP 1.090.",
    )
    for bench in ctx.benchmarks():
        base = ctx.run(bench.name, MEMORY_MODE)
        row = {"benchmark": bench.name, "suite": bench.suite}
        for policy in (CAPRI, PPA, LIGHTWSP):
            row[policy.name] = ctx.run(bench.name, policy).cycles / base.cycles
        out.rows.append(row)
    out.aggregate()
    return out


# ----------------------------------------------------------------------
# Fig. 8 — region-level persistence efficiency (Eq. 1)
# ----------------------------------------------------------------------

def fig8_efficiency(ctx: ExperimentContext) -> FigureResult:
    out = FigureResult(
        figure="Fig. 8",
        series=("PPA", "LightWSP"),
        notes="Eq. 1 efficiency; paper averages: PPA 89.3%, LightWSP 99.9%.",
    )
    for bench in ctx.benchmarks():
        row = {"benchmark": bench.name, "suite": bench.suite}
        row["PPA"] = ctx.run(bench.name, PPA).persistence_efficiency
        row["LightWSP"] = ctx.run(bench.name, LIGHTWSP).persistence_efficiency
        out.rows.append(row)
    out.aggregate(agg=lambda vals: sum(vals) / len(vals))
    return out


# ----------------------------------------------------------------------
# Fig. 9 — ideal PSP vs LightWSP on memory-intensive applications
# ----------------------------------------------------------------------

def fig9_psp_vs_wsp(ctx: ExperimentContext) -> FigureResult:
    out = FigureResult(
        figure="Fig. 9",
        series=("PSP-Ideal", "LightWSP"),
        notes="Memory-intensive subset; paper: PSP-Ideal 1.512 geomean "
        "(up to 2.6 on libquantum), LightWSP 1.03.",
    )
    for name in MEMORY_INTENSIVE:
        if name not in ctx.names:
            continue
        bench = BENCHMARKS[name]
        base = ctx.run(name, MEMORY_MODE)
        row = {"benchmark": name, "suite": bench.suite}
        row["PSP-Ideal"] = ctx.run(name, PSP_IDEAL).cycles / base.cycles
        row["LightWSP"] = ctx.run(name, LIGHTWSP).cycles / base.cycles
        out.rows.append(row)
    out.aggregate()
    return out


# ----------------------------------------------------------------------
# Fig. 10 — LightWSP vs cWSP (NPB excluded, as in the paper)
# ----------------------------------------------------------------------

def fig10_cwsp(ctx: ExperimentContext) -> FigureResult:
    out = FigureResult(
        figure="Fig. 10",
        series=("cWSP", "LightWSP"),
        notes="Per-suite slowdown geomeans, NPB excluded; paper: cWSP "
        "1.057, LightWSP 1.085 overall.",
    )
    for bench in ctx.benchmarks():
        if bench.suite == "NPB":
            continue
        base = ctx.run(bench.name, MEMORY_MODE)
        row = {"benchmark": bench.name, "suite": bench.suite}
        row["cWSP"] = ctx.run(bench.name, CWSP).cycles / base.cycles
        row["LightWSP"] = ctx.run(bench.name, LIGHTWSP).cycles / base.cycles
        out.rows.append(row)
    out.aggregate()
    return out


# ----------------------------------------------------------------------
# Fig. 11 — WPQ-size sensitivity (64 / 128 / 256 entries)
# ----------------------------------------------------------------------

def fig11_wpq_size(
    ctx: ExperimentContext, sizes: Sequence[int] = (256, 128, 64)
) -> FigureResult:
    out = FigureResult(
        figure="Fig. 11",
        series=tuple("WPQ-%d" % s for s in sizes),
        notes="LightWSP slowdown per WPQ size; larger WPQ (and the "
        "threshold tracking half of it) performs best.",
    )
    for bench in ctx.benchmarks():
        row = {"benchmark": bench.name, "suite": bench.suite}
        for size in sizes:
            config = ctx.config.with_wpq_entries(size)
            sd, _ = ctx.slowdown(bench.name, LIGHTWSP, config=config)
            row["WPQ-%d" % size] = sd
        out.rows.append(row)
    out.aggregate()
    return out


# ----------------------------------------------------------------------
# Fig. 12 — store-threshold sensitivity (16 / 32 / 64 at WPQ 64)
# ----------------------------------------------------------------------

def fig12_threshold(
    ctx: ExperimentContext, thresholds: Sequence[int] = (16, 32, 64)
) -> FigureResult:
    out = FigureResult(
        figure="Fig. 12",
        series=tuple("St-Threshold-%d" % t for t in thresholds),
        notes="Half the WPQ size (32) balances checkpoint overhead "
        "against WPQ pressure and wins.",
    )
    for bench in ctx.benchmarks():
        row = {"benchmark": bench.name, "suite": bench.suite}
        for threshold in thresholds:
            config = ctx.config.with_store_threshold(threshold)
            sd, _ = ctx.slowdown(bench.name, LIGHTWSP, config=config)
            row["St-Threshold-%d" % threshold] = sd
        out.rows.append(row)
    out.aggregate()
    return out


# ----------------------------------------------------------------------
# Table II — buffer-conflict rate;  Fig. 13 — victim policies;
# Fig. 14 — miss rates with/without snooping
# ----------------------------------------------------------------------

def table2_conflict_rate(ctx: ExperimentContext) -> FigureResult:
    out = FigureResult(
        figure="Table II",
        series=("conflict_permille",),
        notes="Front-end buffer conflicts per L1 eviction (permille); "
        "paper: ~0 for SPEC, up to 0.0031 permille for NPB.",
    )
    for bench in ctx.benchmarks():
        res = ctx.run(bench.name, LIGHTWSP)
        out.rows.append(
            {
                "benchmark": bench.name,
                "suite": bench.suite,
                "conflict_permille": res.conflict_rate * 1000.0,
            }
        )
    out.aggregate(agg=lambda vals: sum(vals) / len(vals))
    return out


_VICTIM_SERIES = {
    "Full Victim": VictimPolicy.FULL,
    "Half Victim": VictimPolicy.HALF,
    "Zero Victim": VictimPolicy.ZERO,
}


def fig13_victim_policy(ctx: ExperimentContext) -> FigureResult:
    out = FigureResult(
        figure="Fig. 13",
        series=tuple(_VICTIM_SERIES),
        notes="Victim-selection policies perform within noise of each "
        "other because conflicts are rare (Table II).",
    )
    for bench in ctx.benchmarks():
        row = {"benchmark": bench.name, "suite": bench.suite}
        for label, policy in _VICTIM_SERIES.items():
            config = ctx.config.with_victim_policy(policy)
            sd, _ = ctx.slowdown(bench.name, LIGHTWSP, config=config)
            row[label] = sd
        out.rows.append(row)
    out.aggregate()
    return out


def fig14_miss_rate(ctx: ExperimentContext) -> FigureResult:
    series = tuple(_VICTIM_SERIES) + ("Stale Load",)
    out = FigureResult(
        figure="Fig. 14",
        series=series,
        notes="L1 miss rate (%); disabling snooping (stale-load) evicts "
        "hot conflicting lines and raises the miss rate.",
    )
    policies = dict(_VICTIM_SERIES)
    policies["Stale Load"] = VictimPolicy.STALE_LOAD
    for bench in ctx.benchmarks():
        row = {"benchmark": bench.name, "suite": bench.suite}
        for label, policy in policies.items():
            config = ctx.config.with_victim_policy(policy)
            res = ctx.run(bench.name, LIGHTWSP, config=config)
            row[label] = res.l1_miss_rate * 100.0
        out.rows.append(row)
    out.aggregate(agg=lambda vals: sum(vals) / len(vals))
    return out


# ----------------------------------------------------------------------
# Fig. 15 — persist-path bandwidth sensitivity
# ----------------------------------------------------------------------

def fig15_bandwidth(
    ctx: ExperimentContext, bandwidths: Sequence[float] = (4.0, 2.0, 1.0)
) -> FigureResult:
    out = FigureResult(
        figure="Fig. 15",
        series=tuple("%gGB/s" % b for b in bandwidths),
        notes="Lower persist-path bandwidth fills the front-end buffer "
        "and stalls the core.",
    )
    for bench in ctx.benchmarks():
        row = {"benchmark": bench.name, "suite": bench.suite}
        for bw in bandwidths:
            config = ctx.config.with_persist_bandwidth(bw)
            sd, _ = ctx.slowdown(bench.name, LIGHTWSP, config=config)
            row["%gGB/s" % bw] = sd
        out.rows.append(row)
    out.aggregate()
    return out


# ----------------------------------------------------------------------
# Fig. 16 — thread-count sensitivity (multi-threaded suites)
# ----------------------------------------------------------------------

def fig16_threads(
    ctx: ExperimentContext, counts: Sequence[int] = (8, 16, 32, 64)
) -> FigureResult:
    out = FigureResult(
        figure="Fig. 16",
        series=tuple("%d-thread" % c for c in counts),
        notes="More threads contend on the two shared WPQs; overflow "
        "stays rare (§V-F5).  Overflow counts reported per row as "
        "overflows_<n>.",
    )
    for bench in ctx.benchmarks():
        if bench.threads == 1:
            continue
        row = {"benchmark": bench.name, "suite": bench.suite}
        for n in counts:
            sd, res = ctx.slowdown(bench.name, LIGHTWSP, threads=n)
            row["%d-thread" % n] = sd
            row["overflows_%d" % n] = res.overflow_flushes + res.deadlock_events
        out.rows.append(row)
    out.aggregate()
    return out


# ----------------------------------------------------------------------
# Fig. 17 / Table III — CXL configurations
# ----------------------------------------------------------------------

def fig17_cxl(ctx: ExperimentContext) -> FigureResult:
    out = FigureResult(
        figure="Fig. 17",
        series=tuple(CXL_PRESETS),
        notes="LightWSP over CXL-attached NVDIMM/PMEM devices; paper: "
        "<16% average overhead on every preset.",
    )
    for bench in ctx.benchmarks():
        row = {"benchmark": bench.name, "suite": bench.suite}
        for label, backend in CXL_PRESETS.items():
            config = ctx.config.with_memory_backend(backend)
            sd, _ = ctx.slowdown(bench.name, LIGHTWSP, config=config)
            row[label] = sd
        out.rows.append(row)
    out.aggregate()
    return out


def table3_cxl() -> FigureResult:
    out = FigureResult(
        figure="Table III",
        series=("read_ns", "write_ns", "bw_gbps"),
        notes="CXL device presets.",
    )
    for label, backend in CXL_PRESETS.items():
        out.rows.append(
            {
                "benchmark": label,
                "suite": "CXL",
                "read_ns": backend.total_read_ns,
                "write_ns": backend.total_write_ns,
                "bw_gbps": backend.read_bw_gbps,
            }
        )
    return out


# ----------------------------------------------------------------------
# Fig. 18 — WPQ hit rate per WPQ size
# ----------------------------------------------------------------------

def fig18_wpq_hits(
    ctx: ExperimentContext, sizes: Sequence[int] = (256, 128, 64)
) -> FigureResult:
    out = FigureResult(
        figure="Fig. 18",
        series=tuple("WPQ-%d" % s for s in sizes),
        notes="WPQ hits per million instructions on LLC load misses; "
        "paper average 0.039 at WPQ-64.",
    )
    for bench in ctx.benchmarks():
        row = {"benchmark": bench.name, "suite": bench.suite}
        for size in sizes:
            config = ctx.config.with_wpq_entries(size)
            res = ctx.run(bench.name, LIGHTWSP, config=config)
            row["WPQ-%d" % size] = res.wpq_hits_per_minst()
        out.rows.append(row)
    out.aggregate(agg=lambda vals: sum(vals) / len(vals))
    return out


# ----------------------------------------------------------------------
# Ablations: the design choices DESIGN.md calls out
# ----------------------------------------------------------------------

#: LightWSP with LRPO disabled: the core stalls at every region boundary
#: until the region has flushed to PM — the "naive use of sfence at each
#: region boundary" that §III-B argues against.
LIGHTWSP_NAIVE = replace(
    LIGHTWSP,
    name="LightWSP-naive-wait",
    gated=False,
    boundary_wait=True,
    wait_for="flush",
)


def ablation_lrpo(ctx: ExperimentContext) -> FigureResult:
    """LRPO vs stalling at each boundary (same compiled binary)."""
    out = FigureResult(
        figure="Ablation: LRPO",
        series=("LightWSP", "naive-wait"),
        notes="Identical compiled binaries; only the persist-ordering "
        "mechanism differs.  LRPO's entire benefit is the gap.",
    )
    for bench in ctx.benchmarks():
        base = ctx.run(bench.name, MEMORY_MODE)
        row = {"benchmark": bench.name, "suite": bench.suite}
        row["LightWSP"] = ctx.run(bench.name, LIGHTWSP).cycles / base.cycles
        row["naive-wait"] = (
            ctx.run(bench.name, LIGHTWSP_NAIVE).cycles / base.cycles
        )
        out.rows.append(row)
    out.aggregate()
    return out


#: compiler-pass ablation variants (name -> CompilerConfig changes)
_COMPILER_VARIANTS = {
    "default": {},
    "no-unroll": {"unroll_limit": 1, "speculative_unroll": False},
    "no-prune": {"prune_checkpoints": False},
    "no-merge": {"merge_regions": False},
}


def ablation_compiler(ctx: ExperimentContext) -> FigureResult:
    """Slowdown under each compiler-pass ablation (plus the dynamic
    instrumentation overhead each variant pays, as extra columns)."""
    out = FigureResult(
        figure="Ablation: compiler passes",
        series=tuple(_COMPILER_VARIANTS),
        notes="Region-size extension (unrolling) and checkpoint pruning "
        "exist to cut checkpoint stores; merging enlarges regions.",
    )
    for bench in ctx.benchmarks():
        base = ctx.run(bench.name, MEMORY_MODE)
        base_instr = count_events(ctx.baseline_trace(bench.name)).instructions
        row = {"benchmark": bench.name, "suite": bench.suite}
        for label, changes in _COMPILER_VARIANTS.items():
            config = replace(
                ctx.config, compiler=replace(ctx.config.compiler, **changes)
            )
            res = ctx.run(bench.name, LIGHTWSP, config=config)
            row[label] = res.cycles / base.cycles
            row["overhead_%s" % label] = (
                (res.instructions - base_instr) / base_instr * 100.0
                if base_instr
                else 0.0
            )
        out.rows.append(row)
    out.aggregate()
    return out


# ----------------------------------------------------------------------
# Table I, §V-G2/3/4
# ----------------------------------------------------------------------

def table1_config(config: SystemConfig = DEFAULT_CONFIG) -> Dict[str, str]:
    return config.describe()


def vg2_cam_latency(config: SystemConfig = DEFAULT_CONFIG) -> Dict[str, float]:
    model = cacti.CamModel(
        entries=config.mc.wpq_entries, entry_bytes=config.mc.wpq_entry_bytes
    )
    return {
        "search_ns": model.search_ns(),
        "search_cycles": model.search_cycles(config.clock_ghz),
    }


def vg3_region_stats(ctx: ExperimentContext) -> FigureResult:
    out = FigureResult(
        figure="§V-G3",
        series=(
            "instrumentation_pct",
            "net_overhead_pct",
            "insts_per_region",
            "stores_per_region",
        ),
        notes="Dynamic instrumentation (checkpoint + boundary stores as a "
        "share of instructions; paper: +7.03%) and region shape (paper: "
        "91.33 insts, 11.29 stores per region).  net_overhead_pct "
        "compares against the *non-unrolled* baseline binary and can go "
        "negative: LightWSP's region-size extension unrolls loops the "
        "baseline build leaves rolled.",
    )
    for bench in ctx.benchmarks():
        base = count_events(ctx.baseline_trace(bench.name))
        comp = count_events(ctx.compiled_trace(bench.name))
        net = (
            (comp.instructions - base.instructions) / base.instructions * 100.0
            if base.instructions
            else 0.0
        )
        instrumentation = (
            comp.instrumentation / comp.instructions * 100.0
            if comp.instructions
            else 0.0
        )
        out.rows.append(
            {
                "benchmark": bench.name,
                "suite": bench.suite,
                "instrumentation_pct": instrumentation,
                "net_overhead_pct": net,
                "insts_per_region": comp.instructions_per_region(),
                "stores_per_region": comp.stores_per_region(),
            }
        )
    out.aggregate(agg=lambda vals: sum(vals) / len(vals))
    return out


def vg4_hw_cost(config: SystemConfig = DEFAULT_CONFIG) -> Dict[str, str]:
    return {
        name: cost.per_core_str() + " per core (" + cost.notes + ")"
        for name, cost in hwcost.cost_table(config).items()
    }
