"""Residual-energy / battery sizing — the quantitative version of the
paper's §II-C1 argument against JIT-checkpointing WSP.

JIT-checkpointing schemes must, on the residual energy of the power
supply, persist *all* volatile state: every dirty line of every cache
level plus — fatally — the off-chip DRAM cache.  LightWSP only needs the
battery to (a) finish draining each MC's tiny WPQ and (b) deliver the
in-flight bdry/flush ACKs.  This module computes both energy budgets from
first principles so the orders-of-magnitude gap the paper cites (a
server PSU covers at most 64 cores x 40 MB of SRAM; nobody covers
terabytes of DRAM) falls out of the model.

Energy model (deliberately simple, constants documented):

* moving one byte to PM costs ``PM_WRITE_ENERGY_PJ_PER_BYTE`` plus the
  DRAM/SRAM read to fetch it;
* the platform burns ``PLATFORM_IDLE_W`` while the flush runs at
  ``pm.write_bw_gbps`` per memory controller.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_CONFIG, SystemConfig

__all__ = [
    "EnergyBudget",
    "lightwsp_budget",
    "jit_checkpoint_budget",
    "compare",
    "per_entry_drain_joules",
    "drainable_entries",
    "default_battery_joules",
]

#: energy to write one byte into PM (pJ) — Optane-class media
PM_WRITE_ENERGY_PJ_PER_BYTE = 500.0
#: energy to read one byte out of SRAM caches (pJ)
SRAM_READ_ENERGY_PJ_PER_BYTE = 5.0
#: energy to read one byte out of DRAM (pJ)
DRAM_READ_ENERGY_PJ_PER_BYTE = 60.0
#: platform power while the flush runs (W) — the PSU must keep the whole
#: board (VRs, fabric, MCs, DIMMs) alive for the flush's duration
PLATFORM_IDLE_W = 150.0
#: usable residual energy of a standard ATX PSU after loss of AC (J);
#: LightPC found it covers at most "32 cores with 16KB cache", which this
#: budget reproduces (most of the hold-up charge is unusable before
#: voltage droop)
ATX_RESIDUAL_J = 0.15
#: usable residual energy of a server-class PSU (J) — covers "64 cores
#: with 40MB cache" per LightPC, but never an off-chip DRAM cache
SERVER_RESIDUAL_J = 35.0


@dataclass(frozen=True)
class EnergyBudget:
    """What one scheme must persist on residual power."""

    scheme: str
    bytes_to_flush: int
    flush_seconds: float
    energy_joules: float

    def fits(self, residual_joules: float) -> bool:
        return self.energy_joules <= residual_joules


def _flush_energy(n_bytes: int, read_pj_per_byte: float, bw_gbps: float):
    move_j = n_bytes * (PM_WRITE_ENERGY_PJ_PER_BYTE + read_pj_per_byte) * 1e-12
    seconds = (n_bytes / (bw_gbps * 1e9)) if n_bytes else 0.0
    platform_j = seconds * PLATFORM_IDLE_W
    return move_j + platform_j, seconds


def lightwsp_budget(config: SystemConfig = DEFAULT_CONFIG) -> EnergyBudget:
    """LightWSP's battery: drain every WPQ + the in-flight ACKs (the ACK
    traffic is a rounding error; we charge one extra WPQ's worth)."""
    wpq_bytes = config.mc.n_mcs * config.mc.wpq_bytes
    budget_bytes = wpq_bytes * 2  # entries + protocol slack
    total_bw = config.pm.write_bw_gbps * config.mc.n_mcs
    energy, seconds = _flush_energy(
        budget_bytes, SRAM_READ_ENERGY_PJ_PER_BYTE, total_bw
    )
    return EnergyBudget(
        scheme="LightWSP",
        bytes_to_flush=budget_bytes,
        flush_seconds=seconds,
        energy_joules=energy,
    )


def jit_checkpoint_budget(
    config: SystemConfig = DEFAULT_CONFIG,
    dirty_fraction: float = 0.5,
    include_dram_cache: bool = True,
) -> EnergyBudget:
    """A JIT-checkpointing WSP's burden: all dirty SRAM state, plus the
    DRAM cache when it must survive (Optane memory mode)."""
    sram_bytes = config.cores * config.l1d.size_bytes + config.l2.size_bytes
    dirty_sram = int(sram_bytes * dirty_fraction)
    total_bw = config.pm.write_bw_gbps * config.mc.n_mcs

    energy, seconds = _flush_energy(
        dirty_sram, SRAM_READ_ENERGY_PJ_PER_BYTE, total_bw
    )
    total_bytes = dirty_sram
    if include_dram_cache:
        dram_dirty = int(config.dram_cache.size_bytes * dirty_fraction)
        dram_energy, dram_seconds = _flush_energy(
            dram_dirty, DRAM_READ_ENERGY_PJ_PER_BYTE, total_bw
        )
        energy += dram_energy
        seconds += dram_seconds
        total_bytes += dram_dirty
    return EnergyBudget(
        scheme="JIT-checkpoint" + ("+DRAM$" if include_dram_cache else ""),
        bytes_to_flush=total_bytes,
        flush_seconds=seconds,
        energy_joules=energy,
    )


def per_entry_drain_joules(config: SystemConfig = DEFAULT_CONFIG) -> float:
    """Energy to push one WPQ entry to PM on residual power: the data
    movement (SRAM read + PM write) plus the platform power burned for the
    entry's slice of the drain."""
    entry_bytes = config.mc.wpq_entry_bytes
    move_j = entry_bytes * (
        PM_WRITE_ENERGY_PJ_PER_BYTE + SRAM_READ_ENERGY_PJ_PER_BYTE
    ) * 1e-12
    total_bw = config.pm.write_bw_gbps * config.mc.n_mcs
    platform_j = (entry_bytes / (total_bw * 1e9)) * PLATFORM_IDLE_W
    return move_j + platform_j


def drainable_entries(
    residual_joules: float, config: SystemConfig = DEFAULT_CONFIG
) -> int:
    """How many 8 B WPQ entries the residual energy can still push to PM —
    the inverse of :func:`lightwsp_budget`, used by the fault-injection
    subsystem to bound a crash-time battery drain (partial-drain faults)."""
    if residual_joules <= 0.0:
        return 0
    return int(residual_joules / per_entry_drain_joules(config))


def default_battery_joules(
    config: SystemConfig = DEFAULT_CONFIG, margin: float = 2.0
) -> float:
    """The energy a correctly sized LightWSP battery holds: the worst-case
    drain budget of :func:`lightwsp_budget` times a safety ``margin``.  A
    machine provisioned this way never truncates a battery drain — the
    invariant the ``sized_battery`` defense encodes."""
    return lightwsp_budget(config).energy_joules * margin


def compare(config: SystemConfig = DEFAULT_CONFIG) -> dict:
    """The §II-C1 table: who fits which power supply."""
    light = lightwsp_budget(config)
    jit_sram = jit_checkpoint_budget(config, include_dram_cache=False)
    jit_full = jit_checkpoint_budget(config, include_dram_cache=True)
    rows = {}
    for budget in (light, jit_sram, jit_full):
        rows[budget.scheme] = {
            "bytes": budget.bytes_to_flush,
            "energy_J": budget.energy_joules,
            "fits_ATX": budget.fits(ATX_RESIDUAL_J),
            "fits_server_PSU": budget.fits(SERVER_RESIDUAL_J),
        }
    return rows
