"""An analytical CAM search-latency model standing in for CACTI 7.0
(§V-G2).

The paper uses CACTI at 22 nm to size the front-end buffer / WPQ CAM
search: 0.99 ns ≈ 2 cycles at 2 GHz for 64 entries × 8 B.  CACTI itself
is a large C++ cache-modeling tool; for the single scalar the evaluation
needs, a fitted analytical model is sufficient and documented here.

Model: a CAM search is a wordline broadcast over the match lines plus a
priority encode — delay grows with ln(entries) (RC of the match line
tree) and weakly with entry width.  We anchor the fit to the published
CACTI data points:

* 64 x 8 B at 22 nm  -> 0.99 ns (the paper's configuration)
* small CAMs bottom out around 0.45 ns of fixed sense/encode delay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CamModel", "cam_search_ns", "cam_search_cycles"]

#: fixed sense-amp + priority-encoder delay (ns) at 22 nm
_BASE_NS = 0.45
#: match-line broadcast delay coefficient (ns per ln(entry))
_PER_LN_ENTRY_NS = 0.12
#: mild width dependence (ns per ln(bytes/8))
_PER_LN_WIDTH_NS = 0.03
#: first-order technology scaling relative to 22 nm
_REFERENCE_NM = 22.0


@dataclass(frozen=True)
class CamModel:
    entries: int = 64
    entry_bytes: int = 8
    technology_nm: float = 22.0

    def search_ns(self) -> float:
        if self.entries < 1 or self.entry_bytes < 1:
            raise ValueError("CAM needs at least one entry and one byte")
        delay = _BASE_NS
        delay += _PER_LN_ENTRY_NS * math.log(self.entries)
        delay += _PER_LN_WIDTH_NS * math.log(max(1.0, self.entry_bytes / 8.0))
        return delay * (self.technology_nm / _REFERENCE_NM)

    def search_cycles(self, clock_ghz: float = 2.0) -> int:
        return max(1, math.ceil(self.search_ns() * clock_ghz))


def cam_search_ns(entries: int = 64, entry_bytes: int = 8, technology_nm: float = 22.0) -> float:
    return CamModel(entries, entry_bytes, technology_nm).search_ns()


def cam_search_cycles(
    entries: int = 64,
    entry_bytes: int = 8,
    clock_ghz: float = 2.0,
    technology_nm: float = 22.0,
) -> int:
    return CamModel(entries, entry_bytes, technology_nm).search_cycles(clock_ghz)
