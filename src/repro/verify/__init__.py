"""Independent static verification of compiled LightWSP programs.

The compiler passes in :mod:`repro.compiler` *establish* the paper's
recoverability invariants; this package *checks* them from scratch, the
way PSan-style persistency analyses audit flush/fence insertion rather
than trusting the instrumenting pass.  The verifier shares only the IR
data structures with the compiler — the CFG, dominators, back edges,
liveness, and region reasoning are all re-derived here by independent
implementations, so a bug in region combining, speculative unrolling, or
checkpoint pruning cannot hide inside the analysis that is supposed to
catch it.

Five rules, one per paper invariant (see DESIGN.md "Static verification"):

* **R1 store-budget** — no boundary-free CFG path accumulates more
  store-like instructions than the threshold (WPQ/2), so a region can
  always be held back in the write-pending queues.
* **R2 checkpoint-completeness** — every register live-out at a boundary
  is covered by that boundary's recovery plan (physically checkpointed or
  reconstructible), including after pruning.
* **R3 boundary-coverage** — boundaries sit at function entry/exit,
  around callsites and irrevocable I/O, before synchronization, and at
  the header of every storing loop.
* **R4 region-wellformedness** — no boundary-free cycle contains a
  store, so region IDs advance monotonically along every dynamic path and
  no region spans a back edge after unrolling.
* **R5 checkpoint-slot-safety** — checkpoint slots are written in the
  region whose boundary needs them and never clobbered by provable data
  stores; pruned recipes only read slots that are fresh at their boundary.

Entry points: :func:`verify_compiled` (a ``CompiledProgram``),
:func:`verify_program` (program + plans + explicit config), and the
mutation self-validation harness in :mod:`repro.verify.mutate`.
"""

from .model import (
    RULES,
    Diagnostic,
    VerificationError,
    VerifyConfig,
    VerifyReport,
)
from .mutate import (
    MutationOutcome,
    mutation_catalog,
    placement_catalog,
    self_validate,
    validate_placement,
)
from .verifier import (
    derive_config,
    verify_compiled,
    verify_function,
    verify_program,
)

__all__ = [
    "RULES",
    "Diagnostic",
    "VerificationError",
    "VerifyConfig",
    "VerifyReport",
    "MutationOutcome",
    "mutation_catalog",
    "placement_catalog",
    "self_validate",
    "validate_placement",
    "derive_config",
    "verify_compiled",
    "verify_function",
    "verify_program",
]
