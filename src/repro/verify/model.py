"""Diagnostics, reports, and configuration for the static verifier.

A :class:`Diagnostic` pins one violation to a rule, a function, an
instruction site, and a *witness path* — the concrete sequence of
program points that demonstrates the violation (the overflowing store
chain for R1, the live use for R2, the boundary-free cycle for R4...).
Witnesses are what make a verifier report actionable: they point at a
crash point, not just a pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "RULES",
    "Site",
    "Diagnostic",
    "VerifyConfig",
    "VerifyReport",
    "VerificationError",
]

#: rule id -> (slug, one-line description of the invariant it proves)
RULES: Dict[str, Tuple[str, str]] = {
    "R1": (
        "store-budget",
        "no boundary-free path holds more store-like instructions than "
        "the threshold (WPQ/2)",
    ),
    "R2": (
        "checkpoint-completeness",
        "every register live-out at a boundary is covered by its recovery "
        "plan",
    ),
    "R3": (
        "boundary-coverage",
        "boundaries at function entry/exit, callsites, irrevocable I/O, "
        "synchronization, and storing loop headers",
    ),
    "R4": (
        "region-wellformedness",
        "no boundary-free cycle stores: region IDs advance monotonically "
        "and no region spans a back edge",
    ),
    "R5": (
        "checkpoint-slot-safety",
        "checkpoint slots written in the region that needs them, read "
        "only when fresh, never clobbered by data stores",
    ),
}


@dataclass(frozen=True)
class Site:
    """One program point: function, block label, instruction index."""

    function: str
    block: str
    index: int

    def __str__(self) -> str:
        return "%s:%s:%d" % (self.function, self.block, self.index)


@dataclass
class Diagnostic:
    """One verified invariant violation."""

    rule: str
    site: Site
    message: str
    #: "error" fails verification; "warn" is reported but does not gate
    #: (used for threshold overshoot the compiler itself declared via
    #: ``converged=False``, which stays crash-safe while <= WPQ size).
    severity: str = "error"
    #: rendered program points demonstrating the violation, in execution
    #: order ("func:block:idx  <instr>")
    witness: Tuple[str, ...] = ()
    #: uid of the implicated boundary instruction, when one exists
    boundary_uid: Optional[int] = None

    def format(self) -> str:
        slug = RULES.get(self.rule, ("?", ""))[0]
        lines = [
            "%s %s[%s] at %s: %s"
            % (self.severity.upper(), self.rule, slug, self.site, self.message)
        ]
        for step in self.witness:
            lines.append("    | %s" % step)
        return "\n".join(lines)

    def to_json(self) -> Dict:
        return {
            "rule": self.rule,
            "slug": RULES.get(self.rule, ("?", ""))[0],
            "severity": self.severity,
            "function": self.site.function,
            "block": self.site.block,
            "index": self.site.index,
            "message": self.message,
            "witness": list(self.witness),
            "boundary_uid": self.boundary_uid,
        }


@dataclass(frozen=True)
class VerifyConfig:
    """What the verifier holds the program to."""

    #: region store budget — WPQ/2 in the paper's configuration
    threshold: int = 32
    #: hard capacity: a region above the threshold but within the WPQ is
    #: degraded service, not data loss (§IV-A); above the WPQ it is
    #: unrecoverable
    wpq_entries: int = 64
    #: True when the compiler declared non-convergence (tiny thresholds
    #: whose checkpoint groups alone overflow): threshold overshoot
    #: within the WPQ becomes a warning instead of an error
    allow_overshoot: bool = False
    #: word addresses [0, checkpoint_words) are the checkpoint array
    checkpoint_words: int = 33 * 64
    #: cap on witness-path length in diagnostics
    max_witness: int = 12

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("threshold must be positive")
        if self.wpq_entries < self.threshold:
            raise ValueError("WPQ smaller than the threshold it backs")


@dataclass
class VerifyReport:
    """The outcome of verifying one program."""

    program: str
    config: VerifyConfig
    diagnostics: List[Diagnostic] = field(default_factory=list)
    functions: int = 0
    boundaries: int = 0
    checked_paths: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors()

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warn"]

    def by_rule(self) -> Dict[str, List[Diagnostic]]:
        out: Dict[str, List[Diagnostic]] = {}
        for diag in self.diagnostics:
            out.setdefault(diag.rule, []).append(diag)
        return out

    def format(self, limit: int = 20) -> str:
        head = "verify %s: %s (%d function(s), %d boundaries, %d error(s), %d warning(s))" % (
            self.program,
            "PASS" if self.ok else "FAIL",
            self.functions,
            self.boundaries,
            len(self.errors()),
            len(self.warnings()),
        )
        lines = [head]
        for diag in self.diagnostics[:limit]:
            lines.append(diag.format())
        if len(self.diagnostics) > limit:
            lines.append("... %d more diagnostic(s)" % (len(self.diagnostics) - limit))
        return "\n".join(lines)

    def to_json(self) -> Dict:
        return {
            "program": self.program,
            "ok": self.ok,
            "threshold": self.config.threshold,
            "wpq_entries": self.config.wpq_entries,
            "allow_overshoot": self.config.allow_overshoot,
            "functions": self.functions,
            "boundaries": self.boundaries,
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }


class VerificationError(Exception):
    """Raised when verification gates execution and the program fails."""

    def __init__(self, report: VerifyReport) -> None:
        self.report = report
        super().__init__(report.format())
