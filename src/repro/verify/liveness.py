"""From-scratch backward liveness at instruction granularity.

This is the verifier's own dataflow, independent of
:mod:`repro.compiler.liveness` (which works block-wise with use/def
summaries).  Two deliberate differences matter:

* **granularity** — live sets are computed per instruction node over the
  :class:`~repro.verify.graph.InstrGraph`, so a boundary's live-out set
  falls straight out of the fixpoint rather than out of an intra-block
  replay;
* **checkpoint transparency** — ``checkpoint`` reads are instrumentation,
  not program semantics: the recovery contract ("plan covers every
  live-out") is defined over the *uninstrumented* liveness, and treating
  checkpoint operands as uses would let the instrumentation justify
  itself.  ``boundary`` has no uses or defs either way.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..compiler.ir import Instr, Op
from .graph import InstrGraph, Node

__all__ = ["InstrLiveness"]


def _uses(instr: Instr) -> Tuple[str, ...]:
    if instr.op == Op.CHECKPOINT:
        return ()
    return instr.uses()


class InstrLiveness:
    """Per-node live-in/live-out register sets."""

    def __init__(self, graph: InstrGraph) -> None:
        self.graph = graph
        self.live_in: Dict[Node, FrozenSet[str]] = {}
        self.live_out: Dict[Node, FrozenSet[str]] = {}
        self._solve()

    def _solve(self) -> None:
        graph = self.graph
        nodes = list(graph.nodes())
        empty: FrozenSet[str] = frozenset()
        for node in nodes:
            self.live_in[node] = empty
            self.live_out[node] = empty
        # Worklist seeded with every node; a change re-queues predecessors.
        pending: List[Node] = list(nodes)
        in_queue: Set[Node] = set(nodes)
        while pending:
            node = pending.pop()
            in_queue.discard(node)
            instr = graph.instr(node)
            out: Set[str] = set()
            for succ in graph.succs[node]:
                out |= self.live_in[succ]
            new_in = (out - set(instr.defs())) | set(_uses(instr))
            frozen_out = frozenset(out)
            frozen_in = frozenset(new_in)
            if (
                frozen_out == self.live_out[node]
                and frozen_in == self.live_in[node]
            ):
                continue
            self.live_out[node] = frozen_out
            self.live_in[node] = frozen_in
            for pred in graph.preds.get(node, ()):
                if pred not in in_queue:
                    in_queue.add(pred)
                    pending.append(pred)

    # ------------------------------------------------------------------
    def first_use_path(
        self, start: Node, reg: str, limit: int = 64
    ) -> Optional[List[Node]]:
        """A shortest path (list of nodes) from ``start``'s successors to
        an instruction that *uses* ``reg`` before any redefinition — the
        witness that ``reg`` really is live-out of ``start``.  Returns
        None when no such use exists (i.e. ``reg`` is not live)."""
        graph = self.graph
        frontier: List[Tuple[Node, Tuple[Node, ...]]] = [
            (succ, (succ,)) for succ in graph.succs[start]
        ]
        seen: Set[Node] = set()
        while frontier:
            next_frontier: List[Tuple[Node, Tuple[Node, ...]]] = []
            for node, path in frontier:
                if node in seen:
                    continue
                seen.add(node)
                instr = graph.instr(node)
                if reg in _uses(instr):
                    return list(path)
                if reg in instr.defs():
                    continue  # redefined: this path stops being a witness
                if len(path) < limit:
                    for succ in graph.succs[node]:
                        next_frontier.append((succ, path + (succ,)))
            frontier = next_frontier
        return None
