"""Instruction-granularity control-flow graph, re-derived from the IR.

The compiler's own :mod:`repro.compiler.cfg` works at block granularity
with iterative dominator *sets*; the verifier deliberately uses different
machinery — an instruction-level node graph and the Cooper-Harvey-Kennedy
immediate-dominator algorithm — so the two cannot share a bug.

Nodes are ``(block_label, instruction_index)`` pairs.  Within a block,
instruction ``i`` flows to ``i+1``; a terminator flows to the first
instruction of each target block; ``ret`` flows nowhere.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..compiler.ir import Function, Instr, Op

__all__ = ["Node", "InstrGraph"]

#: one program point
Node = Tuple[str, int]


class InstrGraph:
    """Successor/predecessor maps over a function's instructions, plus
    dominator-based loop structure at block granularity."""

    def __init__(self, func: Function) -> None:
        if func.entry is None:
            raise ValueError("function %s has no entry block" % func.name)
        self.func = func
        self.entry: Node = (func.entry, 0)
        self.succs: Dict[Node, Tuple[Node, ...]] = {}
        self.preds: Dict[Node, List[Node]] = {}

        for label, block in func.blocks.items():
            if not block.instrs:
                raise ValueError(
                    "empty block %s in %s" % (label, func.name)
                )
            for i, instr in enumerate(block.instrs):
                node = (label, i)
                if i + 1 < len(block.instrs):
                    succ: Tuple[Node, ...] = ((label, i + 1),)
                elif instr.op == Op.RET:
                    succ = ()
                else:
                    succ = tuple((t, 0) for t in instr.targets)
                self.succs[node] = succ
                self.preds.setdefault(node, [])
                for s in succ:
                    self.preds.setdefault(s, []).append(node)

        self.reachable: Set[Node] = self._reach(self.entry)
        # Block-level edge relation among reachable blocks, for loop
        # structure (loops are a block-level notion).
        self._block_succs: Dict[str, Tuple[str, ...]] = {}
        for label, block in func.blocks.items():
            if (label, 0) in self.reachable:
                self._block_succs[label] = tuple(
                    t for t in block.instrs[-1].targets
                ) if block.instrs[-1].op != Op.RET else ()
        self._idom: Optional[Dict[str, str]] = None

    # ------------------------------------------------------------------
    def instr(self, node: Node) -> Instr:
        return self.func.blocks[node[0]].instrs[node[1]]

    def render(self, node: Node) -> str:
        return "%s:%s:%d  %s" % (
            self.func.name, node[0], node[1], self.instr(node)
        )

    def nodes(self) -> Iterable[Node]:
        return self.succs.keys()

    def _reach(self, start: Node) -> Set[Node]:
        seen: Set[Node] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.succs[node])
        return seen

    # ------------------------------------------------------------------
    # Block-level dominators (Cooper-Harvey-Kennedy) and loops
    # ------------------------------------------------------------------
    def _block_rpo(self) -> List[str]:
        order: List[str] = []
        seen: Set[str] = set()
        stack: List[Tuple[str, int]] = [(self.func.entry, 0)]
        seen.add(self.func.entry)
        while stack:
            label, i = stack.pop()
            succs = self._block_succs.get(label, ())
            if i < len(succs):
                stack.append((label, i + 1))
                nxt = succs[i]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                order.append(label)
        order.reverse()
        return order

    def idoms(self) -> Dict[str, str]:
        """Immediate dominators of reachable blocks (entry maps to itself)."""
        if self._idom is not None:
            return self._idom
        rpo = self._block_rpo()
        index = {label: i for i, label in enumerate(rpo)}
        block_preds: Dict[str, List[str]] = {label: [] for label in rpo}
        for label in rpo:
            for succ in self._block_succs.get(label, ()):
                if succ in index:
                    block_preds[succ].append(label)

        idom: Dict[str, str] = {self.func.entry: self.func.entry}

        def intersect(a: str, b: str) -> str:
            while a != b:
                while index[a] > index[b]:
                    a = idom[a]
                while index[b] > index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for label in rpo:
                if label == self.func.entry:
                    continue
                candidates = [p for p in block_preds[label] if p in idom]
                if not candidates:
                    continue
                new = candidates[0]
                for p in candidates[1:]:
                    new = intersect(new, p)
                if idom.get(label) != new:
                    idom[label] = new
                    changed = True
        self._idom = idom
        return idom

    def dominates(self, a: str, b: str) -> bool:
        """True when block ``a`` dominates block ``b``."""
        idom = self.idoms()
        if b not in idom:
            return False
        node = b
        while True:
            if node == a:
                return True
            parent = idom[node]
            if parent == node:
                return False
            node = parent

    def back_edges(self) -> List[Tuple[str, str]]:
        """Block edges (tail -> head) where the head dominates the tail."""
        edges: List[Tuple[str, str]] = []
        for tail, succs in sorted(self._block_succs.items()):
            for head in succs:
                if self.dominates(head, tail):
                    edges.append((tail, head))
        return edges

    def loop_body(self, tail: str, head: str) -> Set[str]:
        """Blocks of the natural loop of back edge ``tail -> head``."""
        body: Set[str] = {head}
        block_preds: Dict[str, List[str]] = {}
        for label, succs in self._block_succs.items():
            for succ in succs:
                block_preds.setdefault(succ, []).append(label)
        stack = [tail]
        while stack:
            label = stack.pop()
            if label in body:
                continue
            body.add(label)
            stack.extend(block_preds.get(label, []))
        return body
