"""Verifier entry points.

``verify_compiled`` is the common path: it takes the compiler's output
(:class:`~repro.compiler.pipeline.CompiledProgram`) and checks it against
the configuration it was compiled under — threshold from the compile
config, hard cap from the WPQ, overshoot tolerance from the compiler's
own ``converged`` verdict (a region above the threshold but within the
WPQ is degraded service, not data loss; the compiler is required to have
*declared* it).

``verify_program`` / ``verify_function`` take raw IR + plans and an
explicit :class:`VerifyConfig`, for tests and for auditing programs that
did not come out of this process' pipeline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:
    # Type-only: the pipeline imports this package lazily at runtime, so
    # a runtime import here would be circular.
    from ..compiler.pipeline import CompiledProgram

from ..compiler.checkpoints import RecoveryPlan
from ..compiler.ir import Function, Program
from .graph import InstrGraph
from .liveness import InstrLiveness
from .model import Diagnostic, VerifyConfig, VerifyReport
from .rules import (
    check_boundary_coverage,
    check_checkpoint_completeness,
    check_checkpoint_slot_safety,
    check_region_wellformedness,
    check_store_budget,
)

__all__ = [
    "verify_function",
    "verify_program",
    "verify_compiled",
    "derive_config",
]

#: severity sort: errors first, then by rule and site
_SEV = {"error": 0, "warn": 1}


def verify_function(
    func: Function,
    plans: Optional[Dict[int, RecoveryPlan]],
    cfg: VerifyConfig,
) -> List[Diagnostic]:
    """All diagnostics for one function."""
    graph = InstrGraph(func)
    live = InstrLiveness(graph)
    diagnostics: List[Diagnostic] = []
    diagnostics += check_store_budget(graph, cfg)
    diagnostics += check_checkpoint_completeness(graph, live, plans, cfg)
    diagnostics += check_boundary_coverage(graph, cfg)
    diagnostics += check_region_wellformedness(graph, cfg)
    diagnostics += check_checkpoint_slot_safety(graph, plans, cfg)
    return diagnostics


def verify_program(
    program: Program,
    plans: Optional[Dict[int, RecoveryPlan]] = None,
    cfg: Optional[VerifyConfig] = None,
) -> VerifyReport:
    """Verify every function of an instrumented program."""
    cfg = cfg or VerifyConfig(
        checkpoint_words=Program.CHECKPOINT_WORDS_PER_CORE
        * Program.MAX_CONTEXTS
    )
    report = VerifyReport(program=program.name, config=cfg)
    for func in program.functions.values():
        report.functions += 1
        graph = InstrGraph(func)
        report.boundaries += sum(
            1
            for node in graph.reachable
            if graph.instr(node).op == "boundary"
        )
        report.diagnostics.extend(verify_function(func, plans, cfg))
    report.diagnostics.sort(
        key=lambda d: (_SEV.get(d.severity, 2), d.rule, str(d.site))
    )
    return report


def derive_config(compiled: "CompiledProgram") -> VerifyConfig:
    """The :class:`VerifyConfig` a compiled program must be audited
    under: threshold from the compile config, WPQ from the paper's
    threshold = WPQ/2 rule run backwards, overshoot tolerance from the
    compiler's own ``converged`` verdict."""
    threshold = compiled.config.store_threshold
    return VerifyConfig(
        threshold=threshold,
        # The WPQ is a machine property the compiler does not know;
        # the paper's rule threshold = WPQ/2 runs backwards here.
        wpq_entries=max(2 * threshold, threshold + 1),
        allow_overshoot=not compiled.stats.converged,
        checkpoint_words=Program.CHECKPOINT_WORDS_PER_CORE
        * Program.MAX_CONTEXTS,
    )


def verify_compiled(
    compiled: "CompiledProgram", cfg: Optional[VerifyConfig] = None
) -> VerifyReport:
    """Verify a :class:`CompiledProgram` against its own compile config.

    Accepts anything with ``program`` / ``plans`` / ``stats`` / ``config``
    attributes, so the compiler pipeline can call this lazily without an
    import cycle.
    """
    return verify_program(
        compiled.program, compiled.plans, cfg or derive_config(compiled)
    )
