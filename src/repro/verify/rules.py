"""The five recoverability rules, each an independent analysis.

Every rule consumes the verifier's own :class:`InstrGraph` (and, where
needed, :class:`InstrLiveness`) — never the compiler's CFG or liveness —
and yields :class:`Diagnostic` objects carrying a concrete witness path.

Rule map (the paper invariant each one proves):

* R1 ``store-budget``      — §IV-A threshold: max store-like count on any
  boundary-free path <= WPQ/2, so an uncommitted region always fits in
  the write-pending queues.  Intra-procedural; sound because R3 proves
  every callsite is bracketed by boundaries.
* R2 ``checkpoint-completeness`` — §IV-A checkpoint insertion: each
  boundary's recovery plan covers every register live-out of it.
* R3 ``boundary-coverage`` — §IV-A placement: entry/exit, callsites,
  irrevocable I/O, synchronization (§III-D), storing loop headers (a
  header may go uncovered only when every storing cycle of the loop
  already crosses another boundary).
* R4 ``region-wellformedness`` — §IV-B/§IV-C: no boundary-free cycle
  contains a store (a region may not span a back edge), and no store
  executes before the function's first boundary — together these make
  the dynamic region-ID sequence strictly monotone per thread.
* R5 ``checkpoint-slot-safety`` — §IV-A pruning: a slot is written in
  the region whose boundary needs it (so rollback discards it together
  with the region), recipes only read slots fresh at their boundary, and
  no provable data store lands inside the checkpoint array.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..compiler.checkpoints import RecoveryPlan
from ..compiler.ir import Op
from .graph import InstrGraph, Node
from .liveness import InstrLiveness
from .model import Diagnostic, Site, VerifyConfig

__all__ = [
    "check_store_budget",
    "check_checkpoint_completeness",
    "check_boundary_coverage",
    "check_region_wellformedness",
    "check_checkpoint_slot_safety",
]

#: instructions that adjacency walks may step over: instrumentation the
#: normalizer is free to interleave (checkpoint groups) and pure control
#: transfer (unconditional/conditional branches, nops)
_TRANSPARENT = frozenset({Op.CHECKPOINT, Op.NOP, Op.BR, Op.CBR})


def _site(graph: InstrGraph, node: Node) -> Site:
    return Site(graph.func.name, node[0], node[1])


def _render_path(
    graph: InstrGraph, nodes: Sequence[Node], cfg: VerifyConfig
) -> Tuple[str, ...]:
    rendered = [graph.render(n) for n in nodes]
    if len(rendered) <= cfg.max_witness:
        return tuple(rendered)
    head = cfg.max_witness // 2
    tail = cfg.max_witness - head - 1
    return tuple(
        rendered[:head]
        + ["... %d step(s) elided ..." % (len(rendered) - head - tail)]
        + rendered[-tail:]
    )


# ----------------------------------------------------------------------
# R1 — store budget
# ----------------------------------------------------------------------

def check_store_budget(
    graph: InstrGraph, cfg: VerifyConfig
) -> List[Diagnostic]:
    """Forward max-count dataflow: ``in[n]`` is the largest number of
    store-like instructions accumulated since the most recent boundary on
    any path reaching ``n``.  Clamped at ``wpq_entries + 1`` so that
    boundary-free storing cycles (an R4 violation) terminate here too."""
    cap = cfg.wpq_entries + 1
    # Nodes absent from count_in are unvisited; 0 is a real value (just
    # past a boundary) and must still propagate.
    count_in: Dict[Node, int] = {graph.entry: 0}
    best_pred: Dict[Node, Node] = {}

    def out_of(node: Node) -> int:
        instr = graph.instr(node)
        if instr.op == Op.BOUNDARY:
            # The terminating boundary's own PC store is excluded from
            # its region's budget, as in the paper's accounting.
            return 0
        if instr.is_store_like():
            return min(cap, count_in[node] + 1)
        return count_in[node]

    pending = [graph.entry]
    queued = {graph.entry}
    while pending:
        node = pending.pop()
        queued.discard(node)
        out = out_of(node)
        for succ in graph.succs[node]:
            if succ not in count_in or out > count_in[succ]:
                count_in[succ] = out
                best_pred[succ] = node
                if succ not in queued:
                    queued.add(succ)
                    pending.append(succ)

    diagnostics: List[Diagnostic] = []
    for node in sorted(count_in):
        instr = graph.instr(node)
        if not instr.is_store_like() or instr.op == Op.BOUNDARY:
            continue
        reached = count_in[node] + 1
        crossing_threshold = count_in[node] == cfg.threshold
        crossing_wpq = count_in[node] == cfg.wpq_entries
        if not (crossing_threshold or crossing_wpq):
            continue
        # A compile that declared non-convergence makes no budget claim —
        # an unsplittable checkpoint group can exceed any cap — so its
        # overshoots are warnings; the report still surfaces them.
        severity = "warn" if cfg.allow_overshoot else "error"
        limit = cfg.wpq_entries if crossing_wpq else cfg.threshold
        witness = _budget_witness(graph, node, count_in, best_pred, cfg)
        diagnostics.append(
            Diagnostic(
                rule="R1",
                site=_site(graph, node),
                severity=severity,
                message=(
                    "store #%d on a boundary-free path (budget %d%s)"
                    % (
                        reached,
                        limit,
                        "" if crossing_wpq else ", WPQ %d" % cfg.wpq_entries,
                    )
                ),
                witness=witness,
            )
        )
    return diagnostics


def _budget_witness(
    graph: InstrGraph,
    node: Node,
    count_in: Dict[Node, int],
    best_pred: Dict[Node, Node],
    cfg: VerifyConfig,
) -> Tuple[str, ...]:
    """Walk the argmax-predecessor chain back to the region start and
    keep the store-like steps: the path that accumulates the count."""
    chain: List[Node] = [node]
    seen = {node}
    cur = node
    while cur in best_pred:
        cur = best_pred[cur]
        if cur in seen:
            break  # store-free cycle in the chain; witness is complete
        seen.add(cur)
        instr = graph.instr(cur)
        if instr.op == Op.BOUNDARY:
            break
        if instr.is_store_like():
            chain.append(cur)
        if count_in.get(cur, 0) == 0 and not instr.is_store_like():
            break
    chain.reverse()
    return _render_path(graph, chain, cfg)


# ----------------------------------------------------------------------
# R2 — checkpoint completeness
# ----------------------------------------------------------------------

def check_checkpoint_completeness(
    graph: InstrGraph,
    live: InstrLiveness,
    plans: Optional[Dict[int, RecoveryPlan]],
    cfg: VerifyConfig,
) -> List[Diagnostic]:
    """At each boundary, the registers live-out (by the verifier's own
    liveness) must all be covered by the boundary's recovery plan.  When
    no plans are supplied, physical checkpoint stores in the region stand
    in for the plan."""
    diagnostics: List[Diagnostic] = []
    fresh = _must_checkpointed(graph)
    for node in sorted(graph.reachable):
        instr = graph.instr(node)
        if instr.op != Op.BOUNDARY:
            continue
        required = live.live_out[node]
        if plans is not None:
            plan = plans.get(instr.uid)
            if plan is None:
                if required:
                    diagnostics.append(
                        Diagnostic(
                            rule="R2",
                            site=_site(graph, node),
                            message=(
                                "boundary (kind %r) has no recovery plan but "
                                "%d live-out register(s): %s"
                                % (instr.note, len(required),
                                   ", ".join(sorted(required)))
                            ),
                            boundary_uid=instr.uid,
                        )
                    )
                continue
            covered = set(plan.recipes)
        else:
            covered = set(fresh.get(node) or ())
        for reg in sorted(required - covered):
            path = live.first_use_path(node, reg)
            witness = (
                _render_path(graph, path, cfg) if path else ()
            )
            diagnostics.append(
                Diagnostic(
                    rule="R2",
                    site=_site(graph, node),
                    message=(
                        "register %s is live-out of boundary (kind %r) but "
                        "not covered by its recovery plan: a crash in the "
                        "next region recovers an undefined value" % (reg, instr.note)
                    ),
                    witness=witness,
                    boundary_uid=instr.uid,
                )
            )
    return diagnostics


# ----------------------------------------------------------------------
# R3 — boundary coverage
# ----------------------------------------------------------------------

def _adjacent_boundary(
    graph: InstrGraph, start: Node, forward: bool
) -> Optional[List[Node]]:
    """None when every path from ``start`` (exclusive) reaches a boundary
    before any non-transparent instruction; otherwise the offending path
    (ending at the first significant non-boundary instruction, or empty
    when the walk ran off the function entry/exit)."""
    step = (
        (lambda n: graph.succs[n])
        if forward
        else (lambda n: tuple(graph.preds.get(n, ())))
    )
    frontier: List[Tuple[Node, Tuple[Node, ...]]] = [
        (nxt, (nxt,)) for nxt in step(start)
    ]
    if not frontier and not forward:
        return []  # walked off the function entry without a boundary
    seen: Set[Node] = set()
    while frontier:
        node, path = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        instr = graph.instr(node)
        if instr.op == Op.BOUNDARY:
            continue
        if instr.op in _TRANSPARENT:
            nxt = step(node)
            if not nxt:
                return list(path)  # ran off entry/exit: no boundary
            frontier.extend((n, path + (n,)) for n in nxt)
            continue
        return list(path)
    return None


def check_boundary_coverage(
    graph: InstrGraph, cfg: VerifyConfig
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []

    def flag(node: Node, what: str, path: Optional[List[Node]]) -> None:
        order = path if path else [node]
        diagnostics.append(
            Diagnostic(
                rule="R3",
                site=_site(graph, node),
                message=what,
                witness=_render_path(graph, order, cfg),
            )
        )

    # Function entry: the first significant instruction on every path
    # must be a boundary (the callee-prologue boundary that ends the
    # caller's region).
    entry_instr = graph.instr(graph.entry)
    if entry_instr.op != Op.BOUNDARY:
        if entry_instr.op in _TRANSPARENT:
            path = _adjacent_boundary(graph, graph.entry, forward=True)
        else:
            path = [graph.entry]
        if path is not None:
            flag(
                graph.entry,
                "function entry is not bracketed by a boundary",
                path,
            )

    for node in sorted(graph.reachable):
        instr = graph.instr(node)
        if instr.op == Op.RET:
            path = _adjacent_boundary(graph, node, forward=False)
            if path is not None:
                flag(node, "ret without an exit boundary", path)
        elif instr.op == Op.CALL:
            path = _adjacent_boundary(graph, node, forward=False)
            if path is not None:
                flag(node, "callsite not preceded by a boundary", path)
            path = _adjacent_boundary(graph, node, forward=True)
            if path is not None:
                flag(node, "callsite not followed by a boundary", path)
        elif instr.op in Op.IRREVOCABLE:
            path = _adjacent_boundary(graph, node, forward=False)
            if path is not None:
                flag(node, "irrevocable I/O not preceded by a boundary", path)
            path = _adjacent_boundary(graph, node, forward=True)
            if path is not None:
                flag(
                    node,
                    "irrevocable I/O not followed by a boundary "
                    "(must sit alone in its region)",
                    path,
                )
        elif instr.op in Op.SYNC:
            path = _adjacent_boundary(graph, node, forward=False)
            if path is not None:
                flag(
                    node,
                    "synchronization (%s) does not begin a fresh region"
                    % instr.op,
                    path,
                )

    # Loops with data stores need a boundary at the header, so every
    # traversal of the back edge crosses it (the §IV-A placement rule).
    # Instrumentation stores (checkpoint groups around a callsite inside
    # the loop) do not trigger the header rule — their own boundaries
    # already cut every cycle, which R4 checks path-wise.  The rule is
    # cycle-aware, not block-syntactic: a loop whose header carries no
    # boundary is still legal when some other boundary inside the body
    # (a callsite's, a lock's, an inner loop's header) lies on every
    # storing cycle — the invariant the header placement exists to
    # establish already holds, just anchored elsewhere.
    for tail, head in graph.back_edges():
        body = graph.loop_body(tail, head)
        if not any(
            instr.op in (Op.STORE, Op.ATOMIC_RMW)
            for lbl in body
            for instr in graph.func.blocks[lbl].instrs
        ):
            continue
        header = graph.func.blocks[head]
        if any(i.op == Op.BOUNDARY for i in header.instrs):
            continue
        tail_end = (tail, len(graph.func.blocks[tail].instrs) - 1)
        witness = _storing_boundary_free_path(graph, (head, 0), tail_end, body)
        if witness is not None:
            flag(
                (head, 0),
                "storing loop (back edge %s -> %s) has no boundary in its "
                "header and a storing cycle crosses no boundary"
                % (tail, head),
                witness,
            )
    return diagnostics


# ----------------------------------------------------------------------
# R4 — region-ID well-formedness
# ----------------------------------------------------------------------

def check_region_wellformedness(
    graph: InstrGraph, cfg: VerifyConfig
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []

    # (a) No boundary-free storing cycle: for each back edge tail->head,
    # search the natural loop for a boundary-free path head ->* tail-end
    # that contains a store.  Such a path closes into a cycle via the
    # back edge, i.e. one region ID would tag an unbounded store stream.
    for tail, head in graph.back_edges():
        body = graph.loop_body(tail, head)
        tail_end = (tail, len(graph.func.blocks[tail].instrs) - 1)
        witness = _storing_boundary_free_path(graph, (head, 0), tail_end, body)
        if witness is not None:
            diagnostics.append(
                Diagnostic(
                    rule="R4",
                    site=_site(graph, (head, 0)),
                    message=(
                        "region spans back edge %s -> %s: boundary-free "
                        "storing cycle, region ID never advances" % (tail, head)
                    ),
                    witness=_render_path(graph, witness, cfg),
                )
            )

    # (b) No store before the function's first boundary on any path: the
    # first region this function persists into must be one it opened, or
    # the ID sequence seen by its stores is not monotone from the
    # caller's boundary.
    frontier: List[Tuple[Node, Tuple[Node, ...]]] = [
        (graph.entry, (graph.entry,))
    ]
    seen: Set[Node] = set()
    while frontier:
        node, path = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        instr = graph.instr(node)
        if instr.op == Op.BOUNDARY:
            continue
        if instr.is_store_like() and instr.op != Op.CHECKPOINT:
            diagnostics.append(
                Diagnostic(
                    rule="R4",
                    site=_site(graph, node),
                    message=(
                        "store reachable from function entry before any "
                        "boundary: it persists under the caller's region ID"
                    ),
                    witness=_render_path(graph, path, cfg),
                )
            )
            continue
        for succ in graph.succs[node]:
            frontier.append((succ, path + (succ,)))
    return diagnostics


def _storing_boundary_free_path(
    graph: InstrGraph, start: Node, goal: Node, body: Set[str]
) -> Optional[List[Node]]:
    """A boundary-free path ``start -> goal`` within ``body`` blocks that
    contains at least one store-like instruction, or None.  DFS over
    (node, seen-store) states."""
    start_instr = graph.instr(start)
    if start_instr.op == Op.BOUNDARY:
        return None
    stack: List[Tuple[Node, bool, Tuple[Node, ...]]] = [
        (start, False, (start,))
    ]
    visited: Set[Tuple[Node, bool]] = set()
    while stack:
        node, stored, path = stack.pop()
        if (node, stored) in visited:
            continue
        visited.add((node, stored))
        instr = graph.instr(node)
        if instr.op == Op.BOUNDARY:
            continue
        stored = stored or instr.is_store_like()
        if node == goal and stored:
            return [n for n in path if graph.instr(n).is_store_like()] or list(
                path
            )
        for succ in graph.succs[node]:
            if succ[0] in body:
                stack.append((succ, stored, path + (succ,)))
    return None


# ----------------------------------------------------------------------
# R5 — checkpoint-slot safety
# ----------------------------------------------------------------------

def _must_checkpointed(graph: InstrGraph) -> Dict[Node, Optional[FrozenSet[str]]]:
    """Forward must-analysis: ``in[n]`` is the set of registers whose
    checkpoint slot has been written since the last boundary on *every*
    path reaching ``n`` (intersection meet; boundaries reset to empty).
    These are exactly the slots a recovery at the next boundary may
    trust."""
    state: Dict[Node, Optional[FrozenSet[str]]] = {
        n: None for n in graph.reachable
    }
    state[graph.entry] = frozenset()

    def transfer(node: Node, inset: FrozenSet[str]) -> FrozenSet[str]:
        instr = graph.instr(node)
        if instr.op == Op.BOUNDARY:
            return frozenset()
        if instr.op == Op.CHECKPOINT:
            return inset | {instr.srcs[0]}
        return inset

    pending = [graph.entry]
    queued = {graph.entry}
    while pending:
        node = pending.pop()
        queued.discard(node)
        inset = state[node]
        if inset is None:
            continue
        out = transfer(node, inset)
        for succ in graph.succs[node]:
            old = state.get(succ)
            new = out if old is None else (old & out)
            if new != old:
                state[succ] = new
                if succ not in queued:
                    queued.add(succ)
                    pending.append(succ)
    return state


def check_checkpoint_slot_safety(
    graph: InstrGraph,
    plans: Optional[Dict[int, RecoveryPlan]],
    cfg: VerifyConfig,
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    fresh = _must_checkpointed(graph)

    for node in sorted(graph.reachable):
        instr = graph.instr(node)

        # (a) A checkpoint store must reach a boundary before any other
        # significant instruction: its slot write belongs to the region
        # that boundary terminates, so rollback discards slot and region
        # together.  A checkpoint dangling into the next region would
        # clobber the slot while the *previous* plan still owns it.
        if instr.op == Op.CHECKPOINT:
            path = _adjacent_boundary(graph, node, forward=True)
            if path is not None:
                diagnostics.append(
                    Diagnostic(
                        rule="R5",
                        site=_site(graph, node),
                        message=(
                            "checkpoint of %s is not followed by its "
                            "boundary: the slot write escapes the region "
                            "that must own it" % instr.srcs[0]
                        ),
                        witness=_render_path(graph, [node] + path, cfg),
                    )
                )

        # (c) Provable data stores into the checkpoint array clobber
        # slots live regions rely on.
        if instr.op in (Op.STORE, Op.ATOMIC_RMW) and isinstance(
            instr.addr, int
        ):
            word = instr.addr + instr.offset
            if 0 <= word < cfg.checkpoint_words:
                diagnostics.append(
                    Diagnostic(
                        rule="R5",
                        site=_site(graph, node),
                        message=(
                            "data store to word %d lands inside the "
                            "checkpoint array [0, %d)"
                            % (word, cfg.checkpoint_words)
                        ),
                        witness=(graph.render(node),),
                    )
                )

        # (b) Recipe freshness: every slot a recovery plan reads must
        # have been written in the region the plan's boundary ends.
        if instr.op == Op.BOUNDARY and plans is not None:
            plan = plans.get(instr.uid)
            if plan is None:
                continue
            have = fresh.get(node) or frozenset()
            for reg in sorted(plan.recipes):
                recipe = plan.recipes[reg]
                needs: List[str] = []
                if recipe[0] == "ckpt":
                    needs = [reg]
                elif recipe[0] == "expr":
                    needs = [
                        operand[1]
                        for operand in recipe[2]
                        if operand[0] == "ckpt"
                    ]
                for src in needs:
                    if src not in have:
                        diagnostics.append(
                            Diagnostic(
                                rule="R5",
                                site=_site(graph, node),
                                message=(
                                    "recovery plan for %s reads slot of %s, "
                                    "which is not checkpointed on every path "
                                    "through this region: recovery would read "
                                    "a stale value from an older region"
                                    % (reg, src)
                                ),
                                witness=(graph.render(node),),
                                boundary_uid=instr.uid,
                            )
                        )
    return diagnostics
