"""Verifier-backed boundary minimization.

The compiler places boundaries conservatively: every loop header of a
storing loop gets one, even when an inner loop's boundary already cuts
every storing cycle, and threshold repartitioning can leave slack.  The
minimizer deletes every boundary whose removal the verifier *proves*
safe — the store budget keeps its slack (R1), checkpoint coverage is
preserved (R2/R5), and no storing cycle or uncovered irrevocable
operation is exposed (R3/R4) — iterating to a fixpoint.

Every kept candidate is justified: the report records the verifier
diagnostics (witness paths included) that vetoed its removal.

Soundness is inherited, not argued: a removal is accepted only if the
full rule set still passes with **no errors and no new warnings**
relative to the program's own baseline.  The "no new warnings" clause
matters for non-converged compiles, where R1 overshoot is downgraded to
warnings — minimization must not silently widen an already-overshooting
region.

Termination: each accepted removal strictly decreases the boundary
count, which is finite and never increased; each vetoed candidate is
marked and never retried at the same site.  So the fixpoint loop does
at most ``boundaries`` accepting passes.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ...compiler.ir import Function, Op
from ...compiler.pipeline import CompiledProgram
from ..model import Diagnostic, VerifyConfig
from ..verifier import derive_config, verify_function, verify_program
from .report import KeptBoundary, PlacementAction, PlacementReport
from .synthesize import PlacementError

__all__ = ["MINIMIZE_BUGS", "minimize_compiled"]

#: boundary kinds the minimizer never touches: they discharge the R3
#: adjacency obligations (entry/ret/call/io/sync), which no other
#: boundary can discharge for them.
_ANCHORED = frozenset({"entry", "exit", "call", "sync", "io"})

#: deliberate-defect hooks for the mutation self-test
MINIMIZE_BUGS = ("unsafe-merge",)


def _warn_count(diags: List[Diagnostic]) -> int:
    return sum(1 for d in diags if d.severity == "warn")


def _error_count(diags: List[Diagnostic]) -> int:
    return sum(1 for d in diags if d.severity == "error")


def _candidate_sites(func: Function) -> List[Tuple[str, int]]:
    """(label, index) of every removable-in-principle boundary, indices
    descending per block so earlier deletions don't shift later ones."""
    sites: List[Tuple[str, int]] = []
    for label in func.block_order():
        block = func.blocks[label]
        for idx in range(len(block.instrs) - 1, -1, -1):
            instr = block.instrs[idx]
            if instr.op == Op.BOUNDARY and instr.note not in _ANCHORED:
                sites.append((label, idx))
    return sites


def minimize_compiled(
    compiled: CompiledProgram,
    cfg: Optional[VerifyConfig] = None,
    check: bool = True,
    _bug: Optional[str] = None,
) -> PlacementReport:
    """Remove every provably-redundant boundary from ``compiled``,
    **in place**, and return the placement report.

    ``cfg`` defaults to the program's own audit config
    (:func:`~repro.verify.verifier.derive_config`).  ``check=True``
    re-runs the full verifier on the final program and raises
    :class:`PlacementError` if minimization somehow broke it (it cannot,
    unless a ``_bug`` is seeded).
    """
    if _bug is not None and _bug not in MINIMIZE_BUGS:
        raise ValueError("unknown seeded bug %r (want one of %s)"
                         % (_bug, ", ".join(MINIMIZE_BUGS)))
    cfg = cfg or derive_config(compiled)
    prog = compiled.program

    boundaries_before = compiled.stats.boundaries
    checkpoints_before = compiled.stats.checkpoint_stores
    actions: List[PlacementAction] = []
    kept: List[KeptBoundary] = []
    bug_budget = 1 if _bug == "unsafe-merge" else 0
    iterations = 0

    for func in prog.functions.values():
        # Rules are intra-procedural, so candidate trials only re-verify
        # this one function; the cross-function report is settled once
        # at the end.
        baseline = verify_function(func, compiled.plans, cfg)
        base_warns = _warn_count(baseline)
        vetoed: Set[int] = set()
        changed = True
        while changed:
            changed = False
            iterations += 1
            for label, idx in _candidate_sites(func):
                block = func.blocks[label]
                instr = block.instrs[idx]
                if instr.uid in vetoed:
                    continue
                # The boundary and the contiguous checkpoint group
                # feeding it leave together.
                start = idx
                while (
                    start > 0
                    and block.instrs[start - 1].op == Op.CHECKPOINT
                ):
                    start -= 1
                saved = block.instrs[start:idx + 1]
                del block.instrs[start:idx + 1]
                plan = compiled.plans.pop(instr.uid, None)

                diags = verify_function(func, compiled.plans, cfg)
                unsafe = (
                    _error_count(diags) > 0
                    or _warn_count(diags) > base_warns
                )
                if unsafe and bug_budget > 0:
                    # Seeded 'unsafe merge' defect: ignore the first
                    # veto and merge the regions anyway.
                    bug_budget -= 1
                    unsafe = False
                    diags = []
                if unsafe:
                    block.instrs[start:start] = saved
                    if plan is not None:
                        compiled.plans[instr.uid] = plan
                    vetoed.add(instr.uid)
                    kept.append(
                        KeptBoundary(
                            kind=instr.note or "plain",
                            function=func.name,
                            block=label,
                            index=idx,
                            reason="removal vetoed by %s"
                            % ", ".join(
                                sorted({d.rule for d in diags})
                            ),
                            diagnostics=list(diags),
                        )
                    )
                else:
                    actions.append(
                        PlacementAction(
                            action="removed",
                            kind=instr.note or "plain",
                            function=func.name,
                            block=label,
                            index=idx,
                            checkpoints=len(saved) - 1,
                        )
                    )
                    changed = True
                    # Start a fresh scan: indices in this block moved.
                    break

    # Anchored boundaries are kept by construction; record why.
    for func in prog.functions.values():
        for label in func.block_order():
            for idx, instr in enumerate(func.blocks[label].instrs):
                if instr.op == Op.BOUNDARY and instr.note in _ANCHORED:
                    kept.append(
                        KeptBoundary(
                            kind=instr.note,
                            function=func.name,
                            block=label,
                            index=idx,
                            reason="anchored: discharges an R3 "
                            "adjacency obligation",
                        )
                    )

    # Recount instrumentation and rebuild the uid -> site map.
    stats = compiled.stats
    stats.boundaries = 0
    stats.checkpoint_stores = 0
    compiled.boundary_sites.clear()
    for fname, func in prog.functions.items():
        for label in func.block_order():
            for idx, instr in enumerate(func.blocks[label].instrs):
                if instr.op == Op.BOUNDARY:
                    stats.boundaries += 1
                    compiled.boundary_sites[instr.uid] = (fname, label, idx)
                elif instr.op == Op.CHECKPOINT:
                    stats.checkpoint_stores += 1
    stats.minimized_boundaries = boundaries_before - stats.boundaries

    final = verify_program(prog, compiled.plans, cfg)
    report = PlacementReport(
        program=prog.name,
        mode="minimize",
        budget=cfg.threshold,
        boundaries_before=boundaries_before,
        boundaries_after=stats.boundaries,
        checkpoints_before=checkpoints_before,
        checkpoints_after=stats.checkpoint_stores,
        iterations=iterations,
        verify_ok=final.ok,
        actions=actions,
        kept=kept,
    )
    if check and _bug is None and not final.ok:
        raise PlacementError(
            "minimized placement for %r fails verification:\n%s"
            % (prog.name, final.format()),
            final,
        )
    return report
