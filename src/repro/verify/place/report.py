"""The placement report: what the synthesizer/minimizer did and why.

Both engines answer the same two questions for every boundary they
touched or refused to touch:

* **removed/inserted** — the action taken, anchored to a concrete site;
* **kept** — for a minimizer candidate that survived, the verifier
  diagnostics (witness paths included) that vetoed its removal.  Every
  kept boundary is therefore *justified*: the report carries the proof
  obligation its removal would violate.

``PlacementReport.to_json()`` is the artifact ``repro verify
--synthesize/--minimize --report`` writes and the ``verify-placement``
CI job uploads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..model import Diagnostic

__all__ = ["PlacementAction", "KeptBoundary", "PlacementReport"]

#: report schema version
PLACE_VERSION = 1


@dataclass
class PlacementAction:
    """One boundary inserted (synthesis) or removed (minimization)."""

    action: str               # "inserted" | "removed"
    kind: str                 # boundary kind note ("entry", "loop", ...)
    function: str
    block: str
    index: int                # instruction index at the time of action
    checkpoints: int = 0      # checkpoint stores inserted/removed with it

    def to_json(self) -> Dict:
        return {
            "action": self.action,
            "kind": self.kind,
            "function": self.function,
            "block": self.block,
            "index": self.index,
            "checkpoints": self.checkpoints,
        }


@dataclass
class KeptBoundary:
    """A minimizer candidate that survived, with the veto evidence."""

    kind: str
    function: str
    block: str
    index: int
    reason: str               # human summary of why removal is unsafe
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def to_json(self) -> Dict:
        return {
            "kind": self.kind,
            "function": self.function,
            "block": self.block,
            "index": self.index,
            "reason": self.reason,
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }


@dataclass
class PlacementReport:
    """Everything one synthesis or minimization run decided."""

    program: str
    mode: str                 # "synthesize" | "minimize"
    budget: int               # store budget the analysis enforced
    boundaries_before: int
    boundaries_after: int
    checkpoints_before: int
    checkpoints_after: int
    iterations: int = 0      # fixpoint passes until quiescence
    verify_ok: bool = False  # final full-verifier verdict on the output
    actions: List[PlacementAction] = field(default_factory=list)
    kept: List[KeptBoundary] = field(default_factory=list)

    @property
    def removed(self) -> int:
        return sum(1 for a in self.actions if a.action == "removed")

    @property
    def inserted(self) -> int:
        return sum(1 for a in self.actions if a.action == "inserted")

    @property
    def removed_pct(self) -> float:
        if not self.boundaries_before:
            return 0.0
        return 100.0 * self.removed / self.boundaries_before

    def to_json(self) -> Dict:
        return {
            "kind": "repro-placement",
            "version": PLACE_VERSION,
            "program": self.program,
            "mode": self.mode,
            "budget": self.budget,
            "boundaries_before": self.boundaries_before,
            "boundaries_after": self.boundaries_after,
            "checkpoints_before": self.checkpoints_before,
            "checkpoints_after": self.checkpoints_after,
            "inserted": self.inserted,
            "removed": self.removed,
            "removed_pct": round(self.removed_pct, 2),
            "iterations": self.iterations,
            "verify_ok": self.verify_ok,
            "actions": [a.to_json() for a in self.actions],
            "kept": [k.to_json() for k in self.kept],
        }

    def format(self, limit: Optional[int] = 8) -> str:
        lines = [
            "%s %s: boundaries %d -> %d (%+d), checkpoints %d -> %d, "
            "budget %d, %d pass(es), verify %s"
            % (
                self.mode, self.program,
                self.boundaries_before, self.boundaries_after,
                self.boundaries_after - self.boundaries_before,
                self.checkpoints_before, self.checkpoints_after,
                self.budget, self.iterations,
                "ok" if self.verify_ok else "FAILED",
            )
        ]
        shown = self.kept[:limit] if limit is not None else self.kept
        for kept in shown:
            lines.append(
                "  kept %-9s %s:%s:%d  %s"
                % (kept.kind or "plain", kept.function, kept.block,
                   kept.index, kept.reason)
            )
        if limit is not None and len(self.kept) > limit:
            lines.append(
                "  ... %d more kept boundar%s"
                % (len(self.kept) - limit,
                   "y" if len(self.kept) - limit == 1 else "ies")
            )
        return "\n".join(lines)
