"""Static boundary-placement synthesis and minimization.

Two engines built on the verifier's own CFG/liveness machinery —
deliberately independent of the compiler's placement passes, so the
analysis and the thing it audits cannot share a bug:

* :func:`synthesize_placement` — compute a rule-satisfying boundary +
  checkpoint placement for a program with no instrumentation;
* :func:`minimize_compiled` — delete every compiler-placed boundary
  whose removal the verifier proves safe, with witness diagnostics for
  every boundary it keeps.

See DESIGN.md ("Boundary synthesis & minimization") for the soundness
argument and the fixpoint-termination sketch.
"""

from .differential import (
    DIFF_CAMPAIGN_BENCHMARKS,
    DifferentialOutcome,
    DifferentialResult,
    placement_differential,
    trace_digest,
)
from .minimize import MINIMIZE_BUGS, minimize_compiled
from .report import (
    PLACE_VERSION,
    KeptBoundary,
    PlacementAction,
    PlacementReport,
)
from .synthesize import (
    SYNTH_BUGS,
    PlacementError,
    SynthesisResult,
    strip_instrumentation,
    synthesize_placement,
)

__all__ = [
    "DIFF_CAMPAIGN_BENCHMARKS",
    "DifferentialOutcome",
    "DifferentialResult",
    "placement_differential",
    "trace_digest",
    "PLACE_VERSION",
    "SYNTH_BUGS",
    "MINIMIZE_BUGS",
    "PlacementAction",
    "KeptBoundary",
    "PlacementReport",
    "PlacementError",
    "SynthesisResult",
    "strip_instrumentation",
    "synthesize_placement",
    "minimize_compiled",
]
