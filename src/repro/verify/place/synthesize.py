"""Boundary-placement synthesis from the verifier's own dataflow.

Given a program with **no** instrumentation (or one whose instrumentation
is first stripped), compute a boundary + checkpoint placement that
satisfies all five recoverability rules — using only the verifier's
:class:`~repro.verify.graph.InstrGraph` and
:class:`~repro.verify.liveness.InstrLiveness`, deliberately independent
of the compiler's ``boundaries.py``/``checkpoints.py`` machinery, so the
two placements cannot share a bug.

The construction mirrors the proof obligations directly:

1. **Coverage (R3/R4b)** — a boundary at each function entry, before
   every ``ret``, around every callsite and irrevocable I/O, before
   every synchronization operation, and at the header of every storing
   loop.
2. **Budget fixpoint (R1)** — checkpoints are (re)derived from
   instruction-level live-outs, then the R1 forward max-count dataflow
   is run; every store it flags as crossing the budget gets a
   ``threshold`` boundary inserted immediately before it.  Checkpoint
   groups grow when boundaries are added, so the two steps iterate to a
   fixpoint (each pass adds at least one boundary and boundaries never
   exceed store sites, so it terminates; a pass cap declares
   non-convergence exactly like the compiler does).
3. **Plans (R2/R5)** — each boundary's recovery plan is the plain
   ``("ckpt",)`` reload of every register live-out of it, backed by the
   physical checkpoint group sitting immediately before the boundary
   (which is what makes the slots *fresh* in the R5 sense).

The returned program is re-checked by the full verifier; a failed check
raises :class:`PlacementError` (unless a deliberate ``_bug`` is seeded —
the mutation self-test uses those hooks to prove the verifier would
catch a buggy synthesizer).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ...compiler.checkpoints import RecoveryPlan
from ...compiler.ir import Function, Instr, Op, Program
from ...compiler.pipeline import CompiledProgram, CompileStats, clone_program
from ...config import CompilerConfig
from ..graph import InstrGraph
from ..liveness import InstrLiveness
from ..model import VerifyConfig, VerifyReport
from ..rules import check_store_budget
from ..verifier import verify_program
from .report import PlacementAction, PlacementReport

__all__ = [
    "PlacementError",
    "SynthesisResult",
    "strip_instrumentation",
    "synthesize_placement",
]

#: budget-fixpoint pass cap; hitting it declares non-convergence (the
#: same contract as the compiler's region repartitioner)
MAX_BUDGET_PASSES = 32

#: deliberate-defect hooks for the mutation self-test
SYNTH_BUGS = ("off-by-one-budget", "drop-loop-header")


class PlacementError(RuntimeError):
    """Synthesis/minimization could not produce (or prove) a placement."""

    def __init__(
        self, message: str, report: Optional[VerifyReport] = None
    ) -> None:
        super().__init__(message)
        self.report = report


@dataclass
class SynthesisResult:
    """A synthesized placement: runnable output plus the decision log."""

    compiled: CompiledProgram
    report: PlacementReport


def strip_instrumentation(program: Program) -> Program:
    """A clone of ``program`` with every boundary and checkpoint removed
    — the synthesizer's canonical input."""
    prog = clone_program(program)
    for func in prog.functions.values():
        for block in func.blocks.values():
            block.instrs = [
                i for i in block.instrs
                if i.op not in (Op.BOUNDARY, Op.CHECKPOINT)
            ]
    return prog


def _boundary(kind: str) -> Instr:
    return Instr(Op.BOUNDARY, note=kind)


def _insert_coverage(func: Function, actions: List[PlacementAction]) -> None:
    """Pass 1: the R3 adjacency boundaries (entry/exit/call/io/sync)."""

    def note(kind: str, label: str, index: int) -> None:
        actions.append(
            PlacementAction(
                action="inserted", kind=kind, function=func.name,
                block=label, index=index,
            )
        )

    for label, block in func.blocks.items():
        out: List[Instr] = []

        def put(kind: str) -> None:
            # Adjacent boundaries collapse: one boundary satisfies both
            # the preceding instruction's "followed by" and the next
            # instruction's "preceded by" obligation.
            if out and out[-1].op == Op.BOUNDARY:
                return
            note(kind, label, len(out))
            out.append(_boundary(kind))

        for instr in block.instrs:
            if instr.op == Op.RET:
                put("exit")
            elif instr.op == Op.CALL:
                put("call")
            elif instr.op in Op.IRREVOCABLE:
                put("io")
            elif instr.op in Op.SYNC:
                put("sync")
            out.append(instr)
            # Calls and irrevocable I/O must also be *followed* by a
            # boundary (the I/O sits alone in its region).
            if instr.op == Op.CALL:
                put("call")
            elif instr.op in Op.IRREVOCABLE:
                put("io")
        block.instrs = out

    entry = func.blocks[func.entry]
    if not entry.instrs or entry.instrs[0].op != Op.BOUNDARY:
        note("entry", func.entry, 0)
        entry.instrs.insert(0, _boundary("entry"))


def _insert_loop_headers(
    func: Function, actions: List[PlacementAction]
) -> None:
    """Pass 1b: a boundary at the header of every storing loop."""
    graph = InstrGraph(func)
    for tail, head in graph.back_edges():
        body = graph.loop_body(tail, head)
        if not any(
            instr.op in (Op.STORE, Op.ATOMIC_RMW)
            for lbl in body
            for instr in func.blocks[lbl].instrs
        ):
            continue
        header = func.blocks[head]
        if any(i.op == Op.BOUNDARY for i in header.instrs):
            continue
        actions.append(
            PlacementAction(
                action="inserted", kind="loop", function=func.name,
                block=head, index=0,
            )
        )
        header.instrs.insert(0, _boundary("loop"))


def _reinsert_checkpoints(func: Function) -> None:
    """Derive checkpoint groups from the verifier's instruction-level
    live-outs: one checkpoint per live-out register, immediately before
    its boundary (which anchors R5 freshness and slot ownership)."""
    for block in func.blocks.values():
        block.instrs = [i for i in block.instrs if i.op != Op.CHECKPOINT]
    graph = InstrGraph(func)
    live = InstrLiveness(graph)
    for label, block in func.blocks.items():
        out: List[Instr] = []
        for idx, instr in enumerate(block.instrs):
            if instr.op == Op.BOUNDARY:
                for reg in sorted(live.live_out.get((label, idx), ())):
                    out.append(Instr(Op.CHECKPOINT, srcs=(reg,), note=reg))
            out.append(instr)
        block.instrs = out


def _budget_cfg(budget: int, checkpoint_words: int) -> VerifyConfig:
    return VerifyConfig(
        threshold=budget,
        wpq_entries=max(2 * budget, budget + 1),
        allow_overshoot=False,
        checkpoint_words=checkpoint_words,
    )


def _enforce_budget(
    func: Function,
    budget: int,
    checkpoint_words: int,
    actions: List[PlacementAction],
) -> Tuple[int, bool]:
    """Pass 2: iterate checkpoint derivation + R1 dataflow, inserting a
    ``threshold`` boundary before every store the dataflow flags, until
    quiescent.  Returns (passes, converged)."""
    cfg = _budget_cfg(budget, checkpoint_words)
    for iteration in range(1, MAX_BUDGET_PASSES + 1):
        _reinsert_checkpoints(func)
        graph = InstrGraph(func)
        flagged = check_store_budget(graph, cfg)
        if not flagged:
            return iteration, True
        sites: Dict[str, Set[int]] = {}
        for diag in flagged:
            sites.setdefault(diag.site.block, set()).add(diag.site.index)
        inserted = False
        for label in sorted(sites):
            block = func.blocks[label]
            for idx in sorted(sites[label], reverse=True):
                at = idx
                if block.instrs[idx].op == Op.CHECKPOINT:
                    # Never split a checkpoint group: cut between the
                    # preceding code and the whole group, so the group
                    # stays adjacent to the boundary it feeds (R5).
                    while (
                        at > 0
                        and block.instrs[at - 1].op == Op.CHECKPOINT
                    ):
                        at -= 1
                if at == 0 or block.instrs[at - 1].op == Op.BOUNDARY:
                    # A region consisting of nothing but one checkpoint
                    # group already exceeds the budget: no cut can fix
                    # it.  Declare non-convergence, as the compiler's
                    # repartitioner does for unsplittable groups.
                    continue
                actions.append(
                    PlacementAction(
                        action="inserted", kind="threshold",
                        function=func.name, block=label, index=at,
                    )
                )
                block.instrs.insert(at, _boundary("threshold"))
                inserted = True
        if not inserted:
            return iteration, False
    return MAX_BUDGET_PASSES, False


def _collect_plans(func: Function, plans: Dict[int, RecoveryPlan]) -> None:
    """Pass 3: one plain slot-reload recipe per live-out register of
    each boundary, matching the physical checkpoint group before it."""
    graph = InstrGraph(func)
    live = InstrLiveness(graph)
    for label, block in func.blocks.items():
        for idx, instr in enumerate(block.instrs):
            if instr.op != Op.BOUNDARY:
                continue
            recipes = {
                reg: ("ckpt",)
                for reg in sorted(live.live_out.get((label, idx), ()))
            }
            plans[instr.uid] = RecoveryPlan(instr.uid, recipes)


def _drop_loop_headers(func: Function) -> None:
    """The seeded 'dropped loop-header boundary' defect: a buggy late
    cleanup pass deleting every loop-kind boundary after the fixpoint."""
    for block in func.blocks.values():
        out: List[Instr] = []
        for instr in block.instrs:
            if instr.op == Op.BOUNDARY and instr.note == "loop":
                while out and out[-1].op == Op.CHECKPOINT:
                    out.pop()
                continue
            out.append(instr)
        block.instrs = out


def synthesize_placement(
    program: Program,
    config: Optional[CompilerConfig] = None,
    budget: Optional[int] = None,
    check: bool = True,
    _bug: Optional[str] = None,
) -> SynthesisResult:
    """Compute a verified boundary placement for ``program``.

    The input's existing instrumentation (if any) is stripped first, so
    both raw ``.lir`` programs and compiler output are accepted.
    ``budget`` is the R1 store budget (defaults to the config's
    threshold).  ``check=True`` re-verifies the output with the full
    verifier and raises :class:`PlacementError` on any error.  ``_bug``
    seeds a deliberate defect (see :data:`SYNTH_BUGS`) for the mutation
    self-test; it implies no final check by the synthesizer itself.
    """
    if _bug is not None and _bug not in SYNTH_BUGS:
        raise ValueError("unknown seeded bug %r (want one of %s)"
                         % (_bug, ", ".join(SYNTH_BUGS)))
    config = config or CompilerConfig()
    budget = budget if budget is not None else config.store_threshold
    effective = budget + 1 if _bug == "off-by-one-budget" else budget
    checkpoint_words = (
        Program.CHECKPOINT_WORDS_PER_CORE * Program.MAX_CONTEXTS
    )

    prog = strip_instrumentation(program)
    actions: List[PlacementAction] = []
    plans: Dict[int, RecoveryPlan] = {}
    passes = 0
    converged = True
    for func in prog.functions.values():
        _insert_coverage(func, actions)
        _insert_loop_headers(func, actions)
        fn_passes, fn_converged = _enforce_budget(
            func, effective, checkpoint_words, actions
        )
        passes = max(passes, fn_passes)
        converged = converged and fn_converged
        if _bug == "drop-loop-header":
            _drop_loop_headers(func)
        # Re-derive groups once more: a pass-cap exit (or the seeded
        # defect) can leave boundaries without their checkpoint group.
        _reinsert_checkpoints(func)
        _collect_plans(func, plans)

    stats = CompileStats(
        functions=len(prog.functions), converged=converged,
    )
    # The synthesis budget *is* the output's store threshold, so
    # ``derive_config`` audits the result against the right bound.
    out_config = (
        config
        if config.store_threshold == budget
        else dataclasses.replace(config, store_threshold=budget)
    )
    compiled = CompiledProgram(
        program=prog, plans=plans, stats=stats, config=out_config,
    )
    for fname, func in prog.functions.items():
        for label in func.block_order():
            for idx, instr in enumerate(func.blocks[label].instrs):
                if instr.op == Op.BOUNDARY:
                    stats.boundaries += 1
                    compiled.boundary_sites[instr.uid] = (fname, label, idx)
                elif instr.op == Op.CHECKPOINT:
                    stats.checkpoint_stores += 1
                elif instr.op in (Op.STORE, Op.ATOMIC_RMW):
                    stats.data_stores += 1
    prog.validate()

    cfg = VerifyConfig(
        threshold=budget,
        wpq_entries=max(2 * budget, budget + 1),
        allow_overshoot=not converged,
        checkpoint_words=checkpoint_words,
    )
    verify_report = verify_program(prog, plans, cfg)
    report = PlacementReport(
        program=prog.name,
        mode="synthesize",
        budget=budget,
        boundaries_before=0,
        boundaries_after=stats.boundaries,
        checkpoints_before=0,
        checkpoints_after=stats.checkpoint_stores,
        iterations=passes,
        verify_ok=not verify_report.errors(),
        actions=actions,
    )
    if check and _bug is None and verify_report.errors():
        raise PlacementError(
            "synthesized placement for %r fails verification:\n%s"
            % (prog.name, verify_report.format()),
            verify_report,
        )
    return SynthesisResult(compiled=compiled, report=report)
