"""Minimization cost/benefit measurement.

For each benchmark: compile normally, minimize, and measure both
variants through the same timing model ``repro bench`` uses — the
LightWSP slowdown over the memory-mode baseline.  The artifact records,
per program:

* the static footprint delta (boundaries, instrumentation stores,
  removal percentage), and
* the slowdown delta (minimization can only remove PC-checkpointing
  stores and checkpoints, so the delta is never positive beyond noise —
  and the timing model has no noise), and
* for the deterministic single-threaded programs, the filtered trace
  digests of both variants, which must be byte-identical: minimization
  does not touch program semantics.

``repro verify --minimize --bench PATH`` writes it; the committed copy
lives at ``benchmarks/results/placement_minimize.json``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...baselines import MEMORY_MODE
from ...compiler.interp import run_single, run_threads
from ...compiler.ir import Program
from ...compiler.pipeline import CompiledProgram, compile_program
from ...config import DEFAULT_CONFIG, CompilerConfig
from ...sim.engine import SchemePolicy, simulate
from ...workloads.suite import BENCHMARKS
from .differential import trace_digest
from .minimize import minimize_compiled
from .report import PLACE_VERSION

__all__ = ["PLACEMENT_BENCH_BENCHMARKS", "placement_bench"]

#: programs with provably-removable boundaries (nested storing loops
#: whose inner boundary already cuts every storing cycle) plus two
#: controls where the compiler's placement is already minimal
PLACEMENT_BENCH_BENCHMARKS: Tuple[str, ...] = (
    "lbm", "ssca2", "mg", "cg", "milc", "bzip2", "mcf",
)

_MAX_TRACE_STEPS = 12_000_000


Entries = List[Tuple[str, Tuple[int, ...]]]


def _trace(program: "Program", entries: Entries) -> list:
    if len(entries) == 1:
        fname, args = entries[0]
        events, _ = run_single(
            program, fname, args=args, max_steps=_MAX_TRACE_STEPS
        )
        return events
    events, _ = run_threads(program, entries, max_steps=_MAX_TRACE_STEPS)
    return events


def _slowdown(compiled: CompiledProgram, entries: Entries,
              base_cycles: float, policy: "SchemePolicy") -> float:
    res = simulate(_trace(compiled.program, entries), DEFAULT_CONFIG, policy)
    return res.cycles / base_cycles


def placement_bench(
    benchmarks: Optional[Tuple[str, ...]] = None,
    config: Optional[CompilerConfig] = None,
    scale: float = 0.05,
) -> Dict:
    """Measure minimization's static and timing effect; JSON payload."""
    from ...runtime import get_backend

    config = config or CompilerConfig()
    policy = get_backend(None).policy  # lightwsp-lrpo
    rows: List[Dict] = []
    for name in benchmarks or PLACEMENT_BENCH_BENCHMARKS:
        bench = BENCHMARKS[name]
        program = bench.build(scale=scale)
        entries = bench.entries()
        base_cycles = simulate(
            _trace(program, entries), DEFAULT_CONFIG, MEMORY_MODE
        ).cycles

        base = compile_program(program, config, verify=False)
        minimized = compile_program(program, config, verify=False)
        mreport = minimize_compiled(minimized)

        slow_base = _slowdown(base, entries, base_cycles, policy)
        slow_min = _slowdown(minimized, entries, base_cycles, policy)
        digests = None
        if len(entries) == 1:
            digests = {
                "base": trace_digest(base),
                "minimized": trace_digest(minimized),
            }
        rows.append({
            "benchmark": name,
            "boundaries_base": base.stats.boundaries,
            "boundaries_minimized": minimized.stats.boundaries,
            "removed": mreport.removed,
            "removed_pct": round(mreport.removed_pct, 2),
            "instrumentation_stores_base":
                base.stats.instrumentation_stores,
            "instrumentation_stores_minimized":
                minimized.stats.instrumentation_stores,
            "slowdown_base": round(slow_base, 6),
            "slowdown_minimized": round(slow_min, 6),
            "slowdown_delta": round(slow_min - slow_base, 6),
            "trace_digests": digests,
            "digests_match": (
                None if digests is None
                else digests["base"] == digests["minimized"]
            ),
        })
    return {
        "kind": "repro-placement-bench",
        "version": PLACE_VERSION,
        "scale": scale,
        "threshold": config.store_threshold,
        "policy": policy.name,
        "rows": rows,
    }
