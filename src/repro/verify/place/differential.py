"""Differential crash-campaign validation of placement changes.

Static proof (the verifier) says a synthesized or minimized placement
*should* be recoverable; this module checks it *is*, dynamically, the
same way :mod:`repro.faults` audits the compiler:

* **image oracle** — the failure-free persisted data image of the
  variant equals the baseline's (boundaries and checkpoints are
  instrumentation; the acked data state must not move);
* **crash oracle** — a seeded boundary-adjacent crash sweep over the
  variant recovers to its own reference image at every probe point
  (zero acked-state divergence);
* **trace oracle** — the variant's crash-free instruction trace,
  filtered of boundary/checkpoint events, is byte-identical to the
  baseline's: placement must not perturb program semantics at all.

Only the strictly deterministic single-threaded campaign subset is
eligible, for the same reason the fault campaign excludes multithreaded
workloads: recovery legitimately perturbs interleavings there.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...compiler.interp import run_single
from ...compiler.pipeline import CompiledProgram, compile_program
from ...config import CompilerConfig
from ...core.failure import crash_sweep, reference_pm
from ...trace import EK
from .minimize import minimize_compiled
from .synthesize import synthesize_placement

__all__ = [
    "DIFF_CAMPAIGN_BENCHMARKS",
    "DifferentialOutcome",
    "DifferentialResult",
    "placement_differential",
    "trace_digest",
]

#: deterministic single-threaded subset eligible for the strict oracles
#: (the fault campaign's own eligibility list, plus the store programs)
DIFF_CAMPAIGN_BENCHMARKS: Tuple[str, ...] = (
    "bzip2", "hmmer", "namd", "dsjeng", "xz",
    "store-ycsb-a", "store-crud",
)

#: instrumentation-only event kinds excluded from the trace oracle
_INSTRUMENTATION_KINDS = frozenset({EK.BOUNDARY, EK.CHECKPOINT})


def trace_digest(compiled: CompiledProgram, max_steps: int = 2_000_000) -> str:
    """SHA-256 over the crash-free single-thread trace with boundary and
    checkpoint events filtered out — the placement-independent view of
    what the program *does*."""
    events, _ = run_single(compiled.program, max_steps=max_steps)
    digest = hashlib.sha256()
    for ev in events:
        if ev.kind in _INSTRUMENTATION_KINDS:
            continue
        digest.update(
            ("%s|%s|%s|%s|%s\n"
             % (ev.kind, ev.addr, ev.tid, ev.lock_id, ev.payload)).encode()
        )
    return digest.hexdigest()


@dataclass
class DifferentialOutcome:
    """One benchmark's verdict."""

    name: str
    mode: str
    boundaries_base: int
    boundaries_variant: int
    image_match: bool
    digest_match: bool
    divergent_points: List[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.image_match
            and self.digest_match
            and not self.divergent_points
        )

    def to_json(self) -> Dict:
        return {
            "name": self.name,
            "mode": self.mode,
            "boundaries_base": self.boundaries_base,
            "boundaries_variant": self.boundaries_variant,
            "image_match": self.image_match,
            "digest_match": self.digest_match,
            "divergent_points": list(self.divergent_points),
            "ok": self.ok,
        }


@dataclass
class DifferentialResult:
    """The whole campaign."""

    mode: str
    seed: int
    outcomes: List[DifferentialOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def violations(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    def to_json(self) -> Dict:
        return {
            "kind": "repro-placement-differential",
            "mode": self.mode,
            "seed": self.seed,
            "ok": self.ok,
            "violations": self.violations,
            "outcomes": [o.to_json() for o in self.outcomes],
        }

    def format(self) -> str:
        lines = []
        for o in self.outcomes:
            lines.append(
                "%-14s %-10s boundaries %d -> %d  image=%s digest=%s "
                "divergent=%d  %s"
                % (o.name, o.mode, o.boundaries_base, o.boundaries_variant,
                   "ok" if o.image_match else "FAIL",
                   "ok" if o.digest_match else "FAIL",
                   len(o.divergent_points),
                   "ok" if o.ok else "VIOLATION")
            )
        lines.append(
            "differential %s: %d benchmark(s), %d violation(s)"
            % (self.mode, len(self.outcomes), self.violations)
        )
        return "\n".join(lines)


def placement_differential(
    benchmarks: Optional[Tuple[str, ...]] = None,
    mode: str = "minimize",
    config: Optional[CompilerConfig] = None,
    scale: float = 0.01,
    seed: int = 0,
    max_points: Optional[int] = 48,
) -> DifferentialResult:
    """Run the three oracles over each benchmark.  ``mode`` picks the
    variant: ``"minimize"`` (compile then minimize) or ``"synthesize"``
    (placement built from scratch at the config's threshold)."""
    if mode not in ("minimize", "synthesize"):
        raise ValueError("mode must be 'minimize' or 'synthesize'")
    from ...faults.campaign import resolve_benchmark

    config = config or CompilerConfig()
    result = DifferentialResult(mode=mode, seed=seed)
    for name in benchmarks or DIFF_CAMPAIGN_BENCHMARKS:
        program = resolve_benchmark(name).build(scale=scale)
        base = compile_program(program, config, verify=False)
        if mode == "minimize":
            variant = compile_program(program, config, verify=False)
            minimize_compiled(variant)
        else:
            # Synthesize over the baseline's *compiled body* (stripped of
            # its instrumentation), not the raw program: the compiler
            # also unrolls and folds, and the oracle must compare the
            # placement change alone, not those body transforms.
            variant = synthesize_placement(
                base.program, config, budget=config.store_threshold
            ).compiled

        base_image = reference_pm(base, schedule_seed=seed)
        variant_image = reference_pm(variant, schedule_seed=seed)
        divergent = crash_sweep(
            variant, schedule_seed=seed, max_points=max_points
        )
        result.outcomes.append(
            DifferentialOutcome(
                name=name,
                mode=mode,
                boundaries_base=base.stats.boundaries,
                boundaries_variant=variant.stats.boundaries,
                image_match=base_image == variant_image,
                digest_match=trace_digest(base) == trace_digest(variant),
                divergent_points=divergent,
            )
        )
    return result
