"""Mutation-based self-validation of the verifier.

A checker that flags nothing is indistinguishable from a checker that
checks nothing.  Mirroring the defense-off modes of :mod:`repro.faults`,
this harness compiles a known-good target program, seeds exactly one
violation per rule — a compiler bug in miniature — and asserts the
verifier reports that rule with a concrete witness:

* R1: a run of ``threshold + 1`` extra stores spliced into one region
  (a broken region partitioner),
* R2: a live register silently dropped from a boundary's plan and its
  checkpoint store removed (broken checkpoint insertion),
* R3: the exit boundary stripped from a ``ret`` (broken placement),
* R4: the boundary removed from a storing loop header (a region left
  spanning the back edge, as a broken unroller would),
* R5: a plan still reloading a slot whose checkpoint store was deleted
  (broken pruning: the recipe survives, the store does not).

``repro verify --self-test`` runs this in CI: a rule going blind fails
the build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..compiler.builder import FunctionBuilder
from ..compiler.ir import BasicBlock, Function, Instr, Op, Program
from ..compiler.pipeline import CompiledProgram, compile_program
from ..config import CompilerConfig
from .graph import InstrGraph
from .liveness import InstrLiveness
from .model import Diagnostic
from .verifier import verify_compiled

__all__ = [
    "MutationOutcome",
    "mutation_catalog",
    "self_validate",
    "placement_catalog",
    "validate_placement",
]

#: small threshold so the target compiles to several regions
SELF_TEST_THRESHOLD = 6

#: budget for the off-by-one placement defect: tight enough that one
#: extra store per region actually crosses the audit threshold
PLACEMENT_BUG_BUDGET = 3


@dataclass
class MutationOutcome:
    """Result of seeding one rule's violation and re-verifying."""

    rule: str
    description: str
    seeded_at: str
    caught: bool
    with_witness: bool
    fired_rules: Tuple[str, ...]
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.caught and self.with_witness


def _target_program() -> Program:
    """A compact program exercising every surface the rules inspect: a
    storing counted loop with a non-reconstructible live accumulator, a
    callsite, a fence, and straight-line stores."""
    prog = Program("verify-target")
    a = prog.array("a", 64)

    helper = FunctionBuilder(prog, "helper", params=("r1",))
    helper.block("entry")
    helper.mul("r2", "r1", 3)
    helper.store("r2", "r1", base=a)
    helper.ret("r2")
    helper.build()

    fb = FunctionBuilder(prog, "main")
    fb.block("entry")
    fb.const("r1", 0)
    fb.const("r6", 0)
    fb.br("loop")
    fb.block("loop")
    # r6 accumulates loaded data: not reconstructible, so its checkpoint
    # survives pruning (the R2/R5 mutators need a real "ckpt" recipe).
    fb.load("r5", "r1", base=a)
    fb.add("r6", "r6", "r5")
    fb.store("r6", "r1", base=a)
    fb.add("r2", "r1", 1)
    fb.store("r2", "r1", base=a + 32)
    fb.add("r1", "r1", 1)
    fb.lt("r3", "r1", 12)
    fb.cbr("r3", "loop", "mid")
    fb.block("mid")
    fb.call("helper", args=("r6",), ret="r4")
    fb.fence()
    fb.store("r4", 63, base=a)
    fb.store("r6", 62, base=a)
    fb.ret()
    fb.build()
    return prog


# ----------------------------------------------------------------------
# mutators: CompiledProgram -> description of the seeded defect site
# ----------------------------------------------------------------------

def _mutate_r1(compiled: CompiledProgram) -> str:
    threshold = compiled.config.store_threshold
    for func in compiled.program.functions.values():
        for block in func.blocks.values():
            for i, instr in enumerate(block.instrs):
                if instr.op == Op.STORE:
                    burst = [
                        Instr(Op.STORE, srcs=instr.srcs, addr=instr.addr,
                              offset=instr.offset)
                        for _ in range(threshold + 1)
                    ]
                    block.instrs[i:i] = burst
                    return "%d-store burst before %s:%s:%d" % (
                        threshold + 1, func.name, block.label, i
                    )
    raise RuntimeError("target program has no data store to amplify")


def _live_ckpt_site(
    compiled: CompiledProgram,
) -> Tuple[Function, BasicBlock, int, Instr, str]:
    """(func, block, ckpt_index, boundary, reg): a physically checkpointed
    register that is live-out of its boundary by the verifier's own
    liveness and whose plan recipe is a plain slot reload."""
    for func in compiled.program.functions.values():
        graph = InstrGraph(func)
        live = InstrLiveness(graph)
        for node in sorted(graph.reachable):
            instr = graph.instr(node)
            if instr.op != Op.BOUNDARY:
                continue
            plan = compiled.plans.get(instr.uid)
            if plan is None:
                continue
            block = func.blocks[node[0]]
            for reg in sorted(live.live_out[node]):
                if plan.recipes.get(reg) != ("ckpt",):
                    continue
                for j in range(node[1] - 1, -1, -1):
                    prev = block.instrs[j]
                    if prev.op == Op.BOUNDARY:
                        break
                    if prev.op == Op.CHECKPOINT and prev.srcs[0] == reg:
                        return func, block, j, instr, reg
    raise RuntimeError("no live checkpointed register found in target")


def _mutate_r2(compiled: CompiledProgram) -> str:
    func, block, ckpt_idx, boundary, reg = _live_ckpt_site(compiled)
    del compiled.plans[boundary.uid].recipes[reg]
    block.instrs.pop(ckpt_idx)
    return "dropped live register %s from plan of boundary at %s:%s" % (
        reg, func.name, block.label
    )


def _mutate_r3(compiled: CompiledProgram) -> str:
    for func in compiled.program.functions.values():
        for block in func.blocks.values():
            instrs = block.instrs
            if (
                len(instrs) >= 2
                and instrs[-1].op == Op.RET
                and instrs[-2].op == Op.BOUNDARY
            ):
                instrs.pop(-2)
                return "stripped exit boundary before ret at %s:%s" % (
                    func.name, block.label
                )
    raise RuntimeError("no exit boundary found in target")


def _mutate_r4(compiled: CompiledProgram) -> str:
    for func in compiled.program.functions.values():
        graph = InstrGraph(func)
        for tail, head in graph.back_edges():
            body = graph.loop_body(tail, head)
            if not any(
                func.blocks[lbl].store_count() > 0 for lbl in body
            ):
                continue
            for lbl in sorted(body):
                block = func.blocks[lbl]
                for i, instr in enumerate(block.instrs):
                    if instr.op == Op.BOUNDARY:
                        block.instrs.pop(i)
                        compiled.plans.pop(instr.uid, None)
                        return (
                            "removed boundary %s from storing loop %s->%s "
                            "at %s:%s" % (instr.note, tail, head,
                                          func.name, lbl)
                        )
    raise RuntimeError("no storing loop with a boundary found in target")


def _mutate_r5(compiled: CompiledProgram) -> str:
    func, block, ckpt_idx, boundary, reg = _live_ckpt_site(compiled)
    # Keep the recipe (the plan still promises a slot reload) but delete
    # the store that would have made the slot fresh.
    block.instrs.pop(ckpt_idx)
    return (
        "deleted checkpoint store of %s while its plan at %s:%s still "
        "reloads the slot" % (reg, func.name, block.label)
    )


def mutation_catalog() -> Dict[str, Tuple[str, Callable[[CompiledProgram], str]]]:
    """rule -> (defect description, mutator)."""
    return {
        "R1": ("region over WPQ/2 store budget", _mutate_r1),
        "R2": ("live register missing from recovery plan", _mutate_r2),
        "R3": ("ret without exit boundary", _mutate_r3),
        "R4": ("region spanning a storing back edge", _mutate_r4),
        "R5": ("plan reloads a slot never checkpointed", _mutate_r5),
    }


def placement_catalog() -> Dict[str, Tuple[Tuple[str, ...], str]]:
    """Seeded placement-engine defects -> (rules expected to fire,
    description).  Complements :func:`mutation_catalog`: those defects
    are seeded into *compiler output*; these are seeded into the
    synthesis/minimization engines themselves, proving the verifier
    gates the placement tooling too."""
    return {
        "off-by-one-budget": (
            ("R1",),
            "synthesizer enforces budget+1 stores per region",
        ),
        "drop-loop-header": (
            ("R3", "R4"),
            "cleanup pass deletes storing-loop header boundaries",
        ),
        "unsafe-merge": (
            ("R1", "R2", "R3", "R4", "R5"),
            "minimizer merges regions past a verifier veto",
        ),
    }


def validate_placement(
    budget: int = SELF_TEST_THRESHOLD,
) -> Dict[str, MutationOutcome]:
    """Seed each placement-engine defect and check the verifier catches
    it.  Clean synthesis and clean minimization of the target must pass
    first, or the harness itself is broken."""
    # Imported here: repro.verify.place builds on this package's rules
    # and importing it at module scope would be circular in spirit (the
    # placement engines are the thing under test).
    from .place import minimize_compiled, synthesize_placement

    for clean_budget in (budget, PLACEMENT_BUG_BUDGET):
        clean = synthesize_placement(_target_program(), budget=clean_budget)
        base = verify_compiled(clean.compiled)
        if not base.ok:
            raise RuntimeError(
                "clean synthesis (budget %d) does not verify:\n%s"
                % (clean_budget, base.format())
            )
    config = CompilerConfig(store_threshold=budget)
    clean_min = compile_program(_target_program(), config, verify=False)
    if not minimize_compiled(clean_min).verify_ok:
        raise RuntimeError("clean minimization does not verify")

    outcomes: Dict[str, MutationOutcome] = {}
    catalog = placement_catalog()
    for name in sorted(catalog):
        expected, description = catalog[name]
        if name == "unsafe-merge":
            compiled = compile_program(_target_program(), config, verify=False)
            minimize_compiled(compiled, _bug=name)
            seeded_at = "minimizer ignored its first removal veto"
        else:
            bug_budget = (
                PLACEMENT_BUG_BUDGET if name == "off-by-one-budget" else budget
            )
            compiled = synthesize_placement(
                _target_program(), budget=bug_budget, _bug=name
            ).compiled
            seeded_at = "synthesizer ran with seeded defect %r" % name
        report = verify_compiled(compiled)
        hits = [
            d for d in report.diagnostics
            if d.rule in expected and d.severity == "error"
        ]
        outcomes[name] = MutationOutcome(
            rule="/".join(expected[:2]) if len(expected) < 3 else "any",
            description=description,
            seeded_at=seeded_at,
            caught=bool(hits),
            with_witness=any(d.witness for d in hits),
            fired_rules=tuple(sorted({d.rule for d in report.diagnostics})),
            diagnostics=report.diagnostics,
        )
    return outcomes


def self_validate(
    threshold: int = SELF_TEST_THRESHOLD,
    rules: Optional[Tuple[str, ...]] = None,
) -> Dict[str, MutationOutcome]:
    """Seed each rule's violation into a fresh compile of the target and
    check the verifier catches it with a witness.  The unmutated target
    must verify clean first, or the harness itself is broken."""
    config = CompilerConfig(store_threshold=threshold)
    baseline = verify_compiled(compile_program(_target_program(), config))
    if not baseline.ok:
        raise RuntimeError(
            "self-test target does not verify clean:\n" + baseline.format()
        )

    outcomes: Dict[str, MutationOutcome] = {}
    catalog = mutation_catalog()
    for rule in rules or tuple(sorted(catalog)):
        description, mutator = catalog[rule]
        compiled = compile_program(_target_program(), config)
        seeded_at = mutator(compiled)
        report = verify_compiled(compiled)
        hits = [
            d for d in report.diagnostics
            if d.rule == rule and d.severity == "error"
        ]
        outcomes[rule] = MutationOutcome(
            rule=rule,
            description=description,
            seeded_at=seeded_at,
            caught=bool(hits),
            with_witness=any(d.witness for d in hits),
            fired_rules=tuple(
                sorted({d.rule for d in report.diagnostics})
            ),
            diagnostics=report.diagnostics,
        )
    return outcomes
