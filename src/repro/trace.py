"""The single trace-event schema shared by every layer.

Two kinds of trace live here, historically split between
``repro.sim.trace`` and ``repro.faults.trace`` (both remain as
compatibility re-export shims):

* **dynamic instruction events** (:class:`TraceEvent`, :class:`EK`) — the
  interface between the compiler's execution (or a synthetic workload
  generator) and the timing simulator.  One event per retired
  instruction, at the abstraction level the timing model needs:
  instruction class, byte address for memory operations, and
  region-boundary markers.  Addresses are in *bytes* (the IR is
  word-addressed; the interpreter multiplies by the 8-byte word size) so
  the cache models can index 64 B blocks directly.

* **append-only JSONL run artifacts** (:class:`JsonlTrace`,
  :class:`NullTrace`) — one JSON object per line, in the order things
  happened, never rewritten.  Fault campaigns use it as their replay
  artifact: it records each scenario's benchmark, fault schedule, defense
  switches, and outcome (violation flag + a stable hash of the final
  persisted image), so ``repro faults replay <trace>`` can re-run every
  scenario and verify the outcomes reproduce bit-for-bit.

The runtime layer (:mod:`repro.runtime`) emits both kinds through this
module, so backend-agnostic tools see one schema.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

__all__ = [
    "EK",
    "TraceEvent",
    "TraceStats",
    "count_events",
    "TRACE_SCHEMA_VERSION",
    "TRACE_SCHEMA_MAJOR",
    "JsonlTrace",
    "FaultTrace",
    "NullTrace",
    "TraceSchemaError",
    "TraceParseError",
    "TruncatedTraceError",
    "TruncatedTraceWarning",
    "set_default_strict",
    "image_hash",
    "read_trace",
    "iter_scenarios",
]

#: the trace.v1 contract version stamped into every JSONL record (see
#: :mod:`repro.obs.schema` for the event catalogue and version rules)
TRACE_SCHEMA_VERSION = "1.1"
TRACE_SCHEMA_MAJOR = 1


# ----------------------------------------------------------------------
# dynamic instruction events
# ----------------------------------------------------------------------

class EK:
    """Trace event kinds."""

    ALU = "alu"                # any non-memory instruction
    LOAD = "load"
    STORE = "store"            # a data store (persist-path entry)
    CHECKPOINT = "ckpt"        # compiler checkpoint store (persist-path entry)
    BOUNDARY = "bdry"          # region end: PC-checkpointing store + broadcast
    ATOMIC = "atomic"          # atomic RMW: load + store + boundary forced earlier
    FENCE = "fence"
    LOCK = "lock"
    UNLOCK = "unlock"
    IO = "io"                  # irrevocable external operation
    HALT = "halt"              # thread finished

    #: kinds that place an 8 B entry on the persist path
    STORE_LIKE = frozenset({STORE, CHECKPOINT, BOUNDARY, ATOMIC})
    #: kinds that read memory through the regular (cache) path
    LOAD_LIKE = frozenset({LOAD, ATOMIC})


@dataclass
class TraceEvent:
    """One dynamic instruction."""

    kind: str
    addr: int = 0              # byte address (memory events only)
    tid: int = 0               # hardware thread
    lock_id: int = 0           # LOCK/UNLOCK only; IO: device id
    boundary_uid: int = -1     # BOUNDARY only: static boundary identity
    payload: int = 0           # IO only: the value written to the device

    def is_store_like(self) -> bool:
        return self.kind in EK.STORE_LIKE

    def is_load_like(self) -> bool:
        return self.kind in EK.LOAD_LIKE


@dataclass
class TraceStats:
    """Aggregate counts over a trace (feeds §V-G3)."""

    instructions: int = 0
    loads: int = 0
    data_stores: int = 0
    checkpoint_stores: int = 0
    boundaries: int = 0
    atomics: int = 0

    @property
    def persist_entries(self) -> int:
        return (
            self.data_stores
            + self.checkpoint_stores
            + self.boundaries
            + self.atomics
        )

    @property
    def instrumentation(self) -> int:
        return self.checkpoint_stores + self.boundaries

    def instructions_per_region(self) -> float:
        return self.instructions / self.boundaries if self.boundaries else 0.0

    def stores_per_region(self) -> float:
        if not self.boundaries:
            return 0.0
        return (self.data_stores + self.checkpoint_stores + self.atomics) / (
            self.boundaries
        )


def count_events(events: Iterable[TraceEvent]) -> TraceStats:
    stats = TraceStats()
    for ev in events:
        if ev.kind == EK.HALT:
            continue
        stats.instructions += 1
        if ev.kind == EK.LOAD:
            stats.loads += 1
        elif ev.kind == EK.STORE:
            stats.data_stores += 1
        elif ev.kind == EK.CHECKPOINT:
            stats.checkpoint_stores += 1
        elif ev.kind == EK.BOUNDARY:
            stats.boundaries += 1
        elif ev.kind == EK.ATOMIC:
            stats.atomics += 1
    return stats


# ----------------------------------------------------------------------
# append-only JSONL run artifacts
# ----------------------------------------------------------------------

def image_hash(image: Dict[int, int]) -> str:
    """A stable fingerprint of a persisted data image."""
    digest = hashlib.sha256()
    for word in sorted(image):
        digest.update(("%d:%d;" % (word, image[word])).encode())
    return digest.hexdigest()[:16]


class TraceSchemaError(ValueError):
    """A strict-mode :class:`JsonlTrace` was asked to emit a record that
    violates the trace.v1 event catalogue (:mod:`repro.obs.schema`)."""


class TraceParseError(ValueError):
    """A JSONL trace line failed to parse."""

    def __init__(self, path: str, line_no: int, message: str) -> None:
        super().__init__(
            "%s line %d: %s" % (path, line_no, message)
        )
        self.path = path
        self.line_no = line_no


class TruncatedTraceError(TraceParseError):
    """The *final* line of a JSONL trace is incomplete — the signature
    of a writer that crashed (or is still running) mid-record.  Pass
    ``lenient=True`` to :func:`read_trace` to drop the partial line
    with a warning instead."""


class TruncatedTraceWarning(UserWarning):
    """Lenient-mode notice that a truncated final line was dropped."""


#: process-wide default for JsonlTrace strict validation; None defers
#: to the REPRO_TRACE_STRICT environment variable (off when unset)
_DEFAULT_STRICT: Optional[bool] = None


def set_default_strict(value: Optional[bool]) -> Optional[bool]:
    """Set the process-wide strict default for every
    :class:`JsonlTrace` constructed without an explicit ``strict=``.
    The test suite turns this on in ``tests/conftest.py`` so every
    emitted record doubles as a schema regression test.  Returns the
    previous value; ``None`` restores the environment-variable
    default."""
    global _DEFAULT_STRICT
    previous = _DEFAULT_STRICT
    _DEFAULT_STRICT = value
    return previous


def _strict_default() -> bool:
    if _DEFAULT_STRICT is not None:
        return _DEFAULT_STRICT
    return os.environ.get("REPRO_TRACE_STRICT", "") not in ("", "0")


class JsonlTrace:
    """Append-only JSONL writer.  One instance per recorded run.

    Every record is stamped with ``schema_version`` (trace.v1) so each
    line is self-describing.  With ``strict`` (explicit, or on by
    default via :func:`set_default_strict` / ``REPRO_TRACE_STRICT``),
    every emit is validated against the event catalogue and a
    violating record raises :class:`TraceSchemaError` instead of
    poisoning the artifact."""

    def __init__(self, path: str, strict: Optional[bool] = None) -> None:
        self.path = path
        self._fh = open(path, "a")
        self.lines_written = 0
        self.strict = _strict_default() if strict is None else strict

    def emit(self, rectype: str, **fields) -> None:
        record = {"type": rectype}
        record.update(fields)
        record.setdefault("schema_version", TRACE_SCHEMA_VERSION)
        if self.strict:
            from .obs.schema import validate_record

            problems = validate_record(record)
            if problems:
                raise TraceSchemaError(
                    "refusing to emit a record that violates trace.v%d "
                    "(%s): %s" % (
                        TRACE_SCHEMA_MAJOR, self.path,
                        "; ".join(problems),
                    )
                )
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        self.lines_written += 1

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "JsonlTrace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: the historical name: fault campaigns were the first JSONL emitters
FaultTrace = JsonlTrace


class NullTrace:
    """Trace sink for runs that don't record (shrinking probes, tests)."""

    path: Optional[str] = None
    lines_written = 0

    def emit(self, rectype: str, **fields) -> None:
        pass

    def close(self) -> None:
        pass


def read_trace(path: str, lenient: bool = False) -> List[Dict]:
    """Parse a JSONL trace into records.

    A trace written by a crashed (or still-running) producer commonly
    ends in a half-written line: that raises a typed
    :class:`TruncatedTraceError` naming the file and line — or, with
    ``lenient=True``, drops the partial line with a
    :class:`TruncatedTraceWarning` and returns everything before it
    (every complete record of an append-only trace is still valid).  A
    malformed line *before* the end is not a crash signature but
    corruption, and always raises :class:`TraceParseError`."""
    with open(path) as fh:
        lines = fh.read().split("\n")
    records: List[Dict] = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            final = all(not rest.strip() for rest in lines[i + 1:])
            if not final:
                raise TraceParseError(
                    path, i + 1,
                    "malformed JSONL record (%s); the trace is corrupt "
                    "beyond a truncated tail" % exc,
                ) from None
            if lenient:
                warnings.warn(
                    "%s line %d: dropping truncated final record "
                    "(crashed writer?)" % (path, i + 1),
                    TruncatedTraceWarning,
                    stacklevel=2,
                )
                break
            raise TruncatedTraceError(
                path, i + 1,
                "truncated final record (crashed or still-running "
                "writer?); pass lenient=True to drop it",
            ) from None
    return records


def iter_scenarios(records: List[Dict]) -> Iterator[Dict]:
    """Yield the scenario_end records (each carries everything needed to
    replay: benchmark, fault class, schedule, defenses, outcome)."""
    for record in records:
        if record.get("type") == "scenario_end":
            yield record
