"""The single trace-event schema shared by every layer.

Two kinds of trace live here, historically split between
``repro.sim.trace`` and ``repro.faults.trace`` (both remain as
compatibility re-export shims):

* **dynamic instruction events** (:class:`TraceEvent`, :class:`EK`) — the
  interface between the compiler's execution (or a synthetic workload
  generator) and the timing simulator.  One event per retired
  instruction, at the abstraction level the timing model needs:
  instruction class, byte address for memory operations, and
  region-boundary markers.  Addresses are in *bytes* (the IR is
  word-addressed; the interpreter multiplies by the 8-byte word size) so
  the cache models can index 64 B blocks directly.

* **append-only JSONL run artifacts** (:class:`JsonlTrace`,
  :class:`NullTrace`) — one JSON object per line, in the order things
  happened, never rewritten.  Fault campaigns use it as their replay
  artifact: it records each scenario's benchmark, fault schedule, defense
  switches, and outcome (violation flag + a stable hash of the final
  persisted image), so ``repro faults replay <trace>`` can re-run every
  scenario and verify the outcomes reproduce bit-for-bit.

The runtime layer (:mod:`repro.runtime`) emits both kinds through this
module, so backend-agnostic tools see one schema.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

__all__ = [
    "EK",
    "TraceEvent",
    "TraceStats",
    "count_events",
    "JsonlTrace",
    "FaultTrace",
    "NullTrace",
    "image_hash",
    "read_trace",
    "iter_scenarios",
]


# ----------------------------------------------------------------------
# dynamic instruction events
# ----------------------------------------------------------------------

class EK:
    """Trace event kinds."""

    ALU = "alu"                # any non-memory instruction
    LOAD = "load"
    STORE = "store"            # a data store (persist-path entry)
    CHECKPOINT = "ckpt"        # compiler checkpoint store (persist-path entry)
    BOUNDARY = "bdry"          # region end: PC-checkpointing store + broadcast
    ATOMIC = "atomic"          # atomic RMW: load + store + boundary forced earlier
    FENCE = "fence"
    LOCK = "lock"
    UNLOCK = "unlock"
    IO = "io"                  # irrevocable external operation
    HALT = "halt"              # thread finished

    #: kinds that place an 8 B entry on the persist path
    STORE_LIKE = frozenset({STORE, CHECKPOINT, BOUNDARY, ATOMIC})
    #: kinds that read memory through the regular (cache) path
    LOAD_LIKE = frozenset({LOAD, ATOMIC})


@dataclass
class TraceEvent:
    """One dynamic instruction."""

    kind: str
    addr: int = 0              # byte address (memory events only)
    tid: int = 0               # hardware thread
    lock_id: int = 0           # LOCK/UNLOCK only; IO: device id
    boundary_uid: int = -1     # BOUNDARY only: static boundary identity
    payload: int = 0           # IO only: the value written to the device

    def is_store_like(self) -> bool:
        return self.kind in EK.STORE_LIKE

    def is_load_like(self) -> bool:
        return self.kind in EK.LOAD_LIKE


@dataclass
class TraceStats:
    """Aggregate counts over a trace (feeds §V-G3)."""

    instructions: int = 0
    loads: int = 0
    data_stores: int = 0
    checkpoint_stores: int = 0
    boundaries: int = 0
    atomics: int = 0

    @property
    def persist_entries(self) -> int:
        return (
            self.data_stores
            + self.checkpoint_stores
            + self.boundaries
            + self.atomics
        )

    @property
    def instrumentation(self) -> int:
        return self.checkpoint_stores + self.boundaries

    def instructions_per_region(self) -> float:
        return self.instructions / self.boundaries if self.boundaries else 0.0

    def stores_per_region(self) -> float:
        if not self.boundaries:
            return 0.0
        return (self.data_stores + self.checkpoint_stores + self.atomics) / (
            self.boundaries
        )


def count_events(events: Iterable[TraceEvent]) -> TraceStats:
    stats = TraceStats()
    for ev in events:
        if ev.kind == EK.HALT:
            continue
        stats.instructions += 1
        if ev.kind == EK.LOAD:
            stats.loads += 1
        elif ev.kind == EK.STORE:
            stats.data_stores += 1
        elif ev.kind == EK.CHECKPOINT:
            stats.checkpoint_stores += 1
        elif ev.kind == EK.BOUNDARY:
            stats.boundaries += 1
        elif ev.kind == EK.ATOMIC:
            stats.atomics += 1
    return stats


# ----------------------------------------------------------------------
# append-only JSONL run artifacts
# ----------------------------------------------------------------------

def image_hash(image: Dict[int, int]) -> str:
    """A stable fingerprint of a persisted data image."""
    digest = hashlib.sha256()
    for word in sorted(image):
        digest.update(("%d:%d;" % (word, image[word])).encode())
    return digest.hexdigest()[:16]


class JsonlTrace:
    """Append-only JSONL writer.  One instance per recorded run."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "a")
        self.lines_written = 0

    def emit(self, rectype: str, **fields) -> None:
        record = {"type": rectype}
        record.update(fields)
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        self.lines_written += 1

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "JsonlTrace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: the historical name: fault campaigns were the first JSONL emitters
FaultTrace = JsonlTrace


class NullTrace:
    """Trace sink for runs that don't record (shrinking probes, tests)."""

    path: Optional[str] = None
    lines_written = 0

    def emit(self, rectype: str, **fields) -> None:
        pass

    def close(self) -> None:
        pass


def read_trace(path: str) -> List[Dict]:
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


def iter_scenarios(records: List[Dict]) -> Iterator[Dict]:
    """Yield the scenario_end records (each carries everything needed to
    replay: benchmark, fault class, schedule, defenses, outcome)."""
    for record in records:
        if record.get("type") == "scenario_end":
            yield record
