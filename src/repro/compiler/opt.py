"""Scalar optimizations — the "Other Code Optimizations" stage of Fig. 3.

Two classic passes run after region formation:

* **constant folding / propagation** (block-local): ``const`` values
  propagate through ``mov`` and binops whose operands are all known;
  folded instructions become ``const`` definitions.  Folding is
  region-aware: it never moves a computation across a boundary, so
  recovery plans stay valid.
* **dead code elimination**: instructions whose destination register is
  never used before being redefined (and which have no side effects) are
  dropped.  Stores, checkpoints, boundaries, calls, and synchronization
  are always live.

Both passes preserve the region structure — they only ever *remove*
non-store instructions or simplify ALU work, so the store-count threshold
can never be violated by running them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Union

from .interp import _binop, _wrap
from .ir import Function, Instr, Op
from .liveness import Liveness

__all__ = ["fold_constants", "eliminate_dead_code", "optimize_function", "OptStats"]


class OptStats:
    """Counts of what the scalar passes changed."""

    def __init__(self) -> None:
        self.folded = 0
        self.eliminated = 0

    def __repr__(self) -> str:
        return "OptStats(folded=%d, eliminated=%d)" % (self.folded, self.eliminated)


def fold_constants(func: Function) -> int:
    """Block-local constant propagation + folding.  Returns the number of
    instructions folded to ``const``."""
    folded = 0
    for block in func.blocks.values():
        known: Dict[str, int] = {}
        for i, instr in enumerate(block.instrs):
            op = instr.op

            def value_of(operand: Union[int, str]) -> Optional[int]:
                if isinstance(operand, int):
                    return operand
                return known.get(operand)

            if op == Op.CONST:
                known[instr.dst] = _wrap(instr.imm)
                continue
            if op == Op.MOV:
                val = value_of(instr.srcs[0])
                if val is not None:
                    block.instrs[i] = Instr(Op.CONST, dst=instr.dst, imm=val)
                    known[instr.dst] = val
                    folded += 1
                else:
                    known.pop(instr.dst, None)
                continue
            if op in Op.BINOPS:
                a = value_of(instr.srcs[0])
                b = value_of(instr.srcs[1])
                if a is not None and b is not None:
                    val = _binop(op, a, b)
                    block.instrs[i] = Instr(Op.CONST, dst=instr.dst, imm=val)
                    known[instr.dst] = val
                    folded += 1
                else:
                    known.pop(instr.dst, None)
                continue
            # Any other def invalidates; calls clobber the whole file
            if op == Op.CALL:
                known.clear()
            else:
                for reg in instr.defs():
                    known.pop(reg, None)
    return folded


#: opcodes that must never be eliminated regardless of liveness
_SIDE_EFFECTS = frozenset(
    {
        Op.STORE,
        Op.CHECKPOINT,
        Op.BOUNDARY,
        Op.ATOMIC_RMW,
        Op.FENCE,
        Op.LOCK,
        Op.UNLOCK,
        Op.CALL,
        Op.BR,
        Op.CBR,
        Op.RET,
    }
)


def eliminate_dead_code(func: Function) -> int:
    """Remove pure instructions whose results are dead.  Iterates to a
    fixpoint (removing one dead instruction can kill its inputs).
    Returns the number of instructions removed."""
    removed_total = 0
    while True:
        live = Liveness(func)
        removed = 0
        for label, block in func.blocks.items():
            keep: List[Instr] = []
            # scan backwards, tracking liveness within the block
            live_now: Set[str] = set(live.live_out[label])
            for instr in reversed(block.instrs):
                if instr.op in _SIDE_EFFECTS or instr.op == Op.NOP:
                    keep.append(instr)
                    live_now -= set(instr.defs())
                    live_now |= set(instr.uses())
                    continue
                dst = instr.dst
                if dst is not None and dst not in live_now:
                    removed += 1
                    continue
                keep.append(instr)
                live_now -= set(instr.defs())
                live_now |= set(instr.uses())
            keep.reverse()
            block.instrs = keep
        removed_total += removed
        if removed == 0:
            return removed_total


def optimize_function(func: Function) -> OptStats:
    """Run folding then DCE (folding creates dead ``const`` chains)."""
    stats = OptStats()
    stats.folded = fold_constants(func)
    stats.eliminated = eliminate_dead_code(func)
    return stats
