"""A small register-level intermediate representation.

The LightWSP compiler operates at the LLVM MIR level, *after* register
allocation: its decisions depend on (a) how many store instructions lie on
each control-flow path and (b) which architectural registers are live-out
of each region.  This IR therefore models exactly those ingredients:

* a finite set of named registers (``r0`` ... ``r31`` by convention),
* explicit ``load``/``store`` instructions at 8-byte word granularity,
* control flow via labelled basic blocks with ``br``/``cbr``/``ret``
  terminators and direct ``call`` instructions,
* synchronization instructions (``fence``, ``atomic_rmw``, ``lock`` /
  ``unlock``) that force region boundaries (§III-D),
* two compiler-inserted pseudo-instructions: ``boundary`` (the
  PC-checkpointing store that ends a region) and ``checkpoint`` (a store of
  one live-out register into the PM-resident checkpoint array).

Both pseudo-instructions *are* stores on the persist path; the simulator
and the §V-G3 statistics count them as such.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Op",
    "Instr",
    "BasicBlock",
    "Function",
    "Program",
    "Operand",
    "WORD_BYTES",
    "is_store_like",
    "is_boundary_forcing",
]

#: The IR is word-addressed with 8-byte words — the granularity of the
#: non-temporal persist path (§III-A).
WORD_BYTES = 8

#: An operand is either a register name or an immediate integer.
Operand = Union[str, int]


class Op:
    """Opcode namespace.  Plain strings keep instructions printable."""

    # data movement / arithmetic
    CONST = "const"      # dst <- imm
    MOV = "mov"          # dst <- src
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"          # integer division, division by zero yields 0
    MOD = "mod"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    MIN = "min"
    MAX = "max"
    # comparisons (produce 0/1)
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    # memory
    LOAD = "load"        # dst <- mem[addr_reg + offset]
    STORE = "store"      # mem[addr_reg + offset] <- src
    # control flow
    BR = "br"
    CBR = "cbr"          # conditional branch on src != 0
    CALL = "call"
    RET = "ret"
    # synchronization (boundary-forcing, §III-D)
    FENCE = "fence"
    ATOMIC_RMW = "atomic_rmw"    # dst <- mem[addr]; mem[addr] <- op(dst, src)
    LOCK = "lock"        # acquire lock number `imm`
    UNLOCK = "unlock"    # release lock number `imm`
    # compiler-inserted pseudo-stores
    BOUNDARY = "boundary"        # region boundary: PC-checkpointing store
    CHECKPOINT = "checkpoint"    # store of a live-out register
    # irrevocable external operation (§IV-A "I/O Functions"): identified
    # by `imm` (device/port); reads srcs[0] as the payload if present
    IO = "io"
    # misc
    NOP = "nop"

    BINOPS = frozenset(
        {ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR, MIN, MAX,
         EQ, NE, LT, LE, GT, GE}
    )
    TERMINATORS = frozenset({BR, CBR, RET})
    SYNC = frozenset({FENCE, ATOMIC_RMW, LOCK, UNLOCK})
    #: irrevocable: must sit alone in a region (boundaries on both sides)
    IRREVOCABLE = frozenset({IO})


def is_store_like(op: str) -> bool:
    """True for instructions that put an entry on the persist path."""
    return op in (Op.STORE, Op.CHECKPOINT, Op.BOUNDARY, Op.ATOMIC_RMW)


def is_boundary_forcing(op: str) -> bool:
    """True for instructions at which the compiler must start a new region
    (function calls are handled separately)."""
    return op in Op.SYNC or op in Op.IRREVOCABLE


_instr_ids = itertools.count()


@dataclass
class Instr:
    """One IR instruction.

    ``dst`` is the defined register (or None), ``srcs`` the operand tuple
    (registers or immediates).  Memory instructions carry ``addr`` (a base
    register or an absolute immediate address) and ``offset`` in *words*.
    Branches carry ``targets``; calls carry ``callee``.
    """

    op: str
    dst: Optional[str] = None
    srcs: Tuple[Operand, ...] = ()
    addr: Optional[Operand] = None
    offset: int = 0
    targets: Tuple[str, ...] = ()
    callee: Optional[str] = None
    imm: Optional[int] = None
    #: sub-operation for ATOMIC_RMW ("add", "xchg", ...)
    rmw_op: str = "add"
    #: free-form annotation; boundary instructions record their origin here
    #: ("entry", "exit", "call", "loop", "sync", "threshold")
    note: str = ""
    uid: int = field(default_factory=lambda: next(_instr_ids))

    # ------------------------------------------------------------------
    def uses(self) -> Tuple[str, ...]:
        """Registers read by this instruction."""
        regs = [s for s in self.srcs if isinstance(s, str)]
        if isinstance(self.addr, str):
            regs.append(self.addr)
        return tuple(regs)

    def defs(self) -> Tuple[str, ...]:
        """Registers written by this instruction."""
        return (self.dst,) if self.dst is not None else ()

    def is_terminator(self) -> bool:
        return self.op in Op.TERMINATORS

    def is_store_like(self) -> bool:
        return is_store_like(self.op)

    def copy(self) -> "Instr":
        return replace(self, uid=next(_instr_ids))

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        parts: List[str] = [self.op]
        if self.dst is not None:
            parts.append(self.dst + " <-")
        if self.addr is not None:
            parts.append("[%s+%d]" % (self.addr, self.offset))
        if self.srcs:
            parts.append(", ".join(str(s) for s in self.srcs))
        if self.callee:
            parts.append("@" + self.callee)
        if self.targets:
            parts.append("-> " + ", ".join(self.targets))
        if self.imm is not None and self.op in (Op.CONST, Op.LOCK, Op.UNLOCK):
            parts.append("#%d" % self.imm)
        return " ".join(parts)


@dataclass
class BasicBlock:
    """A labelled straight-line instruction sequence.

    The last instruction must be a terminator for well-formed functions;
    :meth:`Function.validate` checks this.  Blocks are mutable — compiler
    passes rewrite them in place.
    """

    label: str
    instrs: List[Instr] = field(default_factory=list)

    def append(self, instr: Instr) -> Instr:
        self.instrs.append(instr)
        return instr

    def terminator(self) -> Optional[Instr]:
        if self.instrs and self.instrs[-1].is_terminator():
            return self.instrs[-1]
        return None

    def successors(self) -> Tuple[str, ...]:
        term = self.terminator()
        if term is None or term.op == Op.RET:
            return ()
        return term.targets

    def store_count(self) -> int:
        return sum(1 for i in self.instrs if i.is_store_like())

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)

    def __str__(self) -> str:
        body = "\n".join("    " + str(i) for i in self.instrs)
        return "%s:\n%s" % (self.label, body)


class Function:
    """A function: an entry block plus a labelled CFG of basic blocks."""

    def __init__(self, name: str, params: Sequence[str] = ()) -> None:
        self.name = name
        self.params: Tuple[str, ...] = tuple(params)
        self.blocks: Dict[str, BasicBlock] = {}
        self.entry: Optional[str] = None
        self._label_counter = itertools.count()

    # ------------------------------------------------------------------
    def add_block(self, label: str) -> BasicBlock:
        if label in self.blocks:
            raise ValueError("duplicate block label %r in %s" % (label, self.name))
        block = BasicBlock(label)
        self.blocks[label] = block
        if self.entry is None:
            self.entry = label
        return block

    def fresh_label(self, hint: str = "bb") -> str:
        while True:
            label = "%s.%d" % (hint, next(self._label_counter))
            if label not in self.blocks:
                return label

    def block_order(self) -> List[str]:
        """Labels in insertion order (entry first)."""
        return list(self.blocks)

    def instructions(self) -> Iterator[Instr]:
        for block in self.blocks.values():
            yield from block.instrs

    def store_count(self) -> int:
        return sum(b.store_count() for b in self.blocks.values())

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ValueError on malformed control flow."""
        if self.entry is None:
            raise ValueError("function %s has no blocks" % self.name)
        for block in self.blocks.values():
            term = block.terminator()
            if term is None:
                raise ValueError(
                    "block %s in %s lacks a terminator" % (block.label, self.name)
                )
            for i, instr in enumerate(block.instrs):
                if instr.is_terminator() and i != len(block.instrs) - 1:
                    raise ValueError(
                        "terminator %s mid-block in %s:%s"
                        % (instr, self.name, block.label)
                    )
            for target in block.successors():
                if target not in self.blocks:
                    raise ValueError(
                        "branch to unknown block %r in %s" % (target, self.name)
                    )

    def __str__(self) -> str:
        header = "func %s(%s)" % (self.name, ", ".join(self.params))
        return header + "\n" + "\n".join(
            str(self.blocks[lbl]) for lbl in self.block_order()
        )


class Program:
    """A whole program: functions plus a global data layout.

    Global arrays live in PM (word-granularity).  The checkpoint array —
    one slot per architectural register, plus one PC slot per the paper's
    checkpoint-storage management (§IV-A) — is reserved at address 0.
    """

    #: number of architectural registers reserved in the checkpoint array
    N_ARCH_REGS = 32
    #: checkpoint array: N_ARCH_REGS register slots + 1 PC slot, per core.
    CHECKPOINT_WORDS_PER_CORE = N_ARCH_REGS + 1
    #: maximum hardware threads whose checkpoint frames we reserve
    MAX_CONTEXTS = 64

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, Tuple[int, int]] = {}  # name -> (base, words)
        self._next_addr = self.CHECKPOINT_WORDS_PER_CORE * self.MAX_CONTEXTS
        #: interpreter dispatch cache: func -> label -> compiled code
        #: tuples (see repro.compiler.interp); revalidated on block entry
        self._dispatch: Optional[Dict[str, Dict[str, List[Tuple[Any, ...]]]]] = None

    # ------------------------------------------------------------------
    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError("duplicate function %r" % func.name)
        self.functions[func.name] = func
        return func

    def array(self, name: str, words: int, align: int = 8) -> int:
        """Reserve a global array of ``words`` 8-byte words; returns the
        base *word* address."""
        if name in self.globals:
            raise ValueError("duplicate global %r" % name)
        if words < 1:
            raise ValueError("array %r must have at least one word" % name)
        base = -(-self._next_addr // align) * align
        self.globals[name] = (base, words)
        self._next_addr = base + words
        return base

    def base_of(self, name: str) -> int:
        return self.globals[name][0]

    @staticmethod
    def checkpoint_slot(context: int, reg: str) -> int:
        """Word address of ``reg``'s checkpoint slot for hardware context
        ``context`` (registers are named ``rN``)."""
        if not reg.startswith("r"):
            raise ValueError("cannot index checkpoint slot for %r" % reg)
        index = int(reg[1:])
        if index >= Program.N_ARCH_REGS:
            raise ValueError("register %r beyond checkpoint array" % reg)
        return context * Program.CHECKPOINT_WORDS_PER_CORE + index

    @staticmethod
    def pc_slot(context: int) -> int:
        """Word address of the PC checkpoint slot for ``context``."""
        return (
            context * Program.CHECKPOINT_WORDS_PER_CORE + Program.N_ARCH_REGS
        )

    def validate(self) -> None:
        for func in self.functions.values():
            func.validate()
            for instr in func.instructions():
                if instr.op == Op.CALL and instr.callee not in self.functions:
                    raise ValueError(
                        "call to unknown function %r" % (instr.callee,)
                    )

    def total_words(self) -> int:
        return self._next_addr

    def __str__(self) -> str:
        return "\n\n".join(str(f) for f in self.functions.values())
