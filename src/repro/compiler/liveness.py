"""Classic backward liveness dataflow over registers.

The checkpoint-insertion pass needs, for every region, the set of registers
that are *live-out* of the region — those must be checkpointed so that
re-executing the next region after a power failure sees correct inputs
(§IV-A "Checkpoint Store Insertion").
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from .cfg import CFG
from .ir import BasicBlock, Function

__all__ = ["Liveness", "block_use_def"]


def block_use_def(block: BasicBlock) -> Tuple[Set[str], Set[str]]:
    """(use, def) sets of one block: ``use`` holds registers read before
    any write within the block."""
    use: Set[str] = set()
    defs: Set[str] = set()
    for instr in block.instrs:
        for reg in instr.uses():
            if reg not in defs:
                use.add(reg)
        defs.update(instr.defs())
    return use, defs


class Liveness:
    """Per-block live-in/live-out sets, plus per-instruction queries."""

    def __init__(self, func: Function, cfg: CFG = None) -> None:
        self.func = func
        self.cfg = cfg or CFG(func)
        self.live_in: Dict[str, Set[str]] = {}
        self.live_out: Dict[str, Set[str]] = {}
        self._use: Dict[str, Set[str]] = {}
        self._def: Dict[str, Set[str]] = {}
        self._solve()

    def _solve(self) -> None:
        labels = list(self.func.blocks)
        for label in labels:
            use, defs = block_use_def(self.func.blocks[label])
            self._use[label] = use
            self._def[label] = defs
            self.live_in[label] = set(use)
            self.live_out[label] = set()
        # Iterate to fixpoint; postorder-ish sweeps converge quickly on the
        # small functions we compile.
        changed = True
        while changed:
            changed = False
            for label in reversed(labels):
                out: Set[str] = set()
                for succ in self.cfg.succs[label]:
                    out |= self.live_in[succ]
                new_in = self._use[label] | (out - self._def[label])
                if out != self.live_out[label] or new_in != self.live_in[label]:
                    self.live_out[label] = out
                    self.live_in[label] = new_in
                    changed = True

    # ------------------------------------------------------------------
    def live_after(self, label: str, index: int) -> Set[str]:
        """Registers live immediately *after* instruction ``index`` of block
        ``label`` (before index+1)."""
        block = self.func.blocks[label]
        live = set(self.live_out[label])
        for instr in reversed(block.instrs[index + 1 :]):
            live -= set(instr.defs())
            live |= set(instr.uses())
        return live

    def last_def_index(self, label: str, reg: str) -> int:
        """Index of the last instruction in ``label`` defining ``reg``;
        -1 when the block never defines it."""
        block = self.func.blocks[label]
        for i in range(len(block.instrs) - 1, -1, -1):
            if reg in block.instrs[i].defs():
                return i
        return -1
