"""Natural-loop discovery and simple trip-count analysis.

The region partitioner places a boundary at the header of every loop that
contains stores (§IV-A), and the region-size-extension pass unrolls loops —
with a static factor when the trip count is a known constant, speculatively
(body + exit-check duplication) otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .cfg import CFG
from .ir import Function, Op

__all__ = ["NaturalLoop", "find_loops", "constant_trip_count"]


@dataclass
class NaturalLoop:
    """A natural loop: the header plus all blocks that can reach a latch
    without leaving through the header."""

    header: str
    latches: Tuple[str, ...]
    body: Set[str] = field(default_factory=set)

    def contains_stores(self, func: Function) -> bool:
        return any(func.blocks[lbl].store_count() > 0 for lbl in self.body)

    def store_count(self, func: Function) -> int:
        return sum(func.blocks[lbl].store_count() for lbl in self.body)

    def block_count(self) -> int:
        return len(self.body)


def find_loops(func: Function, cfg: Optional[CFG] = None) -> List[NaturalLoop]:
    """All natural loops, merged per header (a header with several back
    edges yields one loop whose body is the union)."""
    cfg = cfg or CFG(func)
    by_header: Dict[str, List[str]] = {}
    for tail, head in cfg.back_edges():
        by_header.setdefault(head, []).append(tail)

    loops: List[NaturalLoop] = []
    for header, latches in sorted(by_header.items()):
        body: Set[str] = {header}
        stack = [latch for latch in latches]
        while stack:
            label = stack.pop()
            if label in body:
                continue
            body.add(label)
            stack.extend(cfg.preds[label])
        loops.append(NaturalLoop(header=header, latches=tuple(sorted(latches)), body=body))
    return loops


def constant_trip_count(func: Function, loop: NaturalLoop) -> Optional[int]:
    """Detect the canonical counted-loop idiom produced by our builder::

        header:  ...body...
                 add  i, i, step        (constant step)
                 lt   c, i, N           (constant bound)
                 cbr  c, header, exit

    and return its remaining trip count, or None when the loop shape is
    anything else.  This deliberately recognizes only the simple shape —
    the speculative-unrolling path handles the rest, as in the paper.
    """
    if len(loop.latches) != 1:
        return None
    latch = func.blocks[loop.latches[0]]
    if len(latch.instrs) < 3:
        return None
    term = latch.terminator()
    if term is None or term.op != Op.CBR or term.targets[0] != loop.header:
        return None
    cmp_instr = latch.instrs[-2]
    if cmp_instr.op not in (Op.LT, Op.LE, Op.NE) or cmp_instr.dst != term.srcs[0]:
        return None
    if not isinstance(cmp_instr.srcs[1], int):
        return None
    bound = cmp_instr.srcs[1]
    induction = cmp_instr.srcs[0]
    if not isinstance(induction, str):
        return None
    step_instr = latch.instrs[-3]
    if (
        step_instr.op != Op.ADD
        or step_instr.dst != induction
        or step_instr.srcs[0] != induction
        or not isinstance(step_instr.srcs[1], int)
        or step_instr.srcs[1] <= 0
    ):
        return None
    step = step_instr.srcs[1]

    # The step must be the *only* def of the induction register anywhere in
    # the loop, or the arithmetic below is fiction (and static unrolling,
    # which drops intermediate exit checks, would be unsound).
    for label in loop.body:
        for instr in func.blocks[label].instrs:
            if induction in instr.defs() and instr is not step_instr:
                return None

    # Find the constant initialization of the induction variable:  it must
    # be a `const` in a block outside the loop (typically the preheader).
    init: Optional[int] = None
    for label, block in func.blocks.items():
        if label in loop.body:
            continue
        for instr in block.instrs:
            if instr.dst == induction:
                if instr.op == Op.CONST:
                    init = instr.imm
                else:
                    return None  # initialized non-trivially
    if init is None:
        return None
    if cmp_instr.op == Op.LT:
        remaining = max(0, -(-(bound - init) // step))
    elif cmp_instr.op == Op.LE:
        remaining = max(0, -(-(bound - init + 1) // step))
    else:  # NE: only exact hits terminate
        if (bound - init) % step != 0:
            return None
        remaining = (bound - init) // step
    return remaining
