"""Control-flow-graph utilities: predecessors, orders, reachability,
dominators, and block splitting.

These are the analyses the region-partitioning passes traverse: the paper's
compiler "counts the number of stores while traversing the control flow
graph" and combines regions "by traversing CFG again in topological order"
(§IV-A).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .ir import Function, Instr, Op

__all__ = [
    "CFG",
    "split_block_at",
]


class CFG:
    """Predecessor/successor maps and derived orders for one function.

    The CFG is a snapshot: recompute after mutating the function.
    """

    def __init__(self, func: Function) -> None:
        self.func = func
        self.succs: Dict[str, Tuple[str, ...]] = {}
        self.preds: Dict[str, List[str]] = {lbl: [] for lbl in func.blocks}
        for label, block in func.blocks.items():
            succs = block.successors()
            self.succs[label] = succs
            for s in succs:
                self.preds[s].append(label)

    # ------------------------------------------------------------------
    def reachable(self) -> Set[str]:
        assert self.func.entry is not None
        seen: Set[str] = set()
        stack = [self.func.entry]
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            stack.extend(self.succs[label])
        return seen

    def reverse_postorder(self) -> List[str]:
        """Reverse postorder from the entry — a topological order whenever
        the CFG is acyclic, and a sensible traversal order otherwise."""
        assert self.func.entry is not None
        order: List[str] = []
        seen: Set[str] = set()

        def visit(label: str) -> None:
            stack: List[Tuple[str, int]] = [(label, 0)]
            seen.add(label)
            while stack:
                current, idx = stack.pop()
                succs = self.succs[current]
                if idx < len(succs):
                    stack.append((current, idx + 1))
                    nxt = succs[idx]
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, 0))
                else:
                    order.append(current)

        visit(self.func.entry)
        order.reverse()
        return order

    # ------------------------------------------------------------------
    def dominators(self) -> Dict[str, Set[str]]:
        """Iterative dominator sets (small CFGs; clarity over speed)."""
        assert self.func.entry is not None
        rpo = self.reverse_postorder()
        all_blocks = set(rpo)
        dom: Dict[str, Set[str]] = {lbl: set(all_blocks) for lbl in rpo}
        dom[self.func.entry] = {self.func.entry}
        changed = True
        while changed:
            changed = False
            for label in rpo:
                if label == self.func.entry:
                    continue
                preds = [p for p in self.preds[label] if p in all_blocks]
                if not preds:
                    new = {label}
                else:
                    new = set(all_blocks)
                    for p in preds:
                        new &= dom[p]
                    new.add(label)
                if new != dom[label]:
                    dom[label] = new
                    changed = True
        return dom

    def back_edges(self) -> List[Tuple[str, str]]:
        """Edges (tail -> head) where head dominates tail: loop back edges."""
        dom = self.dominators()
        edges = []
        for tail in self.reachable():
            for head in self.succs[tail]:
                if head in dom.get(tail, ()):
                    edges.append((tail, head))
        return edges

    def exits(self) -> List[str]:
        """Blocks terminated by ``ret``."""
        return [
            lbl
            for lbl, block in self.func.blocks.items()
            if block.terminator() is not None
            and block.terminator().op == Op.RET
        ]


def split_block_at(func: Function, label: str, index: int, hint: str = "split") -> str:
    """Split ``label`` before instruction ``index``; the tail becomes a new
    block that the head falls through to.  Returns the new label.

    Used to guarantee that "regions always start at the beginning of basic
    blocks" (§IV-A), which keeps per-region liveness computable from block
    boundaries.
    """
    block = func.blocks[label]
    if not 0 < index <= len(block.instrs):
        raise ValueError("split index %d out of range for %s" % (index, label))
    new_label = func.fresh_label(hint)
    tail = block.instrs[index:]
    block.instrs = block.instrs[:index]
    block.instrs.append(Instr(Op.BR, targets=(new_label,)))
    new_block = func.add_block(new_label)
    new_block.instrs = tail
    return new_label
