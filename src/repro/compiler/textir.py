"""A textual assembly format for the IR: parse and print.

Programs can be written, stored, and diffed as ``.lir`` text — handy for
examples, for golden-file tests of compiler passes, and for inspecting
what the region partitioner did.  The format round-trips:
``parse_program(print_program(prog))`` reproduces the program.

Grammar (line-oriented; ``#`` starts a comment)::

    program demo
    array x 64                  # name, words (base auto-assigned)
    array y 64 @4096            # explicit base word address

    func main(r1, r2)
    entry:
        const   r1, 0
        add     r2, r1, 5
        load    r3, [r1 + x]    # symbolic base resolved to the array
        store   r3, [r1 + y]
        atomic  r4, [r1 + x], add, 1
        lock    0
        unlock  0
        fence
        call    helper(r1, 7) -> r5
        cbr     r2, entry, done
    done:
        ret     r5

Compiler pseudo-instructions print as ``boundary <kind>`` and
``checkpoint rN`` and parse back, so instrumented programs round-trip
too.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .ir import BasicBlock, Function, Instr, Op, Operand, Program

__all__ = ["print_program", "parse_program", "ParseError"]


class ParseError(ValueError):
    """Raised with a line number on malformed input."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__("line %d: %s" % (lineno, message))
        self.lineno = lineno


# ----------------------------------------------------------------------
# printing
# ----------------------------------------------------------------------

def _operand_str(operand: Operand) -> str:
    return str(operand)


def _addr_str(instr: Instr, symbols: Dict[int, str]) -> str:
    base = instr.offset
    if base in symbols:
        base_txt = symbols[base]
    else:
        base_txt = str(base)
    return "[%s + %s]" % (_operand_str(instr.addr), base_txt)


def _instr_str(instr: Instr, symbols: Dict[int, str]) -> str:
    op = instr.op
    if op == Op.CONST:
        return "const %s, %d" % (instr.dst, instr.imm)
    if op == Op.MOV:
        return "mov %s, %s" % (instr.dst, _operand_str(instr.srcs[0]))
    if op in Op.BINOPS:
        return "%s %s, %s, %s" % (
            op, instr.dst, _operand_str(instr.srcs[0]), _operand_str(instr.srcs[1])
        )
    if op == Op.LOAD:
        return "load %s, %s" % (instr.dst, _addr_str(instr, symbols))
    if op == Op.STORE:
        return "store %s, %s" % (_operand_str(instr.srcs[0]), _addr_str(instr, symbols))
    if op == Op.ATOMIC_RMW:
        return "atomic %s, %s, %s, %s" % (
            instr.dst or "_",
            _addr_str(instr, symbols),
            instr.rmw_op,
            _operand_str(instr.srcs[0]),
        )
    if op == Op.BR:
        return "br %s" % instr.targets[0]
    if op == Op.CBR:
        return "cbr %s, %s, %s" % (
            _operand_str(instr.srcs[0]), instr.targets[0], instr.targets[1]
        )
    if op == Op.CALL:
        args = ", ".join(_operand_str(s) for s in instr.srcs)
        ret = " -> %s" % instr.dst if instr.dst else ""
        return "call %s(%s)%s" % (instr.callee, args, ret)
    if op == Op.RET:
        if instr.srcs:
            return "ret %s" % _operand_str(instr.srcs[0])
        return "ret"
    if op == Op.FENCE:
        return "fence"
    if op == Op.IO:
        if instr.srcs:
            return "io %d, %s" % (instr.imm, _operand_str(instr.srcs[0]))
        return "io %d" % instr.imm
    if op == Op.LOCK:
        return "lock %d" % instr.imm
    if op == Op.UNLOCK:
        return "unlock %d" % instr.imm
    if op == Op.BOUNDARY:
        return "boundary %s" % (instr.note or "plain")
    if op == Op.CHECKPOINT:
        return "checkpoint %s" % instr.srcs[0]
    if op == Op.NOP:
        return "nop"
    raise ValueError("unprintable op %r" % op)


def print_program(program: Program) -> str:
    """Serialize a program to the textual format."""
    lines: List[str] = ["program %s" % program.name]
    symbols = {base: name for name, (base, _words) in program.globals.items()}
    for name, (base, words) in program.globals.items():
        lines.append("array %s %d @%d" % (name, words, base))
    for func in program.functions.values():
        lines.append("")
        params = ", ".join(func.params)
        lines.append("func %s(%s)" % (func.name, params))
        for label in func.block_order():
            lines.append("%s:" % label)
            for instr in func.blocks[label].instrs:
                lines.append("    " + _instr_str(instr, symbols))
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------

_ADDR_RE = re.compile(r"^\[\s*(\S+)\s*\+\s*(\S+)\s*\]$")


def _parse_operand(token: str, lineno: int) -> Operand:
    token = token.strip()
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    if re.fullmatch(r"[A-Za-z_]\w*", token):
        return token
    raise ParseError(lineno, "bad operand %r" % token)


def _split_args(text: str) -> List[str]:
    """Split on commas not inside brackets."""
    parts: List[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += ch
    if current.strip():
        parts.append(current.strip())
    return parts


def _parse_addr(token: str, symbols: Dict[str, int], lineno: int) -> Tuple[Operand, int]:
    match = _ADDR_RE.match(token.strip())
    if not match:
        raise ParseError(lineno, "bad address %r (want [idx + base])" % token)
    index = _parse_operand(match.group(1), lineno)
    base_txt = match.group(2)
    if base_txt in symbols:
        base = symbols[base_txt]
    elif re.fullmatch(r"-?\d+", base_txt):
        base = int(base_txt)
    else:
        raise ParseError(lineno, "unknown array %r" % base_txt)
    return index, base


def parse_program(text: str) -> Program:
    """Parse the textual format back into a Program."""
    program: Optional[Program] = None
    symbols: Dict[str, int] = {}
    func: Optional[Function] = None
    block: Optional[BasicBlock] = None
    pending_calls: List[Tuple[int, str]] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue

        if line.startswith("program "):
            program = Program(line[len("program "):].strip())
            continue
        if program is None:
            raise ParseError(lineno, "missing 'program <name>' header")

        if line.startswith("array "):
            parts = line.split()
            if len(parts) == 3:
                _, name, words = parts
                base = program.array(name, int(words))
            elif len(parts) == 4 and parts[3].startswith("@"):
                _, name, words, at = parts
                base = int(at[1:])
                if name in program.globals:
                    raise ParseError(lineno, "duplicate array %r" % name)
                program.globals[name] = (base, int(words))
                program._next_addr = max(program._next_addr, base + int(words))
            else:
                raise ParseError(lineno, "bad array declaration")
            symbols[name] = program.globals[name][0]
            continue

        match = re.match(r"^func\s+(\w+)\s*\(([^)]*)\)$", line)
        if match:
            params = [p.strip() for p in match.group(2).split(",") if p.strip()]
            func = Function(match.group(1), params)
            program.add_function(func)
            block = None
            continue

        if line.endswith(":") and re.fullmatch(r"[\w.]+:", line):
            if func is None:
                raise ParseError(lineno, "label outside a function")
            block = func.add_block(line[:-1])
            continue

        if func is None or block is None:
            raise ParseError(lineno, "instruction outside a block: %r" % line)
        block.append(_parse_instr(line, symbols, lineno, pending_calls))

    if program is None:
        raise ParseError(0, "empty input")
    for lineno, callee in pending_calls:
        if callee not in program.functions:
            raise ParseError(lineno, "call to unknown function %r" % callee)
    program.validate()
    return program


def _parse_instr(
    line: str,
    symbols: Dict[str, int],
    lineno: int,
    pending_calls: List[Tuple[int, str]],
) -> Instr:
    mnemonic, _, rest = line.partition(" ")
    rest = rest.strip()
    args = _split_args(rest) if rest else []

    def need(n: int) -> None:
        if len(args) != n:
            raise ParseError(lineno, "%s expects %d operand(s)" % (mnemonic, n))

    if mnemonic == "const":
        need(2)
        return Instr(Op.CONST, dst=args[0], imm=int(args[1]))
    if mnemonic == "mov":
        need(2)
        return Instr(Op.MOV, dst=args[0], srcs=(_parse_operand(args[1], lineno),))
    if mnemonic in Op.BINOPS:
        need(3)
        return Instr(
            mnemonic,
            dst=args[0],
            srcs=(
                _parse_operand(args[1], lineno),
                _parse_operand(args[2], lineno),
            ),
        )
    if mnemonic == "load":
        need(2)
        index, base = _parse_addr(args[1], symbols, lineno)
        return Instr(Op.LOAD, dst=args[0], addr=index, offset=base)
    if mnemonic == "store":
        need(2)
        index, base = _parse_addr(args[1], symbols, lineno)
        return Instr(
            Op.STORE, srcs=(_parse_operand(args[0], lineno),), addr=index, offset=base
        )
    if mnemonic == "atomic":
        need(4)
        index, base = _parse_addr(args[1], symbols, lineno)
        dst = None if args[0] == "_" else args[0]
        return Instr(
            Op.ATOMIC_RMW,
            dst=dst,
            srcs=(_parse_operand(args[3], lineno),),
            addr=index,
            offset=base,
            rmw_op=args[2],
        )
    if mnemonic == "br":
        need(1)
        return Instr(Op.BR, targets=(args[0],))
    if mnemonic == "cbr":
        need(3)
        return Instr(
            Op.CBR,
            srcs=(_parse_operand(args[0], lineno),),
            targets=(args[1], args[2]),
        )
    if mnemonic == "call":
        match = re.match(r"^(\w+)\s*\(([^)]*)\)\s*(?:->\s*(\w+))?$", rest)
        if not match:
            raise ParseError(lineno, "bad call syntax %r" % rest)
        callee, arg_text, ret = match.groups()
        call_args = tuple(
            _parse_operand(a, lineno)
            for a in arg_text.split(",")
            if a.strip()
        )
        pending_calls.append((lineno, callee))
        return Instr(Op.CALL, dst=ret, srcs=call_args, callee=callee)
    if mnemonic == "ret":
        if args:
            need(1)
            return Instr(Op.RET, srcs=(_parse_operand(args[0], lineno),))
        return Instr(Op.RET)
    if mnemonic == "fence":
        need(0)
        return Instr(Op.FENCE)
    if mnemonic == "io":
        if len(args) == 1:
            return Instr(Op.IO, imm=int(args[0]))
        need(2)
        return Instr(
            Op.IO, imm=int(args[0]), srcs=(_parse_operand(args[1], lineno),)
        )
    if mnemonic == "lock":
        need(1)
        return Instr(Op.LOCK, imm=int(args[0]))
    if mnemonic == "unlock":
        need(1)
        return Instr(Op.UNLOCK, imm=int(args[0]))
    if mnemonic == "boundary":
        note = args[0] if args else "plain"
        return Instr(Op.BOUNDARY, note="" if note == "plain" else note)
    if mnemonic == "checkpoint":
        need(1)
        return Instr(Op.CHECKPOINT, srcs=(args[0],), note=args[0])
    if mnemonic == "nop":
        need(0)
        return Instr(Op.NOP)
    raise ParseError(lineno, "unknown mnemonic %r" % mnemonic)
