"""Region formation: combining small regions and repartitioning oversized
ones until no region exceeds the store threshold (§IV-A).

This pass resolves the circular dependence between boundary placement and
checkpoint insertion: checkpoints are stores, so inserting them can push a
region over the threshold, which forces a new boundary, which changes the
live-out sets...  The paper's strategy — iterate combine/repartition to a
fixpoint — is implemented literally here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .boundaries import (
    REQUIRED_KINDS,
    boundary,
    max_region_store_count,
    normalize_boundaries,
)
from .cfg import CFG
from .checkpoints import insert_checkpoints
from .ir import Function, Instr, Op

__all__ = ["form_regions", "enforce_threshold_global", "RegionFormationStats"]


@dataclass
class RegionFormationStats:
    merged_boundaries: int = 0
    added_boundaries: int = 0
    iterations: int = 0
    final_max_stores: int = 0
    #: True when the fixpoint converged within the threshold; False means a
    #: region still exceeds it (still crash-safe while <= WPQ size, since
    #: threshold is WPQ/2, but worth surfacing).
    converged: bool = True


def enforce_threshold_global(func: Function, threshold: int) -> int:
    """Insert boundaries wherever any boundary-free CFG path accumulates
    more than ``threshold`` store-like instructions.  Returns the number of
    boundaries added.  Uses the same monotone max-propagation as
    :func:`max_region_store_count`, then patches blocks locally."""
    cfg = CFG(func)
    labels = cfg.reverse_postorder()
    in_count: Dict[str, int] = {lbl: 0 for lbl in labels}
    cap = threshold + 1

    def out_of(label: str) -> int:
        count = in_count[label]
        for instr in func.blocks[label].instrs:
            if instr.op == Op.BOUNDARY:
                count = 0
            elif instr.is_store_like():
                count = min(cap, count + 1)
        return count

    changed = True
    while changed:
        changed = False
        for label in labels:
            out = out_of(label)
            for succ in cfg.succs[label]:
                if out > in_count[succ]:
                    in_count[succ] = out
                    changed = True

    added = 0
    for label in labels:
        block = func.blocks[label]
        count = in_count[label]
        out: List[Instr] = []
        for instr in block.instrs:
            if instr.op == Op.BOUNDARY:
                count = 0
            elif instr.is_store_like():
                # Split only before *data* stores.  Splitting inside a
                # checkpoint group would give the new boundary its own
                # checkpoints and diverge (each iteration multiplying the
                # groups); a region whose live-out checkpoints alone exceed
                # the threshold is reported via `converged=False` instead.
                splittable = instr.op in (Op.STORE, Op.ATOMIC_RMW)
                if (
                    splittable
                    and count + 1 > threshold
                    and not (out and out[-1].op == Op.BOUNDARY)
                ):
                    out.append(boundary("threshold"))
                    added += 1
                    count = 0
                count += 1
            out.append(instr)
        block.instrs = out
    return added


def _try_merge(func: Function, threshold: int) -> int:
    """Remove removable ("threshold") boundaries whose removal keeps every
    region within the threshold, traversing in topological order.  Each
    removal is validated with checkpoints re-inserted, because merging can
    *shrink* store counts (live-outs that the next region redefines stop
    being live-outs) but can also concatenate two regions' data stores."""
    cfg = CFG(func)
    merged = 0
    for label in cfg.reverse_postorder():
        block = func.blocks[label]
        idx = next(
            (
                i
                for i, ins in enumerate(block.instrs)
                if ins.op == Op.BOUNDARY and ins.note not in REQUIRED_KINDS
            ),
            None,
        )
        if idx is None:
            continue
        removed = block.instrs.pop(idx)
        insert_checkpoints(func)
        if max_region_store_count(func, cap=threshold + 1) <= threshold:
            merged += 1
        else:
            # insert_checkpoints mutated the block, so the saved index is
            # stale; restore the boundary to its normalized position —
            # immediately before the terminator.
            term = block.terminator()
            pos = len(block.instrs) - 1 if term is not None else len(block.instrs)
            block.instrs.insert(pos, removed)
            insert_checkpoints(func)
    return merged


def form_regions(
    func: Function, threshold: int, merge: bool = True, max_iterations: int = 12
) -> RegionFormationStats:
    """Run the combine/repartition fixpoint.  On return the function has
    checkpoints inserted and (usually) no region above the threshold."""
    stats = RegionFormationStats()
    if merge:
        stats.merged_boundaries = _try_merge(func, threshold)

    for iteration in range(max_iterations):
        stats.iterations = iteration + 1
        insert_checkpoints(func)
        worst = max_region_store_count(func, cap=threshold + 1)
        if worst <= threshold:
            break
        added = enforce_threshold_global(func, threshold)
        stats.added_boundaries += added
        if added == 0:
            break  # only checkpoint groups exceed the threshold: give up
        normalize_boundaries(func)
    insert_checkpoints(func)
    stats.final_max_stores = max_region_store_count(func)
    stats.converged = stats.final_max_stores <= threshold
    return stats
