"""Region-size extension via loop unrolling (§IV-A).

Boundaries at loop headers turn every iteration into a region; for loops
with few stores per iteration this yields many tiny regions and therefore
many live-out checkpoints.  Two remedies, both from the paper:

* **static unrolling** when the trip count is a known constant: the body is
  replicated ``u`` times (``u`` divides the trip count), and intermediate
  exit checks are dropped;
* **speculative unrolling** otherwise: the body *and its exit check* are
  replicated, so any copy may leave the loop — the duplication merely makes
  the common path longer.

Both are restricted to the canonical single-block self-loop our builder
emits (header == latch, ``cbr`` terminator back to the header); anything
fancier is left alone, exactly as a conservative production pass would.

The factor is chosen so ``u * stores_per_iteration <= threshold`` and
``u <= unroll_limit`` — unrolling must never force the region partitioner
to split mid-iteration, or the checkpoint savings evaporate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .ir import BasicBlock, Function, Instr, Op
from .loops import NaturalLoop, constant_trip_count, find_loops

__all__ = ["unroll_loops", "UnrollStats"]


@dataclass
class UnrollStats:
    static_unrolled: int = 0
    speculative_unrolled: int = 0
    total_factor: int = 0


def _self_loop(func: Function, loop: NaturalLoop) -> Optional[Instr]:
    """The back-edge ``cbr`` of a single-block self-loop, or None."""
    if loop.body != {loop.header} or len(loop.latches) != 1:
        return None
    block = func.blocks[loop.header]
    term = block.terminator()
    if term is None or term.op != Op.CBR:
        return None
    if loop.header not in term.targets:
        return None
    return term


def _pick_factor(stores_per_iter: int, threshold: int, limit: int) -> int:
    """Largest factor whose unrolled body stays within 3/4 of the store
    threshold — the remaining quarter is headroom for the checkpoint
    stores the partitioner will add, so unrolling never forces a
    mid-iteration split (which would forfeit the checkpoint savings)."""
    if stores_per_iter == 0:
        return limit
    budget = max(1, (3 * threshold) // 4)
    return max(1, min(limit, budget // max(1, stores_per_iter)))


def unroll_loops(
    func: Function, threshold: int, limit: int = 4, speculative: bool = True
) -> UnrollStats:
    """Unroll eligible loops in place."""
    stats = UnrollStats()
    for loop in find_loops(func):
        term = _self_loop(func, loop)
        if term is None:
            continue
        block = func.blocks[loop.header]
        stores = block.store_count()
        if stores == 0:
            continue  # header boundary will be skipped anyway
        factor = _pick_factor(stores, threshold, limit)
        if factor < 2:
            continue
        exit_target = next((t for t in term.targets if t != loop.header), None)
        if exit_target is None:
            continue  # no loop exit: nothing to speculate on
        trip = constant_trip_count(func, loop)

        if trip is not None and trip > 0 and trip % factor == 0:
            _unroll_static(block, factor)
            stats.static_unrolled += 1
            stats.total_factor += factor
        elif speculative:
            _unroll_speculative(func, loop.header, factor, exit_target)
            stats.speculative_unrolled += 1
            stats.total_factor += factor
    return stats


def _unroll_static(block: BasicBlock, factor: int) -> None:
    """Replicate the body ``factor`` times, keeping only the final exit
    check.  Safe because the caller verified the trip count is a multiple
    of the factor (the dropped checks could never fire)."""
    body = block.instrs[:-1]
    term = block.instrs[-1]
    new_instrs: List[Instr] = []
    for _ in range(factor):
        new_instrs.extend(instr.copy() for instr in body)
    new_instrs.append(term)
    block.instrs = new_instrs


def _unroll_speculative(func: Function, header: str, factor: int, exit_target: str) -> None:
    """Replicate body + exit check: copy ``k`` falls through to copy
    ``k+1`` when the loop continues, and to the exit otherwise.  The last
    copy branches back to the header."""
    block = func.blocks[header]
    body = block.instrs[:-1]
    term = block.instrs[-1]
    cond = term.srcs[0]
    continue_first = term.targets[0] == header

    copy_labels = [
        func.fresh_label("%s.u%d" % (header, k)) for k in range(1, factor)
    ]
    chain = copy_labels + [header]

    def exit_check(next_label: str) -> Instr:
        if continue_first:
            return Instr(Op.CBR, srcs=(cond,), targets=(next_label, exit_target))
        return Instr(Op.CBR, srcs=(cond,), targets=(exit_target, next_label))

    block.instrs = [instr.copy() for instr in body] + [exit_check(chain[0])]
    for k, label in enumerate(copy_labels):
        new_block = func.add_block(label)
        new_block.instrs = [instr.copy() for instr in body] + [
            exit_check(chain[k + 1])
        ]
