"""Checkpoint-store insertion and pruning (§IV-A).

For every region boundary, the registers live *after* the boundary are the
region's live-outs: a power failure in the following region rolls execution
back to this boundary, so those registers must be reloadable.  The pass
inserts one ``checkpoint`` pseudo-store per live-out register immediately
before the boundary (a mild simplification of "right after their last
update point" — the store count, which drives region partitioning, is
identical).

Checkpoint pruning removes a checkpoint when the register's value can be
*reconstructed* at recovery time from immediates and other checkpointed
registers (§IV-A "Region Size Extension and Checkpoint Pruning").  Each
boundary's surviving checkpoints and reconstruction recipes are recorded in
a :class:`RecoveryPlan`, which the recovery runtime interprets
(:mod:`repro.core.recovery`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .ir import Function, Instr, Op
from .liveness import Liveness

__all__ = [
    "Recipe",
    "RecoveryPlan",
    "insert_checkpoints",
    "strip_checkpoints",
    "prune_checkpoints",
    "collect_recovery_plans",
]

#: A reconstruction recipe for one register:
#:   ("ckpt",)                      -- reload from the checkpoint array
#:   ("const", value)               -- rematerialize a constant
#:   ("expr", op, operands)         -- recompute; each operand is
#:                                     ("imm", v) or ("ckpt", regname)
Recipe = Tuple


@dataclass
class RecoveryPlan:
    """What recovery must do to restore the live-ins of the region that
    *starts* right after the boundary ``boundary_uid``."""

    boundary_uid: int
    recipes: Dict[str, Recipe] = field(default_factory=dict)

    def checkpointed(self) -> List[str]:
        return sorted(r for r, recipe in self.recipes.items() if recipe[0] == "ckpt")

    def pruned(self) -> List[str]:
        return sorted(r for r, recipe in self.recipes.items() if recipe[0] != "ckpt")


def strip_checkpoints(func: Function) -> None:
    for block in func.blocks.values():
        block.instrs = [i for i in block.instrs if i.op != Op.CHECKPOINT]


def insert_checkpoints(func: Function) -> int:
    """Insert checkpoint stores before every boundary for its live-out
    registers.  Returns the number of checkpoints inserted.  Assumes
    boundaries are normalized (last instruction before the terminator)."""
    strip_checkpoints(func)
    live = Liveness(func)
    inserted = 0
    for label, block in func.blocks.items():
        out: List[Instr] = []
        for idx, instr in enumerate(block.instrs):
            if instr.op == Op.BOUNDARY:
                live_out = sorted(live.live_after(label, idx))
                for reg in live_out:
                    out.append(Instr(Op.CHECKPOINT, srcs=(reg,), note=reg))
                    inserted += 1
            out.append(instr)
        block.instrs = out
    return inserted


def _local_recipe(
    block_instrs: Sequence[Instr],
    boundary_index: int,
    reg: str,
    checkpointed: Set[str],
) -> Optional[Recipe]:
    """A reconstruction recipe for ``reg`` derivable from the boundary's own
    block, or None.  ``checkpointed`` is the set of registers guaranteed to
    remain checkpointed (recipe operands may only reference those)."""
    # Find the last def of reg before the boundary.
    def_idx = -1
    for i in range(boundary_index - 1, -1, -1):
        if reg in block_instrs[i].defs():
            def_idx = i
            break
    if def_idx < 0:
        return None
    instr = block_instrs[def_idx]

    if instr.op == Op.CONST:
        return ("const", instr.imm)

    if instr.op not in Op.BINOPS and instr.op != Op.MOV:
        return None

    # Every register operand must be (a) checkpointed and (b) unchanged
    # between the def and the boundary, so that its checkpointed value (its
    # value at the boundary) equals its value at the def.
    operands: List[Tuple] = []
    for src in instr.srcs:
        if isinstance(src, int):
            operands.append(("imm", src))
            continue
        if src not in checkpointed or src == reg:
            return None
        for j in range(def_idx + 1, boundary_index):
            if src in block_instrs[j].defs():
                return None
        operands.append(("ckpt", src))
    if instr.op == Op.MOV:
        return ("expr", Op.ADD, (operands[0], ("imm", 0)))
    return ("expr", instr.op, tuple(operands))


def prune_checkpoints(func: Function) -> Dict[int, RecoveryPlan]:
    """Remove reconstructible checkpoints and build per-boundary recovery
    plans.  Returns ``{boundary_uid: RecoveryPlan}``."""
    plans: Dict[int, RecoveryPlan] = {}
    for label, block in func.blocks.items():
        # Locate the boundary (normalized: at most one, before terminator).
        for b_idx, b_instr in enumerate(block.instrs):
            if b_instr.op != Op.BOUNDARY:
                continue
            ckpt_indices = [
                i
                for i in range(b_idx)
                if block.instrs[i].op == Op.CHECKPOINT
                and _belongs_to(block.instrs, i, b_idx)
            ]
            regs = [block.instrs[i].srcs[0] for i in ckpt_indices]
            checkpointed: Set[str] = set(regs)
            plan = RecoveryPlan(boundary_uid=b_instr.uid)

            # Greedy pruning: a register is pruned only if its recipe's
            # operands stay checkpointed; operands become unprunable.
            pinned: Set[str] = set()
            pruned: Dict[str, Recipe] = {}
            for reg in sorted(regs):
                if reg in pinned:
                    continue
                recipe = _local_recipe(
                    block.instrs, b_idx, reg, checkpointed - set(pruned) - {reg}
                )
                if recipe is None:
                    continue
                if recipe[0] == "expr":
                    for operand in recipe[2]:
                        if operand[0] == "ckpt":
                            pinned.add(operand[1])
                pruned[reg] = recipe

            for reg in regs:
                plan.recipes[reg] = pruned.get(reg, ("ckpt",))
            plans[b_instr.uid] = plan

            # Physically remove pruned checkpoint stores.
            remove = {
                i
                for i in ckpt_indices
                if block.instrs[i].srcs[0] in pruned
            }
            if remove:
                block.instrs = [
                    instr
                    for i, instr in enumerate(block.instrs)
                    if i not in remove
                ]
            break  # normalized blocks hold one boundary
    return plans


def _belongs_to(instrs: Sequence[Instr], ckpt_idx: int, boundary_idx: int) -> bool:
    """True when no other boundary separates the checkpoint from the
    boundary at ``boundary_idx`` (defensive; normalized blocks cannot
    trigger this)."""
    return all(
        instrs[j].op != Op.BOUNDARY for j in range(ckpt_idx + 1, boundary_idx)
    )


def collect_recovery_plans(func: Function) -> Dict[int, RecoveryPlan]:
    """Plans for a function where pruning was *not* run: every checkpoint
    reloads from the array."""
    plans: Dict[int, RecoveryPlan] = {}
    for block in func.blocks.values():
        pending: List[str] = []
        for instr in block.instrs:
            if instr.op == Op.CHECKPOINT:
                pending.append(instr.srcs[0])
            elif instr.op == Op.BOUNDARY:
                plan = RecoveryPlan(boundary_uid=instr.uid)
                for reg in pending:
                    plan.recipes[reg] = ("ckpt",)
                plans[instr.uid] = plan
                pending = []
    return plans
