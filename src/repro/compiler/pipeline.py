"""The LightWSP compiler driver (Fig. 3).

``compile_program`` clones the input program and runs, per function:

1. loop unrolling / speculative unrolling (region size extension),
2. initial region-boundary insertion,
3. per-block threshold enforcement + boundary normalization,
4. liveness analysis + checkpoint insertion,
5. region formation (combine / repartition fixpoint),
6. checkpoint pruning + recovery-plan collection.

The result is a :class:`CompiledProgram`: the instrumented IR, the
per-boundary recovery plans, and static statistics (§V-G3 reports the
dynamic counterparts).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import CompilerConfig
from .boundaries import (
    enforce_threshold_in_blocks,
    insert_initial_boundaries,
    max_region_store_count,
    normalize_boundaries,
)
from .checkpoints import RecoveryPlan, collect_recovery_plans, prune_checkpoints
from .interp import precompile_dispatch
from .ir import Function, Op, Program
from .opt import optimize_function
from .regions import RegionFormationStats, form_regions
from .unroll import UnrollStats, unroll_loops

__all__ = [
    "CompiledProgram",
    "CompileStats",
    "compile_program",
    "clone_program",
    "set_default_verify",
]

#: process-wide default for post-compile verification; None falls back to
#: the REPRO_VERIFY environment variable (tests/conftest.py turns it on
#: for the whole suite).
_DEFAULT_VERIFY: Optional[bool] = None


def set_default_verify(enabled: Optional[bool]) -> None:
    """Set the process-wide default for ``compile_program(verify=None)``.

    ``None`` restores the environment-driven default (``REPRO_VERIFY``)."""
    global _DEFAULT_VERIFY
    _DEFAULT_VERIFY = enabled


def _verify_enabled(verify: Optional[bool]) -> bool:
    if verify is not None:
        return verify
    if _DEFAULT_VERIFY is not None:
        return _DEFAULT_VERIFY
    return os.environ.get("REPRO_VERIFY", "") not in ("", "0", "false", "off")


@dataclass
class CompileStats:
    """Static compilation statistics, per program."""

    functions: int = 0
    boundaries: int = 0
    checkpoint_stores: int = 0
    pruned_checkpoints: int = 0
    data_stores: int = 0
    max_region_stores: int = 0
    minimized_boundaries: int = 0
    converged: bool = True
    folded: int = 0
    eliminated: int = 0
    unroll: UnrollStats = field(default_factory=UnrollStats)
    region_formation: List[RegionFormationStats] = field(default_factory=list)

    @property
    def instrumentation_stores(self) -> int:
        """Stores the compiler added (checkpoints + PC-checkpointing
        boundaries) — the source of LightWSP's instruction overhead."""
        return self.boundaries + self.checkpoint_stores


@dataclass
class CompiledProgram:
    """A program instrumented with boundaries and checkpoints."""

    program: Program
    plans: Dict[int, RecoveryPlan]
    stats: CompileStats
    config: CompilerConfig
    #: boundary uid -> (function name, block label, index of the boundary)
    boundary_sites: Dict[int, Tuple[str, str, int]] = field(default_factory=dict)

    def plan_for(self, boundary_uid: int) -> RecoveryPlan:
        return self.plans.get(boundary_uid, RecoveryPlan(boundary_uid))


def clone_program(program: Program) -> Program:
    """Deep copy with fresh instruction identities, leaving the input
    untouched so one workload can be compiled under many configs."""
    new = Program(program.name)
    new.globals = dict(program.globals)
    new._next_addr = program._next_addr
    for func in program.functions.values():
        clone = Function(func.name, func.params)
        for label in func.block_order():
            block = clone.add_block(label)
            block.instrs = [instr.copy() for instr in func.blocks[label].instrs]
        clone.entry = func.entry
        new.functions[func.name] = clone
    return new


def compile_program(
    program: Program,
    config: Optional[CompilerConfig] = None,
    verify: Optional[bool] = None,
    minimize_boundaries: bool = False,
) -> CompiledProgram:
    """Run the full Fig. 3 pipeline on a clone of ``program``.

    ``verify=True`` re-checks the output with the independent static
    verifier (:mod:`repro.verify`) and raises
    :class:`~repro.verify.VerificationError` on any rule violation.
    ``verify=None`` defers to :func:`set_default_verify` and then the
    ``REPRO_VERIFY`` environment variable; the default is off.

    ``minimize_boundaries=True`` runs the verifier-backed minimizer
    (:func:`repro.verify.place.minimize_compiled`) as a final pass,
    deleting every boundary whose removal the rule checkers prove safe;
    the count lands in ``stats.minimized_boundaries``."""
    config = config or CompilerConfig()
    program.validate()
    prog = clone_program(program)
    stats = CompileStats(functions=len(prog.functions))
    plans: Dict[int, RecoveryPlan] = {}

    for func in prog.functions.values():
        _compile_function(func, config, stats, plans)

    # Gather program-level counts and boundary site map.
    compiled = CompiledProgram(program=prog, plans=plans, stats=stats, config=config)
    for fname, func in prog.functions.items():
        for label in func.block_order():
            for idx, instr in enumerate(func.blocks[label].instrs):
                if instr.op == Op.BOUNDARY:
                    stats.boundaries += 1
                    compiled.boundary_sites[instr.uid] = (fname, label, idx)
                elif instr.op == Op.CHECKPOINT:
                    stats.checkpoint_stores += 1
                elif instr.op in (Op.STORE, Op.ATOMIC_RMW):
                    stats.data_stores += 1
        stats.max_region_stores = max(
            stats.max_region_stores, max_region_store_count(func)
        )
    prog.validate()

    if minimize_boundaries:
        # Imported lazily for the same reason as the verify gate below.
        from ..verify.place import minimize_compiled

        minimize_compiled(compiled)
        prog.validate()

    if _verify_enabled(verify):
        # Imported lazily: repro.verify audits this module's output and
        # importing it at module scope would be circular.
        from ..verify import VerificationError, verify_compiled

        report = verify_compiled(compiled)
        if not report.ok:
            raise VerificationError(report)

    # Lower every block to interpreter dispatch code now, after the
    # minimizer has stopped editing blocks, so runs never pay it lazily.
    precompile_dispatch(prog)
    return compiled


def _compile_function(
    func: Function,
    config: CompilerConfig,
    stats: CompileStats,
    plans: Dict[int, RecoveryPlan],
) -> None:
    threshold = config.store_threshold

    unroll_stats = unroll_loops(
        func,
        threshold,
        limit=config.unroll_limit,
        speculative=config.speculative_unroll,
    )
    stats.unroll.static_unrolled += unroll_stats.static_unrolled
    stats.unroll.speculative_unrolled += unroll_stats.speculative_unrolled
    stats.unroll.total_factor += unroll_stats.total_factor

    insert_initial_boundaries(func)
    enforce_threshold_in_blocks(func, threshold)
    normalize_boundaries(func)

    formation = form_regions(func, threshold, merge=config.merge_regions)
    stats.region_formation.append(formation)
    stats.converged = stats.converged and formation.converged

    if config.scalar_opts:
        opt = optimize_function(func)
        stats.folded += opt.folded
        stats.eliminated += opt.eliminated

    if config.prune_checkpoints:
        func_plans = prune_checkpoints(func)
    else:
        func_plans = collect_recovery_plans(func)
    for plan in func_plans.values():
        stats.pruned_checkpoints += len(plan.pruned())
    plans.update(func_plans)
