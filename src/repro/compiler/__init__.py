"""The LightWSP compiler substrate: IR, analyses, and the region-
partitioning pass pipeline of Fig. 3."""

from .builder import FunctionBuilder
from .cfg import CFG, split_block_at
from .checkpoints import RecoveryPlan
from .interp import LockTable, ThreadVM, WordMemory, run_single, run_threads
from .ir import BasicBlock, Function, Instr, Op, Program, WORD_BYTES
from .liveness import Liveness
from .loops import NaturalLoop, constant_trip_count, find_loops
from .opt import OptStats, eliminate_dead_code, fold_constants, optimize_function
from .pipeline import CompiledProgram, CompileStats, clone_program, compile_program

__all__ = [
    "FunctionBuilder",
    "CFG",
    "split_block_at",
    "RecoveryPlan",
    "LockTable",
    "ThreadVM",
    "WordMemory",
    "run_single",
    "run_threads",
    "BasicBlock",
    "Function",
    "Instr",
    "Op",
    "Program",
    "WORD_BYTES",
    "Liveness",
    "NaturalLoop",
    "OptStats",
    "eliminate_dead_code",
    "fold_constants",
    "optimize_function",
    "constant_trip_count",
    "find_loops",
    "CompiledProgram",
    "CompileStats",
    "clone_program",
    "compile_program",
]
