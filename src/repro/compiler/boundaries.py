"""Initial region-boundary insertion (§IV-A).

The pass inserts ``boundary`` pseudo-instructions:

* at the entry and before every ``ret`` of each function,
* around every callsite (callsites are region boundaries),
* at the header of every loop that contains stores,
* before every synchronization instruction (fence / atomic / lock /
  unlock), so that the dynamic region-ID sequence reflects the
  happens-before order of data-race-free programs (§III-D),
* wherever a straight-line run of stores would otherwise exceed the
  store-count threshold (half the WPQ size).

A normalization step then splits blocks so that every boundary is the last
instruction of its block (before the terminator) — "regions always start at
the beginning of basic blocks", which keeps region live-outs derivable from
block liveness.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .cfg import CFG, split_block_at
from .ir import Function, Instr, Op, is_boundary_forcing
from .loops import find_loops

__all__ = [
    "insert_initial_boundaries",
    "enforce_threshold_in_blocks",
    "normalize_boundaries",
    "boundary",
    "strip_boundaries",
    "max_region_store_count",
]

#: Boundary kinds that later passes must never remove.
REQUIRED_KINDS = frozenset({"entry", "exit", "call", "sync", "loop", "io"})


def boundary(kind: str) -> Instr:
    """A fresh boundary instruction of the given kind."""
    return Instr(Op.BOUNDARY, note=kind)


def insert_initial_boundaries(func: Function) -> None:
    """Insert entry/exit/callsite/loop-header/sync boundaries in place."""
    # Loop headers first (uses the pre-insertion CFG shape).
    loops = find_loops(func)
    headers_needing_boundary: Set[str] = {
        loop.header for loop in loops if loop.contains_stores(func)
    }

    for label in list(func.blocks):
        block = func.blocks[label]
        new_instrs: List[Instr] = []
        if label in headers_needing_boundary:
            new_instrs.append(boundary("loop"))
        if label == func.entry:
            # The entry boundary ends the *caller's* region at the callee
            # prologue; it goes first.
            new_instrs.insert(0, boundary("entry"))
        for instr in block.instrs:
            if instr.op == Op.CALL:
                new_instrs.append(boundary("call"))
                new_instrs.append(instr)
                new_instrs.append(boundary("call"))
            elif instr.op in Op.IRREVOCABLE:
                # §IV-A: checkpoint the necessary status before the I/O
                # starts so an interrupted operation restarts cleanly; the
                # trailing boundary makes the I/O its own tiny region.
                new_instrs.append(boundary("io"))
                new_instrs.append(instr)
                new_instrs.append(boundary("io"))
            elif is_boundary_forcing(instr.op):
                new_instrs.append(boundary("sync"))
                new_instrs.append(instr)
            elif instr.op == Op.RET:
                new_instrs.append(boundary("exit"))
                new_instrs.append(instr)
            else:
                new_instrs.append(instr)
        block.instrs = new_instrs


def enforce_threshold_in_blocks(func: Function, threshold: int) -> None:
    """Within each block, never allow more than ``threshold`` store-like
    instructions since the last boundary.  (Cross-block runs are handled by
    the region-formation fixpoint.)  Boundary instructions themselves are
    PC-checkpointing stores and count toward the *next* region's budget of
    the WPQ, but by convention the paper counts data + checkpoint stores of
    the region against the threshold; we count every store-like
    instruction."""
    for block in func.blocks.values():
        new_instrs: List[Instr] = []
        count = 0
        for instr in block.instrs:
            if instr.op == Op.BOUNDARY:
                count = 0
                new_instrs.append(instr)
                continue
            if instr.is_store_like():
                if count + 1 > threshold:
                    new_instrs.append(boundary("threshold"))
                    count = 0
                count += 1
            new_instrs.append(instr)
        block.instrs = new_instrs


def normalize_boundaries(func: Function) -> None:
    """Split blocks so every boundary is the final instruction before its
    block's terminator.  Consecutive boundaries are collapsed (the later
    one is redundant unless it is required)."""
    _collapse_adjacent(func)
    changed = True
    while changed:
        changed = False
        for label in list(func.blocks):
            block = func.blocks[label]
            for i, instr in enumerate(block.instrs):
                at_block_end = i == len(block.instrs) - 2 and block.instrs[
                    -1
                ].is_terminator()
                if instr.op == Op.BOUNDARY and not at_block_end and i != len(
                    block.instrs
                ) - 1:
                    split_block_at(func, label, i + 1, hint=label + ".r")
                    changed = True
                    break
            if changed:
                break


def _collapse_adjacent(func: Function) -> None:
    """Drop a boundary that immediately follows another; keep the one with
    a required kind (or the first)."""
    for block in func.blocks.values():
        out: List[Instr] = []
        for instr in block.instrs:
            if (
                instr.op == Op.BOUNDARY
                and out
                and out[-1].op == Op.BOUNDARY
            ):
                if instr.note in REQUIRED_KINDS and out[-1].note not in REQUIRED_KINDS:
                    out[-1] = instr
                continue
            out.append(instr)
        block.instrs = out


def strip_boundaries(func: Function) -> None:
    """Remove all boundary instructions (used by tests and by the baseline
    build that runs the original binary)."""
    for block in func.blocks.values():
        block.instrs = [i for i in block.instrs if i.op != Op.BOUNDARY]


def max_region_store_count(func: Function, cap: int = 4096) -> int:
    """The maximum number of store-like instructions on any boundary-free
    CFG path — the quantity the threshold bounds.

    Computed by a monotone fixpoint: ``in[b]`` is the largest store count
    accumulated since the most recent boundary at entry to ``b``.  Counts
    are clamped at ``cap`` so that cycles without boundaries (which are
    only legal when they contain no stores) terminate; a result equal to
    ``cap`` therefore means "unbounded".  Callers that only need a
    threshold check should pass ``cap=threshold + 1``.
    """
    cfg = CFG(func)
    labels = cfg.reverse_postorder()
    in_count: Dict[str, int] = {lbl: 0 for lbl in labels}
    out_count: Dict[str, int] = {}
    best = 0

    def block_flow(label: str, entering: int) -> int:
        nonlocal best
        count = entering
        for instr in func.blocks[label].instrs:
            if instr.op == Op.BOUNDARY:
                # A region's store count excludes its terminating boundary
                # (the PC-checkpointing store); threshold = WPQ/2 leaves
                # ample headroom for it, per §IV-A.
                count = 0
            elif instr.is_store_like():
                count = min(cap, count + 1)
                best = max(best, count)
        return count

    # Monotone + clamped at `cap`, so this terminates in at most
    # cap * |blocks| sweeps (each productive sweep raises some in-count).
    changed = True
    while changed:
        changed = False
        for label in labels:
            out = block_flow(label, in_count[label])
            if out_count.get(label) != out:
                out_count[label] = out
                changed = True
            for succ in cfg.succs[label]:
                if out > in_count[succ]:
                    in_count[succ] = out
                    changed = True
    return best
