"""Fluent construction helpers for the IR.

:class:`FunctionBuilder` wraps a :class:`~repro.compiler.ir.Function` and a
current insertion block, offering one method per opcode::

    prog = Program("saxpy")
    x = prog.array("x", 1024)
    y = prog.array("y", 1024)
    fb = FunctionBuilder(prog, "main")
    fb.block("entry")
    fb.const("r1", 0)                 # i = 0
    fb.br("loop")
    fb.block("loop")
    fb.load("r2", "r1", base=x)       # r2 = x[i]
    fb.add("r3", "r2", 3)
    fb.store("r3", "r1", base=y)      # y[i] = r2 + 3
    fb.add("r1", "r1", 1)
    fb.lt("r4", "r1", 1024)
    fb.cbr("r4", "loop", "exit")
    fb.block("exit")
    fb.ret()

Addresses: ``base`` is an absolute word address (typically from
``Program.array``), combined with an index register and word offset.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .ir import BasicBlock, Function, Instr, Op, Operand, Program

__all__ = ["FunctionBuilder"]


class FunctionBuilder:
    """Builds one function, appending instructions to a current block."""

    def __init__(
        self,
        program: Optional[Program],
        name: str,
        params: Sequence[str] = (),
    ) -> None:
        self.program = program
        self.func = Function(name, params)
        if program is not None:
            program.add_function(self.func)
        self._current: Optional[BasicBlock] = None

    # ------------------------------------------------------------------
    # blocks
    # ------------------------------------------------------------------
    def block(self, label: str) -> BasicBlock:
        """Create block ``label`` and make it the insertion point."""
        self._current = self.func.add_block(label)
        return self._current

    def switch_to(self, label: str) -> BasicBlock:
        self._current = self.func.blocks[label]
        return self._current

    @property
    def current(self) -> BasicBlock:
        if self._current is None:
            raise RuntimeError("no current block; call .block() first")
        return self._current

    def emit(self, instr: Instr) -> Instr:
        return self.current.append(instr)

    # ------------------------------------------------------------------
    # data / arithmetic
    # ------------------------------------------------------------------
    def const(self, dst: str, value: int) -> Instr:
        return self.emit(Instr(Op.CONST, dst=dst, imm=value))

    def mov(self, dst: str, src: Operand) -> Instr:
        return self.emit(Instr(Op.MOV, dst=dst, srcs=(src,)))

    def _binop(self, op: str, dst: str, a: Operand, b: Operand) -> Instr:
        return self.emit(Instr(op, dst=dst, srcs=(a, b)))

    def add(self, dst: str, a: Operand, b: Operand) -> Instr:
        return self._binop(Op.ADD, dst, a, b)

    def sub(self, dst: str, a: Operand, b: Operand) -> Instr:
        return self._binop(Op.SUB, dst, a, b)

    def mul(self, dst: str, a: Operand, b: Operand) -> Instr:
        return self._binop(Op.MUL, dst, a, b)

    def div(self, dst: str, a: Operand, b: Operand) -> Instr:
        return self._binop(Op.DIV, dst, a, b)

    def mod(self, dst: str, a: Operand, b: Operand) -> Instr:
        return self._binop(Op.MOD, dst, a, b)

    def and_(self, dst: str, a: Operand, b: Operand) -> Instr:
        return self._binop(Op.AND, dst, a, b)

    def or_(self, dst: str, a: Operand, b: Operand) -> Instr:
        return self._binop(Op.OR, dst, a, b)

    def xor(self, dst: str, a: Operand, b: Operand) -> Instr:
        return self._binop(Op.XOR, dst, a, b)

    def shl(self, dst: str, a: Operand, b: Operand) -> Instr:
        return self._binop(Op.SHL, dst, a, b)

    def shr(self, dst: str, a: Operand, b: Operand) -> Instr:
        return self._binop(Op.SHR, dst, a, b)

    def min(self, dst: str, a: Operand, b: Operand) -> Instr:
        return self._binop(Op.MIN, dst, a, b)

    def max(self, dst: str, a: Operand, b: Operand) -> Instr:
        return self._binop(Op.MAX, dst, a, b)

    def eq(self, dst: str, a: Operand, b: Operand) -> Instr:
        return self._binop(Op.EQ, dst, a, b)

    def ne(self, dst: str, a: Operand, b: Operand) -> Instr:
        return self._binop(Op.NE, dst, a, b)

    def lt(self, dst: str, a: Operand, b: Operand) -> Instr:
        return self._binop(Op.LT, dst, a, b)

    def le(self, dst: str, a: Operand, b: Operand) -> Instr:
        return self._binop(Op.LE, dst, a, b)

    def gt(self, dst: str, a: Operand, b: Operand) -> Instr:
        return self._binop(Op.GT, dst, a, b)

    def ge(self, dst: str, a: Operand, b: Operand) -> Instr:
        return self._binop(Op.GE, dst, a, b)

    def nop(self) -> Instr:
        return self.emit(Instr(Op.NOP))

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def load(self, dst: str, index: Operand, base: int = 0) -> Instr:
        """``dst <- mem[index + base]`` (word addressing)."""
        return self.emit(Instr(Op.LOAD, dst=dst, addr=index, offset=base))

    def store(self, src: Operand, index: Operand, base: int = 0) -> Instr:
        """``mem[index + base] <- src``."""
        return self.emit(Instr(Op.STORE, srcs=(src,), addr=index, offset=base))

    def atomic_rmw(
        self, dst: str, index: Operand, src: Operand, op: str = "add", base: int = 0
    ) -> Instr:
        return self.emit(
            Instr(
                Op.ATOMIC_RMW,
                dst=dst,
                srcs=(src,),
                addr=index,
                offset=base,
                rmw_op=op,
            )
        )

    # ------------------------------------------------------------------
    # control flow
    # ------------------------------------------------------------------
    def br(self, target: str) -> Instr:
        return self.emit(Instr(Op.BR, targets=(target,)))

    def cbr(self, cond: Operand, then_target: str, else_target: str) -> Instr:
        return self.emit(
            Instr(Op.CBR, srcs=(cond,), targets=(then_target, else_target))
        )

    def call(self, callee: str, args: Sequence[Operand] = (), ret: Optional[str] = None) -> Instr:
        return self.emit(Instr(Op.CALL, dst=ret, srcs=tuple(args), callee=callee))

    def ret(self, value: Optional[Operand] = None) -> Instr:
        srcs = (value,) if value is not None else ()
        return self.emit(Instr(Op.RET, srcs=srcs))

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def fence(self) -> Instr:
        return self.emit(Instr(Op.FENCE))

    def io(self, device: int, payload: Optional[Operand] = None) -> Instr:
        """An irrevocable external operation (console write, NIC doorbell,
        block-device command).  §IV-A: the compiler brackets it with
        boundaries so a power-interrupted I/O restarts from just before
        the operation."""
        srcs = (payload,) if payload is not None else ()
        return self.emit(Instr(Op.IO, srcs=srcs, imm=device))

    def lock(self, lock_id: int) -> Instr:
        return self.emit(Instr(Op.LOCK, imm=lock_id))

    def unlock(self, lock_id: int) -> Instr:
        return self.emit(Instr(Op.UNLOCK, imm=lock_id))

    # ------------------------------------------------------------------
    def build(self) -> Function:
        self.func.validate()
        return self.func
