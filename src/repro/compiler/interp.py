"""A stepping interpreter (VM) for the IR.

The VM executes one instruction per :meth:`ThreadVM.step` call and returns
a :class:`~repro.sim.trace.TraceEvent`, so it serves three masters:

* trace generation for the timing simulator (run a thread to completion,
  collect the events),
* the functional persistence machine, which interposes on every memory
  write to model WPQ gating and can stop a thread at an arbitrary step to
  inject a power failure,
* multi-threaded scheduling: ``step`` returns ``None`` when the thread is
  blocked on a lock, letting a scheduler interleave threads.

Semantics notes: all arithmetic wraps to signed 64-bit; division/modulo by
zero yield 0 (no traps — power failure is the only "exception" this system
cares about); every call frame gets a fresh register file with parameters
bound (callee-saved-everything, which makes per-function liveness sound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..sim.trace import EK, TraceEvent
from .ir import WORD_BYTES, Instr, Op, Program

__all__ = ["WordMemory", "LockTable", "ThreadVM", "run_single", "run_threads"]

_MASK64 = (1 << 64) - 1


def _wrap(value: int) -> int:
    """Wrap to signed 64-bit."""
    value &= _MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


def _binop(op: str, a: int, b: int) -> int:
    if op == Op.ADD:
        return _wrap(a + b)
    if op == Op.SUB:
        return _wrap(a - b)
    if op == Op.MUL:
        return _wrap(a * b)
    if op == Op.DIV:
        return _wrap(a // b) if b else 0
    if op == Op.MOD:
        return _wrap(a % b) if b else 0
    if op == Op.AND:
        return _wrap(a & b)
    if op == Op.OR:
        return _wrap(a | b)
    if op == Op.XOR:
        return _wrap(a ^ b)
    if op == Op.SHL:
        return _wrap(a << (b & 63))
    if op == Op.SHR:
        return _wrap((a & _MASK64) >> (b & 63))
    if op == Op.MIN:
        return min(a, b)
    if op == Op.MAX:
        return max(a, b)
    if op == Op.EQ:
        return int(a == b)
    if op == Op.NE:
        return int(a != b)
    if op == Op.LT:
        return int(a < b)
    if op == Op.LE:
        return int(a <= b)
    if op == Op.GT:
        return int(a > b)
    if op == Op.GE:
        return int(a >= b)
    raise ValueError("unknown binop %r" % op)


class WordMemory:
    """Word-granular memory; absent words read as zero."""

    def __init__(self) -> None:
        self.words: Dict[int, int] = {}

    def read(self, addr: int) -> int:
        return self.words.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        self.words[addr] = value

    def snapshot(self) -> Dict[int, int]:
        return dict(self.words)


class LockTable:
    """Shared lock ownership for multi-threaded runs."""

    def __init__(self) -> None:
        self.owner: Dict[int, int] = {}

    def try_acquire(self, lock_id: int, tid: int) -> bool:
        if self.owner.get(lock_id) is None:
            self.owner[lock_id] = tid
            return True
        return False

    def release(self, lock_id: int, tid: int) -> None:
        if self.owner.get(lock_id) != tid:
            raise RuntimeError(
                "thread %d releasing lock %d it does not hold" % (tid, lock_id)
            )
        del self.owner[lock_id]


@dataclass
class Frame:
    """A saved caller context."""

    regs: Dict[str, int]
    func: str
    block: str
    index: int
    ret_reg: Optional[str]


class ThreadVM:
    """One hardware thread executing a (compiled or plain) program."""

    def __init__(
        self,
        program: Program,
        func_name: str,
        args: Sequence[int] = (),
        memory: Optional[WordMemory] = None,
        tid: int = 0,
        locks: Optional[LockTable] = None,
    ) -> None:
        self.program = program
        self.memory = memory if memory is not None else WordMemory()
        self.tid = tid
        self.locks = locks if locks is not None else LockTable()
        func = program.functions[func_name]
        self.regs: Dict[str, int] = {}
        for param, arg in zip(func.params, args):
            self.regs[param] = _wrap(int(arg))
        self.frames: List[Frame] = []
        self.func_name = func_name
        self.block = func.entry
        self.index = 0
        self.halted = False
        self.steps = 0
        #: externally visible I/O operations performed: (device, payload)
        self.io_log: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    def _value(self, operand: Union[int, str]) -> int:
        if isinstance(operand, int):
            return operand
        return self.regs.get(operand, 0)

    def _addr(self, instr: Instr) -> int:
        return _wrap(self._value(instr.addr) + instr.offset)

    def current_instr(self) -> Optional[Instr]:
        if self.halted:
            return None
        func = self.program.functions[self.func_name]
        block = func.blocks[self.block]
        return block.instrs[self.index]

    def position(self) -> Tuple[str, str, int]:
        return (self.func_name, self.block, self.index)

    # ------------------------------------------------------------------
    def step(self) -> Optional[TraceEvent]:
        """Execute one instruction.  Returns the trace event, ``None``
        when blocked on a lock, or a HALT event exactly once at the end."""
        if self.halted:
            return None
        instr = self.current_instr()
        assert instr is not None
        op = instr.op

        # Locks may refuse to advance the thread.
        if op == Op.LOCK:
            if not self.locks.try_acquire(instr.imm, self.tid):
                return None
            self._advance()
            self.steps += 1
            return TraceEvent(EK.LOCK, tid=self.tid, lock_id=instr.imm)

        self.steps += 1
        if op == Op.UNLOCK:
            self.locks.release(instr.imm, self.tid)
            self._advance()
            return TraceEvent(EK.UNLOCK, tid=self.tid, lock_id=instr.imm)

        if op == Op.CONST:
            self.regs[instr.dst] = _wrap(instr.imm)
            self._advance()
            return TraceEvent(EK.ALU, tid=self.tid)

        if op == Op.MOV:
            self.regs[instr.dst] = self._value(instr.srcs[0])
            self._advance()
            return TraceEvent(EK.ALU, tid=self.tid)

        if op in Op.BINOPS:
            a = self._value(instr.srcs[0])
            b = self._value(instr.srcs[1])
            self.regs[instr.dst] = _binop(op, a, b)
            self._advance()
            return TraceEvent(EK.ALU, tid=self.tid)

        if op == Op.NOP:
            self._advance()
            return TraceEvent(EK.ALU, tid=self.tid)

        if op == Op.LOAD:
            addr = self._addr(instr)
            self.regs[instr.dst] = self.memory.read(addr)
            self._advance()
            return TraceEvent(EK.LOAD, addr=addr * WORD_BYTES, tid=self.tid)

        if op == Op.STORE:
            addr = self._addr(instr)
            self.memory.write(addr, self._value(instr.srcs[0]))
            self._advance()
            return TraceEvent(EK.STORE, addr=addr * WORD_BYTES, tid=self.tid)

        if op == Op.ATOMIC_RMW:
            addr = self._addr(instr)
            old = self.memory.read(addr)
            operand = self._value(instr.srcs[0])
            new = operand if instr.rmw_op == "xchg" else _binop(instr.rmw_op, old, operand)
            self.memory.write(addr, new)
            if instr.dst is not None:
                self.regs[instr.dst] = old
            self._advance()
            return TraceEvent(EK.ATOMIC, addr=addr * WORD_BYTES, tid=self.tid)

        if op == Op.CHECKPOINT:
            reg = instr.srcs[0]
            slot = Program.checkpoint_slot(self.tid, reg)
            self.memory.write(slot, self.regs.get(reg, 0))
            self._advance()
            return TraceEvent(EK.CHECKPOINT, addr=slot * WORD_BYTES, tid=self.tid)

        if op == Op.BOUNDARY:
            slot = Program.pc_slot(self.tid)
            self.memory.write(slot, instr.uid)
            self._advance()
            return TraceEvent(
                EK.BOUNDARY,
                addr=slot * WORD_BYTES,
                tid=self.tid,
                boundary_uid=instr.uid,
            )

        if op == Op.FENCE:
            self._advance()
            return TraceEvent(EK.FENCE, tid=self.tid)

        if op == Op.IO:
            payload = self._value(instr.srcs[0]) if instr.srcs else 0
            self.io_log.append((instr.imm, payload))
            self._advance()
            return TraceEvent(
                EK.IO, tid=self.tid, lock_id=instr.imm, payload=payload
            )

        if op == Op.BR:
            self._jump(instr.targets[0])
            return TraceEvent(EK.ALU, tid=self.tid)

        if op == Op.CBR:
            taken = self._value(instr.srcs[0]) != 0
            self._jump(instr.targets[0] if taken else instr.targets[1])
            return TraceEvent(EK.ALU, tid=self.tid)

        if op == Op.CALL:
            callee = self.program.functions[instr.callee]
            frame = Frame(
                regs=self.regs,
                func=self.func_name,
                block=self.block,
                index=self.index + 1,
                ret_reg=instr.dst,
            )
            self.frames.append(frame)
            new_regs: Dict[str, int] = {}
            for param, src in zip(callee.params, instr.srcs):
                new_regs[param] = self._value(src)
            self.regs = new_regs
            self.func_name = instr.callee
            self.block = callee.entry
            self.index = 0
            return TraceEvent(EK.ALU, tid=self.tid)

        if op == Op.RET:
            value = self._value(instr.srcs[0]) if instr.srcs else 0
            if not self.frames:
                self.halted = True
                return TraceEvent(EK.HALT, tid=self.tid)
            frame = self.frames.pop()
            self.regs = frame.regs
            if frame.ret_reg is not None:
                self.regs[frame.ret_reg] = value
            self.func_name = frame.func
            self.block = frame.block
            self.index = frame.index
            return TraceEvent(EK.ALU, tid=self.tid)

        raise ValueError("unknown opcode %r" % op)

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        self.index += 1

    def _jump(self, label: str) -> None:
        self.block = label
        self.index = 0


def run_single(
    program: Program,
    func_name: str = "main",
    args: Sequence[int] = (),
    max_steps: int = 2_000_000,
    memory: Optional[WordMemory] = None,
) -> Tuple[List[TraceEvent], WordMemory]:
    """Run one thread to completion; returns (events, memory)."""
    vm = ThreadVM(program, func_name, args=args, memory=memory)
    events: List[TraceEvent] = []
    while not vm.halted:
        if vm.steps >= max_steps:
            raise RuntimeError(
                "execution exceeded %d steps (likely non-terminating)" % max_steps
            )
        event = vm.step()
        if event is None:
            raise RuntimeError("single thread blocked on a lock: deadlock")
        events.append(event)
    return events, vm.memory


def run_threads(
    program: Program,
    entries: Sequence[Tuple[str, Sequence[int]]],
    max_steps: int = 4_000_000,
    schedule_seed: int = 0,
    quantum: int = 16,
) -> Tuple[List[TraceEvent], WordMemory]:
    """Run several threads over shared memory with a deterministic
    round-robin schedule (``quantum`` instructions per turn).  The schedule
    seed rotates the starting thread, giving tests cheap schedule
    diversity while staying reproducible."""
    memory = WordMemory()
    locks = LockTable()
    vms = [
        ThreadVM(program, fname, args=args, memory=memory, tid=tid, locks=locks)
        for tid, (fname, args) in enumerate(entries)
    ]
    events: List[TraceEvent] = []
    n = len(vms)
    turn = schedule_seed % n if n else 0
    total = 0
    stalls = 0
    while any(not vm.halted for vm in vms):
        vm = vms[turn]
        turn = (turn + 1) % n
        if vm.halted:
            continue
        progressed = False
        for _ in range(quantum):
            if vm.halted:
                break
            if total >= max_steps:
                raise RuntimeError("multi-thread run exceeded %d steps" % max_steps)
            event = vm.step()
            if event is None:
                break  # blocked on a lock; yield the turn
            progressed = True
            total += 1
            events.append(event)
        if progressed:
            stalls = 0
        else:
            stalls += 1
            if stalls > 2 * n:
                raise RuntimeError("all threads blocked: lock deadlock")
    return events, memory
