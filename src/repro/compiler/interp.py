"""A stepping interpreter (VM) for the IR.

The VM executes one instruction per :meth:`ThreadVM.step` call and returns
a :class:`~repro.sim.trace.TraceEvent`, so it serves three masters:

* trace generation for the timing simulator (run a thread to completion,
  collect the events),
* the functional persistence machine, which interposes on every memory
  write to model WPQ gating and can stop a thread at an arbitrary step to
  inject a power failure,
* multi-threaded scheduling: ``step`` returns ``None`` when the thread is
  blocked on a lock, letting a scheduler interleave threads.

Execution is driven by a precompiled dispatch table: at
:func:`~repro.compiler.pipeline.compile_program` time (or lazily on first
execution) every basic block is lowered once into a list of flat code
tuples — a small-integer opcode plus pre-resolved operands (wrapped
immediates, a specialized binop function, pre-parsed checkpoint slots,
callee parameter tuples).  :meth:`ThreadVM.step` is a thin wrapper that
indexes an opcode → bound-handler table with the tuple's code;
:meth:`ThreadVM.run_fast` executes a whole batch of instructions in one
inline loop over the same tuples, surfacing only the instructions the
outer machine must see (LOCK / ATOMIC_RMW / FENCE / BOUNDARY / IO).  The
batched loop is byte-for-bit equivalent to repeated ``step`` calls — the
parity property suite (tests/core) pins that equivalence across random
programs, and it is the soundness argument for keeping two loops.

The dispatch cache lives on the :class:`~repro.compiler.ir.Program` and
revalidates cheaply (length + terminator identity) on block entry, so the
in-place block surgery the mutation self-test and the placement engine
perform is picked up automatically; code that rewrites *fields* of an
already-executed instruction must call :func:`invalidate_dispatch`.

Semantics notes: all arithmetic wraps to signed 64-bit; division/modulo by
zero yield 0 (no traps — power failure is the only "exception" this system
cares about); every call frame gets a fresh register file with parameters
bound (callee-saved-everything, which makes per-function liveness sound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
    cast,
)

from ..errors import DeadlockError, MachineLimitError
from ..sim.trace import EK, TraceEvent
from .ir import WORD_BYTES, Instr, Op, Program

__all__ = [
    "WordMemory",
    "LockTable",
    "ThreadVM",
    "run_single",
    "run_threads",
    "precompile_dispatch",
    "invalidate_dispatch",
]

_MASK64 = (1 << 64) - 1


def _wrap(value: int) -> int:
    """Wrap to signed 64-bit."""
    value &= _MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


# ----------------------------------------------------------------------
# binop dispatch: one specialized function per operator, resolved once at
# block-compile time instead of string-compared on every execution
# ----------------------------------------------------------------------

def _b_add(a: int, b: int) -> int:
    return _wrap(a + b)


def _b_sub(a: int, b: int) -> int:
    return _wrap(a - b)


def _b_mul(a: int, b: int) -> int:
    return _wrap(a * b)


def _b_div(a: int, b: int) -> int:
    return _wrap(a // b) if b else 0


def _b_mod(a: int, b: int) -> int:
    return _wrap(a % b) if b else 0


def _b_and(a: int, b: int) -> int:
    return _wrap(a & b)


def _b_or(a: int, b: int) -> int:
    return _wrap(a | b)


def _b_xor(a: int, b: int) -> int:
    return _wrap(a ^ b)


def _b_shl(a: int, b: int) -> int:
    return _wrap(a << (b & 63))


def _b_shr(a: int, b: int) -> int:
    return _wrap((a & _MASK64) >> (b & 63))


def _b_min(a: int, b: int) -> int:
    return min(a, b)


def _b_max(a: int, b: int) -> int:
    return max(a, b)


def _b_eq(a: int, b: int) -> int:
    return int(a == b)


def _b_ne(a: int, b: int) -> int:
    return int(a != b)


def _b_lt(a: int, b: int) -> int:
    return int(a < b)


def _b_le(a: int, b: int) -> int:
    return int(a <= b)


def _b_gt(a: int, b: int) -> int:
    return int(a > b)


def _b_ge(a: int, b: int) -> int:
    return int(a >= b)


_BINOP_FUNCS: Dict[str, Callable[[int, int], int]] = {
    Op.ADD: _b_add, Op.SUB: _b_sub, Op.MUL: _b_mul, Op.DIV: _b_div,
    Op.MOD: _b_mod, Op.AND: _b_and, Op.OR: _b_or, Op.XOR: _b_xor,
    Op.SHL: _b_shl, Op.SHR: _b_shr, Op.MIN: _b_min, Op.MAX: _b_max,
    Op.EQ: _b_eq, Op.NE: _b_ne, Op.LT: _b_lt, Op.LE: _b_le,
    Op.GT: _b_gt, Op.GE: _b_ge,
}


def _binop(op: str, a: int, b: int) -> int:
    fn = _BINOP_FUNCS.get(op)
    if fn is None:
        raise ValueError("unknown binop %r" % op)
    return fn(a, b)


# ----------------------------------------------------------------------
# numeric opcodes for the compiled code tuples.  Codes >= _C_PAUSE are
# the machine-visible instructions the batched loop must not execute.
# ----------------------------------------------------------------------
C_CONST = 0
C_MOV = 1
C_BINOP = 2
C_NOP = 3
C_LOAD = 4
C_STORE = 5
C_CKPT = 6
C_BR = 7
C_CBR = 8
C_CALL = 9
C_RET = 10
C_UNLOCK = 11
C_LOCK = 12
C_ATOMIC = 13
C_FENCE = 14
C_BOUNDARY = 15
C_IO = 16

_C_PAUSE = C_LOCK

#: one compiled instruction: (numeric code, source Instr, *pre-resolved)
Code = Tuple[Any, ...]


def _compile_instr(instr: Instr) -> Code:
    """Lower one instruction to a flat code tuple with operands resolved
    as far as they can be without runtime state."""
    op = instr.op
    if op == Op.CONST:
        return (C_CONST, instr, instr.dst, _wrap(cast(int, instr.imm)))
    if op == Op.MOV:
        return (C_MOV, instr, instr.dst, instr.srcs[0])
    if op in Op.BINOPS:
        return (
            C_BINOP, instr, instr.dst, _BINOP_FUNCS[op],
            instr.srcs[0], instr.srcs[1],
        )
    if op == Op.NOP:
        return (C_NOP, instr)
    if op == Op.LOAD:
        return (C_LOAD, instr, instr.dst, instr.addr, instr.offset)
    if op == Op.STORE:
        return (C_STORE, instr, instr.srcs[0], instr.addr, instr.offset)
    if op == Op.CHECKPOINT:
        reg = instr.srcs[0]
        index: Optional[int] = None
        if isinstance(reg, str) and reg.startswith("r"):
            try:
                parsed = int(reg[1:])
            except ValueError:
                parsed = -1
            if 0 <= parsed < Program.N_ARCH_REGS:
                index = parsed
        # invalid registers keep index None so execution raises exactly
        # where the uncompiled interpreter would (checkpoint_slot)
        return (C_CKPT, instr, reg, index)
    if op == Op.BR:
        return (C_BR, instr, instr.targets[0])
    if op == Op.CBR:
        return (C_CBR, instr, instr.srcs[0], instr.targets[0], instr.targets[1])
    if op == Op.CALL:
        return (C_CALL, instr, instr.callee, instr.dst)
    if op == Op.RET:
        return (C_RET, instr, instr.srcs[0] if instr.srcs else 0)
    if op == Op.UNLOCK:
        return (C_UNLOCK, instr, instr.imm)
    if op == Op.LOCK:
        return (C_LOCK, instr, instr.imm)
    if op == Op.ATOMIC_RMW:
        return (C_ATOMIC, instr)
    if op == Op.FENCE:
        return (C_FENCE, instr)
    if op == Op.BOUNDARY:
        return (C_BOUNDARY, instr)
    if op == Op.IO:
        return (C_IO, instr)
    raise ValueError("unknown opcode %r" % op)


def _compile_block(instrs: List[Instr]) -> List[Code]:
    return [_compile_instr(i) for i in instrs]


def precompile_dispatch(program: Program) -> None:
    """Lower every basic block of ``program`` to dispatch code now —
    called once from :func:`~repro.compiler.pipeline.compile_program` so
    execution never pays the lowering lazily."""
    dispatch: Dict[str, Dict[str, List[Code]]] = {}
    for fname, func in program.functions.items():
        dispatch[fname] = {
            label: _compile_block(block.instrs)
            for label, block in func.blocks.items()
        }
    program._dispatch = dispatch


def invalidate_dispatch(program: Program) -> None:
    """Drop the dispatch cache.  Needed only when code mutates *fields*
    of an already-executed instruction in place; block-level insertion or
    deletion is caught by the fetch-time revalidation."""
    program._dispatch = None


class WordMemory:
    """Word-granular memory; absent words read as zero."""

    def __init__(self) -> None:
        self.words: Dict[int, int] = {}

    def read(self, addr: int) -> int:
        return self.words.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        self.words[addr] = value

    def snapshot(self) -> Dict[int, int]:
        return dict(self.words)


class LockTable:
    """Shared lock ownership for multi-threaded runs."""

    def __init__(self) -> None:
        self.owner: Dict[int, int] = {}

    def try_acquire(self, lock_id: int, tid: int) -> bool:
        if self.owner.get(lock_id) is None:
            self.owner[lock_id] = tid
            return True
        return False

    def release(self, lock_id: int, tid: int) -> None:
        if self.owner.get(lock_id) != tid:
            raise RuntimeError(
                "thread %d releasing lock %d it does not hold" % (tid, lock_id)
            )
        del self.owner[lock_id]


@dataclass
class Frame:
    """A saved caller context."""

    regs: Dict[str, int]
    func: str
    block: str
    index: int
    ret_reg: Optional[str]


class ThreadVM:
    """One hardware thread executing a (compiled or plain) program."""

    def __init__(
        self,
        program: Program,
        func_name: str,
        args: Sequence[int] = (),
        memory: Optional[WordMemory] = None,
        tid: int = 0,
        locks: Optional[LockTable] = None,
    ) -> None:
        self.program = program
        self.memory = memory if memory is not None else WordMemory()
        self.tid = tid
        self.locks = locks if locks is not None else LockTable()
        func = program.functions[func_name]
        self.regs: Dict[str, int] = {}
        for param, arg in zip(func.params, args):
            self.regs[param] = _wrap(int(arg))
        self.frames: List[Frame] = []
        self.func_name = func_name
        self.block = func.entry
        self.index = 0
        self.halted = False
        self.steps = 0
        #: externally visible I/O operations performed: (device, payload)
        self.io_log: List[Tuple[int, int]] = []
        #: the machine-visible code tuple :meth:`run_fast` paused before
        #: (None after any other exit) — lets the caller dispatch it
        #: without re-fetching the block
        self.paused_code: Optional[Code] = None

    # ------------------------------------------------------------------
    def _value(self, operand: Union[int, str]) -> int:
        if isinstance(operand, int):
            return operand
        return self.regs.get(operand, 0)

    def _addr(self, instr: Instr) -> int:
        return _wrap(self._value(instr.addr) + instr.offset)

    def current_instr(self) -> Optional[Instr]:
        if self.halted:
            return None
        func = self.program.functions[self.func_name]
        block = func.blocks[self.block]
        return block.instrs[self.index]

    def position(self) -> Tuple[str, str, int]:
        return (self.func_name, self.block, self.index)

    # ------------------------------------------------------------------
    def _code_for(self, func_name: str, label: str) -> List[Code]:
        """The block's compiled code, (re)lowering when the cache is cold
        or the block was edited in place (length / terminator identity)."""
        program = self.program
        dispatch = program._dispatch
        if dispatch is None:
            dispatch = program._dispatch = {}
        fcode = dispatch.get(func_name)
        if fcode is None:
            fcode = dispatch[func_name] = {}
        code = fcode.get(label)
        instrs = program.functions[func_name].blocks[label].instrs
        if (
            code is None
            or len(code) != len(instrs)
            or (len(code) != 0 and code[-1][1] is not instrs[-1])
        ):
            code = _compile_block(instrs)
            fcode[label] = code
        return code

    # ------------------------------------------------------------------
    def step(self) -> Optional[TraceEvent]:
        """Execute one instruction.  Returns the trace event, ``None``
        when blocked on a lock, or a HALT event exactly once at the end.

        A thin wrapper over the precompiled dispatch table: the current
        instruction's code tuple selects a bound handler."""
        if self.halted:
            return None
        code = self._code_for(self.func_name, self.block)[self.index]
        handler = _HANDLERS[code[0]]
        return handler(self, code)

    # -- per-opcode handlers (the single-step semantics reference) ------
    def _advance(self) -> None:
        self.index += 1

    def _jump(self, label: str) -> None:
        self.block = label
        self.index = 0

    def _h_const(self, c: Code) -> Optional[TraceEvent]:
        self.steps += 1
        self.regs[c[2]] = c[3]
        self.index += 1
        return TraceEvent(EK.ALU, tid=self.tid)

    def _h_mov(self, c: Code) -> Optional[TraceEvent]:
        self.steps += 1
        v = c[3]
        self.regs[c[2]] = self.regs.get(v, 0) if type(v) is str else v
        self.index += 1
        return TraceEvent(EK.ALU, tid=self.tid)

    def _h_binop(self, c: Code) -> Optional[TraceEvent]:
        self.steps += 1
        regs = self.regs
        a = c[4]
        if type(a) is str:
            a = regs.get(a, 0)
        b = c[5]
        if type(b) is str:
            b = regs.get(b, 0)
        regs[c[2]] = c[3](a, b)
        self.index += 1
        return TraceEvent(EK.ALU, tid=self.tid)

    def _h_nop(self, c: Code) -> Optional[TraceEvent]:
        self.steps += 1
        self.index += 1
        return TraceEvent(EK.ALU, tid=self.tid)

    def _h_load(self, c: Code) -> Optional[TraceEvent]:
        self.steps += 1
        a = c[3]
        if type(a) is str:
            a = self.regs.get(a, 0)
        addr = _wrap(a + c[4])
        self.regs[c[2]] = self.memory.read(addr)
        self.index += 1
        return TraceEvent(EK.LOAD, addr=addr * WORD_BYTES, tid=self.tid)

    def _h_store(self, c: Code) -> Optional[TraceEvent]:
        self.steps += 1
        regs = self.regs
        a = c[3]
        if type(a) is str:
            a = regs.get(a, 0)
        addr = _wrap(a + c[4])
        v = c[2]
        self.memory.write(addr, regs.get(v, 0) if type(v) is str else v)
        self.index += 1
        return TraceEvent(EK.STORE, addr=addr * WORD_BYTES, tid=self.tid)

    def _h_ckpt(self, c: Code) -> Optional[TraceEvent]:
        self.steps += 1
        index = c[3]
        if index is None:
            slot = Program.checkpoint_slot(self.tid, c[2])
        else:
            slot = self.tid * Program.CHECKPOINT_WORDS_PER_CORE + index
        self.memory.write(slot, self.regs.get(c[2], 0))
        self.index += 1
        return TraceEvent(EK.CHECKPOINT, addr=slot * WORD_BYTES, tid=self.tid)

    def _h_br(self, c: Code) -> Optional[TraceEvent]:
        self.steps += 1
        self.block = c[2]
        self.index = 0
        return TraceEvent(EK.ALU, tid=self.tid)

    def _h_cbr(self, c: Code) -> Optional[TraceEvent]:
        self.steps += 1
        v = c[2]
        if type(v) is str:
            v = self.regs.get(v, 0)
        self.block = c[3] if v != 0 else c[4]
        self.index = 0
        return TraceEvent(EK.ALU, tid=self.tid)

    def _h_call(self, c: Code) -> Optional[TraceEvent]:
        self.steps += 1
        instr: Instr = c[1]
        callee = self.program.functions[c[2]]
        self.frames.append(
            Frame(
                regs=self.regs,
                func=self.func_name,
                block=self.block,
                index=self.index + 1,
                ret_reg=c[3],
            )
        )
        regs = self.regs
        new_regs: Dict[str, int] = {}
        for param, src in zip(callee.params, instr.srcs):
            new_regs[param] = regs.get(src, 0) if type(src) is str else src
        self.regs = new_regs
        self.func_name = c[2]
        self.block = callee.entry
        self.index = 0
        return TraceEvent(EK.ALU, tid=self.tid)

    def _h_ret(self, c: Code) -> Optional[TraceEvent]:
        self.steps += 1
        v = c[2]
        if type(v) is str:
            v = self.regs.get(v, 0)
        if not self.frames:
            self.halted = True
            return TraceEvent(EK.HALT, tid=self.tid)
        frame = self.frames.pop()
        self.regs = frame.regs
        if frame.ret_reg is not None:
            self.regs[frame.ret_reg] = v
        self.func_name = frame.func
        self.block = frame.block
        self.index = frame.index
        return TraceEvent(EK.ALU, tid=self.tid)

    def _h_unlock(self, c: Code) -> Optional[TraceEvent]:
        self.steps += 1
        self.locks.release(c[2], self.tid)
        self.index += 1
        return TraceEvent(EK.UNLOCK, tid=self.tid, lock_id=c[2])

    def _h_lock(self, c: Code) -> Optional[TraceEvent]:
        # Locks may refuse to advance the thread — no step is charged.
        if not self.locks.try_acquire(c[2], self.tid):
            return None
        self.index += 1
        self.steps += 1
        return TraceEvent(EK.LOCK, tid=self.tid, lock_id=c[2])

    def _h_atomic(self, c: Code) -> Optional[TraceEvent]:
        self.steps += 1
        instr: Instr = c[1]
        addr = self._addr(instr)
        old = self.memory.read(addr)
        operand = self._value(instr.srcs[0])
        new = operand if instr.rmw_op == "xchg" else _binop(instr.rmw_op, old, operand)
        self.memory.write(addr, new)
        if instr.dst is not None:
            self.regs[instr.dst] = old
        self.index += 1
        return TraceEvent(EK.ATOMIC, addr=addr * WORD_BYTES, tid=self.tid)

    def _h_fence(self, c: Code) -> Optional[TraceEvent]:
        self.steps += 1
        self.index += 1
        return TraceEvent(EK.FENCE, tid=self.tid)

    def _h_boundary(self, c: Code) -> Optional[TraceEvent]:
        self.steps += 1
        instr: Instr = c[1]
        slot = Program.pc_slot(self.tid)
        self.memory.write(slot, instr.uid)
        self.index += 1
        return TraceEvent(
            EK.BOUNDARY,
            addr=slot * WORD_BYTES,
            tid=self.tid,
            boundary_uid=instr.uid,
        )

    def _h_io(self, c: Code) -> Optional[TraceEvent]:
        self.steps += 1
        instr: Instr = c[1]
        payload = self._value(instr.srcs[0]) if instr.srcs else 0
        self.io_log.append((instr.imm, payload))
        self.index += 1
        return TraceEvent(
            EK.IO, tid=self.tid, lock_id=instr.imm, payload=payload
        )

    # ------------------------------------------------------------------
    def run_fast(self, limit: int) -> Tuple[int, str]:
        """Execute up to ``limit`` instructions in one inline loop over
        the compiled code tuples.

        Stops *before* any machine-visible instruction (LOCK /
        ATOMIC_RMW / FENCE / BOUNDARY / IO) with reason ``"pause"``;
        executes a halting RET inline and returns ``"halt"``; otherwise
        retires ``limit`` instructions and returns ``"limit"``.  The
        executed prefix is byte-for-bit identical to the same number of
        :meth:`step` calls — the parity property suite pins this."""
        if self.halted or limit <= 0:
            return 0, "halt" if self.halted else "limit"
        self.paused_code = None
        regs = self.regs
        memory = self.memory
        mem_read = memory.read
        mem_write = memory.write
        frames = self.frames
        lock_release = self.locks.release
        tid = self.tid
        ckpt_base = tid * Program.CHECKPOINT_WORDS_PER_CORE
        functions = self.program.functions
        func_name = self.func_name
        label = self.block
        code = self._code_for(func_name, label)
        index = self.index
        n = 0
        reason = "limit"
        # Per-call block cache: blocks cannot be edited while this loop
        # runs, so each (re)validated code list is reused for every
        # re-entry (loop back-edges dominate).  Cleared on function
        # change so labels never collide across functions.
        bcache: Dict[str, List[Code]] = {label: code}
        while n < limit:
            c = code[index]
            k = c[0]
            if k == C_BINOP:
                a = c[4]
                if type(a) is str:
                    a = regs.get(a, 0)
                b = c[5]
                if type(b) is str:
                    b = regs.get(b, 0)
                regs[c[2]] = c[3](a, b)
                index += 1
            elif k == C_CONST:
                regs[c[2]] = c[3]
                index += 1
            elif k == C_LOAD:
                a = c[3]
                if type(a) is str:
                    a = regs.get(a, 0)
                regs[c[2]] = mem_read(_wrap(a + c[4]))
                index += 1
            elif k == C_STORE:
                a = c[3]
                if type(a) is str:
                    a = regs.get(a, 0)
                v = c[2]
                if type(v) is str:
                    v = regs.get(v, 0)
                mem_write(_wrap(a + c[4]), v)
                index += 1
            elif k == C_CBR:
                v = c[2]
                if type(v) is str:
                    v = regs.get(v, 0)
                label = c[3] if v != 0 else c[4]
                code = bcache.get(label)
                if code is None:
                    code = bcache[label] = self._code_for(func_name, label)
                index = 0
            elif k == C_MOV:
                v = c[3]
                if type(v) is str:
                    v = regs.get(v, 0)
                regs[c[2]] = v
                index += 1
            elif k == C_BR:
                label = c[2]
                code = bcache.get(label)
                if code is None:
                    code = bcache[label] = self._code_for(func_name, label)
                index = 0
            elif k == C_CKPT:
                ri = c[3]
                if ri is None:
                    slot = Program.checkpoint_slot(tid, c[2])
                else:
                    slot = ckpt_base + ri
                mem_write(slot, regs.get(c[2], 0))
                index += 1
            elif k == C_CALL:
                frames.append(Frame(regs, func_name, label, index + 1, c[3]))
                callee = functions[c[2]]
                instr: Instr = c[1]
                new_regs: Dict[str, int] = {}
                for param, src in zip(callee.params, instr.srcs):
                    new_regs[param] = (
                        regs.get(src, 0) if type(src) is str else src
                    )
                regs = new_regs
                func_name = c[2]
                label = callee.entry
                code = self._code_for(func_name, label)
                bcache = {label: code}
                index = 0
            elif k == C_RET:
                v = c[2]
                if type(v) is str:
                    v = regs.get(v, 0)
                if not frames:
                    n += 1
                    self.halted = True
                    reason = "halt"
                    break
                frame = frames.pop()
                regs = frame.regs
                if frame.ret_reg is not None:
                    regs[frame.ret_reg] = v
                func_name = frame.func
                label = frame.block
                code = self._code_for(func_name, label)
                bcache = {label: code}
                index = frame.index
            elif k == C_NOP:
                index += 1
            elif k == C_UNLOCK:
                lock_release(c[2], tid)
                index += 1
            else:
                # machine-visible: LOCK / ATOMIC_RMW / FENCE / BOUNDARY /
                # IO — the outer machine executes these through step()
                # (or dispatches the stashed code tuple directly)
                reason = "pause"
                self.paused_code = c
                break
            n += 1
        self.regs = regs
        self.func_name = func_name
        self.block = label
        self.index = index
        self.steps += n
        return n, reason


#: opcode -> handler; indexed by the code tuple's first element
_HANDLERS: List[Callable[[ThreadVM, Code], Optional[TraceEvent]]] = [
    ThreadVM._h_const,      # C_CONST
    ThreadVM._h_mov,        # C_MOV
    ThreadVM._h_binop,      # C_BINOP
    ThreadVM._h_nop,        # C_NOP
    ThreadVM._h_load,       # C_LOAD
    ThreadVM._h_store,      # C_STORE
    ThreadVM._h_ckpt,       # C_CKPT
    ThreadVM._h_br,         # C_BR
    ThreadVM._h_cbr,        # C_CBR
    ThreadVM._h_call,       # C_CALL
    ThreadVM._h_ret,        # C_RET
    ThreadVM._h_unlock,     # C_UNLOCK
    ThreadVM._h_lock,       # C_LOCK
    ThreadVM._h_atomic,     # C_ATOMIC
    ThreadVM._h_fence,      # C_FENCE
    ThreadVM._h_boundary,   # C_BOUNDARY
    ThreadVM._h_io,         # C_IO
]


def run_single(
    program: Program,
    func_name: str = "main",
    args: Sequence[int] = (),
    max_steps: int = 2_000_000,
    memory: Optional[WordMemory] = None,
) -> Tuple[List[TraceEvent], WordMemory]:
    """Run one thread to completion; returns (events, memory)."""
    vm = ThreadVM(program, func_name, args=args, memory=memory)
    events: List[TraceEvent] = []
    append = events.append
    step = vm.step
    while not vm.halted:
        if vm.steps >= max_steps:
            raise MachineLimitError(
                "execution exceeded %d steps (likely non-terminating)"
                % max_steps,
                steps=vm.steps,
                limit=max_steps,
            )
        event = step()
        if event is None:
            raise DeadlockError(
                "single thread blocked on a lock: deadlock", steps=vm.steps
            )
        append(event)
    return events, vm.memory


def run_threads(
    program: Program,
    entries: Sequence[Tuple[str, Sequence[int]]],
    max_steps: int = 4_000_000,
    schedule_seed: int = 0,
    quantum: int = 16,
) -> Tuple[List[TraceEvent], WordMemory]:
    """Run several threads over shared memory with a deterministic
    round-robin schedule (``quantum`` instructions per turn).  The schedule
    seed rotates the starting thread, giving tests cheap schedule
    diversity while staying reproducible."""
    memory = WordMemory()
    locks = LockTable()
    vms = [
        ThreadVM(program, fname, args=args, memory=memory, tid=tid, locks=locks)
        for tid, (fname, args) in enumerate(entries)
    ]
    events: List[TraceEvent] = []
    n = len(vms)
    turn = schedule_seed % n if n else 0
    total = 0
    stalls = 0
    while any(not vm.halted for vm in vms):
        vm = vms[turn]
        turn = (turn + 1) % n
        if vm.halted:
            continue
        progressed = False
        for _ in range(quantum):
            if vm.halted:
                break
            if total >= max_steps:
                raise MachineLimitError(
                    "multi-thread run exceeded %d steps" % max_steps,
                    steps=total,
                    limit=max_steps,
                )
            event = vm.step()
            if event is None:
                break  # blocked on a lock; yield the turn
            progressed = True
            total += 1
            events.append(event)
        if progressed:
            stalls = 0
        else:
            stalls += 1
            if stalls > 2 * n:
                raise DeadlockError(
                    "all threads blocked: lock deadlock", steps=total
                )
    return events, memory
