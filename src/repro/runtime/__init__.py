"""The unified persist-path runtime layer.

One :class:`~repro.runtime.backend.PersistBackend` per persistence
scheme, each owning

* a :class:`~repro.runtime.policy.SchemePolicy` — the timing-plane
  knobs the shared engine (:mod:`repro.sim.engine`) replays traces
  under, and
* a :class:`~repro.runtime.runtime.PersistRuntime` — the functional
  crash semantics the persistence machine
  (:mod:`repro.core.machine`), the fault injector, and the KV store
  execute.

Consumers resolve backends through :func:`get_backend`; the registry
lives in :mod:`repro.runtime.backends`.
"""

from .backend import (
    ALIASES,
    BACKENDS,
    PersistBackend,
    get_backend,
    require_recovering,
)
from .backends import (
    CAPRI,
    CWSP,
    LIGHTWSP,
    MEMORY_MODE,
    PPA,
    PSP_IDEAL,
)
from .compare import CompareReport, CompareRow, compare_backends, format_compare
from .policy import SchemePolicy
from .runtime import (
    EadrRuntime,
    EagerUndoRuntime,
    LrpoRuntime,
    PersistRuntime,
    VolatileCacheRuntime,
)

__all__ = [
    "ALIASES",
    "BACKENDS",
    "PersistBackend",
    "get_backend",
    "require_recovering",
    "CAPRI",
    "CWSP",
    "LIGHTWSP",
    "MEMORY_MODE",
    "PPA",
    "PSP_IDEAL",
    "CompareReport",
    "CompareRow",
    "compare_backends",
    "format_compare",
    "SchemePolicy",
    "PersistRuntime",
    "LrpoRuntime",
    "EagerUndoRuntime",
    "EadrRuntime",
    "VolatileCacheRuntime",
]
