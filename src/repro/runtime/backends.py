"""The concrete backends: every scheme's policy + runtime, defined once.

Each scheme's timing knobs used to live in ``repro.baselines`` (and
LightWSP's in ``repro.core.lightwsp``) while its functional behaviour
was hard-coded into the machine; both now derive from the single
:class:`~repro.runtime.backend.PersistBackend` registered here.  The
paper-mapping rationale for each policy's knob values stays with the
deprecation shims in :mod:`repro.baselines` (cwsp/capri/ppa/psp/
memory_mode module docstrings) and :mod:`repro.core.lightwsp`.

Fault-class capabilities are literal tuples (kept a subset of
:data:`repro.faults.model.FAULT_CLASSES` by test) rather than imports,
so this module never pulls the fault subsystem into the import chain.
"""

from __future__ import annotations

from .backend import PersistBackend, register
from .policy import SchemePolicy
from .runtime import (
    EadrRuntime,
    EagerUndoRuntime,
    LrpoRuntime,
    VolatileCacheRuntime,
)

__all__ = [
    "LIGHTWSP",
    "CWSP",
    "CAPRI",
    "PPA",
    "PSP_IDEAL",
    "MEMORY_MODE",
    "LIGHTWSP_LRPO",
    "CWSP_EAGER",
    "CAPRI_BACKEND",
    "PPA_BACKEND",
    "PSP_BACKEND",
    "MEMORY_MODE_BACKEND",
]

#: every fault class is meaningful against the full gated protocol
_LRPO_FAULTS = (
    "clean_cut", "torn_cut", "drained_cut",
    "msg_drop", "msg_delay", "msg_dup", "skew_cut", "nested_cut",
)
#: eager-undo schemes have no boundary message layer, no battery-drained
#: WPQ, and no per-MC skew surface — cuts (plain and nested) remain
_EAGER_FAULTS = ("clean_cut", "nested_cut")


# ----------------------------------------------------------------------
# timing policies (one per scheme; knob rationale in the shim modules)
# ----------------------------------------------------------------------

LIGHTWSP = SchemePolicy(
    name="LightWSP",
    persists=True,
    entry_factor=1,
    gated=True,
    boundary_wait=False,
    drain_factor=1.0,
    uses_dram_cache=True,
    snoop=True,
)

CWSP = SchemePolicy(
    name="cWSP",
    persists=True,
    entry_factor=1,
    gated=False,
    boundary_wait=False,
    drain_factor=1.25,
    region_comm_cycles=6.0,
    uses_dram_cache=True,
    snoop=True,
    implicit_region_stores=16,
)

CAPRI = SchemePolicy(
    name="Capri",
    persists=True,
    entry_factor=8,          # 64 B of path traffic per 8 B store
    gated=False,             # per-region eager persistence (own buffers)
    boundary_wait=True,
    wait_for="flush",        # stops traffic until flushed *in PM*
    drain_factor=8.0,        # 64 B per entry hits the PM drain too
    uses_dram_cache=True,
    snoop=True,
    implicit_region_stores=32,
)

PPA = SchemePolicy(
    name="PPA",
    persists=True,
    entry_factor=1,
    gated=False,
    boundary_wait=True,
    uses_dram_cache=True,
    snoop=True,
    implicit_region_stores=24,
)

PSP_IDEAL = SchemePolicy(
    name="PSP-Ideal",
    persists=False,
    uses_dram_cache=False,
    snoop=False,
)

MEMORY_MODE = SchemePolicy(
    name="memory-mode",
    persists=False,
    uses_dram_cache=True,
    snoop=False,
)


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------

LIGHTWSP_LRPO = register(PersistBackend(
    name="lightwsp-lrpo",
    policy=LIGHTWSP,
    runtime_cls=LrpoRuntime,
    recovers=True,
    fault_classes=_LRPO_FAULTS,
    validates_defenses=True,
    description="LightWSP: WPQ quarantine + lazy region-level persist "
                "ordering (boundary broadcast/ACK, flush-ID commits)",
))

CWSP_EAGER = register(PersistBackend(
    name="cwsp-eager",
    policy=CWSP,
    runtime_cls=EagerUndoRuntime,
    recovers=True,
    fault_classes=_EAGER_FAULTS,
    description="cWSP: eager speculative persistence, hardware undo "
                "logs rolled back on a mis-speculated power failure",
))

CAPRI_BACKEND = register(PersistBackend(
    name="capri",
    policy=CAPRI,
    runtime_cls=EagerUndoRuntime,
    recovers=True,
    fault_classes=_EAGER_FAULTS,
    description="Capri: cacheline-granular eager persist path with "
                "redo+undo buffers (undo rollback at a crash)",
))

PPA_BACKEND = register(PersistBackend(
    name="ppa",
    policy=PPA,
    runtime_cls=EagerUndoRuntime,
    recovers=True,
    fault_classes=_EAGER_FAULTS,
    description="PPA: eager writeback with store-integrity replay "
                "(modelled as undo-logged write-through)",
))

PSP_BACKEND = register(PersistBackend(
    name="psp",
    policy=PSP_IDEAL,
    runtime_cls=EadrRuntime,
    recovers=False,
    fault_classes=(),
    description="ideal PSP/eADR: every store durable at retire — "
                "partial-region state persists, so whole-system "
                "recovery is NOT crash-consistent",
))

MEMORY_MODE_BACKEND = register(PersistBackend(
    name="memory-mode",
    policy=MEMORY_MODE,
    runtime_cls=VolatileCacheRuntime,
    recovers=False,
    fault_classes=(),
    description="memory-mode: DRAM-cached, nothing persists before a "
                "clean shutdown — acked writes are lost at a crash",
))
