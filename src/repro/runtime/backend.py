"""The :class:`PersistBackend` interface: one persistence scheme, both
planes.

A backend bundles the two halves that used to be defined separately —
the *timing* face (a :class:`~repro.runtime.policy.SchemePolicy` the
shared engine replays traces under) and the *functional* face (a
:class:`~repro.runtime.runtime.PersistRuntime` class giving the scheme
executable crash semantics) — plus the capability flags the harnesses
gate on:

* ``recovers`` — whether the scheme upholds the crash-consistency
  theorem (resume-from-boundary reproduces the failure-free image).
  Fault campaigns refuse backends that don't; ``repro compare`` probes
  and reports the verdict instead.
* ``gated`` — whether stores quarantine behind the boundary/ACK
  protocol.  Only gated backends have a message layer for the fault
  injector to attack (drop/delay/dup broadcasts, MC skew) or a WPQ for
  the tiny-WPQ overflow sweep.
* ``fault_classes`` — the campaign fault classes that are meaningful
  for the scheme (a subset of :data:`repro.faults.model.FAULT_CLASSES`).

Look backends up with :func:`get_backend`; legacy scheme names
("LightWSP", "cWSP", ...) resolve through :data:`ALIASES`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Type

from .policy import SchemePolicy
from .runtime import PersistRuntime

__all__ = [
    "PersistBackend",
    "BACKENDS",
    "ALIASES",
    "get_backend",
    "register",
    "require_recovering",
]


@dataclass(frozen=True)
class PersistBackend:
    """One persistence scheme: timing policy + functional runtime +
    harness capabilities."""

    name: str
    policy: SchemePolicy
    runtime_cls: Type[PersistRuntime]
    #: does the scheme uphold the crash-consistency theorem?
    recovers: bool = True
    #: campaign fault classes applicable to the scheme
    fault_classes: Tuple[str, ...] = ()
    #: does the defense-off self-validation sweep apply?  (Only the
    #: full LRPO protocol has the defenses to switch off.)
    validates_defenses: bool = False
    description: str = ""

    @property
    def gated(self) -> bool:
        return self.runtime_cls.gated

    def create_runtime(self, machine) -> PersistRuntime:
        return self.runtime_cls(self, machine)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: registry of concrete backends, keyed by canonical name (filled by
#: :mod:`repro.runtime.backends` at import time)
BACKENDS: Dict[str, PersistBackend] = {}

#: legacy scheme-policy names -> canonical backend names
ALIASES: Dict[str, str] = {}


def register(backend: PersistBackend) -> PersistBackend:
    if backend.name in BACKENDS:
        raise ValueError("duplicate backend %r" % backend.name)
    BACKENDS[backend.name] = backend
    if backend.policy.name != backend.name:
        ALIASES[backend.policy.name] = backend.name
    return backend


def get_backend(spec=None) -> PersistBackend:
    """Resolve ``spec`` to a backend: an instance passes through, None
    means the default (``lightwsp-lrpo``), and strings match canonical
    names or legacy policy names ("LightWSP", "cWSP", ...),
    case-insensitively."""
    if isinstance(spec, PersistBackend):
        return spec
    if spec is None:
        return BACKENDS["lightwsp-lrpo"]
    name = str(spec)
    if name in BACKENDS:
        return BACKENDS[name]
    if name in ALIASES:
        return BACKENDS[ALIASES[name]]
    folded = {k.lower(): v for k, v in BACKENDS.items()}
    folded.update(
        (k.lower(), BACKENDS[v]) for k, v in ALIASES.items()
    )
    if name.lower() in folded:
        return folded[name.lower()]
    raise KeyError(
        "unknown backend %r (available: %s)"
        % (spec, ", ".join(sorted(BACKENDS)))
    )


def require_recovering(backend: PersistBackend, harness: str) -> PersistBackend:
    """Gate a crash-injecting harness on the backend's capability flag.

    Every harness that power-cuts a machine and then checks an
    acked-write/differential oracle needs a scheme that actually upholds
    the crash-consistency theorem; for the others (PSP, memory-mode) the
    oracle would flag every scenario by design, which is noise, not
    signal.  Raises ``ValueError`` with a uniform explanation."""
    if not backend.recovers:
        raise ValueError(
            "backend %r is not crash-consistent by design — it loses "
            "acked writes at a power cut; %s requires a crash-consistent "
            "backend. Use `repro compare` to quantify its divergence "
            "instead." % (backend.name, harness)
        )
    return backend
