"""``repro compare``: one workload, every backend, both planes.

For each backend the driver runs

* the **timing plane** — the shared engine replays the benchmark's
  dynamic trace under the backend's policy: cycles, slowdown vs the
  memory-mode baseline, persist-path traffic, persistence efficiency;
* the **functional plane** — the benchmark executes on a
  :class:`~repro.core.machine.PersistentMachine` with the backend's
  runtime, power is cut mid-region, recovery runs, and the final
  persisted image is checked against the failure-free reference.  A
  backend whose scheme is crash-consistent (LRPO, the eager-undo
  family) reports ``recovered``; PSP/eADR and memory-mode report the
  divergence their schemes actually produce.

Everything is deterministic: fixed benchmark, fixed scale, crash point
derived from the failure-free boundary schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..config import DEFAULT_CONFIG, SystemConfig
from .backend import BACKENDS, PersistBackend, get_backend

__all__ = ["CompareRow", "CompareReport", "compare_backends", "format_compare"]

#: default comparison workload: single-threaded, deterministic, small
DEFAULT_BENCHMARK = "bzip2"
SMOKE_SCALE = 0.01


@dataclass
class CompareRow:
    """One backend's line in the comparison table."""

    backend: str
    # timing plane
    cycles: float = 0.0
    slowdown: float = 0.0            # vs memory-mode
    throughput_minst_s: float = 0.0
    persist_entries: int = 0
    persist_bytes: int = 0
    efficiency: float = 100.0        # Eq. 1
    # functional plane (mid-region crash probe)
    crash_step: int = 0
    flushed: int = 0
    undone: int = 0
    discarded: int = 0
    recovery: str = "n/a"
    recovered: bool = False


@dataclass
class CompareReport:
    benchmark: str
    scale: float
    crash_step: int
    rows: List[CompareRow] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every backend that *claims* crash consistency delivered it at
        the probe point.  Non-recovering backends (PSP, memory-mode) are
        reported but never gate: whether a given probe point exposes
        their unsoundness is workload-dependent (the oracle tests pin a
        guaranteed-divergent case)."""
        return all(
            row.recovered
            for row in self.rows
            if get_backend(row.backend).recovers
        )


def _timing_row(
    events, baseline: float, backend: PersistBackend, config: SystemConfig
) -> CompareRow:
    from ..sim.engine import simulate

    res = simulate(events, config, backend.policy)
    ns = config.cycles_to_ns(res.cycles)
    return CompareRow(
        backend=backend.name,
        cycles=res.cycles,
        slowdown=(res.cycles / baseline) if baseline else 0.0,
        throughput_minst_s=(res.instructions / ns * 1e3) if ns else 0.0,
        persist_entries=res.persist_entries,
        persist_bytes=res.persist_entries * 8 * backend.policy.entry_factor,
        efficiency=res.persistence_efficiency,
    )


def _crash_point(compiled, config: SystemConfig) -> int:
    """A mid-region instant: one step past a mid-run boundary, where the
    previous region's durability is still in flight under LRPO and the
    next region has begun."""
    from ..core.machine import PersistentMachine
    from ..trace import EK

    probe = PersistentMachine(compiled, config=config)
    boundaries: List[int] = []
    while True:
        event = probe.step()
        if event is None:
            break
        if event.kind == EK.BOUNDARY:
            boundaries.append(probe.stats.steps)
    if not boundaries:
        return max(1, probe.stats.steps // 2)
    return boundaries[len(boundaries) // 2] + 1


def _probe_recovery(
    compiled,
    backend: PersistBackend,
    crash_step: int,
    config: SystemConfig,
    row: CompareRow,
) -> None:
    from ..core.failure import reference_pm
    from ..core.machine import PersistentMachine

    reference = reference_pm(compiled, config=config, backend=backend)
    machine = PersistentMachine(compiled, config=config, backend=backend)
    row.crash_step = crash_step
    try:
        machine.run(steps=crash_step)
        if machine.finished:
            row.recovery = "n/a (program finished before probe)"
            row.recovered = True
            return
        report = machine.crash()
        row.flushed = report["flushed"]
        row.undone = report["undone"]
        row.discarded = report["discarded"]
        if not machine.run():
            row.recovery = "FAILED (did not finish after recovery)"
            return
    except Exception as exc:
        # a scheme without sound recovery may resume into garbage state
        # (zeroed registers, missing checkpoint slots) and die arbitrarily
        row.recovery = "FAILED (%s: %s)" % (type(exc).__name__, exc)
        return
    if machine.pm_data() == reference:
        row.recovery = "recovered (image == reference)"
        row.recovered = True
    else:
        diff = len(
            set(machine.pm_data().items()) ^ set(reference.items())
        )
        row.recovery = "DIVERGED (%d word(s) off reference)" % diff


def compare_backends(
    benchmark: str = DEFAULT_BENCHMARK,
    scale: float = 0.05,
    backends: Optional[Sequence] = None,
    config: SystemConfig = DEFAULT_CONFIG,
    smoke: bool = False,
    jobs: int = 1,
    worker_timeout: Optional[float] = None,
) -> CompareReport:
    """Run the cross-backend comparison; see the module docstring.

    Backends are independent once the compiled program, the shared
    dynamic trace, the memory-mode baseline, and the crash point are
    fixed (all computed once, up front), so ``jobs > 1`` runs one
    backend per worker; rows come back in backend order and are
    identical to the serial run."""
    from ..compiler.pipeline import compile_program
    from ..core.lightwsp import trace_of
    from ..parallel import fan_out
    from ..sim.engine import simulate
    from ..workloads import BENCHMARKS
    from .backends import MEMORY_MODE

    if smoke:
        scale = min(scale, SMOKE_SCALE)
    chosen = [
        get_backend(b)
        for b in (backends if backends else sorted(BACKENDS))
    ]
    bench = BENCHMARKS[benchmark]
    if bench.threads != 1:
        raise ValueError(
            "compare needs a single-threaded benchmark (got %r)" % benchmark
        )
    compiled = compile_program(bench.build(scale=scale), config.compiler)
    events = trace_of(compiled)
    baseline = simulate(events, config, MEMORY_MODE).cycles
    crash_step = _crash_point(compiled, config)

    def backend_row(backend: PersistBackend) -> CompareRow:
        row = _timing_row(events, baseline, backend, config)
        _probe_recovery(compiled, backend, crash_step, config, row)
        return row

    rows = fan_out(
        backend_row, chosen, jobs=jobs, timeout=worker_timeout,
        label="compare",
    )
    return CompareReport(
        benchmark=benchmark,
        scale=scale,
        crash_step=crash_step,
        rows=rows,
    )


def format_compare(report: CompareReport) -> str:
    header = (
        "%-14s %9s %9s %11s %12s %7s  %s"
        % ("backend", "slowdown", "Minst/s", "persist-ent",
           "persist-B", "eff%", "recovery @ step %d" % report.crash_step)
    )
    lines = [
        "compare: %s scale=%.3g (slowdown vs memory-mode)"
        % (report.benchmark, report.scale),
        header,
        "-" * len(header),
    ]
    for r in report.rows:
        lines.append(
            "%-14s %9.3f %9.2f %11d %12d %7.2f  %s"
            % (r.backend, r.slowdown, r.throughput_minst_s,
               r.persist_entries, r.persist_bytes, r.efficiency, r.recovery)
        )
    return "\n".join(lines)
