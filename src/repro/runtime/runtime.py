"""Functional persist runtimes: the crash-semantics half of a backend.

A :class:`PersistRuntime` owns everything between a store retiring and
its words becoming durable: admission onto the persist path, the
region-boundary bookkeeping, commit candidacy and drain ordering, the
crash-time durable-set computation, and the recovery reseed.  The
:class:`~repro.core.machine.PersistentMachine` owns execution (threads,
scheduling, continuations, the I/O log) and delegates every
persistence decision to its runtime through the overridable protocol
hooks — so the fault-injection subsystem keeps one override surface and
each scheme's crash semantics live in exactly one place.

The contract (all hooks the machine calls, in calling order):

=================  ====================================================
``admit``          a store retired; quarantine or persist it.  Returns
                   the resulting WPQ occupancy (0 for path-less
                   schemes) for the machine's high-water stat.
``region_ended``   a region boundary executed (broadcast side).
``next_commit``    the next commit candidate region, or None.
``committable``    may the candidate commit *now*?  (LRPO: boundary
                   broadcast + ACKed everywhere; eager schemes: yes.)
``commit_flush``   move the committing region's quarantined entries to
                   PM (no-op for schemes that persisted at admit).
``mark_committed`` the region is durable: drop its undo log, advance
                   the flush ID / committed set.
``region_durable`` crash-time durable-set membership; drives the
                   recovery resume point and the durable-I/O-log trim.
``resolve_full``   §IV-D overflow fallback (gated schemes only).
``rollback``       crash: undo speculative PM writes of uncommitted
                   regions.  Returns the number of pre-images applied.
``discard``        crash: drop whatever dies with the power (WPQ
                   entries, volatile dirty lines).  Returns the count.
``reseed``         recovery done: reset per-run protocol state; dead
                   region IDs will never commit (footnote 7).
``on_all_halted``  clean completion (memory-mode drains its dirty
                   cache here — the flush that a crash never gets).
=================  ====================================================
"""

from __future__ import annotations

import copy
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Set, Tuple

# repro.core pulls in the compiler package, which imports repro.sim — a
# cycle if resolved while repro.sim.engine is importing this package for
# SchemePolicy.  Runtime uses of repro.core are deferred into methods.
if TYPE_CHECKING:  # pragma: no cover
    from ..core.wpq import FunctionalWPQ

__all__ = [
    "PersistRuntime",
    "LrpoRuntime",
    "EagerUndoRuntime",
    "EadrRuntime",
    "VolatileCacheRuntime",
]


class PersistRuntime:
    """Base class: shared state + the parts every scheme agrees on."""

    #: gated runtimes quarantine stores behind the boundary/ACK protocol;
    #: the fault-injection message layer only applies to these.
    gated = False

    def __init__(self, backend, machine) -> None:
        self.backend = backend
        self.machine = machine
        #: per-MC functional WPQs (empty for schemes without a gated path)
        self.wpqs: List[FunctionalWPQ] = []
        #: regions whose boundary has been broadcast (gated schemes)
        self.boundary_issued: Set[int] = set()
        #: next region the (global) flush ID expects (gated schemes)
        self.committed_upto = 0
        #: region -> {word: pre-overwrite PM value} for crash rollback
        self.undo_log: Dict[int, Dict[int, int]] = {}

    # -- admission ------------------------------------------------------
    def admit(self, region: int, word: int, value: int) -> int:
        raise NotImplementedError

    def admit_many(self, region: int, stores: List[Tuple[int, int]]) -> int:
        """Admit a batch of same-region stores in order; returns the
        maximum occupancy any single admission reached (the machine's
        high-water stat).  Must be byte-identical to calling
        :meth:`admit` per store — schemes override it to fuse the
        per-store bookkeeping into one pass (O(regions), not O(stores),
        of Python-level overhead on the batched hot path)."""
        admit = self.admit
        occupancy = 0
        for word, value in stores:
            occ = admit(region, word, value)
            if occ > occupancy:
                occupancy = occ
        return occupancy

    def resolve_full(self, wpq, region: int, word: int, value: int) -> None:
        raise NotImplementedError("overflow fallback is a gated-path event")

    # -- boundaries + commits ------------------------------------------
    def region_ended(self, region: int) -> None:
        raise NotImplementedError

    def next_commit(self):
        raise NotImplementedError

    def committable(self, region: int) -> bool:
        raise NotImplementedError

    def commit_flush(self, region: int) -> None:
        raise NotImplementedError

    def mark_committed(self, region: int) -> None:
        raise NotImplementedError

    # -- crash + recovery ----------------------------------------------
    def region_durable(self, region: int) -> bool:
        raise NotImplementedError

    def rollback(self) -> int:
        from ..core.recovery import rollback_undo

        undone = rollback_undo(self.machine.pm, self.undo_log)
        self.undo_log.clear()
        return undone

    def discard(self) -> int:
        return 0

    def reseed(self, next_region: int) -> None:
        self.committed_upto = next_region
        self.boundary_issued.clear()

    def on_all_halted(self) -> None:
        pass

    # -- introspection + cloning ---------------------------------------
    def occupancy(self) -> List[int]:
        return [len(w) for w in self.wpqs]

    def clone_onto(self, machine) -> "PersistRuntime":
        new = type(self)(self.backend, machine)
        new.wpqs = copy.deepcopy(self.wpqs)
        new.boundary_issued = set(self.boundary_issued)
        new.committed_upto = self.committed_upto
        new.undo_log = {r: dict(w) for r, w in self.undo_log.items()}
        self._clone_extra(new)
        return new

    def _clone_extra(self, new: "PersistRuntime") -> None:
        pass


class LrpoRuntime(PersistRuntime):
    """LightWSP's lazy region-level persist ordering (§III-B, §IV):
    stores quarantine in per-MC WPQs tagged with their region ID and
    reach PM only when the region commits — boundary broadcast + ACK,
    then bulk flush in global flush-ID order.  Power failure discards
    everything still quarantined, so PM is never corrupted by the stores
    of an interrupted region; the §IV-D overflow fallback covers WPQ
    pressure with an undo log."""

    gated = True

    def __init__(self, backend, machine) -> None:
        super().__init__(backend, machine)
        cfg = machine.config.mc
        from ..core.wpq import FunctionalWPQ, WPQFullError

        self.wpqs = [FunctionalWPQ(cfg.wpq_entries) for _ in range(cfg.n_mcs)]
        # cached so the admission hot path skips the per-call import
        # (module-level would close the repro.core <-> repro.sim cycle)
        self._full_error = WPQFullError

    def admit(self, region: int, word: int, value: int) -> int:
        wpq = self.wpqs[self.machine._mc_of_word(word)]
        try:
            wpq.put(region, word, value)
        except self._full_error:
            # through the machine hook so FaultyMachine's no-undo
            # defense-off mode can intercept the fallback
            self.machine._resolve_full(wpq, region, word, value)
        return len(wpq)

    def admit_many(self, region: int, stores: List[Tuple[int, int]]) -> int:
        # Group by target MC, then bulk-admit each group: grouping keeps
        # every WPQ's own arrival order (and hence its length trajectory
        # and seq numbering) exactly what the per-store loop produces,
        # since seqs are per-WPQ and words never alias across MCs.
        machine = self.machine
        mc_of = machine._mc_of_word
        wpqs = self.wpqs
        if len(wpqs) == 1:
            groups = [(0, stores)]
        else:
            by_mc: Dict[int, List[Tuple[int, int]]] = {}
            for pair in stores:
                mc = mc_of(pair[0])
                group = by_mc.get(mc)
                if group is None:
                    group = by_mc[mc] = []
                group.append(pair)
            groups = list(by_mc.items())
        resolve = machine._resolve_full
        full_error = self._full_error
        occupancy = 0
        for mc, pairs in groups:
            wpq = wpqs[mc]
            try:
                length = wpq.put_many(region, pairs)
            except full_error:
                # overflow: replay this group store-by-store so the
                # §IV-D fallback fires exactly where it classically would
                for word, value in pairs:
                    try:
                        wpq.put(region, word, value)
                    except full_error:
                        resolve(wpq, region, word, value)
                    length = len(wpq)
                    if length > occupancy:
                        occupancy = length
                continue
            if length > occupancy:
                occupancy = length
        return occupancy

    def resolve_full(self, wpq, region: int, word: int, value: int) -> None:
        """§IV-D deadlock fallback: flush the *oldest region present* in
        this WPQ to PM with undo logging, then quarantine the incoming
        store normally.

        The flush-ID region is the preferred victim (the paper's rule);
        when it has no entries here (e.g. it belongs to a lock-blocked
        thread), the oldest present region generalizes it safely: per
        word, all conflicting writes of *older* regions have already
        arrived (DRF + the sync-refresh ID ordering), so flushing the
        oldest present never lets an older value overwrite a newer one —
        and the undo log covers crash rollback."""
        machine = self.machine
        machine.stats.overflow_events += 1
        present = wpq.regions_present()
        victim = (
            self.committed_upto
            if self.committed_upto in present
            else min(present)
        )
        entries = wpq.pop_region(victim)
        undo = self.undo_log.setdefault(victim, {})
        for entry in entries:
            undo.setdefault(entry.word, machine.pm.get(entry.word, 0))
            machine.pm[entry.word] = entry.value
            machine.stats.undo_writes += 1
        wpq.put(region, word, value)

    def region_ended(self, region: int) -> None:
        self.boundary_issued.add(region)

    def next_commit(self) -> int:
        return self.committed_upto

    def committable(self, region: int) -> bool:
        return region in self.boundary_issued

    def commit_flush(self, region: int) -> None:
        pm = self.machine.pm
        for wpq in self.wpqs:
            for entry in wpq.pop_region(region):
                pm[entry.word] = entry.value

    def mark_committed(self, region: int) -> None:
        self.undo_log.pop(region, None)
        self.boundary_issued.discard(region)
        self.committed_upto = region + 1

    def region_durable(self, region: int) -> bool:
        return region < self.committed_upto

    def discard(self) -> int:
        return sum(wpq.discard_all() for wpq in self.wpqs)


class _CommittedSetRuntime(PersistRuntime):
    """Shared shape of the non-gated schemes: no global flush-ID order —
    a region becomes durable the moment it ends (its stores already left
    the core at admit time), tracked in an explicit committed set."""

    def __init__(self, backend, machine) -> None:
        super().__init__(backend, machine)
        self.pending: Deque[int] = deque()
        self.committed: Set[int] = set()

    def region_ended(self, region: int) -> None:
        self.pending.append(region)

    def next_commit(self):
        return self.pending[0] if self.pending else None

    def committable(self, region: int) -> bool:
        return True

    def commit_flush(self, region: int) -> None:
        pass

    def mark_committed(self, region: int) -> None:
        if self.pending and self.pending[0] == region:
            self.pending.popleft()
        else:
            self.pending.remove(region)
        self.committed.add(region)
        self.undo_log.pop(region, None)

    def region_durable(self, region: int) -> bool:
        return region < 0 or region in self.committed

    def reseed(self, next_region: int) -> None:
        super().reseed(next_region)
        self.pending.clear()

    def _clone_extra(self, new: "PersistRuntime") -> None:
        new.pending = deque(self.pending)
        new.committed = set(self.committed)


class EagerUndoRuntime(_CommittedSetRuntime):
    """Eager speculative persistence with hardware undo logging (cWSP's
    MC speculation, Capri's redo+undo buffers, PPA's store replay —
    functionally: write-through with per-region pre-images).  Every
    store lands in PM immediately; the first touch of each word records
    its pre-image.  A crash rolls uncommitted regions back through the
    undo log, so the scheme *passes* the differential crash oracle — at
    the cost of one logged pre-image per first-touch word, the eager
    persist traffic LRPO's quarantine avoids."""

    def admit(self, region: int, word: int, value: int) -> int:
        machine = self.machine
        undo = self.undo_log.setdefault(region, {})
        if word not in undo:
            undo[word] = machine.pm.get(word, 0)
            machine.stats.undo_writes += 1
        machine.pm[word] = value
        return 0

    def admit_many(self, region: int, stores: List[Tuple[int, int]]) -> int:
        machine = self.machine
        pm = machine.pm
        pm_get = pm.get
        stats = machine.stats
        undo = self.undo_log.setdefault(region, {})
        for word, value in stores:
            if word not in undo:
                undo[word] = pm_get(word, 0)
                stats.undo_writes += 1
            pm[word] = value
        return 0


class EadrRuntime(_CommittedSetRuntime):
    """PSP/eADR: the whole cache hierarchy sits inside the persistence
    domain, so every store is durable the instant it retires — including
    the stores of the region the power failure interrupts.  There is no
    undo log and nothing to discard: partial-region state persists, the
    checkpoint array can run ahead of any resumable boundary, and
    non-idempotent re-execution diverges.  This is why PSP needs
    failure-atomic *software* and fails the whole-system crash oracle."""

    def admit(self, region: int, word: int, value: int) -> int:
        self.machine.pm[word] = value
        return 0

    def admit_many(self, region: int, stores: List[Tuple[int, int]]) -> int:
        # dict.update over the (word, value) pairs applies them in batch
        # order — identical to per-store assignment
        self.machine.pm.update(stores)
        return 0


class VolatileCacheRuntime(_CommittedSetRuntime):
    """Memory-mode: DRAM caches over PM with no persistence protocol at
    all.  Stores live in a volatile dirty set that only reaches PM on a
    clean shutdown; region boundaries "commit" instantly (nothing gates
    them) but commit is a lie — a power failure drops the dirty set, so
    acknowledged writes are lost and recovery resumes from state that
    was never persisted.  The normalization baseline, and the
    non-recoverable foil the crash oracle must flag."""

    def __init__(self, backend, machine) -> None:
        super().__init__(backend, machine)
        self.dirty: Dict[int, int] = {}

    def admit(self, region: int, word: int, value: int) -> int:
        self.dirty[word] = value
        return 0

    def admit_many(self, region: int, stores: List[Tuple[int, int]]) -> int:
        self.dirty.update(stores)
        return 0

    def discard(self) -> int:
        dropped = len(self.dirty)
        self.dirty.clear()
        return dropped

    def on_all_halted(self) -> None:
        self.machine.pm.update(self.dirty)
        self.dirty.clear()

    def _clone_extra(self, new: "PersistRuntime") -> None:
        super()._clone_extra(new)
        new.dirty = dict(self.dirty)
