"""The timing-plane face of a persistence scheme.

One :class:`SchemePolicy` is the complete set of knobs the shared timing
engine (:mod:`repro.sim.engine`) needs to replay a trace under a scheme:
persist-path entry granularity, WPQ gating vs eager drain, whether the
core stalls at region boundaries, per-entry drain inflation for undo
logging, DRAM cache availability.  Policies used to be defined twice —
once here (for timing) and once implicitly in the functional machine —
which is why they now live in :mod:`repro.runtime`: each
:class:`~repro.runtime.backend.PersistBackend` owns exactly one policy
and exactly one functional runtime, and both planes derive from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["SchemePolicy"]


@dataclass(frozen=True)
class SchemePolicy:
    """What distinguishes one persistence scheme from another."""

    name: str
    persists: bool = True
    entry_factor: int = 1
    gated: bool = True
    boundary_wait: bool = False
    drain_factor: float = 1.0
    region_comm_cycles: float = 0.0
    uses_dram_cache: bool = True
    snoop: bool = True
    #: synthesize a region boundary every N store-like events (hardware-
    #: delineated regions: PPA's PRF pressure, Capri's buffer capacity).
    implicit_region_stores: Optional[int] = None
    #: what a boundary_wait core polls (eager schemes): "arrival" = the
    #: region's entries reached the battery-backed WPQ (PPA's durability
    #: point), "flush" = they landed in PM (Capri stops its persist-path
    #: traffic until then).
    wait_for: str = "arrival"
