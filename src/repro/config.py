"""System configuration for the LightWSP reproduction.

This module encodes Table I (the simulated machine) and Table III (the CXL
device presets) of the paper as frozen dataclasses.  Every timing quantity
is stored in physical units (ns, GB/s) together with helpers that convert
to core cycles at the configured clock, so the simulator code never hides
unit conversions.

The defaults follow the paper exactly:

* 8-core 4-wide OoO processor at 2 GHz,
* 64 KB / 8-way L1D (4 cycles), 16 MB shared L2 (44 cycles),
* direct-mapped 4 GB off-chip DRAM cache,
* 32 GB PM with 175 ns read / 90 ns write,
* 2 memory controllers, 2 channels each, 64-entry 8 B-granularity WPQ,
* persist path with 20 ns worst-case latency and 4 GB/s bandwidth,
* 64-entry front-end buffer,
* compiler store threshold = WPQ size / 2 = 32.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = [
    "CacheConfig",
    "MemoryBackendConfig",
    "PersistPathConfig",
    "MCConfig",
    "CompilerConfig",
    "SystemConfig",
    "CXL_PRESETS",
    "DEFAULT_CONFIG",
    "VictimPolicy",
]


class VictimPolicy:
    """Victim-selection policies for buffer snooping (§V-F3).

    ``FULL`` scans every way of the set for a conflict-free victim (the
    default), ``HALF`` scans only half the ways, ``ZERO`` never re-selects
    and instead delays the eviction until the conflicting front-end buffer
    entry drains, and ``STALE_LOAD`` disables snooping entirely (the buggy
    configuration used in Fig. 14 for comparison).
    """

    FULL = "full"
    HALF = "half"
    ZERO = "zero"
    STALE_LOAD = "stale-load"

    ALL = (FULL, HALF, ZERO, STALE_LOAD)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and access latency for one cache level."""

    size_bytes: int
    ways: int
    block_bytes: int
    latency_cycles: int

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.block_bytes):
            raise ValueError(
                "cache size %d is not divisible by ways*block (%d*%d)"
                % (self.size_bytes, self.ways, self.block_bytes)
            )

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.ways * self.block_bytes)


@dataclass(frozen=True)
class MemoryBackendConfig:
    """The persistent-memory backend (or a CXL-attached device, Table III)."""

    name: str
    read_ns: float
    write_ns: float
    read_bw_gbps: float
    write_bw_gbps: float
    extra_link_ns: float = 0.0

    @property
    def total_read_ns(self) -> float:
        return self.read_ns + self.extra_link_ns

    @property
    def total_write_ns(self) -> float:
        return self.write_ns + self.extra_link_ns


@dataclass(frozen=True)
class PersistPathConfig:
    """The non-temporal persist path (§II-A) and front-end buffer (§III-A)."""

    latency_ns: float = 20.0
    bandwidth_gbps: float = 4.0
    fe_entries: int = 64
    entry_bytes: int = 8

    def entry_service_ns(self) -> float:
        """Time for one entry to cross the path at full bandwidth."""
        return self.entry_bytes / self.bandwidth_gbps  # B / (B/ns) == ns


@dataclass(frozen=True)
class MCConfig:
    """Integrated memory controllers and their WPQs (§IV-E)."""

    n_mcs: int = 2
    channels_per_mc: int = 2
    wpq_entries: int = 64
    wpq_entry_bytes: int = 8
    noc_latency_ns: float = 20.0
    cam_search_cycles: int = 2

    def __post_init__(self) -> None:
        if self.n_mcs < 1:
            raise ValueError("need at least one memory controller")
        if self.channels_per_mc < 1:
            raise ValueError("need at least one channel per MC")
        if self.wpq_entries < 2:
            raise ValueError("WPQ needs at least two entries")

    @property
    def wpq_bytes(self) -> int:
        return self.wpq_entries * self.wpq_entry_bytes


@dataclass(frozen=True)
class CompilerConfig:
    """Region-partitioning knobs (§III-C, §IV-A)."""

    store_threshold: int = 32
    unroll_limit: int = 8
    speculative_unroll: bool = True
    prune_checkpoints: bool = True
    merge_regions: bool = True
    #: run the scalar passes (constant folding + DCE) after region
    #: formation.  Off by default so instrumented and baseline binaries
    #: see identical scalar code (the paper compiles both with -O3).
    scalar_opts: bool = False

    def __post_init__(self) -> None:
        if self.store_threshold < 1:
            raise ValueError("store_threshold must be positive")


@dataclass(frozen=True)
class SystemConfig:
    """The complete simulated machine (Table I)."""

    cores: int = 8
    clock_ghz: float = 2.0
    issue_width: int = 4
    #: effective CPI of non-memory work on the 4-wide OoO core.  gem5's
    #: measured IPC on these suites sits near 1.3-1.5 (not the 4-wide
    #: ideal): dependence chains, branches, and frontend stalls dominate.
    base_cpi: float = 0.75
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 8, 64, 4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(16 * 1024 * 1024, 16, 64, 44)
    )
    dram_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(4 * 1024 * 1024 * 1024, 1, 64, 90)
    )
    dram_cache_enabled: bool = True
    pm: MemoryBackendConfig = field(
        default_factory=lambda: MemoryBackendConfig(
            name="optane-pmem",
            read_ns=175.0,
            write_ns=90.0,
            read_bw_gbps=6.6,
            write_bw_gbps=2.3,
        )
    )
    persist_path: PersistPathConfig = field(default_factory=PersistPathConfig)
    mc: MCConfig = field(default_factory=MCConfig)
    compiler: CompilerConfig = field(default_factory=CompilerConfig)
    victim_policy: str = VictimPolicy.FULL

    def __post_init__(self) -> None:
        if self.victim_policy not in VictimPolicy.ALL:
            raise ValueError("unknown victim policy: %r" % (self.victim_policy,))
        if self.cores < 1:
            raise ValueError("need at least one core")

    # ------------------------------------------------------------------
    # Unit conversions
    # ------------------------------------------------------------------
    def ns_to_cycles(self, ns: float) -> float:
        return ns * self.clock_ghz

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles / self.clock_ghz

    @property
    def pm_read_cycles(self) -> float:
        return self.ns_to_cycles(self.pm.total_read_ns)

    @property
    def pm_write_cycles(self) -> float:
        return self.ns_to_cycles(self.pm.total_write_ns)

    @property
    def persist_entry_cycles(self) -> float:
        """Cycles between successive 8 B entries on the persist path."""
        return self.ns_to_cycles(self.persist_path.entry_service_ns())

    @property
    def persist_latency_cycles(self) -> float:
        return self.ns_to_cycles(self.persist_path.latency_ns)

    @property
    def noc_cycles(self) -> float:
        return self.ns_to_cycles(self.mc.noc_latency_ns)

    @property
    def ack_round_trip_cycles(self) -> float:
        """One bdry-ACK or flush-ACK exchange between all MCs (§IV-B)."""
        return 2.0 * self.noc_cycles

    @property
    def wpq_flush_cycles_per_entry(self) -> float:
        """Drain *rate* of one WPQ entry into PM: the PM write bandwidth,
        spread over the MC channels.  (The PM write *latency* is paid once
        per flush, not per entry — writes pipeline across banks.)"""
        per_entry_ns = self.mc.wpq_entry_bytes / self.pm.write_bw_gbps
        return self.ns_to_cycles(per_entry_ns) / self.mc.channels_per_mc

    # ------------------------------------------------------------------
    # Derived configurations
    # ------------------------------------------------------------------
    def with_wpq_entries(self, entries: int) -> "SystemConfig":
        """A copy resized to ``entries`` WPQ slots (threshold tracks half,
        and the front-end buffer tracks the WPQ size, per §IV-E/§V-F1)."""
        return replace(
            self,
            mc=replace(self.mc, wpq_entries=entries),
            persist_path=replace(self.persist_path, fe_entries=entries),
            compiler=replace(self.compiler, store_threshold=entries // 2),
        )

    def with_store_threshold(self, threshold: int) -> "SystemConfig":
        return replace(self, compiler=replace(self.compiler, store_threshold=threshold))

    def with_persist_bandwidth(self, gbps: float) -> "SystemConfig":
        return replace(
            self, persist_path=replace(self.persist_path, bandwidth_gbps=gbps)
        )

    def with_cores(self, cores: int) -> "SystemConfig":
        return replace(self, cores=cores)

    def with_mcs(self, n_mcs: int) -> "SystemConfig":
        return replace(self, mc=replace(self.mc, n_mcs=n_mcs))

    def with_victim_policy(self, policy: str) -> "SystemConfig":
        return replace(self, victim_policy=policy)

    def with_memory_backend(self, backend: MemoryBackendConfig) -> "SystemConfig":
        return replace(self, pm=backend)

    def without_dram_cache(self) -> "SystemConfig":
        """The ideal-PSP machine of Fig. 9: DRAM is plain main memory, so
        the LLC DRAM cache in front of PM disappears."""
        return replace(self, dram_cache_enabled=False)

    def describe(self) -> Dict[str, str]:
        """Human-readable rows reproducing Table I."""
        pp = self.persist_path
        return {
            "Processor": "%d-core %d-width OoO at %.0f GHz"
            % (self.cores, self.issue_width, self.clock_ghz),
            "L1 DCache": "%dKB/core, %d-way, %dB block, %d cycles"
            % (
                self.l1d.size_bytes // 1024,
                self.l1d.ways,
                self.l1d.block_bytes,
                self.l1d.latency_cycles,
            ),
            "L2 Cache": "%dMB shared, %d-way, %dB block, %d cycles"
            % (
                self.l2.size_bytes // (1024 * 1024),
                self.l2.ways,
                self.l2.block_bytes,
                self.l2.latency_cycles,
            ),
            "DRAM Cache (LLC)": "direct-mapped %dGB"
            % (self.dram_cache.size_bytes // (1024 ** 3),),
            "PMEM": "read/write=%.0fns/%.0fns" % (self.pm.read_ns, self.pm.write_ns),
            "Memory Controller": "%d MCs, %d channels/MC, %d-entry %dB WPQ"
            % (
                self.mc.n_mcs,
                self.mc.channels_per_mc,
                self.mc.wpq_entries,
                self.mc.wpq_entry_bytes,
            ),
            "Persist Path": "%.0fns worst-case latency and %.0fGB/s bandwidth"
            % (pp.latency_ns, pp.bandwidth_gbps),
            "Front-end Buffer": "%d-entry FIFO queue" % (pp.fe_entries,),
        }


#: Table III — CXL device presets.  The first three are NVDIMM devices whose
#: parameters come from a published CXL characterization; the fourth is a
#: CXL-attached Optane PMEM with an extra 70 ns interconnect hop.
CXL_PRESETS: Dict[str, MemoryBackendConfig] = {
    "CXL-I": MemoryBackendConfig(
        name="CXL-I", read_ns=158.0, write_ns=120.0,
        read_bw_gbps=38.4, write_bw_gbps=38.4,
    ),
    "CXL-II": MemoryBackendConfig(
        name="CXL-II", read_ns=223.0, write_ns=139.0,
        read_bw_gbps=19.2, write_bw_gbps=19.2,
    ),
    "CXL-III": MemoryBackendConfig(
        name="CXL-III", read_ns=348.0, write_ns=241.0,
        read_bw_gbps=25.6, write_bw_gbps=25.6,
    ),
    # 245/160 ns in Table III == Optane's 175/90 ns plus the 70 ns CXL hop.
    "CXL-PMem": MemoryBackendConfig(
        name="CXL-PMem", read_ns=175.0, write_ns=90.0,
        read_bw_gbps=6.6, write_bw_gbps=2.3, extra_link_ns=70.0,
    ),
}

DEFAULT_CONFIG = SystemConfig()
