"""Typed run-loop escapes.

The execution planes (the :mod:`repro.compiler.interp` VM and the
:class:`repro.core.machine.PersistentMachine` scheduler) used to abort
with bare ``RuntimeError``\\ s when a program overran its step budget or
wedged on locks.  Campaigns could not distinguish "the workload is
broken" from "the harness crashed", so these carry the step counts and
subclass ``RuntimeError`` for compatibility with existing handlers.
"""

from __future__ import annotations

__all__ = ["MachineLimitError", "DeadlockError"]


class MachineLimitError(RuntimeError):
    """The run loop exceeded its instruction budget (``max_steps``)."""

    def __init__(self, message: str, steps: int, limit: int) -> None:
        super().__init__(message)
        #: instructions retired when the limit fired
        self.steps = steps
        #: the budget that was exceeded
        self.limit = limit


class DeadlockError(RuntimeError):
    """Every live thread is blocked on a lock: no schedule can advance."""

    def __init__(self, message: str, steps: int) -> None:
        super().__init__(message)
        #: instructions retired when the deadlock was detected
        self.steps = steps
