"""``repro.obs`` — the trace observability plane.

The system's JSONL run artifacts (fault campaigns, store serving,
cluster sessions and chaos campaigns, bench runs) follow one normative,
versioned event contract: **trace.v1**.  This package owns that
contract and the tools that consume it:

* :mod:`repro.obs.schema` — the event catalogue, record validation,
  the consumer-side version gate, and the published JSON-Schema.
* :mod:`repro.obs.timeline` — ``repro trace timeline``: reconstruct a
  run's ordered phases and durations from its trace.
* :mod:`repro.obs.tailer` — ``repro trace tail``: live-follow a growing
  trace (throughput, p50/p95/p99, WPQ occupancy, crash/recovery).
* :mod:`repro.obs.verdicts` — ``repro trace verdicts``: re-render
  campaign verdicts from the trace alone, byte-proved against the
  recorded summary.
"""

from .schema import (
    EVENT_SCHEMAS,
    SUPPORTED_MAJORS,
    TERMINAL_TYPES,
    SchemaVersionError,
    ensure_supported_version,
    parse_version,
    schema_json,
    schema_json_text,
    validate_record,
    validate_records,
)
from .tailer import TraceTail, follow_trace, tail_trace
from .timeline import Timeline, TimelinePhase, build_timeline, format_timeline
from .verdicts import (
    VerdictsReport,
    derive_summary,
    format_verdicts,
    render_verdicts,
)

__all__ = [
    "EVENT_SCHEMAS",
    "SUPPORTED_MAJORS",
    "TERMINAL_TYPES",
    "SchemaVersionError",
    "ensure_supported_version",
    "parse_version",
    "schema_json",
    "schema_json_text",
    "validate_record",
    "validate_records",
    "Timeline",
    "TimelinePhase",
    "build_timeline",
    "format_timeline",
    "TraceTail",
    "follow_trace",
    "tail_trace",
    "VerdictsReport",
    "derive_summary",
    "format_verdicts",
    "render_verdicts",
]
