"""``repro trace tail`` — live-follow a growing JSONL trace.

The follower reads whatever a concurrent writer has appended, parses
only *complete* lines (a partial final line is held until the writer
finishes it — the on-disk signature of an in-flight record), and yields
records as they land.  It stops at a terminal record
(:data:`repro.obs.schema.TERMINAL_TYPES`) or after ``idle_timeout``
seconds without growth.

:class:`TraceTail` turns the stream into a live view: rolling
throughput, latency percentiles (p50/p95/p99), WPQ occupancy, and
crash/recovery events, rendered one line per interesting record.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional

from .schema import TERMINAL_TYPES, ensure_supported_version

__all__ = ["follow_trace", "TraceTail", "tail_trace"]


def follow_trace(
    path: str,
    poll: float = 0.2,
    idle_timeout: Optional[float] = None,
    follow: bool = True,
    stop_at_terminal: bool = True,
    _sleep: Callable[[float], None] = time.sleep,
) -> Iterator[Dict]:
    """Yield records from ``path`` as they are appended.

    ``follow=False`` reads to the current end of file and returns.
    With ``follow=True`` the generator keeps polling every ``poll``
    seconds; it ends when a terminal record arrives (unless
    ``stop_at_terminal=False``) or the file has not grown for
    ``idle_timeout`` seconds (None = wait forever).  A half-written
    final line is never parsed — it is buffered until the writer
    completes it, so a crashed writer can hang the follower only until
    the idle timeout, never corrupt its output."""
    buffer = ""
    versions_checked = set()
    last_growth = time.monotonic()
    with open(path) as fh:
        while True:
            chunk = fh.read()
            if chunk:
                last_growth = time.monotonic()
                buffer += chunk
                while "\n" in buffer:
                    line, buffer = buffer.split("\n", 1)
                    if not line.strip():
                        continue
                    record = json.loads(line)
                    version = record.get("schema_version")
                    if version is not None and \
                            version not in versions_checked:
                        versions_checked.add(version)
                        ensure_supported_version([record], path)
                    yield record
                    if stop_at_terminal and \
                            record.get("type") in TERMINAL_TYPES:
                        return
            else:
                if not follow:
                    return
                if idle_timeout is not None and \
                        time.monotonic() - last_growth > idle_timeout:
                    return
                _sleep(poll)


@dataclass
class TraceTail:
    """Rolling view over a followed trace."""

    records: int = 0
    by_type: Dict[str, int] = field(default_factory=dict)
    # store serving
    ops: int = 0
    acked: int = 0
    epoch_ns: Dict[int, float] = field(default_factory=dict)
    last_p50: float = 0.0
    last_p95: float = 0.0
    last_p99: float = 0.0
    max_wpq_occupancy: int = 0
    # campaigns
    scenarios: int = 0
    violations: int = 0
    crashes: int = 0
    recoveries: int = 0
    epochs: int = 0
    finished: bool = False

    @property
    def sim_ns(self) -> float:
        # an epoch's simulated wall is its slowest shard; the run's is
        # the sum over epochs (shards within an epoch run concurrently)
        return sum(self.epoch_ns.values())

    @property
    def throughput_mops(self) -> float:
        total = self.sim_ns
        return self.ops / total * 1e3 if total > 0 else 0.0

    def feed(self, record: Dict) -> Optional[str]:
        """Absorb one record; return a rendered line when the record is
        worth showing live (None for bookkeeping records)."""
        self.records += 1
        rectype = record.get("type", "?")
        self.by_type[rectype] = self.by_type.get(rectype, 0) + 1
        handler = getattr(self, "_on_%s" % rectype, None)
        if rectype in TERMINAL_TYPES:
            self.finished = True
        if handler is None:
            return None
        return handler(record)

    # ---- store serving ----------------------------------------------
    def _on_serve_start(self, r: Dict) -> str:
        return ("serving %s/%s seed=%s over %s shard(s) on %s"
                % (r.get("workload"), r.get("dist"), r.get("seed"),
                   r.get("shards"), r.get("backend")))

    def _on_server_epoch(self, r: Dict) -> str:
        self.ops += r.get("ops", 0)
        self.acked += r.get("acked", 0)
        e = r.get("epoch", 0)
        self.epoch_ns[e] = max(self.epoch_ns.get(e, 0.0),
                               r.get("sim_ns", 0.0))
        self.last_p50 = r.get("p50", 0.0)
        self.last_p95 = r.get("p95", 0.0)
        self.last_p99 = r.get("p99", 0.0)
        self.max_wpq_occupancy = max(
            self.max_wpq_occupancy, r.get("wpq_occupancy", 0)
        )
        self.epochs = max(self.epochs, r.get("epoch", 0) + 1)
        return (
            "epoch %2d shard %d: %3d ops (%3d acked)  "
            "p50=%-6.0f p95=%-6.0f p99=%-6.0f ns  wpq<=%-2d  "
            "%.2f Mops/s cum%s"
            % (r.get("epoch", 0), r.get("shard", 0), r.get("ops", 0),
               r.get("acked", 0), self.last_p50, self.last_p95,
               self.last_p99, r.get("wpq_occupancy", 0),
               self.throughput_mops,
               "  [CRASHED+RECOVERED]" if r.get("crashed") else "")
        )

    def _on_server_crash(self, r: Dict) -> str:
        self.crashes += 1
        self.recoveries += 1
        return (
            "CRASH epoch %d shard %d at step %d: %d/%d acked before "
            "the cut, oracle %s"
            % (r.get("epoch", 0), r.get("shard", 0), r.get("step", 0),
               r.get("acked", 0), r.get("requests", 0),
               "ok" if r.get("oracle_ok") else "VIOLATION")
        )

    def _on_serve_end(self, r: Dict) -> str:
        return (
            "serve finished: %d ops, %.2f Mops/s, %d violation(s), "
            "digest %s"
            % (r.get("ops", 0), r.get("throughput_mops", 0.0),
               r.get("violations", 0), r.get("digest", ""))
        )

    # ---- faults campaign --------------------------------------------
    def _on_campaign_start(self, r: Dict) -> str:
        return ("campaign seed=%s over %d benchmark(s), backend %s"
                % (r.get("seed"), len(r.get("benchmarks", [])),
                   r.get("backend", "lightwsp-lrpo")))

    def _on_scenario_end(self, r: Dict) -> str:
        self.scenarios += 1
        self.crashes += r.get("crashes", 0)
        self.recoveries += r.get("crashes", 0)
        bad = r.get("violation") is not None
        if bad:
            self.violations += 1
        return (
            "scenario %-10s %-12s %-8s %s"
            % (r.get("benchmark"), r.get("fault_class"),
               r.get("config", ""),
               "VIOLATION" if bad else "ok")
        )

    def _on_defense_mode(self, r: Dict) -> str:
        return ("defense %-24s %s"
                % (r.get("mode"),
                   "caught" if r.get("caught") else "NOT CAUGHT"))

    def _on_campaign_end(self, r: Dict) -> str:
        return (
            "campaign finished: %d scenarios, %d violation(s), "
            "defenses %d/%d"
            % (r.get("scenarios", 0), r.get("violations", 0),
               r.get("defenses_caught", 0), r.get("defenses_total", 0))
        )

    # ---- cluster ----------------------------------------------------
    def _on_cluster_start(self, r: Dict) -> str:
        return ("cluster session: %s shards on %s, %s ops, %d chaos "
                "event(s)"
                % (r.get("n_shards"), r.get("backend"), r.get("ops"),
                   len(r.get("chaos", []))))

    def _on_cluster_epoch(self, r: Dict) -> Optional[str]:
        self.epochs = max(self.epochs, r.get("epoch", 0) + 1)
        done = len(r.get("completions", []))
        self.ops += done
        rejoined = r.get("rejoined", [])
        self.recoveries += len(rejoined)
        if not done and not rejoined and not r.get("transitions"):
            return None
        bits = ["epoch %2d:" % r.get("epoch", 0)]
        if done:
            bits.append("%d completion(s)" % done)
        for t in r.get("transitions", []):
            bits.append("shard %s -> %s" % (t.get("shard"),
                                            t.get("status")))
        if rejoined:
            bits.append("rejoined %s" % rejoined)
        return "  ".join(bits)

    def _on_shard_kill(self, r: Dict) -> str:
        self.crashes += 1
        return (
            "KILL epoch %d shard %d at step %d (dark for %d), "
            "%d acked before cut"
            % (r.get("epoch", 0), r.get("shard", 0), r.get("step", 0),
               r.get("down_for", 0), r.get("acked_before_cut", 0))
        )

    def _on_cluster_end(self, r: Dict) -> str:
        return (
            "cluster finished: %d epochs, %d violation(s), digest %s"
            % (r.get("epochs", 0), len(r.get("violations", [])),
               r.get("digest", ""))
        )

    def _on_cluster_scenario(self, r: Dict) -> str:
        self.scenarios += 1
        if r.get("violations"):
            self.violations += 1
        return (
            "scenario %-14s seed=%-3s %s (%s epochs)"
            % (r.get("backend"), r.get("seed"),
               "VIOLATION" if r.get("violations") else "ok",
               r.get("epochs"))
        )

    def _on_cluster_campaign_end(self, r: Dict) -> str:
        return ("cluster campaign finished: %d scenario(s), %d failure(s)"
                % (r.get("scenarios", 0), r.get("failures", 0)))

    # ---- bench ------------------------------------------------------
    def _on_bench_entry(self, r: Dict) -> str:
        return "bench %-16s done in %.2fs" % (r.get("name"),
                                              r.get("wall_s", 0.0))

    def _on_bench_end(self, r: Dict) -> str:
        return ("bench finished: %d entr(ies), %.1fs wall"
                % (r.get("entries", 0), r.get("wall_s_total", 0.0)))

    def summary(self) -> str:
        bits = ["tailed %d record(s)" % self.records]
        if self.ops:
            bits.append("%d ops" % self.ops)
        if self.sim_ns > 0:
            bits.append("%.2f Mops/s" % self.throughput_mops)
        if self.scenarios:
            bits.append("%d scenario(s)" % self.scenarios)
        if self.epochs:
            bits.append("%d epoch(s)" % self.epochs)
        bits.append("%d crash(es), %d recover(ies)"
                    % (self.crashes, self.recoveries))
        if self.violations:
            bits.append("%d VIOLATION(S)" % self.violations)
        if not self.finished:
            bits.append("writer still running (no terminal record)")
        return ", ".join(bits)


def tail_trace(
    path: str,
    out: Callable[[str], None] = print,
    poll: float = 0.2,
    idle_timeout: Optional[float] = None,
    follow: bool = True,
) -> TraceTail:
    """Follow ``path`` and render it live through ``out``.  Returns the
    final aggregate view."""
    tail = TraceTail()
    for record in follow_trace(
        path, poll=poll, idle_timeout=idle_timeout, follow=follow
    ):
        line = tail.feed(record)
        if line is not None:
            out(line)
    out(tail.summary())
    return tail
