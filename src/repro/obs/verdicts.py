"""``repro trace verdicts`` — re-render a campaign's verdicts from its
trace alone and prove them against the recorded summary.

The trace is the normative artifact: every per-scenario verdict
(violation or clean), every defense-validation outcome, and the final
summary record are all on disk.  This module re-derives the summary
*from the per-scenario records only* — no simulation is re-run — and
byte-compares its canonical serialization against the raw recorded
line.  A mismatch means the trace was tampered with or the producer's
bookkeeping disagreed with what it emitted; either way the artifact
cannot be trusted and the report says so.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..trace import read_trace
from .schema import ensure_supported_version

__all__ = ["VerdictsReport", "derive_summary", "render_verdicts",
           "format_verdicts"]


@dataclass
class VerdictsReport:
    """The re-rendered verdicts plus the parity proof."""

    kind: str                       # "faults campaign" | "cluster chaos campaign"
    path: str
    lines: List[str] = field(default_factory=list)  # rendered verdicts
    stats: List[str] = field(default_factory=list)  # rendered summary stats
    derived: Optional[Dict] = None   # summary re-derived from scenarios
    recorded: Optional[Dict] = None  # summary record found in the trace
    recorded_raw: Optional[str] = None  # its raw on-disk line
    byte_match: Optional[bool] = None   # None = trace has no summary record
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems and self.byte_match is not False


def _canonical(record: Dict) -> str:
    return json.dumps(record, sort_keys=True)


def derive_summary(records: Sequence[Dict]) -> Optional[Dict]:
    """Re-derive the trace's terminal summary record from its
    per-scenario records alone.  Returns None for trace kinds that have
    no campaign summary."""
    first = records[0].get("type")
    if first == "campaign_start":
        scenarios = [r for r in records if r.get("type") == "scenario_end"]
        defenses = [r for r in records if r.get("type") == "defense_mode"]
        return {
            "type": "campaign_end",
            "scenarios": len(scenarios),
            "violations": sum(
                1 for r in scenarios if r.get("violation") is not None
            ),
            "defenses_caught": sum(
                1 for r in defenses if r.get("caught")
            ),
            "defenses_total": len(defenses),
        }
    if first == "cluster_campaign_start":
        scenarios = [
            r for r in records if r.get("type") == "cluster_scenario"
        ]
        return {
            "type": "cluster_campaign_end",
            "scenarios": len(scenarios),
            "failures": sum(1 for r in scenarios if r.get("violations")),
        }
    return None


def _campaign_verdicts(records: Sequence[Dict], report: VerdictsReport):
    per_bench: Dict[str, List[int]] = {}
    per_class: Dict[str, List[int]] = {}
    for r in records:
        if r.get("type") == "scenario_end":
            bad = r.get("violation") is not None
            verdict = "ok"
            if bad:
                verdict = "VIOLATION: %s" % r["violation"].get(
                    "kind", "?"
                )
            report.lines.append(
                "%-10s %-14s %-8s crashes=%-2d %s"
                % (r.get("benchmark"), r.get("fault_class"),
                   r.get("config"), r.get("crashes", 0), verdict)
            )
            for key, table in ((r.get("benchmark"), per_bench),
                               (r.get("fault_class"), per_class)):
                cell = table.setdefault(str(key), [0, 0])
                cell[0] += 1
                cell[1] += int(bad)
        elif r.get("type") == "defense_mode":
            tag = "NOT CAUGHT"
            if r.get("caught"):
                tag = ("caught (%d-event reproducer on %s, "
                       "%d candidates)"
                       % (r.get("minimal_events", 0), r.get("benchmark"),
                          r.get("candidates_tried", 0)))
            report.lines.append(
                "defense %-24s %s" % (r.get("mode"), tag)
            )
    for title, table in (("per benchmark", per_bench),
                         ("per fault class", per_class)):
        report.stats.append(title + ":")
        for key in sorted(table):
            ran, bad = table[key]
            report.stats.append(
                "  %-14s %3d scenario(s), %d violation(s)"
                % (key, ran, bad)
            )


def _cluster_verdicts(records: Sequence[Dict], report: VerdictsReport):
    per_backend: Dict[str, List[int]] = {}
    for r in records:
        if r.get("type") != "cluster_scenario":
            continue
        bad = bool(r.get("violations"))
        verdict = "ok"
        if bad:
            verdict = "VIOLATION: %s" % "; ".join(
                str(v) for v in r["violations"][:2]
            )
        tags = ""
        if r.get("promotions"):
            tags += " promotions=%d" % r["promotions"]
        if r.get("resharded"):
            tags += " resharded"
        report.lines.append(
            "%-14s seed=%-3s epochs=%-3s digest=%s%s %s"
            % (r.get("backend"), r.get("seed"), r.get("epochs"),
               r.get("digest"), tags, verdict)
        )
        cell = per_backend.setdefault(str(r.get("backend")), [0, 0])
        cell[0] += 1
        cell[1] += int(bad)
    report.stats.append("per backend:")
    for key in sorted(per_backend):
        ran, bad = per_backend[key]
        report.stats.append(
            "  %-14s %3d scenario(s), %d failure(s)" % (key, ran, bad)
        )


_KINDS = {
    "campaign_start": ("faults campaign", _campaign_verdicts,
                       "campaign_end"),
    "cluster_campaign_start": ("cluster chaos campaign",
                               _cluster_verdicts,
                               "cluster_campaign_end"),
}


def render_verdicts(path: str) -> VerdictsReport:
    """Re-render verdicts and summary stats for the campaign trace at
    ``path`` and byte-compare the derived summary against the recorded
    one.  Refuses unknown schema majors."""
    records = read_trace(path)
    if not records:
        raise ValueError("%s: empty trace" % path)
    ensure_supported_version(records, path)
    first = records[0].get("type")
    if first not in _KINDS:
        raise ValueError(
            "%s: verdicts need a campaign trace (starting with %s), "
            "got a trace starting with %r"
            % (path, " or ".join(sorted(_KINDS)), first)
        )
    kind, renderer, end_type = _KINDS[first]
    report = VerdictsReport(kind=kind, path=path)
    renderer(records, report)

    report.derived = derive_summary(records)
    with open(path) as fh:
        raw_lines = [ln for ln in fh.read().split("\n") if ln.strip()]
    recorded_at = next(
        (i for i, r in enumerate(records) if r.get("type") == end_type),
        None,
    )
    if recorded_at is None:
        report.problems.append(
            "trace has no %s record (interrupted run?) — derived "
            "verdict stands alone, nothing recorded to compare against"
            % end_type
        )
        return report
    report.recorded = records[recorded_at]
    report.recorded_raw = raw_lines[recorded_at]

    # the recorded summary is compared byte-for-byte: the derived
    # record, carrying the envelope (schema_version) the producer
    # stamped, re-serialized canonically, must equal the raw line
    derived = dict(report.derived)
    if "schema_version" in report.recorded:
        derived["schema_version"] = report.recorded["schema_version"]
    report.byte_match = _canonical(derived) == report.recorded_raw
    if not report.byte_match:
        report.problems.append(
            "recorded %s does not byte-match the summary derived from "
            "the per-scenario records:\n  recorded: %s\n  derived:  %s"
            % (end_type, report.recorded_raw, _canonical(derived))
        )
    return report


def format_verdicts(report: VerdictsReport) -> str:
    out = ["verdicts: %s — %s" % (report.kind, report.path), ""]
    out.extend("  %s" % line for line in report.lines)
    out.append("")
    out.extend("  %s" % line for line in report.stats)
    out.append("")
    if report.byte_match:
        out.append(
            "  recorded summary byte-matches the verdict derived from "
            "%d rendered record(s): %s"
            % (len(report.lines), report.recorded_raw)
        )
    for problem in report.problems:
        out.append("  PROBLEM: %s" % problem)
    return "\n".join(out)
