"""The normative ``trace.v1`` event contract.

Every JSONL run artifact the system emits — fault-campaign scenarios,
store-server epochs, cluster sessions and chaos campaigns, bench
results — is a stream of records drawn from the **event catalogue**
below.  This module is the single source of truth for that contract:

* :data:`EVENT_SCHEMAS` enumerates every event type and its fields
  (name, JSON type, required/optional).  Producers may not emit outside
  it (strict mode enforces this; the whole test suite runs strict).
* :func:`validate_record` / :func:`validate_records` check records
  against the catalogue and report precise problems.
* :func:`schema_json` renders the catalogue as a standard JSON-Schema
  (draft-07) document — the *published* form of the contract, committed
  at ``docs/trace.v1.schema.json`` and pinned by a test so the two can
  never drift.
* :func:`ensure_supported_version` is the consumer-side gate: replay
  and rendering tools accept any ``1.x`` trace plus legacy unversioned
  traces, and refuse an unknown major version with an explanation
  instead of misinterpreting it.

Versioning rules (the producer/consumer contract, also written up in
DESIGN.md "Trace protocol"):

* Every record carries ``schema_version`` (``"<major>.<minor>"``),
  stamped by :class:`repro.trace.JsonlTrace` — each line is
  self-describing, so a consumer can start mid-stream (``repro trace
  tail``) without scanning back for a header.
* **Minor** bumps add optional fields or new event types; consumers of
  the same major must tolerate both.
* **Major** bumps change the meaning or shape of existing fields;
  consumers MUST refuse majors they do not know.
* Traces that predate the stamp (legacy) are accepted and interpreted
  as the oldest 1.x contract.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from ..trace import TRACE_SCHEMA_VERSION

__all__ = [
    "SUPPORTED_MAJORS",
    "EVENT_SCHEMAS",
    "TERMINAL_TYPES",
    "SchemaVersionError",
    "parse_version",
    "record_version",
    "validate_record",
    "validate_records",
    "ensure_supported_version",
    "schema_json",
]

#: trace majors this build can interpret
SUPPORTED_MAJORS: Tuple[int, ...] = (1,)

#: record types that end their stream (a tailer may stop at one)
TERMINAL_TYPES = frozenset({
    "campaign_end",
    "cluster_campaign_end",
    "cluster_end",
    "serve_end",
    "bench_end",
})

# ----------------------------------------------------------------------
# the event catalogue
# ----------------------------------------------------------------------
# Field specs are "<jsontype>" strings, "|"-separated for unions, with a
# leading "?" marking the field optional.  JSON types: int, num (int or
# float), str, bool, list, dict, null.

EVENT_SCHEMAS: Dict[str, Dict[str, str]] = {
    # ---- faults campaign (repro.faults.campaign) ---------------------
    "campaign_start": {
        "seed": "int", "scale": "num", "benchmarks": "list",
        "fault_classes": "list", "tiny_wpq_entries": "int",
        "version": "int", "backend": "?str", "sharding": "?dict",
    },
    "scenario_end": {
        "benchmark": "str", "fault_class": "str", "config": "str",
        "mode": "str", "schedule": "list", "image_hash": "str",
        "steps": "int", "crashes": "int", "skipped_events": "int",
        "counters": "dict", "violation": "dict|null",
    },
    "defense_mode": {
        "mode": "str", "caught": "bool", "benchmark": "str|null",
        "candidates_tried": "int", "config": "?str", "minimal": "?list",
        "original_events": "?int", "minimal_events": "?int",
        "shrink_evals": "?int", "violation": "?dict|null",
    },
    "campaign_end": {
        "scenarios": "int", "violations": "int",
        "defenses_caught": "int", "defenses_total": "int",
    },
    # ---- machine-level fault events (repro.faults.machine) -----------
    "mc_down": {"mc": "int", "step": "int"},
    "msg_drop": {"mc": "int", "region": "int", "step": "int"},
    "msg_delay": {"mc": "int", "region": "int", "step": "int",
                  "by": "int"},
    "msg_dup": {"mc": "int", "region": "int", "step": "int"},
    "straggler_flush": {"mc": "int", "region": "int"},
    "power_cut": {"step": "int", "budget_entries": "int|null",
                  "torn": "list", "nested": "str"},
    "nested_cut": {"step": "int"},
    "drain_exhausted": {"word": "int"},
    "torn_write": {"word": "int", "repaired": "bool"},
    # ---- cluster session (repro.cluster.coordinator) -----------------
    "cluster_start": {
        "n_shards": "int", "keyspace": "int", "backend": "str",
        "seed": "int", "ring": "str", "vnodes": "int", "ops": "int",
        "policy": "dict", "chaos": "list", "sharding": "str",
        "replicate": "?bool", "ship_lag": "?int", "reshard_at": "?int",
    },
    "cluster_epoch": {
        "epoch": "int", "rejoined": "list", "transitions": "list",
        "completions": "list",
    },
    "shard_kill": {
        "epoch": "int", "shard": "int", "step": "int", "down_for": "int",
        "acked_before_cut": "int", "completed_in_dark": "int",
        "replica": "?int",
    },
    # added in 1.1: per-range failover and live resharding
    "promote": {
        "epoch": "int", "range": "int", "fence": "int",
        "caught_up": "int", "served": "int",
    },
    "reshard_start": {
        "epoch": "int", "new_shard": "int", "moved": "int",
        "ring_from": "str", "ring_to": "str",
    },
    "reshard_copy": {
        "epoch": "int", "new_shard": "int", "keys": "int",
        "copied": "int", "total": "int",
    },
    "reshard_handoff": {
        "epoch": "int", "new_shard": "int", "delta": "int",
        "dropped": "int", "moved": "int",
    },
    "replay_rejected": {"epoch": "int", "shard": "int",
                        "first_id": "int"},
    "late_completion": {"epoch": "int", "response": "dict"},
    "txn_decision": {"epoch": "int", "token": "int", "decision": "str",
                     "keys": "list"},
    "cluster_end": {
        "epochs": "int", "responses": "dict", "violations": "list",
        "counters": "dict", "shards": "list", "digest": "str",
        "ranges": "?list", "resharded": "?dict",
    },
    # ---- cluster chaos campaign (repro.cluster.chaos) ----------------
    "cluster_campaign_start": {
        "backends": "list", "seeds": "list", "n_shards": "int",
        "keyspace": "int", "ops": "int", "mix": "str", "kills": "int",
        "transport": "int", "partitions": "int", "msg_faults": "int",
        "horizon": "int", "sharding": "?str",
        "replicate": "?bool", "ship_lag": "?int",
        "follower_kills": "?int", "reshard_at": "?int",
    },
    "cluster_scenario": {
        "backend": "str", "seed": "int", "chaos": "list",
        "violations": "list", "digest": "str", "epochs": "int",
        "responses": "dict", "unavailable_shards": "list",
        "shrunk": "?list", "shrink_evals": "?int",
        "promotions": "?int", "resharded": "?bool",
    },
    "cluster_campaign_end": {"scenarios": "int", "failures": "int"},
    # ---- store server (repro.store.server) ---------------------------
    "serve_start": {
        "workload": "str", "dist": "str", "seed": "int", "ops": "int",
        "shards": "int", "keyspace": "int", "batch": "int",
        "backend": "str", "crash_epoch": "int|null",
    },
    "server_epoch": {
        "epoch": "int", "shard": "int", "ops": "int", "acked": "int",
        "steps": "int", "sim_ns": "num", "p50": "num", "p95": "num",
        "p99": "num", "wpq_occupancy": "int", "commits": "int",
        "crashed": "bool",
    },
    "server_crash": {
        "epoch": "int", "shard": "int", "step": "int", "acked": "int",
        "requests": "int", "oracle_ok": "bool",
    },
    "serve_end": {
        "ops": "int", "sim_ns": "num", "throughput_mops": "num",
        "violations": "int", "digest": "str",
    },
    # ---- perf bench (repro.perf.runner) ------------------------------
    "bench_start": {
        "seed": "int", "scale": "num", "smoke": "bool", "jobs": "int",
        "entries": "list",
    },
    "bench_entry": {
        "name": "str", "kind": "str", "metrics": "dict", "wall_s": "num",
    },
    "bench_end": {"entries": "int", "wall_s_total": "num"},
}

_TYPE_CHECKS = {
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "num": lambda v: (isinstance(v, (int, float))
                      and not isinstance(v, bool)),
    "str": lambda v: isinstance(v, str),
    "bool": lambda v: isinstance(v, bool),
    "list": lambda v: isinstance(v, list),
    "dict": lambda v: isinstance(v, dict),
    "null": lambda v: v is None,
}

_JSON_TYPE = {
    "int": "integer", "num": "number", "str": "string",
    "bool": "boolean", "list": "array", "dict": "object", "null": "null",
}


class SchemaVersionError(ValueError):
    """A trace declares a ``schema_version`` this build cannot
    interpret (unknown major, or an unparseable version string)."""


def parse_version(version: str) -> Tuple[int, int]:
    """``"1.0"`` -> ``(1, 0)``.  Raises :class:`SchemaVersionError` on
    anything that is not ``<major>.<minor>`` with integer parts."""
    parts = str(version).split(".")
    try:
        if len(parts) != 2:
            raise ValueError
        return int(parts[0]), int(parts[1])
    except ValueError:
        raise SchemaVersionError(
            "unparseable trace schema_version %r (expected "
            "'<major>.<minor>', e.g. %r)" % (version, TRACE_SCHEMA_VERSION)
        ) from None


def record_version(record: Dict) -> Optional[str]:
    """The record's declared schema version, or None for legacy."""
    value = record.get("schema_version")
    return None if value is None else str(value)


def _check_field(value, spec: str) -> bool:
    return any(_TYPE_CHECKS[alt](value) for alt in spec.split("|"))


def validate_record(record: object) -> List[str]:
    """Validate one parsed JSONL record against the ``trace.v1``
    catalogue.  Returns a list of problems (empty = valid).  Unknown
    event types and unknown fields are problems: the catalogue is
    updated in lock-step with producers, so anything outside it is a
    contract violation, not an extension."""
    if not isinstance(record, dict):
        return ["record is %s, not an object" % type(record).__name__]
    rectype = record.get("type")
    if not isinstance(rectype, str):
        return ["record has no string 'type' field"]
    spec = EVENT_SCHEMAS.get(rectype)
    if spec is None:
        return ["unknown event type %r (catalogue: %s)"
                % (rectype, ", ".join(sorted(EVENT_SCHEMAS)))]
    problems = []
    version = record.get("schema_version")
    if version is not None:
        try:
            parse_version(version)
        except SchemaVersionError as exc:
            problems.append(str(exc))
    for name, fieldspec in spec.items():
        required = not fieldspec.startswith("?")
        types = fieldspec.lstrip("?")
        if name not in record:
            if required:
                problems.append(
                    "%s: missing required field %r" % (rectype, name)
                )
            continue
        if not _check_field(record[name], types):
            problems.append(
                "%s.%s: expected %s, got %r"
                % (rectype, name, types, type(record[name]).__name__)
            )
    known = set(spec) | {"type", "schema_version"}
    for name in sorted(set(record) - known):
        problems.append(
            "%s: field %r is not in the trace.v1 catalogue" % (rectype, name)
        )
    return problems


def validate_records(
    records: Iterable[Dict], max_problems: int = 50
) -> List[str]:
    """Validate a whole trace; problems are prefixed with the 1-based
    record index."""
    out: List[str] = []
    for i, record in enumerate(records, 1):
        for problem in validate_record(record):
            out.append("record %d: %s" % (i, problem))
            if len(out) >= max_problems:
                out.append("... (further problems suppressed)")
                return out
    return out


def ensure_supported_version(
    records: Iterable[Dict], path: str = "trace"
) -> None:
    """Consumer-side version gate: refuse any record whose declared
    major is outside :data:`SUPPORTED_MAJORS`, with an explanation.
    Legacy records with no ``schema_version`` pass (they predate the
    stamp and use the oldest 1.x shapes)."""
    seen = set()
    for record in records:
        version = record_version(record) if isinstance(record, dict) \
            else None
        if version is None or version in seen:
            continue
        seen.add(version)
        major, _ = parse_version(version)
        if major not in SUPPORTED_MAJORS:
            raise SchemaVersionError(
                "%s was recorded under trace schema version %s, but this "
                "build only understands major version(s) %s (current: "
                "%s).  A different major changes the meaning of recorded "
                "fields, so replaying or rendering it here could "
                "silently misinterpret the run — use a build that "
                "matches the trace, or regenerate the trace with this "
                "one." % (
                    path, version,
                    ", ".join(str(m) for m in SUPPORTED_MAJORS),
                    TRACE_SCHEMA_VERSION,
                )
            )


# ----------------------------------------------------------------------
# the published JSON-Schema document
# ----------------------------------------------------------------------

def _field_schema(spec: str) -> Dict:
    types = [_JSON_TYPE[alt] for alt in spec.lstrip("?").split("|")]
    return {"type": types[0] if len(types) == 1 else types}


def schema_json() -> Dict:
    """The catalogue rendered as a draft-07 JSON-Schema document — the
    published form of the contract (committed at
    ``docs/trace.v1.schema.json``)."""
    variants = []
    for rectype in sorted(EVENT_SCHEMAS):
        spec = EVENT_SCHEMAS[rectype]
        properties: Dict[str, Dict] = {
            "type": {"const": rectype},
            "schema_version": {
                "type": "string", "pattern": r"^[0-9]+\.[0-9]+$",
            },
        }
        required = ["type"]
        for name in sorted(spec):
            properties[name] = _field_schema(spec[name])
            if not spec[name].startswith("?"):
                required.append(name)
        variants.append({
            "title": rectype,
            "type": "object",
            "properties": properties,
            "required": required,
            "additionalProperties": False,
        })
    return {
        "$schema": "http://json-schema.org/draft-07/schema#",
        "$id": "repro.trace.v1",
        "title": "repro JSONL trace event (schema trace.v%s)"
                 % TRACE_SCHEMA_VERSION.split(".")[0],
        "description":
            "One JSON object per line of an append-only repro run "
            "artifact.  Records without schema_version are legacy and "
            "interpreted as the oldest 1.x contract.  See DESIGN.md "
            "'Trace protocol' for the semantic (producer/consumer) "
            "contract this structural schema cannot express.",
        "version": TRACE_SCHEMA_VERSION,
        "oneOf": variants,
    }


def schema_json_text() -> str:
    """Canonical serialization of :func:`schema_json` (what the
    committed ``docs/trace.v1.schema.json`` must contain, byte for
    byte)."""
    return json.dumps(schema_json(), indent=2, sort_keys=True) + "\n"
