"""``repro trace timeline`` — reconstruct a run's ordered event
timeline, with per-phase durations, from the stored trace alone.

Traces carry no wall-clock timestamps (they must be byte-identical
across runs and ``--jobs`` levels), so durations are reported in the
run's own deterministic units: simulated machine *steps* for campaign
scenarios, *epochs* for cluster sessions, simulated *nanoseconds* for
store serving, and recorded wall seconds for bench entries (the one
place wall time is a recorded, informational metric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .schema import ensure_supported_version

__all__ = ["TimelinePhase", "Timeline", "build_timeline", "format_timeline"]


@dataclass
class TimelinePhase:
    """One contiguous phase of the reconstructed run."""

    title: str
    events: int = 0
    duration: float = 0.0
    unit: str = ""                 # "steps" | "epochs" | "ns" | "s" | ""
    notes: List[str] = field(default_factory=list)


@dataclass
class Timeline:
    """The reconstructed run."""

    kind: str                      # what produced the trace
    records: int
    schema_versions: List[str]     # distinct declared versions ([] = legacy)
    phases: List[TimelinePhase] = field(default_factory=list)
    crashes: int = 0
    recoveries: int = 0
    notes: List[str] = field(default_factory=list)


def _versions(records: Sequence[Dict]) -> List[str]:
    seen: List[str] = []
    for r in records:
        v = r.get("schema_version")
        if v is not None and v not in seen:
            seen.append(str(v))
    return seen


def _campaign_timeline(records: Sequence[Dict], tl: Timeline) -> None:
    start = records[0]
    tl.notes.append(
        "seed=%s scale=%s backend=%s benchmarks=%d"
        % (start.get("seed"), start.get("scale"),
           start.get("backend", "lightwsp-lrpo"),
           len(start.get("benchmarks", [])))
    )
    order: List[str] = []
    per_bench: Dict[str, TimelinePhase] = {}
    defense = TimelinePhase(title="defense-off validation")
    for r in records:
        if r.get("type") == "scenario_end":
            name = r.get("benchmark", "?")
            if name not in per_bench:
                order.append(name)
                per_bench[name] = TimelinePhase(
                    title="scenarios: %s" % name, unit="steps"
                )
            phase = per_bench[name]
            phase.events += 1
            phase.duration += r.get("steps", 0)
            tl.crashes += r.get("crashes", 0)
            if r.get("violation") is not None:
                phase.notes.append(
                    "VIOLATION %s/%s" % (name, r.get("fault_class"))
                )
        elif r.get("type") == "defense_mode":
            defense.events += 1
            tag = "caught" if r.get("caught") else "NOT CAUGHT"
            defense.notes.append("%s: %s" % (r.get("mode"), tag))
    tl.phases.extend(per_bench[name] for name in order)
    if defense.events:
        tl.phases.append(defense)
    end = records[-1]
    if end.get("type") == "campaign_end":
        tl.notes.append(
            "recorded end: %d scenarios, %d violations, defenses %d/%d"
            % (end.get("scenarios", 0), end.get("violations", 0),
               end.get("defenses_caught", 0), end.get("defenses_total", 0))
        )
    else:
        tl.notes.append("trace has no campaign_end (interrupted run?)")
    # every crash the campaign injects is followed by recovery unless the
    # cut landed after program completion; the trace records only fired
    # crashes, so they all recovered
    tl.recoveries = tl.crashes


def _cluster_campaign_timeline(
    records: Sequence[Dict], tl: Timeline
) -> None:
    start = records[0]
    tl.notes.append(
        "backends=%s seeds=%s shards=%s ops=%s"
        % (",".join(start.get("backends", [])),
           ",".join(str(s) for s in start.get("seeds", [])),
           start.get("n_shards"), start.get("ops"))
    )
    for r in records:
        if r.get("type") != "cluster_scenario":
            continue
        phase = TimelinePhase(
            title="scenario: %s seed=%s" % (r.get("backend"),
                                            r.get("seed")),
            events=1, duration=r.get("epochs", 0), unit="epochs",
        )
        kills = sum(1 for f in r.get("chaos", [])
                    if f.get("kind") == "kill")
        tl.crashes += kills
        tl.recoveries += kills
        if kills:
            phase.notes.append("%d kill(s) injected" % kills)
        if r.get("violations"):
            phase.notes.append("VIOLATIONS: %s" % r["violations"][:2])
        if r.get("shrunk") is not None:
            phase.notes.append(
                "shrunk to %d event(s)" % len(r["shrunk"])
            )
        tl.phases.append(phase)


def _cluster_session_timeline(
    records: Sequence[Dict], tl: Timeline
) -> None:
    start = records[0]
    tl.notes.append(
        "shards=%s backend=%s ops=%s chaos=%d"
        % (start.get("n_shards"), start.get("backend"),
           start.get("ops"), len(start.get("chaos", [])))
    )
    epochs = TimelinePhase(title="epoch loop", unit="epochs")
    txns = TimelinePhase(title="cross-shard transactions")
    for r in records:
        rectype = r.get("type")
        if rectype == "cluster_epoch":
            epochs.events += 1
            epochs.duration = max(epochs.duration, r.get("epoch", 0) + 1)
            for t in r.get("transitions", []):
                if t.get("status") in ("RECOVERING", "UP"):
                    tl.recoveries += 1
        elif rectype == "shard_kill":
            tl.crashes += 1
            epochs.notes.append(
                "epoch %d: shard %d killed for %d epoch(s)"
                % (r.get("epoch", -1), r.get("shard", -1),
                   r.get("down_for", 0))
            )
        elif rectype == "replay_rejected":
            epochs.notes.append(
                "epoch %d: shard %d rejected replayed batch"
                % (r.get("epoch", -1), r.get("shard", -1))
            )
        elif rectype == "txn_decision":
            txns.events += 1
    end = records[-1]
    if end.get("type") == "cluster_end":
        epochs.duration = end.get("epochs", epochs.duration)
        tl.notes.append(
            "recorded end: %d epochs, %d violation(s), digest %s"
            % (end.get("epochs", 0), len(end.get("violations", [])),
               end.get("digest", ""))
        )
    tl.phases.append(epochs)
    if txns.events:
        tl.phases.append(txns)


def _serve_timeline(records: Sequence[Dict], tl: Timeline) -> None:
    start = records[0]
    tl.notes.append(
        "workload=%s/%s seed=%s shards=%s backend=%s"
        % (start.get("workload"), start.get("dist"), start.get("seed"),
           start.get("shards"), start.get("backend"))
    )
    per_epoch: Dict[int, TimelinePhase] = {}
    for r in records:
        rectype = r.get("type")
        if rectype == "server_epoch":
            e = r.get("epoch", 0)
            if e not in per_epoch:
                per_epoch[e] = TimelinePhase(
                    title="epoch %d" % e, unit="ns"
                )
            phase = per_epoch[e]
            phase.events += 1
            # the epoch's wall on the simulated clock is its slowest shard
            phase.duration = max(phase.duration, r.get("sim_ns", 0.0))
            if r.get("crashed"):
                phase.notes.append(
                    "shard %d crashed and recovered" % r.get("shard", -1)
                )
        elif rectype == "server_crash":
            tl.crashes += 1
            tl.recoveries += 1
    tl.phases.extend(per_epoch[e] for e in sorted(per_epoch))
    end = records[-1]
    if end.get("type") == "serve_end":
        tl.notes.append(
            "recorded end: %d ops, %.2f Mops/s, %d violation(s), "
            "digest %s"
            % (end.get("ops", 0), end.get("throughput_mops", 0.0),
               end.get("violations", 0), end.get("digest", ""))
        )


def _bench_timeline(records: Sequence[Dict], tl: Timeline) -> None:
    start = records[0]
    tl.notes.append(
        "seed=%s scale=%s jobs=%s%s"
        % (start.get("seed"), start.get("scale"), start.get("jobs"),
           " [smoke]" if start.get("smoke") else "")
    )
    for r in records:
        if r.get("type") != "bench_entry":
            continue
        tl.phases.append(TimelinePhase(
            title="entry: %s (%s)" % (r.get("name"), r.get("kind")),
            events=1, duration=r.get("wall_s", 0.0), unit="s",
        ))
    end = records[-1]
    if end.get("type") == "bench_end":
        tl.notes.append(
            "recorded end: %d entries, %.1fs wall total"
            % (end.get("entries", 0), end.get("wall_s_total", 0.0))
        )


_BUILDERS = {
    "campaign_start": ("faults campaign", _campaign_timeline),
    "cluster_campaign_start": ("cluster chaos campaign",
                               _cluster_campaign_timeline),
    "cluster_start": ("cluster session", _cluster_session_timeline),
    "serve_start": ("store serving run", _serve_timeline),
    "bench_start": ("bench run", _bench_timeline),
}


def build_timeline(
    records: Sequence[Dict], path: str = "trace"
) -> Timeline:
    """Reconstruct the run a trace records.  Refuses unknown schema
    majors (:func:`repro.obs.schema.ensure_supported_version`)."""
    if not records:
        raise ValueError("%s: empty trace" % path)
    ensure_supported_version(records, path)
    first = records[0].get("type")
    if first not in _BUILDERS:
        raise ValueError(
            "%s: cannot reconstruct a timeline from a trace starting "
            "with %r (known starts: %s)"
            % (path, first, ", ".join(sorted(_BUILDERS)))
        )
    kind, builder = _BUILDERS[first]
    tl = Timeline(
        kind=kind, records=len(records),
        schema_versions=_versions(records),
    )
    builder(records, tl)
    return tl


def _fmt_duration(phase: TimelinePhase) -> str:
    if not phase.unit:
        return "-"
    if phase.unit == "ns":
        return "%.0f ns" % phase.duration
    if phase.unit == "s":
        return "%.2f s" % phase.duration
    return "%d %s" % (phase.duration, phase.unit)


def format_timeline(tl: Timeline, limit_notes: int = 4) -> str:
    versions = ",".join(tl.schema_versions) or "legacy (unversioned)"
    lines = [
        "trace: %s — %d records, schema %s" % (tl.kind, tl.records,
                                               versions),
    ]
    for note in tl.notes:
        lines.append("  %s" % note)
    lines.append("  crashes=%d recoveries=%d" % (tl.crashes,
                                                 tl.recoveries))
    lines.append("")
    lines.append("  %-34s %7s  %s" % ("phase", "events", "duration"))
    for phase in tl.phases:
        lines.append(
            "  %-34s %7d  %s"
            % (phase.title[:34], phase.events, _fmt_duration(phase))
        )
        for note in phase.notes[:limit_notes]:
            lines.append("      %s" % note)
        if len(phase.notes) > limit_notes:
            lines.append("      ... %d more"
                         % (len(phase.notes) - limit_notes))
    return "\n".join(lines)
