"""Address mapping and the PM backend timing helpers.

Physical addresses are interleaved across memory controllers at cacheline
granularity, and each core has a *near* MC: stores targeting the far MC
pay an extra NUMA hop on the persist path — the source of the out-of-order
persist arrivals that lazy region-level persist ordering tolerates
(§II-B, §IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig

__all__ = ["AddressMap"]

#: extra one-way persist-path latency to the far MC (ns)
FAR_MC_EXTRA_NS = 12.0


@dataclass
class AddressMap:
    """Maps byte addresses to MCs and computes core->MC path latencies."""

    config: SystemConfig
    interleave_bytes: int = 64

    def mc_of(self, addr: int) -> int:
        return (addr // self.interleave_bytes) % self.config.mc.n_mcs

    def near_mc(self, core: int) -> int:
        n_mcs = self.config.mc.n_mcs
        cores = max(1, self.config.cores)
        return min(n_mcs - 1, core * n_mcs // cores)

    def path_latency_cycles(self, core: int, mc: int) -> float:
        """One-way persist-path latency from ``core`` to ``mc``."""
        base = self.config.persist_latency_cycles
        if mc != self.near_mc(core):
            base += self.config.ns_to_cycles(FAR_MC_EXTRA_NS)
        return base
