"""Front-end buffer snooping and cache-victim re-selection (§IV-G).

When a dirty line is evicted from L1 under whole-system persistence, the
eviction is silently dropped at the LLC (the persist path, not writebacks,
feeds PM).  If the evicted line's latest store is still in flight in the
front-end buffer, a subsequent miss could fetch a *stale* value from PM
(Fig. 6).  LightWSP therefore snoops the front-end buffer on every L1
dirty eviction and, on a conflict, re-selects a conflict-free victim.

Three policies (§V-F3):

* ``full``  — scan every way for a conflict-free victim (default);
* ``half``  — scan only half the ways;
* ``zero``  — never re-select: delay the eviction until the conflicting
  entry drains;
* ``stale-load`` — snooping disabled (the unsafe comparison point of
  Fig. 14).

The selector contract matches :meth:`repro.sim.cache.Cache.access`: it
receives candidate block addresses in LRU order and returns the index to
evict, or None to delay.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..config import VictimPolicy

__all__ = ["make_victim_selector"]

#: invoked once per snoop that found the preferred victim conflicting
ConflictSink = Callable[[], None]


def make_victim_selector(
    policy: str,
    inflight_blocks: Dict[int, int],
    on_conflict: Optional[ConflictSink] = None,
) -> Optional[Callable[[List[int]], Optional[int]]]:
    """Build the selector for one cache access.  ``inflight_blocks`` maps
    block address -> number of front-end buffer entries still in flight
    (the CAM the snoop consults).  Returns None for the stale-load policy
    (no snooping at all)."""
    if policy == VictimPolicy.STALE_LOAD:
        return None
    if policy not in VictimPolicy.ALL:
        raise ValueError("unknown victim policy %r" % (policy,))

    def selector(candidates: List[int]) -> Optional[int]:
        if candidates[0] not in inflight_blocks:
            return 0  # LRU victim is conflict-free: the common case
        if on_conflict is not None:
            on_conflict()
        if policy == VictimPolicy.ZERO:
            return None  # delay until the conflicting entry drains
        scan = len(candidates)
        if policy == VictimPolicy.HALF:
            scan = max(1, len(candidates) // 2)
        for i in range(1, scan):
            if candidates[i] not in inflight_blocks:
                return i
        return None  # whole (scanned) set conflicts: delay (worst case)

    return selector
