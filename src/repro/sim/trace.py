"""Dynamic trace events — the interface between the compiler's execution
(or a synthetic workload generator) and the timing simulator.

One event per retired instruction, at the abstraction level the timing
model needs: instruction class, byte address for memory operations, and
region-boundary markers.  Addresses are in *bytes* (the IR is
word-addressed; the interpreter multiplies by the 8-byte word size) so the
cache models can index 64 B blocks directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["EK", "TraceEvent", "TraceStats", "count_events"]


class EK:
    """Trace event kinds."""

    ALU = "alu"                # any non-memory instruction
    LOAD = "load"
    STORE = "store"            # a data store (persist-path entry)
    CHECKPOINT = "ckpt"        # compiler checkpoint store (persist-path entry)
    BOUNDARY = "bdry"          # region end: PC-checkpointing store + broadcast
    ATOMIC = "atomic"          # atomic RMW: load + store + boundary forced earlier
    FENCE = "fence"
    LOCK = "lock"
    UNLOCK = "unlock"
    IO = "io"                  # irrevocable external operation
    HALT = "halt"              # thread finished

    #: kinds that place an 8 B entry on the persist path
    STORE_LIKE = frozenset({STORE, CHECKPOINT, BOUNDARY, ATOMIC})
    #: kinds that read memory through the regular (cache) path
    LOAD_LIKE = frozenset({LOAD, ATOMIC})


@dataclass
class TraceEvent:
    """One dynamic instruction."""

    kind: str
    addr: int = 0              # byte address (memory events only)
    tid: int = 0               # hardware thread
    lock_id: int = 0           # LOCK/UNLOCK only; IO: device id
    boundary_uid: int = -1     # BOUNDARY only: static boundary identity
    payload: int = 0           # IO only: the value written to the device

    def is_store_like(self) -> bool:
        return self.kind in EK.STORE_LIKE

    def is_load_like(self) -> bool:
        return self.kind in EK.LOAD_LIKE


@dataclass
class TraceStats:
    """Aggregate counts over a trace (feeds §V-G3)."""

    instructions: int = 0
    loads: int = 0
    data_stores: int = 0
    checkpoint_stores: int = 0
    boundaries: int = 0
    atomics: int = 0

    @property
    def persist_entries(self) -> int:
        return (
            self.data_stores
            + self.checkpoint_stores
            + self.boundaries
            + self.atomics
        )

    @property
    def instrumentation(self) -> int:
        return self.checkpoint_stores + self.boundaries

    def instructions_per_region(self) -> float:
        return self.instructions / self.boundaries if self.boundaries else 0.0

    def stores_per_region(self) -> float:
        if not self.boundaries:
            return 0.0
        return (self.data_stores + self.checkpoint_stores + self.atomics) / (
            self.boundaries
        )


def count_events(events: Iterable[TraceEvent]) -> TraceStats:
    stats = TraceStats()
    for ev in events:
        if ev.kind == EK.HALT:
            continue
        stats.instructions += 1
        if ev.kind == EK.LOAD:
            stats.loads += 1
        elif ev.kind == EK.STORE:
            stats.data_stores += 1
        elif ev.kind == EK.CHECKPOINT:
            stats.checkpoint_stores += 1
        elif ev.kind == EK.BOUNDARY:
            stats.boundaries += 1
        elif ev.kind == EK.ATOMIC:
            stats.atomics += 1
    return stats
