"""Compatibility shim: the dynamic-instruction trace schema moved to
:mod:`repro.trace` so the runtime layer, the timing simulator, and the
fault subsystem share one event definition.  Import from there."""

from __future__ import annotations

from ..trace import EK, TraceEvent, TraceStats, count_events

__all__ = ["EK", "TraceEvent", "TraceStats", "count_events"]
