"""Deprecated compatibility shim — import from :mod:`repro.trace`.

The dynamic-instruction trace schema moved to :mod:`repro.trace` so the
runtime layer, the timing simulator, and the fault subsystem share one
event definition.  This module is a pure re-export (every name here
*is* the :mod:`repro.trace` object, pinned by test) kept only for
existing imports; new code should import from :mod:`repro.trace`."""

from __future__ import annotations

from ..trace import EK, TraceEvent, TraceStats, count_events

__all__ = ["EK", "TraceEvent", "TraceStats", "count_events"]
