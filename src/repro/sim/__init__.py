"""The timing-simulator substrate: traces, caches, memory controllers,
queueing primitives, and the scheme-parameterized engine."""

from .cache import Cache, CacheHierarchy
from .engine import SchemePolicy, SimResult, TimingEngine, simulate
from .mc import CommitPipeline, MemoryController
from .memory import AddressMap
from .queues import SerialServer, SlotPool
from .trace import EK, TraceEvent, TraceStats, count_events
from .tracefile import dump_trace, dumps_trace, load_trace, loads_trace

__all__ = [
    "Cache",
    "CacheHierarchy",
    "SchemePolicy",
    "SimResult",
    "TimingEngine",
    "simulate",
    "CommitPipeline",
    "MemoryController",
    "AddressMap",
    "SerialServer",
    "SlotPool",
    "EK",
    "TraceEvent",
    "TraceStats",
    "count_events",
    "dump_trace",
    "dumps_trace",
    "load_trace",
    "loads_trace",
]
