"""Memory controllers, WPQs, and the region-commit pipeline.

Two persist disciplines are modelled on the same structures:

* **gated** (LightWSP, Capri): WPQ entries are quarantined per region and
  flushed to PM only after the region's boundary has been broadcast to and
  ACKed by *all* MCs, in strict region-ID order — the lazy region-level
  persist ordering of §III-B/§IV-B;
* **eager** (PPA, cWSP): entries start draining to PM the moment they
  arrive (PPA's eager writeback; cWSP's speculative persistence with undo
  logging, modelled as a per-entry drain-time factor).

The :class:`CommitPipeline` owns the global flush-ID sequencing across
MCs, including the bdry-ACK / flush-ACK exchanges, the §IV-D deadlock
fallback (undo-logged overflow flush), and the bookkeeping the engine
needs for WPQ-hit checks (§IV-H) and persistence-efficiency accounting
(Eq. 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import SystemConfig
from .queues import SerialServer, SlotPool

__all__ = ["AckFaults", "MemoryController", "CommitPipeline", "MCStats"]


@dataclass(frozen=True)
class AckFaults:
    """Timing-level ACK faults for the cycle-approximate engine (the
    functional twin lives in :mod:`repro.faults`): every ``(region, mc)``
    pair in ``dropped`` loses that MC's bdry-ACK once, and the broadcaster
    re-sends after ``timeout_cycles`` — so the region's commit (and, by
    flush-ID order, every younger one) slips by one retry round per drop.
    The protocol still commits everything; the fault costs time, never
    durability."""

    dropped: frozenset = frozenset()
    timeout_cycles: float = 400.0

    def retries_for(self, region: int) -> int:
        return sum(1 for r, _mc in self.dropped if r == region)


@dataclass
class MCStats:
    admitted: int = 0
    flushed: int = 0
    wpq_hits: int = 0
    wpq_probes: int = 0
    overflow_flushes: int = 0
    undo_logged_entries: int = 0


class MemoryController:
    """One integrated MC: WPQ slot pool + PM drain + content tracking."""

    def __init__(
        self,
        config: SystemConfig,
        mc_id: int,
        drain_factor: float = 1.0,
        eager: bool = False,
    ) -> None:
        self.config = config
        self.mc_id = mc_id
        self.eager = eager
        self.wpq = SlotPool(config.mc.wpq_entries)
        self.drain_interval = config.wpq_flush_cycles_per_entry * drain_factor
        self.drain = SerialServer(self.drain_interval)
        self.stats = MCStats()
        #: regions below this id have committed; stragglers tagged with
        #: them flush immediately (they belong to a persisted epoch)
        self.committed_through = 0
        #: region -> arrival times of entries not yet flushed
        self.pending_entries: Dict[int, List[float]] = {}
        #: region -> latest entry arrival (for flush-window computation)
        self.last_arrival: Dict[int, float] = {}
        #: word address -> [arrival, release-or-None] entries (WPQ search)
        self.contents: Dict[int, List[List[Optional[float]]]] = {}
        #: region -> content records awaiting their flush (release fill-in)
        self.pending_records: Dict[int, List[List[Optional[float]]]] = {}
        #: region -> WPQ-arrival time of its last entry (eager durability)
        self.eager_done: Dict[int, float] = {}
        #: region -> PM-drain completion of its last entry (eager schemes)
        self.eager_flush_done: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def admit(self, region: int, word_addr: int, t_arrival: float) -> Optional[float]:
        """Try to place an entry in the WPQ at ``t_arrival``.  Returns the
        admission time, or None when the caller must block until a release
        is published (WPQ full of unflushed regions)."""
        if not self.eager and region < self.committed_through:
            # A straggler tagged with an already-persisted region: its
            # epoch is durable, so it drains straight through without
            # competing for quarantine slots (it must never be blocked
            # behind younger regions, or the FE head wedges).
            self.stats.admitted += 1
            done = self.drain.service(t_arrival)
            self.contents.setdefault(word_addr, []).append(
                [t_arrival, done + self.config.pm_write_cycles]
            )
            self.stats.flushed += 1
            return t_arrival
        grant = self.wpq.acquire(t_arrival)
        if grant is None:
            return None
        self.stats.admitted += 1
        record = [grant, None]
        self.contents.setdefault(word_addr, []).append(record)
        if self.eager:
            # Eager schemes drain on arrival.  Durability is reached at
            # WPQ admission (the battery-backed ADR domain), so
            # `eager_done` — what PPA's boundary wait polls — is the
            # admission time; `eager_flush_done` — what Capri's stricter
            # flushed-in-PM wait polls — is the PM landing time.
            done = self.drain.service(grant)
            landed = done + self.config.pm_write_cycles
            self.wpq.release(done)
            record[1] = landed
            self.eager_done[region] = max(self.eager_done.get(region, 0.0), grant)
            self.eager_flush_done[region] = max(
                self.eager_flush_done.get(region, 0.0), landed
            )
            self.stats.flushed += 1
        else:
            self.pending_entries.setdefault(region, []).append(grant)
            self.pending_records.setdefault(region, []).append(record)
            self.last_arrival[region] = max(
                self.last_arrival.get(region, 0.0), grant
            )
        return grant

    def flush_region(self, region: int, start: float) -> float:
        """Flush the region's quarantined entries to PM beginning at
        ``start``; returns the flush completion time and publishes the
        staggered slot releases."""
        entries = self.pending_entries.pop(region, [])
        begin = max(start, self.last_arrival.get(region, 0.0))
        # The drain server is the only serial resource: successive regions'
        # flushes pipeline through it at PM write bandwidth.  The PM write
        # *latency* is charged on the commit marker by the pipeline, not
        # here, so it overlaps across regions.
        releases = self.drain.service_run(begin, len(entries))
        self.wpq.release_many(releases)
        self.stats.flushed += len(entries)
        end = releases[-1] if releases else begin
        landed = end + self.config.pm_write_cycles
        for record in self.pending_records.pop(region, []):
            if record[1] is None:
                record[1] = landed
        return end

    def overflow_admit(self, region: int, word_addr: int, t_arrival: float) -> float:
        """§IV-D: while resolving a deadlock, the MC accepts stores of the
        currently persisting region even though the WPQ is full, draining
        them straight to PM with undo logging."""
        self.stats.admitted += 1
        self.stats.undo_logged_entries += 1
        done = self.drain.service(t_arrival, units=2.0)  # write + undo copy
        self.contents.setdefault(word_addr, []).append([t_arrival, done])
        self.stats.flushed += 1
        return t_arrival

    # ------------------------------------------------------------------
    def overflow_flush(self, region: int, now: float) -> float:
        """§IV-D fallback: WPQ is full and no boundary can arrive; flush
        the oldest region's entries *with undo logging* to make room."""
        entries = self.pending_entries.get(region, [])
        self.stats.overflow_flushes += 1
        self.stats.undo_logged_entries += len(entries)
        # Undo logging copies the old value before each write: ~2x drain.
        old_interval = self.drain_interval
        self.drain_interval = old_interval * 2.0
        end = self.flush_region(region, now)
        self.drain_interval = old_interval
        return end

    # ------------------------------------------------------------------
    def search(self, word_addr: int, now: float) -> Tuple[bool, Optional[float]]:
        """WPQ CAM search for an LLC load miss (§IV-H).  Returns
        ``(hit, ready_time)``: on a hit the load must re-issue after the
        entry reaches PM at ``ready_time`` (None when the flush has not
        been scheduled yet — the engine charges a conservative drain).
        Also prunes dead records."""
        self.stats.wpq_probes += 1
        records = self.contents.get(word_addr)
        if not records:
            return False, None
        live = [r for r in records if r[1] is None or r[1] > now]
        if live:
            self.contents[word_addr] = live
        else:
            del self.contents[word_addr]
        for record in live:
            if record[0] <= now:
                self.stats.wpq_hits += 1
                return True, record[1]
        return False, None


class CommitPipeline:
    """Global flush-ID sequencing: regions commit in allocation order, one
    bdry-ACK exchange before flushing and one flush-ACK exchange after
    (§IV-B)."""

    def __init__(
        self,
        config: SystemConfig,
        mcs: List[MemoryController],
        ack_faults: Optional[AckFaults] = None,
    ) -> None:
        self.config = config
        self.mcs = mcs
        self.ack_faults = ack_faults
        self.ack_retries = 0
        self.next_commit = 0
        self.prev_commit_end = 0.0
        self.prev_flush_trigger = 0.0
        #: region -> broadcast time, once its boundary has executed
        self.pending_boundaries: Dict[int, float] = {}
        #: region -> commit completion time
        self.commit_end: Dict[int, float] = {}
        #: total persist latency exposed past each boundary (Eq. 1's Tp)
        self.exposed_persist_cycles = 0.0
        self.committed_regions = 0

    # ------------------------------------------------------------------
    def boundary(self, region: int, broadcast_time: float) -> None:
        """A region's boundary was broadcast; commit as far as possible."""
        self.pending_boundaries[region] = broadcast_time
        self._advance()

    def _advance(self) -> None:
        ack = self.config.ack_round_trip_cycles
        while self.next_commit in self.pending_boundaries:
            region = self.next_commit
            broadcast = self.pending_boundaries.pop(region)
            # bdry-ACK exchange, then flush; successive regions' ACK
            # round-trips pipeline — only each MC's drain bandwidth and
            # the in-order flush trigger serialize commits.
            ack_wait = ack
            if self.ack_faults is not None:
                retries = self.ack_faults.retries_for(region)
                if retries:
                    self.ack_retries += retries
                    ack_wait += retries * self.ack_faults.timeout_cycles
            start = max(broadcast + ack_wait, self.prev_flush_trigger)
            self.prev_flush_trigger = start
            flush_end = start
            for mc in self.mcs:
                flush_end = max(flush_end, mc.flush_region(region, start))
            # commit marker: data lands (one overlapped PM write latency),
            # then the flush-ACK exchange updates every flush ID.
            end = flush_end + self.config.pm_write_cycles + ack
            self.commit_end[region] = end
            self.prev_commit_end = end
            self.exposed_persist_cycles += max(0.0, end - broadcast)
            self.committed_regions += 1
            self.next_commit += 1
            for mc in self.mcs:
                mc.committed_through = self.next_commit

    # ------------------------------------------------------------------
    def force_overflow(self, now: float) -> float:
        """Deadlock resolution: flush the oldest uncommitted region's
        entries with undo logging on every MC.  Returns when slots free."""
        region = self.next_commit
        end = now
        for mc in self.mcs:
            end = max(end, mc.overflow_flush(region, now))
        return end

    def persisted_through(self) -> int:
        """Highest region id (exclusive) whose commit has been scheduled."""
        return self.next_commit
