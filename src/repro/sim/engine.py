"""The timing engine: replays a dynamic trace against a machine
configuration under a persistence *scheme policy*.

One engine serves every scheme in the paper; the policies differ only in a
handful of knobs (persist-path entry granularity, WPQ gating vs eager
drain, whether the core stalls at region boundaries, per-entry drain
inflation for undo logging, DRAM cache availability).  See
:mod:`repro.core.lightwsp` and :mod:`repro.baselines` for the instances.

The model is a deterministic multi-core discrete-event replay:

* cores advance a cycle clock over their trace slice, paying cache
  latencies for loads and queueing delays for persist-path back-pressure;
* each store places ``entry_factor`` 8-byte entries on its core's persist
  path (a bandwidth-limited serial pipe) into the target MC's WPQ;
* gated WPQs quarantine entries per region; the commit pipeline flushes
  regions in allocation order after their boundary broadcast + ACK
  exchange (LRPO, §IV-B); eager WPQs drain on arrival;
* a core whose front-end buffer fills with entries whose WPQ admission is
  still unknown parks; if every runnable core parks, the §IV-D deadlock
  fallback force-flushes the oldest region with undo logging;
* L1 dirty evictions snoop the front-end buffer and re-select victims per
  the configured policy (§IV-G); LLC load misses search the WPQ (§IV-H).
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..config import SystemConfig, VictimPolicy
from ..runtime.policy import SchemePolicy
from .snoop import make_victim_selector
from .cache import CacheHierarchy, HierarchyOutcome, VictimSelector
from .mc import AckFaults, CommitPipeline, MemoryController
from .memory import AddressMap
from .queues import SerialServer
from .trace import EK, TraceEvent

__all__ = ["SchemePolicy", "SimResult", "TimingEngine", "simulate"]

#: fraction of post-L1 load latency exposed to the core (OoO/MLP hiding)
LOAD_EXPOSURE = 0.35
#: fixed cost of a lock/unlock operation (cycles)
LOCK_OP_CYCLES = 6.0
#: fixed device latency of an irrevocable I/O operation (cycles) — an
#: MMIO doorbell write, not a full block transfer
IO_OP_CYCLES = 300.0

# SchemePolicy lives in repro.runtime.policy now (one definition shared
# by the timing and functional planes); re-exported here for the
# historic ``from repro.sim.engine import SchemePolicy`` spelling.


#: below this many trace events the numpy import costs more than the
#: vectorised scan saves; small traces use the pure-Python path
_VECTOR_MIN_EVENTS = 4096


def _vector_enabled() -> bool:
    """Whether numpy-backed trace precomputation is allowed.  Set
    ``REPRO_SIM_VECTOR=0`` to force the pure-Python fallback (the two
    paths are value-identical; the hatch exists for triage and for
    environments without numpy)."""
    return os.environ.get("REPRO_SIM_VECTOR", "1") not in ("", "0")


def _next_nontrivial(events: List[TraceEvent]) -> List[int]:
    """For every index ``i``, the index of the first event at or after
    ``i`` that is not ALU/FENCE (with a sentinel ``n`` entry at the end).
    ALU and FENCE only advance the core clock by ``base_cpi`` — they
    touch no shared simulator state — so the replay loop folds each such
    run into one batch instead of a heap round-trip per event."""
    n = len(events)
    # The numpy path only pays off past a few thousand events: below
    # that the one-time interpreter import costs more than it saves,
    # so smoke-sized traces stay on the pure-Python scan.
    if n >= _VECTOR_MIN_EVENTS and _vector_enabled():
        try:
            import numpy
        except ImportError:
            numpy = None  # type: ignore[assignment]
        if numpy is not None:
            trivial = numpy.fromiter(
                (ev.kind == EK.ALU or ev.kind == EK.FENCE for ev in events),
                dtype=bool,
                count=n,
            )
            stops = numpy.where(trivial, n, numpy.arange(n, dtype=numpy.int64))
            stops = numpy.minimum.accumulate(stops[::-1])[::-1]
            out: List[int] = stops.tolist()
            out.append(n)
            return out
    out = [n] * (n + 1)
    nxt = n
    for i in range(n - 1, -1, -1):
        kind = events[i].kind
        if kind != EK.ALU and kind != EK.FENCE:
            nxt = i
        out[i] = nxt
    return out


@dataclass
class SimResult:
    """Everything the experiment drivers read off one simulation."""

    scheme: str
    cycles: float = 0.0
    instructions: int = 0
    # stall breakdown (cycles)
    fe_stall: float = 0.0
    boundary_stall: float = 0.0
    eviction_stall: float = 0.0
    wpq_hit_stall: float = 0.0
    lock_stall: float = 0.0
    # persistence-efficiency accounting (Eq. 1)
    persist_exposed: float = 0.0     # Tp
    persist_waited: float = 0.0      # Twait
    # event counters
    loads: int = 0
    stores: int = 0
    persist_entries: int = 0
    regions: int = 0
    l1_evictions: int = 0
    buffer_conflicts: int = 0
    stale_loads: int = 0
    wpq_hits: int = 0
    wpq_probes: int = 0
    llc_misses: int = 0
    overflow_flushes: int = 0
    undo_logged_entries: int = 0
    deadlock_events: int = 0
    ack_retries: int = 0
    l1_miss_rate: float = 0.0

    @property
    def persistence_efficiency(self) -> float:
        """Eq. 1: ((Tp - Twait) / Tp) * 100."""
        if self.persist_exposed <= 0.0:
            return 100.0
        eff = (self.persist_exposed - self.persist_waited) / self.persist_exposed
        return max(0.0, min(1.0, eff)) * 100.0

    @property
    def conflict_rate(self) -> float:
        """Buffer conflicts per L1 eviction."""
        if not self.l1_evictions:
            return 0.0
        return self.buffer_conflicts / self.l1_evictions

    def wpq_hits_per_minst(self) -> float:
        if not self.instructions:
            return 0.0
        return self.wpq_hits / (self.instructions / 1e6)


@dataclass
class _Core:
    cid: int
    events: List[TraceEvent]
    index: int = 0
    time: float = 0.0
    region: int = -1
    stores_in_region: int = 0
    region_start_time: float = 0.0
    done: bool = False
    parked: bool = False
    # front-end buffer: deque of entry records [departure_or_None, block]
    fe: Deque[List] = field(default_factory=deque)
    path: SerialServer = None  # type: ignore[assignment]
    #: block -> count of in-flight persist entries (conflict window)
    inflight: Dict[int, int] = field(default_factory=dict)
    #: records pending WPQ admission: [entry_record, mc, region, word, arr]
    waiting: List[List] = field(default_factory=list)
    #: parked reason: "fe" | "commit" | "lock"
    park_reason: str = ""
    park_region: int = -1
    park_lock: int = -1
    #: next_stop[i]: first non-ALU/FENCE event index at or after i
    next_stop: List[int] = field(default_factory=list)


class TimingEngine:
    """Replays one trace under one policy.  Single-use."""

    def __init__(
        self,
        config: SystemConfig,
        policy: SchemePolicy,
        cache_scale: Optional[float] = None,
        hardware_cores: Optional[int] = None,
        ack_faults: Optional[AckFaults] = None,
    ) -> None:
        # accept a PersistBackend anywhere a policy is expected
        policy = getattr(policy, "policy", policy)
        if policy.gated and policy.boundary_wait:
            raise ValueError(
                "gated + boundary_wait is not a modelled scheme: the global "
                "flush-ID pipeline belongs to LRPO (no waits); region-"
                "waiting schemes (Capri, PPA) persist eagerly per region"
            )
        if not policy.uses_dram_cache:
            config = config.without_dram_cache()
        self.config = config
        self.policy = policy
        self.amap = AddressMap(config)
        self.mcs = [
            MemoryController(
                config, m, drain_factor=policy.drain_factor, eager=not policy.gated
            )
            for m in range(config.mc.n_mcs)
        ]
        self.pipeline = CommitPipeline(config, self.mcs, ack_faults=ack_faults)
        self.cache_scale = cache_scale or CacheHierarchy.DEFAULT_SCALE
        #: software threads beyond this many hardware contexts time-share
        #: cores (the Fig. 16 oversubscription setup: 64 threads, 8 cores)
        self.hardware_cores = hardware_cores
        self.result = SimResult(scheme=policy.name)
        self._next_region = 0
        self._lock_owner: Dict[int, Optional[int]] = {}
        self._lock_release: Dict[int, float] = {}
        self._region_issue_time: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def run(self, events: Sequence[TraceEvent]) -> SimResult:
        by_tid: Dict[int, List[TraceEvent]] = {}
        cores_cap = self.hardware_cores
        for ev in events:
            key = ev.tid if cores_cap is None else ev.tid % cores_cap
            by_tid.setdefault(key, []).append(ev)
        n_cores = max(1, len(by_tid))
        self.hierarchy = CacheHierarchy(
            self.config, cores=n_cores, scale=self.cache_scale
        )
        cores = [
            _Core(
                cid=i,
                events=by_tid.get(tid, []),
                path=SerialServer(
                    self.config.persist_entry_cycles * self.policy.entry_factor
                ),
            )
            for i, tid in enumerate(sorted(by_tid))
        ]
        for core in cores:
            core.region = self._alloc_region(core)
            core.next_stop = _next_nontrivial(core.events)

        ready: List[Tuple[float, int]] = [(0.0, c.cid) for c in cores]
        heapq.heapify(ready)
        self.cores = cores
        base_cpi = self.config.base_cpi
        result = self.result

        while ready or any(c.parked for c in cores):
            if not ready:
                # Every runnable core is parked: WPQ deadlock (§IV-D).
                now = max(c.time for c in cores)
                self.result.deadlock_events += 1
                self.pipeline.force_overflow(now)
                # The MC keeps accepting the currently-persisting region's
                # stores (undo-logged) even while full.  If the flush-ID
                # region is an *empty* region owned by a lock-blocked
                # thread (boundary-before-lock + a lost acquire race), the
                # fallback generalizes to the oldest region actually
                # waiting — still crash-safe: every overflow write is
                # undo-logged.
                woken = False
                while not woken:
                    current = self.pipeline.next_commit
                    waiting_regions = [
                        item[2] for core in cores for item in core.waiting
                    ]
                    if not waiting_regions:
                        raise RuntimeError(
                            "timing deadlock not resolved by overflow "
                            "fallback: lock-only cycle in the replay"
                        )
                    target = (
                        current
                        if current in waiting_regions
                        else min(waiting_regions)
                    )
                    for core in cores:
                        still: List[List] = []
                        for item in core.waiting:
                            record, mc_id, region, word, arr = item
                            if region == target:
                                grant = self.mcs[mc_id].overflow_admit(
                                    region, word, arr
                                )
                                record[2] = grant
                                record[0] = (
                                    grant
                                    + self.amap.path_latency_cycles(
                                        core.cid, mc_id
                                    )
                                )
                            else:
                                still.append(item)
                        core.waiting = still
                    woken = self._wake_parked(ready)
                continue
            _, cid = heapq.heappop(ready)
            core = cores[cid]
            if core.done or core.parked:
                continue
            # Batched advancement: stay on this core while it is the
            # globally earliest runnable one, instead of a heap push/pop
            # round-trip per event.  Heap entries are unique per cid, so
            # "would be popped next" is exactly (time, cid) < ready[0].
            while True:
                # Fold the run of ALU/FENCE events in one batch: they
                # touch no shared simulator state, so they commute with
                # every other core's events and can never wake or park
                # anyone.  The clock still advances by one sequential
                # float add per event — bit-identical to stepping.
                index = core.index
                stop = core.next_stop[index] if index < len(core.events) else index
                if stop > index:
                    t = core.time
                    for _ in range(stop - index):
                        t += base_cpi
                    core.time = t
                    core.index = stop
                    result.instructions += stop - index
                # The next event is machine-visible (or stream end):
                # yield to any core that is earlier in global time order.
                if ready and ready[0] < (core.time, core.cid):
                    heapq.heappush(ready, (core.time, core.cid))
                    break
                progressed = self._step(core)
                if core.done or core.parked:
                    break
                if progressed:
                    self._wake_parked(ready)

        self.result.cycles = max((c.time for c in cores), default=0.0)
        self._finalize()
        return self.result

    # ------------------------------------------------------------------
    def _alloc_region(self, core: _Core) -> int:
        region = self._next_region
        self._next_region += 1
        core.stores_in_region = 0
        core.region_start_time = core.time
        return region

    def _step(self, core: _Core) -> bool:
        """Process one trace event for ``core``.  Returns True when the
        event may have unblocked other cores (boundary, unlock)."""
        if core.index >= len(core.events):
            core.done = True
            self._thread_finished(core)
            return True
        ev = core.events[core.index]
        kind = ev.kind
        woke_others = False

        if kind == EK.HALT:
            # One software thread finished: close its trailing region so
            # the commit pipeline can drain past it.  Under
            # oversubscription more threads' events may follow on this
            # core, so the core itself is only done at stream end.
            core.index += 1
            self._thread_finished(core)
            core.region = self._alloc_region(core)
            if core.index >= len(core.events):
                core.done = True
            return True

        self.result.instructions += 1
        cpi = self.config.base_cpi

        if kind == EK.ALU:
            core.time += cpi
        elif kind == EK.FENCE:
            core.time += cpi
        elif kind == EK.IO:
            core.time += cpi + IO_OP_CYCLES
        elif kind == EK.LOCK:
            # Under core oversubscription (Fig. 16) the merged per-core
            # streams already encode a valid serialization of critical
            # sections, and re-enforcing mutual exclusion against the
            # per-core total order can fabricate cycles the real OS
            # scheduler would never create — locks become cost-only.
            if self.hardware_cores is None and not self._try_lock(
                core, ev.lock_id
            ):
                self.result.instructions -= 1  # retried later
                return False
            core.time += cpi + LOCK_OP_CYCLES
        elif kind == EK.UNLOCK:
            if self.hardware_cores is None:
                self._unlock(core, ev.lock_id)
                woke_others = True
            core.time += cpi + LOCK_OP_CYCLES
        elif kind == EK.LOAD:
            core.time += cpi + self._load(core, ev.addr)
            self.result.loads += 1
        elif kind in (EK.STORE, EK.CHECKPOINT, EK.ATOMIC, EK.BOUNDARY):
            # Reserve the front-end slot *before* any side effect so a
            # parked store can be re-processed from scratch on wake-up.
            if self.policy.persists and not self._ensure_fe_slot(core):
                self.result.instructions -= 1
                return False
            if kind == EK.ATOMIC:
                core.time += cpi + self._load(core, ev.addr)
                self.result.loads += 1
            else:
                core.time += cpi
            self._store(core, ev.addr)
            self.result.stores += 1
            core.stores_in_region += 1
            if self.policy.persists:
                if kind == EK.BOUNDARY and not self.policy.implicit_region_stores:
                    woke_others = self._boundary(core)
                elif (
                    self.policy.implicit_region_stores
                    and core.stores_in_region
                    >= self.policy.implicit_region_stores
                ):
                    woke_others = self._boundary(core, implicit=True)
        else:
            core.time += cpi

        if core.parked:
            return False
        core.index += 1
        return woke_others

    # ------------------------------------------------------------------
    # memory operations
    # ------------------------------------------------------------------
    def _victim_selector(self, core: _Core) -> Optional[VictimSelector]:
        if not self.policy.persists or not self.policy.snoop:
            return None
        self._prune_inflight(core)

        def on_conflict() -> None:
            self.result.buffer_conflicts += 1

        return make_victim_selector(
            self.config.victim_policy, core.inflight, on_conflict
        )

    def _load(self, core: _Core, addr: int) -> float:
        outcome = self.hierarchy.load(
            core.cid, addr, victim_selector=self._victim_selector(core)
        )
        self._post_access(core, outcome, addr)
        latency = outcome.latency
        penalty = 0.0
        if not outcome.l1_hit:
            penalty = (latency - self.hierarchy.l1[core.cid].config.latency_cycles)
            penalty *= LOAD_EXPOSURE
        if outcome.llc_miss:
            self.result.llc_misses += 1
            if self.policy.persists:
                penalty += self._wpq_search(core, addr)
        # stale-load detection: the block is being re-fetched from PM while
        # its latest store is still in flight on the persist path
        if (
            self.policy.persists
            and self.config.victim_policy == VictimPolicy.STALE_LOAD
            and not outcome.l1_hit
        ):
            self._prune_inflight(core)
            block = addr // self.config.l1d.block_bytes
            if block in core.inflight:
                self.result.stale_loads += 1
        return float(self.hierarchy.l1[core.cid].config.latency_cycles) + penalty

    def _wpq_search(self, core: _Core, addr: int) -> float:
        mc = self.mcs[self.amap.mc_of(addr)]
        hit, ready = mc.search(addr // 8, core.time)
        self.result.wpq_probes += 1
        if not hit:
            return 0.0
        self.result.wpq_hits += 1
        if ready is None:
            wait = mc.drain_interval  # flush not yet scheduled: conservative
        else:
            wait = max(0.0, ready - core.time)
        # drop the first PM load, re-load after the entry lands (§IV-H)
        stall = wait + self.config.pm_read_cycles * LOAD_EXPOSURE
        self.result.wpq_hit_stall += stall
        return stall

    def _store(self, core: _Core, addr: int) -> None:
        outcome = self.hierarchy.store(
            core.cid, addr, victim_selector=self._victim_selector(core)
        )
        self._post_access(core, outcome, addr)
        if not self.policy.persists:
            return
        self._persist_enqueue(core, addr)

    def _post_access(
        self, core: _Core, outcome: HierarchyOutcome, addr: int
    ) -> None:
        if outcome.l1_eviction is not None:
            self.result.l1_evictions += 1
            if outcome.l1_eviction_delayed and self.policy.persists:
                stall = self._conflict_drain_wait(core, outcome.l1_eviction[0])
                core.time += stall
                self.result.eviction_stall += stall

    def _conflict_drain_wait(self, core: _Core, block: int) -> float:
        """Zero-victim delay: wait until the conflicting front-end entry
        reaches its WPQ."""
        best: Optional[float] = None
        for record in core.fe:
            if record[1] == block and record[0] is not None:
                best = record[0] if best is None else min(best, record[0])
        if best is None:
            return self.config.persist_latency_cycles
        return max(0.0, best - core.time)

    # ------------------------------------------------------------------
    # persist path
    # ------------------------------------------------------------------
    def _ensure_fe_slot(self, core: _Core) -> bool:
        """Free or wait for a front-end buffer slot.  Returns False after
        parking the core when the head entry's WPQ admission is unknown."""
        fe_cap = self.config.persist_path.fe_entries
        while core.fe and core.fe[0][0] is not None and core.fe[0][0] <= core.time:
            self._inflight_remove(core, core.fe.popleft()[1])
        if len(core.fe) < fe_cap:
            return True
        head = core.fe[0]
        if head[0] is None:
            self._park(core, "fe")
            return False
        stall = max(0.0, head[0] - core.time)
        core.time += stall
        self.result.fe_stall += stall
        self.result.persist_waited += stall
        self._inflight_remove(core, core.fe.popleft()[1])
        return True

    def _persist_enqueue(self, core: _Core, addr: int) -> None:
        self.result.persist_entries += 1
        dep = core.path.service(core.time)
        mc_id = self.amap.mc_of(addr)
        path_latency = self.amap.path_latency_cycles(core.cid, mc_id)
        arr = dep + path_latency
        word = addr // 8
        block = addr // self.config.l1d.block_bytes
        # record: [fe-slot free time (WPQ-arrival ACK), block, WPQ arrival]
        record = [None, block, None]
        core.fe.append(record)
        core.inflight[block] = core.inflight.get(block, 0) + 1

        grant = self.mcs[mc_id].admit(core.region, word, arr)
        if grant is None:
            core.waiting.append([record, mc_id, core.region, word, arr])
        else:
            record[2] = grant
            record[0] = grant + path_latency  # ACK returns to the buffer
            # The path is a pipeline: only the extra time the entry waited
            # at the WPQ (grant - arr) blocks entries behind it.
            core.path.next_free = max(
                core.path.next_free, dep + (grant - arr)
            )

    def _inflight_remove(self, core: _Core, block: int) -> None:
        count = core.inflight.get(block, 0)
        if count <= 1:
            core.inflight.pop(block, None)
        else:
            core.inflight[block] = count - 1

    def _prune_inflight(self, core: _Core) -> None:
        while core.fe and core.fe[0][0] is not None and core.fe[0][0] <= core.time:
            self._inflight_remove(core, core.fe.popleft()[1])

    # ------------------------------------------------------------------
    # regions
    # ------------------------------------------------------------------
    def _boundary(self, core: _Core, implicit: bool = False) -> bool:
        """End the core's current region.  Returns True when the commit
        pipeline advanced (slot releases published)."""
        region = core.region
        issue = core.time
        self._region_issue_time[region] = issue
        self.result.regions += 1
        core.time += self.policy.region_comm_cycles
        # Eq. 1's Tp: the persistence latency a scheme with *no* hiding
        # would expose at this boundary — serially pushing the region's
        # entries down the path and into PM.
        self.result.persist_exposed += (
            self.config.persist_latency_cycles
            + self.config.pm_write_cycles
            + core.stores_in_region
            * self.config.persist_entry_cycles
            * self.policy.entry_factor
        )

        if self.policy.gated:
            # broadcast = boundary entry's WPQ arrival + NoC hop; the last
            # appended FE record is the boundary store (explicit case) —
            # for implicit regions use the core clock.
            broadcast = issue + self.config.noc_cycles
            if not implicit and core.fe:
                last = core.fe[-1][2]
                if last is not None:
                    broadcast = last + self.config.noc_cycles
            before = self.pipeline.next_commit
            self.pipeline.boundary(region, broadcast)
            advanced = self.pipeline.next_commit != before
            if self.policy.boundary_wait:
                end = self.pipeline.commit_end.get(region)
                if end is None:
                    core.region = self._alloc_region(core)
                    self._park(core, "commit", region=region)
                    return advanced
                stall = max(0.0, end - core.time)
                core.time += stall
                self.result.boundary_stall += stall
                self.result.persist_waited += stall
        else:
            source = (
                "eager_flush_done" if self.policy.wait_for == "flush" else "eager_done"
            )
            done = max(
                (getattr(mc, source).pop(region, 0.0) for mc in self.mcs),
                default=0.0,
            )
            advanced = False
            if self.policy.boundary_wait:
                stall = max(0.0, done - core.time)
                core.time += stall
                self.result.boundary_stall += stall
                self.result.persist_waited += stall

        core.region = self._alloc_region(core)
        return advanced

    def _thread_finished(self, core: _Core) -> None:
        """Close the trailing region so the commit pipeline can drain."""
        if self.policy.persists and self.policy.gated:
            self.pipeline.boundary(core.region, core.time + self.config.noc_cycles)
            self._retry_waiting()

    # ------------------------------------------------------------------
    # parking / waking
    # ------------------------------------------------------------------
    def _park(self, core: _Core, reason: str, region: int = -1, lock: int = -1) -> None:
        core.parked = True
        core.park_reason = reason
        core.park_region = region
        core.park_lock = lock

    def _retry_waiting(self) -> None:
        """Retry pending WPQ admissions after slot releases."""
        for core in self.cores:
            still: List[List] = []
            for item in core.waiting:
                record, mc_id, region, word, arr = item
                grant = self.mcs[mc_id].admit(region, word, arr)
                if grant is None:
                    still.append(item)
                else:
                    record[2] = grant
                    record[0] = grant + self.amap.path_latency_cycles(
                        core.cid, mc_id
                    )
            core.waiting = still

    def _wake_parked(self, ready: List[Tuple[float, int]]) -> bool:
        self._retry_waiting()
        woke = False
        for core in self.cores:
            if not core.parked:
                continue
            if core.park_reason == "fe":
                if core.fe and core.fe[0][0] is not None:
                    core.parked = False
                    heapq.heappush(ready, (core.time, core.cid))
                    woke = True
            elif core.park_reason == "commit":
                end = self.pipeline.commit_end.get(core.park_region)
                if end is not None:
                    stall = max(0.0, end - core.time)
                    core.time += stall
                    self.result.boundary_stall += stall
                    self.result.persist_waited += stall
                    core.parked = False
                    core.index += 1  # the boundary event completes now
                    heapq.heappush(ready, (core.time, core.cid))
                    woke = True
            elif core.park_reason == "lock":
                owner = self._lock_owner.get(core.park_lock)
                if owner is None:
                    release = self._lock_release.get(core.park_lock, core.time)
                    stall = max(0.0, release - core.time)
                    core.time += stall
                    self.result.lock_stall += stall
                    core.parked = False
                    heapq.heappush(ready, (core.time, core.cid))
                    woke = True
        return woke

    # ------------------------------------------------------------------
    # locks
    # ------------------------------------------------------------------
    def _try_lock(self, core: _Core, lock_id: int) -> bool:
        owner = self._lock_owner.get(lock_id)
        if owner is None:
            self._lock_owner[lock_id] = core.cid
            return True
        self._park(core, "lock", lock=lock_id)
        return False

    def _unlock(self, core: _Core, lock_id: int) -> None:
        self._lock_owner[lock_id] = None
        self._lock_release[lock_id] = core.time

    # ------------------------------------------------------------------
    def _finalize(self) -> None:
        res = self.result
        res.l1_miss_rate = self.hierarchy.l1_miss_rate()
        res.ack_retries = self.pipeline.ack_retries
        for mc in self.mcs:
            res.overflow_flushes += mc.stats.overflow_flushes
            res.undo_logged_entries += mc.stats.undo_logged_entries


def simulate(
    events: Sequence[TraceEvent],
    config: SystemConfig,
    policy: SchemePolicy,
    cache_scale: Optional[float] = None,
    hardware_cores: Optional[int] = None,
    ack_faults: Optional[AckFaults] = None,
) -> SimResult:
    """Convenience wrapper: run one trace under one policy (or a
    :class:`~repro.runtime.backend.PersistBackend`, whose policy is
    used)."""
    return TimingEngine(
        config, policy, cache_scale=cache_scale,
        hardware_cores=hardware_cores, ack_faults=ack_faults,
    ).run(events)
