"""Trace serialization: save and load dynamic traces as compact text.

One line per event: ``kind[,field=value...]`` with zero-valued fields
omitted, so traces diff cleanly and big ones stay small.  Useful for
caching expensive interpreter runs across experiment campaigns and for
feeding externally generated traces (e.g. converted from real
instruction traces) into the timing engine.
"""

from __future__ import annotations

import io
from typing import Iterable, List, TextIO

from .trace import EK, TraceEvent

__all__ = ["dump_trace", "load_trace", "dumps_trace", "loads_trace"]

_KINDS = {
    EK.ALU, EK.LOAD, EK.STORE, EK.CHECKPOINT, EK.BOUNDARY, EK.ATOMIC,
    EK.FENCE, EK.LOCK, EK.UNLOCK, EK.IO, EK.HALT,
}

_FIELDS = (
    ("addr", "a"),
    ("tid", "t"),
    ("lock_id", "l"),
    ("boundary_uid", "b"),
)
_DEFAULTS = {"addr": 0, "tid": 0, "lock_id": 0, "boundary_uid": -1}
_SHORT_TO_FIELD = {short: field for field, short in _FIELDS}


def _event_line(event: TraceEvent) -> str:
    parts = [event.kind]
    for field, short in _FIELDS:
        value = getattr(event, field)
        if value != _DEFAULTS[field]:
            parts.append("%s=%d" % (short, value))
    return ",".join(parts)


def _parse_line(line: str, lineno: int) -> TraceEvent:
    parts = line.split(",")
    kind = parts[0]
    if kind not in _KINDS:
        raise ValueError("line %d: unknown event kind %r" % (lineno, kind))
    kwargs = dict(_DEFAULTS)
    for token in parts[1:]:
        short, _, value = token.partition("=")
        if short not in _SHORT_TO_FIELD or not value:
            raise ValueError("line %d: bad field %r" % (lineno, token))
        kwargs[_SHORT_TO_FIELD[short]] = int(value)
    return TraceEvent(kind=kind, **kwargs)


def dump_trace(events: Iterable[TraceEvent], fh: TextIO) -> int:
    """Write events to an open text file; returns the count."""
    n = 0
    for event in events:
        fh.write(_event_line(event))
        fh.write("\n")
        n += 1
    return n


def load_trace(fh: TextIO) -> List[TraceEvent]:
    """Read events from an open text file."""
    events: List[TraceEvent] = []
    for lineno, raw in enumerate(fh, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        events.append(_parse_line(line, lineno))
    return events


def dumps_trace(events: Iterable[TraceEvent]) -> str:
    buf = io.StringIO()
    dump_trace(events, buf)
    return buf.getvalue()


def loads_trace(text: str) -> List[TraceEvent]:
    return load_trace(io.StringIO(text))
