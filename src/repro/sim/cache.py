"""Set-associative cache models and the three-level hierarchy of Table I.

The hierarchy is functional about *placement* (tags, LRU, dirty bits,
evictions) and analytic about *timing* (fixed per-level latencies): that
is all the evaluation's effects need — miss rates, dirty-eviction streams
for buffer snooping (§IV-G), and LLC misses for WPQ searches (§IV-H).

The DRAM cache (LLC) is direct-mapped over PM, as in Intel Optane's memory
mode; the ideal-PSP configuration simply omits it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..config import CacheConfig, SystemConfig

__all__ = ["Cache", "AccessResult", "CacheHierarchy", "LevelStats"]

#: Victim selector: receives the candidate block addresses of a full set in
#: LRU order (least recent first) and returns the index to evict, or None
#: to signal "delay the eviction" (zero-victim policy).
VictimSelector = Callable[[List[int]], Optional[int]]


@dataclass
class AccessResult:
    hit: bool
    #: (block_address, was_dirty) for an eviction this access caused
    evicted: Optional[Tuple[int, bool]] = None
    #: the eviction was delayed by the victim selector (zero-victim)
    eviction_delayed: bool = False


@dataclass
class LevelStats:
    accesses: int = 0
    misses: int = 0
    dirty_evictions: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One set-associative level with LRU replacement and dirty bits."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.n_sets = config.n_sets
        self.ways = config.ways
        self.block = config.block_bytes
        # per-set list of [block_addr, dirty], LRU order (index 0 oldest);
        # sets materialize on first touch — a smoke-scale trace visits a
        # tiny fraction of a realistically sized cache's index space, so
        # eagerly allocating n_sets empty lists would dominate setup
        self.sets: Dict[int, List[List]] = {}
        self.stats = LevelStats()

    def block_of(self, addr: int) -> int:
        return addr // self.block

    def _set_of(self, block_addr: int) -> int:
        return block_addr % self.n_sets

    def access(
        self,
        addr: int,
        write: bool,
        victim_selector: Optional[VictimSelector] = None,
    ) -> AccessResult:
        """Look up ``addr``; allocate on miss (write-allocate).  Returns
        hit/miss and any eviction performed."""
        self.stats.accesses += 1
        block_addr = self.block_of(addr)
        index = self._set_of(block_addr)
        cache_set = self.sets.get(index)
        if cache_set is None:
            cache_set = self.sets[index] = []

        for i, line in enumerate(cache_set):
            if line[0] == block_addr:
                cache_set.append(cache_set.pop(i))  # move to MRU
                if write:
                    line[1] = True
                return AccessResult(hit=True)

        self.stats.misses += 1
        evicted = None
        delayed = False
        if len(cache_set) >= self.ways:
            candidates = [line[0] for line in cache_set]
            idx = 0 if victim_selector is None else victim_selector(candidates)
            if idx is None:
                # Zero-victim: the caller delays this eviction; we still
                # must make room, so evict LRU but flag the delay so the
                # engine charges the wait.
                idx = 0
                delayed = True
            victim = cache_set.pop(idx)
            if victim[1]:
                self.stats.dirty_evictions += 1
            evicted = (victim[0], victim[1])
        cache_set.append([block_addr, write])
        return AccessResult(hit=False, evicted=evicted, eviction_delayed=delayed)

    def contains(self, addr: int) -> bool:
        block_addr = self.block_of(addr)
        return any(
            line[0] == block_addr
            for line in self.sets.get(self._set_of(block_addr), ())
        )

    def invalidate(self, addr: int) -> bool:
        block_addr = self.block_of(addr)
        cache_set = self.sets.get(self._set_of(block_addr), [])
        for i, line in enumerate(cache_set):
            if line[0] == block_addr:
                cache_set.pop(i)
                return True
        return False


@dataclass
class HierarchyOutcome:
    """Result of one hierarchy access, consumed by the timing engine."""

    latency: float
    llc_miss: bool = False          # reached PM
    l1_eviction: Optional[Tuple[int, bool]] = None  # (block, dirty) from L1
    l1_eviction_delayed: bool = False
    l1_hit: bool = False


class CacheHierarchy:
    """Private L1D (we model the data side only), shared L2, shared
    direct-mapped DRAM cache.

    Each level is scaled down by its entry of ``scale`` so that the modest
    synthetic footprints (tens of KB to a few MB) exercise the same miss
    behaviour the full-size hierarchy shows on full-size workloads: the
    default leaves 8 KB of L1, 32 KB of L2, and 4 MB of DRAM cache — a
    hierarchy where a ~100 KB-working-set kernel is "memory-intensive"
    (L2-missing, DRAM-cache-served) just like a ~100 MB one on the real
    machine."""

    DEFAULT_SCALE = (8, 512, 1024)

    def __init__(
        self,
        config: SystemConfig,
        cores: Optional[int] = None,
        scale: Tuple[int, int, int] = DEFAULT_SCALE,
    ) -> None:
        self.config = config
        cores = cores if cores is not None else config.cores
        self.scale = scale
        self.l1 = [
            Cache(self._scaled(config.l1d, scale[0]), name="l1d%d" % c)
            for c in range(cores)
        ]
        self.l2 = Cache(self._scaled(config.l2, scale[1]), name="l2")
        self.l3: Optional[Cache] = (
            Cache(self._scaled(config.dram_cache, scale[2]), name="dram-cache")
            if config.dram_cache_enabled
            else None
        )

    @staticmethod
    def _scaled(cache: CacheConfig, factor: int) -> CacheConfig:
        size = max(cache.ways * cache.block_bytes, cache.size_bytes // factor)
        return CacheConfig(
            size_bytes=size,
            ways=cache.ways,
            block_bytes=cache.block_bytes,
            latency_cycles=cache.latency_cycles,
        )

    # ------------------------------------------------------------------
    def load(
        self,
        core: int,
        addr: int,
        victim_selector: Optional[VictimSelector] = None,
    ) -> HierarchyOutcome:
        return self._access(core, addr, write=False, victim_selector=victim_selector)

    def store(
        self,
        core: int,
        addr: int,
        victim_selector: Optional[VictimSelector] = None,
    ) -> HierarchyOutcome:
        return self._access(core, addr, write=True, victim_selector=victim_selector)

    def _access(
        self,
        core: int,
        addr: int,
        write: bool,
        victim_selector: Optional[VictimSelector],
    ) -> HierarchyOutcome:
        cfg = self.config
        l1 = self.l1[core]
        r1 = l1.access(addr, write, victim_selector=victim_selector)
        outcome = HierarchyOutcome(latency=float(l1.config.latency_cycles))
        if r1.evicted is not None and r1.evicted[1]:
            outcome.l1_eviction = r1.evicted
            outcome.l1_eviction_delayed = r1.eviction_delayed
            # dirty L1 victims are written back into L2
            self.l2.access(r1.evicted[0] * l1.block, True)
        if r1.hit:
            outcome.l1_hit = True
            return outcome

        r2 = self.l2.access(addr, write)
        outcome.latency = float(self.l2.config.latency_cycles)
        if r2.hit:
            return outcome

        if self.l3 is not None:
            r3 = self.l3.access(addr, write)
            outcome.latency = float(self.l3.config.latency_cycles)
            if r3.hit:
                return outcome
            # DRAM-cache miss: fill from PM.  (Dirty LLC evictions are
            # handled by the engine: dropped under WSP snooping, written
            # back under memory mode.)
            outcome.latency += cfg.pm_read_cycles
            outcome.llc_miss = True
            return outcome

        # No DRAM cache (ideal PSP): L2 miss goes straight to PM.
        outcome.latency = float(self.l2.config.latency_cycles) + cfg.pm_read_cycles
        outcome.llc_miss = True
        return outcome

    # ------------------------------------------------------------------
    def l1_miss_rate(self) -> float:
        accesses = sum(c.stats.accesses for c in self.l1)
        misses = sum(c.stats.misses for c in self.l1)
        return misses / accesses if accesses else 0.0
