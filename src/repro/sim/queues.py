"""Queueing primitives for the timing model.

The simulator is a deterministic discrete-event model built from two
resources:

* :class:`SerialServer` — a unit-rate pipe (the persist path's bandwidth,
  an MC's drain into PM): requests are serviced one at a time, spaced by a
  service interval;
* :class:`SlotPool` — a bounded pool of slots whose release times become
  known later (WPQ entries are released when their region's flush is
  scheduled).  ``acquire`` either grants immediately, grants at the
  earliest known future release, or reports that the caller must block
  until new releases are published.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

__all__ = ["SerialServer", "SlotPool"]


class SerialServer:
    """A serial resource: successive requests finish at least
    ``interval`` apart.  ``service(t)`` returns the completion time of a
    request arriving at ``t``."""

    def __init__(self, interval: float) -> None:
        self.interval = interval
        self.next_free = 0.0

    def service(self, t: float, units: float = 1.0) -> float:
        start = max(t, self.next_free)
        done = start + self.interval * units
        self.next_free = done
        return done

    def service_run(self, t: float, count: int) -> List[float]:
        """Completion times of ``count`` unit requests all arriving at
        ``t`` — one fused update, bit-identical to ``count`` sequential
        :meth:`service` calls (each iteration performs the same max and
        add; only the Python call overhead is fused away)."""
        interval = self.interval
        nf = self.next_free
        releases: List[float] = []
        append = releases.append
        for _ in range(count):
            start = t if t > nf else nf
            nf = start + interval
            append(nf)
        self.next_free = nf
        return releases

    def peek(self, t: float, units: float = 1.0) -> float:
        """Completion time without occupying the server."""
        return max(t, self.next_free) + self.interval * units


class SlotPool:
    """``capacity`` slots; releases are published asynchronously.

    ``acquire(t)`` returns the grant time, or ``None`` when every slot is
    taken and no future release is known yet — the caller must park and
    retry after the next :meth:`release` (the WPQ-full blocking of
    §III-C/§IV-D).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.in_use = 0
        self._releases: List[float] = []  # future release times (heap)

    def acquire(self, t: float) -> Optional[float]:
        if self.in_use < self.capacity:
            self.in_use += 1
            return t
        if not self._releases:
            return None
        release = heapq.heappop(self._releases)
        # The slot changes hands: occupancy stays at capacity.
        return max(t, release)

    def release(self, t: float) -> None:
        """Publish that one slot frees at time ``t``."""
        heapq.heappush(self._releases, t)

    def release_many(self, times: List[float]) -> None:
        for t in times:
            heapq.heappush(self._releases, t)

    @property
    def known_releases(self) -> int:
        return len(self._releases)

    def occupancy_headroom(self) -> int:
        """Slots grantable right now without blocking."""
        return (self.capacity - self.in_use) + len(self._releases)
