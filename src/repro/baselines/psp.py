"""The *ideal* partial-system-persistence scheme of Fig. 9 (§V-D).

Modeled after an optimized BBB (battery-backed buffers, HPCA'21), whose
performance approaches Intel eADR: persist barriers are free because the
entire cache hierarchy is inside the battery-backed persistence domain.
We grant it zero persistence overhead (`persists=False` — no persist
path, no boundaries, no stalls).

What ideal PSP *cannot* do is use DRAM as a last-level cache: under PSP
the DRAM is ordinary volatile main memory (no eADR battery can save
terabytes of it), and persistent data lives in PM behind the SRAM caches
only (`uses_dram_cache=False`).  Every L2 miss therefore pays full PM
latency, which is the entire 51.2% average gap Fig. 9 reports for
memory-intensive applications — the figure that motivates whole-system
persistence."""

from __future__ import annotations

from ..runtime.backends import PSP_IDEAL
from ..runtime.policy import SchemePolicy

__all__ = ["PSP_IDEAL", "psp_ideal_policy"]


def psp_ideal_policy() -> SchemePolicy:
    """Deprecated: resolve the backend instead —
    ``repro.runtime.get_backend("psp")``.  The policy is defined
    once, in :mod:`repro.runtime.backends`; this shim keeps the historic
    import path alive for one release."""
    return PSP_IDEAL
