"""The evaluation baseline: Intel Optane PMem's *memory mode* with the
original (uninstrumented) binary.

DRAM serves as a direct-mapped cache over PM, exactly as in LightWSP, but
nothing persists crash-consistently: no persist path, no WPQ gating, no
region boundaries.  Every slowdown in the evaluation is normalized to this
configuration (§V-A)."""

from __future__ import annotations

from ..sim.engine import SchemePolicy

__all__ = ["MEMORY_MODE", "memory_mode_policy"]

MEMORY_MODE = SchemePolicy(
    name="memory-mode",
    persists=False,
    uses_dram_cache=True,
    snoop=False,
)


def memory_mode_policy() -> SchemePolicy:
    return MEMORY_MODE
