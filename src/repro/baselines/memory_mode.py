"""The evaluation baseline: Intel Optane PMem's *memory mode* with the
original (uninstrumented) binary.

DRAM serves as a direct-mapped cache over PM, exactly as in LightWSP, but
nothing persists crash-consistently: no persist path, no WPQ gating, no
region boundaries.  Every slowdown in the evaluation is normalized to this
configuration (§V-A)."""

from __future__ import annotations

from ..runtime.backends import MEMORY_MODE
from ..runtime.policy import SchemePolicy

__all__ = ["MEMORY_MODE", "memory_mode_policy"]


def memory_mode_policy() -> SchemePolicy:
    """Deprecated: resolve the backend instead —
    ``repro.runtime.get_backend("memory-mode")``.  The policy is defined
    once, in :mod:`repro.runtime.backends`; this shim keeps the historic
    import path alive for one release."""
    return MEMORY_MODE
