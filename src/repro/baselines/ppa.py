"""PPA — the Persistent Processor Architecture (MICRO'23), §II-C2.

PPA replays unpersisted stores after a failure, which requires *store
integrity*: operand registers of committed stores stay pinned in the
physical register file until the stores persist.  Model mapping:

* **hardware-delineated regions** — a region ends when the PRF can no
  longer pin registers; we use a fixed store budget
  (`implicit_region_stores=24`, a PRF-pressure proxy), and the original
  binary (no compiler instrumentation, no checkpoint stores).
* **eager writeback** — every store starts persisting as soon as it
  reaches L1 (`gated=False`): persistence overlaps with the *same*
  region's execution (in-region ILP only).
* **boundary stall** — at each implicit boundary the pipeline stalls until
  all the region's stores are durable (have reached the battery-backed
  WPQ domain): `boundary_wait=True`.  This is the wait LightWSP's LRPO
  eliminates, and why PPA's persistence efficiency trails LightWSP's in
  Fig. 8 whenever regions are short.

Hardware cost (§V-G4): 337 B per core for store-integrity tracking, plus
the renaming-stage critical-path pressure the paper warns about (not a
timing effect we model).
"""

from __future__ import annotations

from ..runtime.backends import PPA
from ..runtime.policy import SchemePolicy

__all__ = ["PPA", "ppa_policy"]


def ppa_policy() -> SchemePolicy:
    """Deprecated: resolve the backend instead —
    ``repro.runtime.get_backend("ppa")``.  The policy is defined
    once, in :mod:`repro.runtime.backends`; this shim keeps the historic
    import path alive for one release."""
    return PPA
