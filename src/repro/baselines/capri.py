"""Capri (HPDC'22): compiler/architecture WSP via a separate L1-to-PM
persist path with hardware redo+undo logging (§II-C2).

How the paper characterizes it, and how each trait maps onto the shared
engine policy:

* **64-byte granularity** — every 8 B store pushes a whole cacheline down
  the persist path, an 8x bandwidth amplification (`entry_factor=8`).
  This is what buries Capri at the practical 4 GB/s path bandwidth
  (Fig. 7); with its original 32 GB/s assumption it would sit near 20%.
* **Hardware-delineated failure-atomic regions** — front-end/back-end
  buffers bound the region size (`implicit_region_stores`), no compiler
  instrumentation (Capri runs the original binary in our comparison; its
  own compiler pass only marks boundaries).
* **Multi-MC ordering by stopping traffic** — Capri must stall its persist
  path at each region end until the previous region is fully flushed to PM
  (`boundary_wait=True` over the gated commit pipeline).

Hardware cost (§V-G4): 54 KB per core for the dual redo+undo buffers.
"""

from __future__ import annotations

from ..runtime.backends import CAPRI
from ..runtime.policy import SchemePolicy

__all__ = ["CAPRI", "capri_policy"]


def capri_policy() -> SchemePolicy:
    """Deprecated: resolve the backend instead —
    ``repro.runtime.get_backend("capri")``.  The policy is defined
    once, in :mod:`repro.runtime.backends`; this shim keeps the historic
    import path alive for one release."""
    return CAPRI
