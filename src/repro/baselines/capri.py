"""Capri (HPDC'22): compiler/architecture WSP via a separate L1-to-PM
persist path with hardware redo+undo logging (§II-C2).

How the paper characterizes it, and how each trait maps onto the shared
engine policy:

* **64-byte granularity** — every 8 B store pushes a whole cacheline down
  the persist path, an 8x bandwidth amplification (`entry_factor=8`).
  This is what buries Capri at the practical 4 GB/s path bandwidth
  (Fig. 7); with its original 32 GB/s assumption it would sit near 20%.
* **Hardware-delineated failure-atomic regions** — front-end/back-end
  buffers bound the region size (`implicit_region_stores`), no compiler
  instrumentation (Capri runs the original binary in our comparison; its
  own compiler pass only marks boundaries).
* **Multi-MC ordering by stopping traffic** — Capri must stall its persist
  path at each region end until the previous region is fully flushed to PM
  (`boundary_wait=True` over the gated commit pipeline).

Hardware cost (§V-G4): 54 KB per core for the dual redo+undo buffers.
"""

from __future__ import annotations

from ..sim.engine import SchemePolicy

__all__ = ["CAPRI", "capri_policy"]

CAPRI = SchemePolicy(
    name="Capri",
    persists=True,
    entry_factor=8,          # 64 B of path traffic per 8 B store
    gated=False,             # per-region eager persistence (own buffers)
    boundary_wait=True,
    wait_for="flush",        # stops traffic until flushed *in PM*
    drain_factor=8.0,        # 64 B per entry hits the PM drain too
    uses_dram_cache=True,
    snoop=True,
    implicit_region_stores=32,
)


def capri_policy() -> SchemePolicy:
    return CAPRI
