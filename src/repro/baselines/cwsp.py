"""cWSP — compiler-directed whole-system persistence (ISCA'24), the
state of the art LightWSP compares against in Fig. 10 (§II-C2).

cWSP forms *idempotent* regions (no checkpoint stores: re-execution of an
interrupted region reproduces its outputs) and persists speculatively
across region boundaries — memory-controller speculation — undoing via
hardware undo logs on a mis-speculated power failure.  Model mapping:

* **idempotent regions, no instrumentation** — runs the original binary
  with hardware-tracked region markers (`implicit_region_stores=16`:
  idempotent regions are short because anti-dependences force cuts).
* **speculative persistence** — stores drain to PM immediately, never
  waiting for older regions (`gated=False`, `boundary_wait=False`).
* **undo-logging delay** — every PM write first copies the old value;
  mitigated by cWSP's dedicated hardware but still inflating the drain
  (`drain_factor=1.25`), which is why cWSP degrades on write-intensive
  workloads (§II-C2).
* **core-MC speculation tracking** — recurring messages keep the region
  persistence status coherent (`region_comm_cycles=6`).

Net effect: slightly *better* average slowdown than LightWSP (5.7% vs
8.5% in Fig. 10 — no checkpoint-store instruction overhead) at the price
of intrusive core + MC changes; LightWSP's pitch is matching it at
near-zero hardware cost.
"""

from __future__ import annotations

from ..runtime.backends import CWSP
from ..runtime.policy import SchemePolicy

__all__ = ["CWSP", "cwsp_policy"]


def cwsp_policy() -> SchemePolicy:
    """Deprecated: resolve the backend instead —
    ``repro.runtime.get_backend("cwsp-eager")``.  The policy is defined
    once, in :mod:`repro.runtime.backends`; this shim keeps the historic
    import path alive for one release."""
    return CWSP
