"""Baseline persistence schemes — deprecation shims.

The schemes themselves moved into the unified runtime layer: each is a
:class:`~repro.runtime.backend.PersistBackend` registered in
:mod:`repro.runtime.backends`, owning both the timing policy replayed
by the shared engine and the functional crash semantics executed by the
persistence machine, fault injector, and KV store.  The modules here
keep the paper-mapping rationale for each scheme's policy knobs and the
historic ``from repro.baselines import ...`` spellings for one release;
new code should resolve backends via :func:`repro.runtime.get_backend`.
"""

from ..runtime.backend import BACKENDS, get_backend
from .capri import CAPRI, capri_policy
from .cwsp import CWSP, cwsp_policy
from .memory_mode import MEMORY_MODE, memory_mode_policy
from .ppa import PPA, ppa_policy
from .psp import PSP_IDEAL, psp_ideal_policy

#: legacy name -> policy map (timing plane only, LightWSP excluded);
#: prefer iterating :data:`repro.runtime.BACKENDS`
ALL_SCHEMES = {
    policy.name: policy
    for policy in (MEMORY_MODE, CAPRI, PPA, CWSP, PSP_IDEAL)
}

__all__ = [
    "BACKENDS",
    "get_backend",
    "CAPRI",
    "capri_policy",
    "CWSP",
    "cwsp_policy",
    "MEMORY_MODE",
    "memory_mode_policy",
    "PPA",
    "ppa_policy",
    "PSP_IDEAL",
    "psp_ideal_policy",
    "ALL_SCHEMES",
]
