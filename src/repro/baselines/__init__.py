"""Baseline persistence schemes, as policies over the shared engine.

Each module documents how the paper describes the scheme and which policy
knobs encode its behaviour; the policies are re-exported here with the
baseline (memory-mode) policy.
"""

from .capri import CAPRI, capri_policy
from .cwsp import CWSP, cwsp_policy
from .memory_mode import MEMORY_MODE, memory_mode_policy
from .ppa import PPA, ppa_policy
from .psp import PSP_IDEAL, psp_ideal_policy

ALL_SCHEMES = {
    policy.name: policy
    for policy in (MEMORY_MODE, CAPRI, PPA, CWSP, PSP_IDEAL)
}

__all__ = [
    "CAPRI",
    "capri_policy",
    "CWSP",
    "cwsp_policy",
    "MEMORY_MODE",
    "memory_mode_policy",
    "PPA",
    "ppa_policy",
    "PSP_IDEAL",
    "psp_ideal_policy",
    "ALL_SCHEMES",
]
