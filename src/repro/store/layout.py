"""PM-resident layout of the persistent KV store.

The store keeps all of its state in the machine's word memory so that
*every* mutation travels the real persistence pipeline (WPQ quarantine,
boundary commit, battery drain).  Four global arrays:

* ``idx_keys[capacity]`` — open-addressing hash index, one word per slot:
  ``0`` means never claimed, else ``key + 1``.  Claimed slots are never
  released (deletes only clear the pointer), so linear probing terminates
  as long as the number of distinct keys stays below the capacity; the
  layout enforces ``capacity >= 2 * keyspace`` (power of two).
* ``idx_ptrs[capacity]`` — ``0`` means absent (empty slot or deleted key),
  else the absolute heap word address of the record header **plus one**.
  Storing this pointer is the *visibility point* of every PUT/DELETE: a
  key's value is whatever a committed pointer reaches, so a crash that
  cuts an operation before its pointer store commits leaves the previous
  value (or absence) visible — never a partial record.
* ``heap[2 * half_words]`` — append-only record heap split in two halves;
  compaction copies the live records into the inactive half and flips.
  A live record is ``[key*2, value_word_0 .. value_word_{V-1}]``; a
  tombstone is the single word ``key*2 + 1`` (appended by DELETE for the
  durable log narrative; never pointed to, reclaimed by compaction).
* ``meta[META_WORDS]`` — cursor (offset *within* the active half, so the
  all-zero initial image is a valid empty store), active half, dead-word
  count, compaction/drop counters, and the batch length.

Value words of a record written with seed ``s`` are ``s, s+1, .., s+V-1``;
GET returns their sum (``V*s + V*(V-1)/2``), so a torn or partial record
that somehow became visible would change the returned checksum — that is
what the differential oracle leans on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compiler.ir import Program

__all__ = [
    "StoreLayout",
    "OP_PUT",
    "OP_GET",
    "OP_DELETE",
    "OP_SCAN",
    "OP_NAMES",
    "RESP_DEVICE",
    "KNUTH",
    "META_CURSOR",
    "META_ACTIVE",
    "META_DEAD",
    "META_COMPACTIONS",
    "META_NREQ",
    "META_DROPS",
    "META_WORDS",
    "checksum",
]

#: request opcodes (word 0 of each request triple)
OP_PUT = 1
OP_GET = 2
OP_DELETE = 3
OP_SCAN = 4
OP_NAMES = {OP_PUT: "put", OP_GET: "get", OP_DELETE: "delete", OP_SCAN: "scan"}

#: IO device id of the response "NIC" — one ``io`` per finished request,
#: payload = the request's global id (the acknowledgement the oracle uses)
RESP_DEVICE = 7

#: Knuth multiplicative hash constant (same as examples/persistent_kvstore)
KNUTH = 2654435761

# meta array slots
META_CURSOR = 0        # append offset within the active heap half
META_ACTIVE = 1        # which half (0/1) is being appended to
META_DEAD = 2          # dead words in the active half
META_COMPACTIONS = 3   # completed compaction passes
META_NREQ = 4          # number of requests in the current batch
META_DROPS = 5         # requests refused for lack of heap room
META_WORDS = 8


def checksum(seed: int, value_words: int) -> int:
    """The checksum GET/PUT return for a record written with ``seed``."""
    return value_words * seed + (value_words * (value_words - 1)) // 2


@dataclass(frozen=True)
class StoreLayout:
    """Sizing plus the absolute word addresses of the store's arrays."""

    keyspace: int          # keys are 1..keyspace
    capacity: int          # index slots (power of two, >= 2*keyspace)
    half_words: int        # words per heap half
    value_words: int       # payload words per record
    max_batch: int         # requests per epoch batch
    # absolute word addresses (filled by place())
    idx_keys: int = 0
    idx_ptrs: int = 0
    heap: int = 0
    meta: int = 0
    reqs: int = 0
    out: int = 0

    def __post_init__(self) -> None:
        if self.keyspace < 1:
            raise ValueError("keyspace must be positive")
        if self.capacity & (self.capacity - 1):
            raise ValueError("capacity must be a power of two")
        if self.capacity < 2 * self.keyspace:
            raise ValueError("capacity must be at least 2x the keyspace")
        if self.value_words < 1:
            raise ValueError("records need at least one value word")
        if self.half_words < 2 * (self.value_words + 1):
            raise ValueError("heap half too small for two records")
        if self.max_batch < 1:
            raise ValueError("max_batch must be positive")

    @property
    def record_words(self) -> int:
        return self.value_words + 1

    @classmethod
    def sized(
        cls,
        keyspace: int,
        value_words: int = 4,
        max_batch: int = 64,
        slack: float = 2.0,
    ) -> "StoreLayout":
        """A layout sized so that ``keyspace`` live records fit with
        ``slack``x room for appends between compactions."""
        capacity = 1
        while capacity < 2 * keyspace:
            capacity *= 2
        half = max(
            2 * (value_words + 1),
            int(slack * keyspace * (value_words + 1)),
        )
        return cls(
            keyspace=keyspace,
            capacity=capacity,
            half_words=half,
            value_words=value_words,
            max_batch=max_batch,
        )

    def place(self, prog: Program) -> "StoreLayout":
        """Allocate the arrays in ``prog`` and return a layout carrying
        their absolute base addresses.  Allocation order is fixed, so two
        programs built from the same sizing place every array at the same
        address — that is what lets a shard carry its durable image from
        one epoch's program to the next."""
        from dataclasses import replace

        return replace(
            self,
            idx_keys=prog.array("kv_idx_keys", self.capacity),
            idx_ptrs=prog.array("kv_idx_ptrs", self.capacity),
            heap=prog.array("kv_heap", 2 * self.half_words),
            meta=prog.array("kv_meta", META_WORDS),
            reqs=prog.array("kv_reqs", 3 * self.max_batch),
            out=prog.array("kv_out", self.max_batch),
        )

    def slot_of(self, key: int) -> int:
        """The hash-home slot of ``key`` (mirrors the IR computation)."""
        return ((key * KNUTH) >> 16) & (self.capacity - 1)
