"""Store workloads packaged as campaign benchmarks.

These are *self-contained* store programs — the batch is baked into a
setup block, so they run from an empty image like any other benchmark —
registered in their own ``STORE_BENCHMARKS`` table rather than the main
38-application suite (adding them there would silently change every
figure sweep, whose default benchmark set is "all of BENCHMARKS").

The fault campaign resolves ``store-*`` names through this table (see
``repro faults campaign --workload store``), which turns the adversarial
fault sweep — torn battery writes, dropped boundary broadcasts, nested
power failures — loose on real request-serving code paths: hash probes,
record appends, pointer flips, and heap compaction.

Sizing: the heap halves are kept tight (little slack over the live set)
so even campaign-scale runs cross the compaction path, and the keyspace
is small so zipfian traffic produces genuine overwrite/delete churn.
"""

from __future__ import annotations

from typing import Dict

from ..compiler.ir import Program
from ..workloads.suite import Benchmark
from .layout import StoreLayout
from .programs import build_store_program
from .workload import generate_workload

__all__ = ["STORE_BENCHMARKS", "STORE_SUITE"]

STORE_SUITE = "STORE"

_KEYSPACE = 12
_VALUE_WORDS = 2
_BASE_OPS = 240


def _store_factory(mix: str, seed: int):
    def build(scale: float, threads: int) -> Program:
        ops = max(6, int(_BASE_OPS * scale))
        layout = StoreLayout.sized(
            _KEYSPACE,
            value_words=_VALUE_WORDS,
            max_batch=_KEYSPACE + ops,
            slack=1.3,
        )
        requests = generate_workload(
            mix, ops, _KEYSPACE, seed=seed, dist="zipfian"
        )
        prog, _ = build_store_program(
            layout, baked_requests=requests, name="store-%s" % mix
        )
        return prog

    return build


def _store_bench(mix: str, seed: int) -> Benchmark:
    return Benchmark(
        name="store-%s" % mix,
        suite=STORE_SUITE,
        factory=_store_factory(mix, seed),
        threads=1,
    )


STORE_BENCHMARKS: Dict[str, Benchmark] = {
    b.name: b
    for b in (
        _store_bench("ycsb-a", seed=11),
        _store_bench("ycsb-b", seed=12),
        _store_bench("crud", seed=13),
    )
}
