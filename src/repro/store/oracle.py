"""The store-level differential oracle.

:class:`StoreModel` is a pure-Python mirror of the compiled store's
semantics — including the heap cursor, compaction trigger, and the
full-heap drop path, which all affect results — so it predicts the exact
outcome of any request sequence without touching the machine.

:func:`visible_state` extracts the *visible* key-value map from a durable
memory image by walking the index exactly the way the compiled GET does
(claimed slot + non-null pointer -> record), verifying on the way that
every visible record is internally consistent (header matches the slot's
key, value words form the arithmetic progression a PUT writes).  A torn
or partially persisted record that somehow became visible fails here —
that is the "no dirty reads" half of the durability contract.

:func:`check_recovery` is the acked-write theorem, checked after a crash:

* the set of surviving acknowledgements is a *prefix* of the shard's
  request sequence (the response ``io`` of request *i* commits before any
  mutation of request *i+1* — single thread, flush-ID commit order);
* the visible state equals the model's state after ``a`` or ``a+1``
  requests, where ``a`` is the acked count (request ``a`` may have
  committed its visibility point without its acknowledgement — durable
  but unacked is allowed; acked but lost is not, and a state matching
  neither ``a`` nor ``a+1`` would be a dirty or lost write);
* every acked request's durable result word matches the model.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .layout import OP_DELETE, OP_GET, OP_PUT, OP_SCAN, StoreLayout, checksum
from .programs import Request

__all__ = [
    "StoreModel",
    "visible_state",
    "check_recovery",
    "recovery_alignment",
]


class StoreModel:
    """Executable specification of the store (one shard)."""

    def __init__(self, layout: StoreLayout) -> None:
        self.layout = layout
        #: visible state: key -> the seed its live record was written with
        self.kv: Dict[int, int] = {}
        self.cursor = 0        # append offset within the active half
        self.active = 0
        self.dead = 0
        self.compactions = 0
        self.drops = 0
        self.results: List[int] = []

    def copy(self) -> "StoreModel":
        other = StoreModel(self.layout)
        other.kv = dict(self.kv)
        other.cursor = self.cursor
        other.active = self.active
        other.dead = self.dead
        other.compactions = self.compactions
        other.drops = self.drops
        other.results = list(self.results)
        return other

    # ------------------------------------------------------------------
    def _compact(self) -> None:
        self.cursor = len(self.kv) * self.layout.record_words
        self.active = 1 - self.active
        self.dead = 0
        self.compactions += 1

    def _put(self, key: int, seed: int) -> int:
        lay = self.layout
        rec = lay.record_words
        if self.cursor + rec > lay.half_words:
            self._compact()
            if self.cursor + rec > lay.half_words:
                self.drops += 1
                return -2
        if key in self.kv:
            self.dead += rec
        self.kv[key] = seed
        self.cursor += rec
        return checksum(seed, lay.value_words)

    def _get(self, key: int) -> int:
        if key not in self.kv:
            return -1
        return checksum(self.kv[key], self.layout.value_words)

    def _delete(self, key: int) -> int:
        if key not in self.kv:
            return 0
        lay = self.layout
        if self.cursor + 1 > lay.half_words:
            self._compact()
        if self.cursor + 1 <= lay.half_words:
            self.cursor += 1
            self.dead += lay.record_words + 1
        del self.kv[key]
        return 1

    def _scan(self, start: int, count: int) -> int:
        acc = 0
        for key in range(start, start + count):
            if key in self.kv:
                acc += checksum(self.kv[key], self.layout.value_words)
        return acc

    # ------------------------------------------------------------------
    def apply(self, request: Request) -> int:
        op, key, arg = request
        if op == OP_PUT:
            result = self._put(key, arg)
        elif op == OP_GET:
            result = self._get(key)
        elif op == OP_DELETE:
            result = self._delete(key)
        elif op == OP_SCAN:
            result = self._scan(key, arg)
        else:
            raise ValueError("unknown opcode %d" % op)
        self.results.append(result)
        return result

    def apply_all(self, requests: Iterable[Request]) -> List[int]:
        return [self.apply(r) for r in requests]


def visible_state(
    image: Mapping[int, int], layout: StoreLayout
) -> Tuple[Dict[int, int], List[str]]:
    """Walk the index of a durable image.  Returns ``(kv, problems)``
    where ``kv`` maps key -> seed and ``problems`` lists every internal
    inconsistency found (dangling pointers, torn records)."""
    kv: Dict[int, int] = {}
    problems: List[str] = []
    for slot in range(layout.capacity):
        marker = image.get(layout.idx_keys + slot, 0)
        ptr = image.get(layout.idx_ptrs + slot, 0)
        if marker == 0:
            if ptr != 0:
                problems.append(
                    "slot %d: pointer %d on an unclaimed slot" % (slot, ptr)
                )
            continue
        if ptr == 0:
            continue
        key = marker - 1
        header = image.get(ptr - 1, 0)
        if header != 2 * key:
            problems.append(
                "slot %d key %d: header %d does not match (want %d)"
                % (slot, key, header, 2 * key)
            )
            continue
        seed = image.get(ptr, 0)
        torn = [
            j for j in range(layout.value_words)
            if image.get(ptr + j, 0) != seed + j
        ]
        if torn:
            problems.append(
                "slot %d key %d: torn value words %s" % (slot, key, torn)
            )
            continue
        if key in kv:
            problems.append("key %d visible through two slots" % key)
        kv[key] = seed
    return kv, problems


def _diff_states(want: Dict[int, int], got: Dict[int, int]) -> str:
    keys = sorted(set(want) | set(got))
    diffs = [
        "key %d: want %s got %s" % (k, want.get(k), got.get(k))
        for k in keys
        if want.get(k) != got.get(k)
    ]
    return "; ".join(diffs[:6])


def check_recovery(
    image: Mapping[int, int],
    acked: Iterable[int],
    base_model: StoreModel,
    requests: Sequence[Request],
    first_id: int,
) -> List[str]:
    """Check the acked-write theorem for one shard after a crash.

    ``image`` is the durable memory image right after recovery,
    ``acked`` the ids of the surviving response acknowledgements for the
    interrupted batch, ``base_model`` the (unmodified) model state before
    the batch, ``requests`` the batch, and ``first_id`` the global id of
    ``requests[0]``.  Returns a list of violation descriptions (empty =
    the theorem holds)."""
    violations, _, _ = recovery_alignment(
        image, acked, base_model, requests, first_id
    )
    return violations


def recovery_alignment(
    image: Mapping[int, int],
    acked: Iterable[int],
    base_model: StoreModel,
    requests: Sequence[Request],
    first_id: int,
) -> Tuple[List[str], int, StoreModel]:
    """:func:`check_recovery`, plus the *alignment* a recovering node
    needs to rejoin: how many of the interrupted batch's requests are
    actually reflected in the durable image (``a`` acked, or ``a + 1``
    when the next request committed its visibility point but lost its
    acknowledgement), and the model advanced to exactly that point.

    Returns ``(violations, applied_count, model_after)``.  On a
    violation the alignment falls back to the acked count — the caller
    is expected to surface the violations rather than serve from the
    returned model."""
    layout = base_model.layout
    violations: List[str] = []

    acked_set = set(acked)
    stray = sorted(
        p for p in acked_set
        if not (first_id <= p < first_id + len(requests))
    )
    if stray:
        violations.append("acks outside the batch id range: %s" % stray[:6])
        acked_set -= set(stray)
    a = len(acked_set)
    expected = set(range(first_id, first_id + a))
    if acked_set != expected:
        violations.append(
            "acks are not a prefix: missing %s, unexpected %s"
            % (
                sorted(expected - acked_set)[:6],
                sorted(acked_set - expected)[:6],
            )
        )
        model_a = base_model.copy()
        model_a.apply_all(requests[:a])
        return violations, a, model_a

    visible, problems = visible_state(image, layout)
    violations.extend(problems)

    model_a = base_model.copy()
    results = model_a.apply_all(requests[:a])
    state_a = dict(model_a.kv)
    applied = a
    model_after = model_a
    state_next: Optional[Dict[int, int]] = None
    model_next: Optional[StoreModel] = None
    if a < len(requests):
        model_next = model_a.copy()
        model_next.apply(requests[a])
        state_next = dict(model_next.kv)

    if visible != state_a and visible != state_next:
        violations.append(
            "visible state matches neither %d acked ops (%s) nor %d (%s)"
            % (
                a,
                _diff_states(state_a, visible) or "-",
                a + 1,
                _diff_states(state_next or {}, visible) or "-",
            )
        )
    elif visible != state_a and model_next is not None:
        # durable-but-unacked: request ``a`` committed its visibility
        # point before the cut; the node rejoins past it
        applied = a + 1
        model_after = model_next

    for i in range(a):
        want = results[i]
        got = image.get(layout.out + i, 0)
        if got != want:
            violations.append(
                "acked request %d (local %d): durable result %d, model %d"
                % (first_id + i, i, got, want)
            )
    return violations, applied, model_after
