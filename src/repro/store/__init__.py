"""``repro.store`` — a crash-consistent persistent KV store served on the
LightWSP machine.

The store's data structures (open-addressing hash index, append-only
record heap with tombstones and compaction) live in the machine's word
memory, and GET/PUT/DELETE/SCAN run as compiled LightWSP programs — so
crash consistency comes from whole-system persistence, not from any
store-side logging.  See DESIGN.md ("The persistent KV store") for the
layout, the recovery invariant, and the acked-write oracle.

Layers:

* :mod:`repro.store.layout`   — PM-resident data layout + sizing
* :mod:`repro.store.programs` — the operations as IR, compiled for real
* :mod:`repro.store.workload` — seeded YCSB-style request generation
* :mod:`repro.store.oracle`   — executable spec + acked-write theorem
* :mod:`repro.store.server`   — sharded epoch serving, latency, crashes
* :mod:`repro.store.bench`    — store programs as fault-campaign targets
"""

from .layout import (
    OP_DELETE,
    OP_GET,
    OP_PUT,
    OP_SCAN,
    RESP_DEVICE,
    StoreLayout,
    checksum,
)
from .oracle import (
    StoreModel,
    check_recovery,
    recovery_alignment,
    visible_state,
)
from .programs import Request, build_store_program, request_words
from .server import (
    ReplayedEpochError,
    ServeReport,
    ShardReport,
    StoreServer,
    run_serve,
    shard_of,
)
from .workload import DISTRIBUTIONS, MIXES, generate_workload
from .bench import STORE_BENCHMARKS, STORE_SUITE

__all__ = [
    "OP_DELETE",
    "OP_GET",
    "OP_PUT",
    "OP_SCAN",
    "RESP_DEVICE",
    "StoreLayout",
    "checksum",
    "StoreModel",
    "check_recovery",
    "recovery_alignment",
    "visible_state",
    "Request",
    "build_store_program",
    "request_words",
    "ReplayedEpochError",
    "ServeReport",
    "ShardReport",
    "StoreServer",
    "run_serve",
    "shard_of",
    "DISTRIBUTIONS",
    "MIXES",
    "generate_workload",
    "STORE_BENCHMARKS",
    "STORE_SUITE",
]
