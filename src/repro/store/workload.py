"""YCSB-style workload generation for the store server.

Seeded and fully deterministic: the same (mix, ops, keyspace, seed, dist)
always yields the same request list, independent of ``PYTHONHASHSEED``
(only :class:`random.Random` and arithmetic are used).

Mixes follow the YCSB core workloads, adapted to the store's op set:

========  ==========================================  ==================
name      composition                                 YCSB analogue
========  ==========================================  ==================
ycsb-a    50% GET / 50% PUT                           A (update heavy)
ycsb-b    95% GET /  5% PUT                           B (read mostly)
ycsb-c    100% GET                                    C (read only)
ycsb-e    95% SCAN /  5% PUT                          E (short ranges)
crud      40% GET / 40% PUT / 15% DELETE / 5% SCAN    —
========  ==========================================  ==================

Every generated workload starts with a *load phase* — one PUT per key in
``1..keyspace`` — so reads hit data; ``ops`` counts only the mixed phase.
Keys come from a zipfian (default, theta 0.99) or uniform distribution.
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, List, Tuple

from .layout import OP_DELETE, OP_GET, OP_PUT, OP_SCAN
from .programs import Request

__all__ = [
    "MIXES",
    "DISTRIBUTIONS",
    "generate_workload",
    "zipfian_cdf",
]

#: mix name -> ((opcode, weight), ...)
MIXES: Dict[str, Tuple[Tuple[int, int], ...]] = {
    "ycsb-a": ((OP_GET, 50), (OP_PUT, 50)),
    "ycsb-b": ((OP_GET, 95), (OP_PUT, 5)),
    "ycsb-c": ((OP_GET, 100),),
    "ycsb-e": ((OP_SCAN, 95), (OP_PUT, 5)),
    "crud": ((OP_GET, 40), (OP_PUT, 40), (OP_DELETE, 15), (OP_SCAN, 5)),
}

DISTRIBUTIONS = ("zipfian", "uniform")

#: YCSB's default zipfian skew
ZIPF_THETA = 0.99

#: SCAN ranges are short (YCSB-E uses uniform 1..max short ranges)
MAX_SCAN_SPAN = 8

#: PUT seeds stay small enough that checksums fit comfortably in a word
MAX_SEED = 1 << 16


def zipfian_cdf(n: int, theta: float = ZIPF_THETA) -> List[float]:
    """Cumulative popularity of ranks ``1..n`` under a zipfian law."""
    weights = [1.0 / (rank ** theta) for rank in range(1, n + 1)]
    total = sum(weights)
    cdf: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cdf.append(acc / total)
    return cdf


class _KeySampler:
    """Maps zipfian ranks onto keys via a seeded shuffle, so the popular
    keys are spread over the keyspace (and over the server's shards)."""

    def __init__(self, keyspace: int, dist: str, rng: random.Random) -> None:
        if dist not in DISTRIBUTIONS:
            raise ValueError(
                "unknown distribution %r (choose from %s)"
                % (dist, ", ".join(DISTRIBUTIONS))
            )
        self.keyspace = keyspace
        self.dist = dist
        self.rng = rng
        if dist == "zipfian":
            self._cdf = zipfian_cdf(keyspace)
            self._rank_to_key = list(range(1, keyspace + 1))
            rng.shuffle(self._rank_to_key)

    def sample(self) -> int:
        if self.dist == "uniform":
            return self.rng.randint(1, self.keyspace)
        rank = bisect.bisect_left(self._cdf, self.rng.random())
        return self._rank_to_key[min(rank, self.keyspace - 1)]


def generate_workload(
    mix: str,
    ops: int,
    keyspace: int,
    seed: int = 0,
    dist: str = "zipfian",
) -> List[Request]:
    """The full request list: load phase (one PUT per key, in key order)
    followed by ``ops`` mixed operations."""
    if mix not in MIXES:
        raise ValueError(
            "unknown mix %r (choose from %s)" % (mix, ", ".join(sorted(MIXES)))
        )
    if ops < 0:
        raise ValueError("ops must be non-negative")
    rng = random.Random(seed)
    sampler = _KeySampler(keyspace, dist, rng)
    requests: List[Request] = []
    for key in range(1, keyspace + 1):
        requests.append((OP_PUT, key, rng.randint(1, MAX_SEED)))
    opcodes = [op for op, _ in MIXES[mix]]
    weights = [w for _, w in MIXES[mix]]
    for _ in range(ops):
        op = rng.choices(opcodes, weights=weights)[0]
        key = sampler.sample()
        if op == OP_PUT:
            arg = rng.randint(1, MAX_SEED)
        elif op == OP_SCAN:
            arg = rng.randint(1, MAX_SCAN_SPAN)
        else:
            arg = 0
        requests.append((op, key, arg))
    return requests
