"""The request-serving harness: shards, epochs, crashes, and stats.

A :func:`run_serve` call generates a seeded workload, partitions it by
key hash across ``shards`` independent machine instances, and serves it
in *epochs*: each shard's next batch is seeded into a persistent request
ring (the ``reqs``/``meta`` arrays), a fresh dispatcher program runs it
on a :class:`~repro.faults.machine.FaultyMachine` (all defenses on, so
acknowledgements pay the real flush-ACK latency), and the shard's durable
image is carried into the next epoch.  One machine instruction is one
simulated step; latencies and throughput are converted to wall time via
the configured base CPI and clock.

A request is **acknowledged** when its response ``io`` survives in the
durable I/O log — i.e. the region containing the ``io`` committed.  Its
latency is the step distance from the ``io`` issuing to that region's
commit (the WPQ quarantine + boundary broadcast + flush-ACK wait),
collected through the opt-in ``MachineStats.commit_steps``/``io_steps``
hooks so un-instrumented runs pay nothing.

Kill-and-recover: with a crash scheduled, every shard's power fails at a
seeded step inside the chosen epoch (optionally with a torn battery
write).  The store-level oracle (:mod:`repro.store.oracle`) then checks
the recovered durable image — acked writes all survived, nothing
unacknowledged became visible — before the shard resumes and finishes
the batch.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.metrics import latency_summary
from ..compiler.interp import precompile_dispatch
from ..compiler.ir import Instr, Op, Program
from ..compiler.pipeline import CompiledProgram, compile_program
from ..config import DEFAULT_CONFIG, SystemConfig
from ..faults.defenses import ALL_ON
from ..faults.machine import FaultyMachine
from ..faults.model import FaultEvent
from .layout import KNUTH, META_COMPACTIONS, META_DROPS, StoreLayout
from .oracle import StoreModel, check_recovery, visible_state
from .programs import Request, build_store_program, request_words
from .workload import generate_workload
from ..trace import JsonlTrace, NullTrace

__all__ = [
    "DATA_FLOOR",
    "ShardReport",
    "ServeReport",
    "StoreServer",
    "run_serve",
]

#: everything below this word address is the checkpoint array
DATA_FLOOR = Program.CHECKPOINT_WORDS_PER_CORE * Program.MAX_CONTEXTS
_DATA_FLOOR = DATA_FLOOR  # historical private name


def _mix_int(*parts: int) -> int:
    """Seeded, PYTHONHASHSEED-independent integer from the parts."""
    text = ":".join(str(p) for p in parts)
    return int.from_bytes(
        hashlib.sha256(text.encode()).digest()[:8], "big"
    )


def shard_of(key: int, shards: int) -> int:
    """Key placement.  Uses a different slice of the Knuth hash than the
    index's home-slot computation so shard skew and probe clustering stay
    uncorrelated."""
    return ((key * KNUTH) >> 8) % shards


@dataclass
class ShardReport:
    """Per-shard serving statistics."""

    shard: int
    ops: int = 0
    epochs: int = 0
    steps: int = 0
    commits: int = 0
    boundaries: int = 0
    max_wpq_occupancy: int = 0
    crashes: int = 0
    acked: int = 0
    recovered_ops: int = 0       # ops re-executed after a power failure
    compactions: int = 0
    drops: int = 0
    keys_live: int = 0
    image_digest: str = ""
    latencies_ns: List[float] = field(default_factory=list)


@dataclass
class ServeReport:
    """The result of one serving run."""

    workload: str
    dist: str
    seed: int
    ops: int
    load_ops: int
    shards: List[ShardReport]
    sim_ns: float
    violations: List[str]
    crash_epoch: Optional[int]

    @property
    def total_ops(self) -> int:
        return sum(s.ops for s in self.shards)

    @property
    def throughput_mops(self) -> float:
        """Served requests per simulated microsecond... reported as
        million ops/s (requests / sim seconds / 1e6)."""
        if self.sim_ns <= 0:
            return 0.0
        return self.total_ops / self.sim_ns * 1e3

    @property
    def latencies_ns(self) -> List[float]:
        merged: List[float] = []
        for s in self.shards:
            merged.extend(s.latencies_ns)
        return merged

    @property
    def latency(self) -> Dict[str, float]:
        return latency_summary(self.latencies_ns)

    @property
    def ok(self) -> bool:
        return not self.violations

    def digest(self) -> str:
        """One deterministic fingerprint of the whole run (final images +
        op counts) — two runs with the same inputs must agree."""
        h = hashlib.sha256()
        for s in self.shards:
            h.update(
                ("%d:%s:%d:%d;" % (s.shard, s.image_digest, s.ops, s.acked))
                .encode()
            )
        return h.hexdigest()[:16]


class ReplayedEpochError(RuntimeError):
    """An epoch batch was delivered to a shard that already served those
    request ids (a duplicated delivery, or a driver replaying history).
    Re-applying would silently double-execute non-idempotent ops."""


class _Shard:
    """One shard's serving state across epochs."""

    def __init__(self, shard: int, layout: StoreLayout) -> None:
        self.shard = shard
        self.layout = layout
        self.requests: List[Tuple[int, Request]] = []  # (global id, request)
        self.image: Dict[int, int] = {}
        self.model = StoreModel(layout)
        self.served = 0          # requests completed in finished epochs
        self.report = ShardReport(shard=shard)


class StoreServer:
    """Drives sharded epochs of the store over FaultyMachine instances."""

    def __init__(
        self,
        n_shards: int,
        layout: StoreLayout,
        config: SystemConfig = DEFAULT_CONFIG,
        seed: int = 0,
        progress: Optional[Callable[[str], None]] = None,
        verify: Optional[bool] = None,
        backend=None,
        trace=None,
    ) -> None:
        from ..runtime.backend import get_backend

        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.config = config
        self.seed = seed
        self.verify = verify
        self.backend = get_backend(backend)
        # pin the absolute array addresses now; every epoch's program
        # places the same sizing in the same order, so the bases agree
        self.layout = layout.place(Program("layout-probe"))
        self.progress = progress or (lambda msg: None)
        self.trace = trace if trace is not None else NullTrace()
        self.shards = [_Shard(i, self.layout) for i in range(n_shards)]
        #: (template, patchable epoch_base instr) — see _compiled_for
        self._compiled_cache: Optional[
            Tuple[CompiledProgram, Optional[Instr]]
        ] = None
        self.violations: List[str] = []
        self.sim_ns = 0.0
        self._cycles_per_step = config.base_cpi

    # ------------------------------------------------------------------
    def _steps_to_ns(self, steps: float) -> float:
        return self.config.cycles_to_ns(steps * self._cycles_per_step)

    def submit(self, requests: Sequence[Request]) -> None:
        for request in requests:
            _, key, _ = request
            shard = self.shards[shard_of(key, len(self.shards))]
            # ids are per shard: position in the shard's own sequence,
            # which is what makes the acked set a checkable prefix
            shard.requests.append((len(shard.requests), request))

    # ------------------------------------------------------------------
    def _fresh_compile(self, epoch_base: int) -> CompiledProgram:
        prog, placed = build_store_program(self.layout, epoch_base=epoch_base)
        if placed != self.layout:
            raise RuntimeError("store layout moved between epochs")
        return compile_program(prog, self.config.compiler, verify=self.verify)

    def _compiled_for(self, epoch_base: int) -> CompiledProgram:
        """The epoch's compiled program, one pipeline run per server.

        Epochs of one layout differ only in ``epoch_base``, which
        survives the pipeline as the immediate of the single
        ``add r11, r1, <base>`` in main's "finish" block (the io-ack
        payload offset).  Running the full Fig. 3 pipeline per epoch
        costs more than executing a smoke-scale epoch, so compile once,
        patch that immediate, and relower the dispatch tables — the
        result is instruction-for-instruction what a fresh compile
        produces.  If the pipeline ever stops leaving exactly one
        matching instruction, every epoch falls back to a fresh compile.
        """
        cached = self._compiled_cache
        if cached is None:
            compiled = self._fresh_compile(epoch_base)
            sites = [
                ins
                for block in compiled.program.functions["main"].blocks.values()
                for ins in block.instrs
                if ins.op == Op.ADD
                and ins.dst == "r11"
                and len(ins.srcs) == 2
                and ins.srcs[0] == "r1"
                and isinstance(ins.srcs[1], int)
                and ins.srcs[1] == epoch_base
            ]
            self._compiled_cache = (
                compiled, sites[0] if len(sites) == 1 else None
            )
            return compiled
        compiled, site = cached
        if site is None:
            return self._fresh_compile(epoch_base)
        if site.srcs[1] != epoch_base:
            site.srcs = (site.srcs[0], epoch_base)
            precompile_dispatch(compiled.program)
        return compiled

    # ------------------------------------------------------------------
    def _run_epoch(
        self,
        shard: _Shard,
        batch: List[Tuple[int, Request]],
        crash_step: Optional[int],
        crash_event: Optional[FaultEvent],
        epoch: int = 0,
    ) -> None:
        lay = self.layout
        first_id = batch[0][0]
        if first_id != shard.served:
            # At-most-once guard: every epoch must start exactly where
            # the previous one ended.  A message-layer dup (or a buggy
            # driver) re-delivering an already-served epoch would
            # silently re-apply non-idempotent ops — the heap cursor,
            # compaction counters, and tombstones would all diverge from
            # the model while the visible values looked fine.
            raise ReplayedEpochError(
                "shard %d: epoch starting at id %d %s (shard has served "
                "%d requests); refusing to re-apply"
                % (
                    shard.shard, first_id,
                    "was already applied" if first_id < shard.served
                    else "skips ahead",
                    shard.served,
                )
            )
        requests = [r for _, r in batch]
        compiled = self._compiled_for(first_id)
        machine = FaultyMachine(
            compiled, config=self.config, defenses=ALL_ON,
            max_steps=8_000_000, backend=self.backend,
        )
        machine.pm.update(shard.image)
        machine.volatile.words.update(shard.image)
        ring = request_words(lay, requests)
        machine.pm.update(ring)
        machine.volatile.words.update(ring)
        machine.stats.commit_steps = []
        machine.stats.io_steps = []

        crashed = False
        if crash_step is not None:
            machine.run(steps=crash_step)
            if not machine.finished:
                crashed = True
                steps_before = machine.stats.steps
                machine.crash(crash_event)
                shard.report.crashes += 1
                acked = {entry[3] for entry in machine.io_log}
                found = check_recovery(
                    machine.pm, acked, shard.model, requests, first_id
                )
                self.violations.extend(
                    "shard %d epoch at id %d: %s" % (shard.shard, first_id, v)
                    for v in found
                )
                self.progress(
                    "shard %d: crash at step %d, %d/%d acked, %s"
                    % (
                        shard.shard,
                        steps_before,
                        len(acked),
                        len(requests),
                        "oracle VIOLATION" if found else "oracle ok",
                    )
                )
                self.trace.emit(
                    "server_crash", epoch=epoch, shard=shard.shard,
                    step=steps_before, acked=len(acked),
                    requests=len(requests), oracle_ok=not found,
                )
                shard.report.recovered_ops += len(requests) - len(acked)
        machine.run()
        machine.finish_messages()
        if not machine.finished:
            self.violations.append(
                "shard %d: epoch did not finish" % shard.shard
            )
            return

        # client-observed latency: the batch arrives at epoch start, so a
        # request is served once its ack's region commits — the step count
        # from epoch start to that commit (queueing behind earlier
        # requests, WPQ quarantine, boundary broadcast, flush-ACK wait,
        # and — after a power failure — the whole recovery re-execution).
        # First committed occurrence wins; re-executed ios come later.
        commit_at = dict(machine.stats.commit_steps)
        seen: Dict[int, float] = {}
        for payload, region, step in machine.stats.io_steps:
            if payload in seen or region not in commit_at:
                continue
            seen[payload] = self._steps_to_ns(commit_at[region])
        epoch_lat = [ns for _, ns in sorted(seen.items())]
        shard.report.latencies_ns.extend(epoch_lat)
        shard.report.acked += len(seen)

        # advance the reference model and the durable image
        shard.model.apply_all(requests)
        shard.image = {
            w: v
            for w, v in machine.pm.items()
            if w >= _DATA_FLOOR and v != 0
        }
        shard.served += len(requests)
        shard.report.ops += len(requests)
        shard.report.epochs += 1
        shard.report.steps += machine.stats.steps
        shard.report.commits += machine.stats.commits
        shard.report.boundaries += machine.stats.boundaries
        shard.report.max_wpq_occupancy = max(
            shard.report.max_wpq_occupancy, machine.stats.max_wpq_occupancy
        )
        summary = latency_summary(epoch_lat)
        self.trace.emit(
            "server_epoch", epoch=epoch, shard=shard.shard,
            ops=len(requests), acked=len(seen),
            steps=machine.stats.steps,
            sim_ns=self._steps_to_ns(machine.stats.steps),
            p50=summary["p50"], p95=summary["p95"], p99=summary["p99"],
            wpq_occupancy=machine.stats.max_wpq_occupancy,
            commits=machine.stats.commits, crashed=crashed,
        )
        if crashed:
            # the epoch's tail re-executed; its final image must agree
            # with the model (the crash was transparent to clients)
            visible, problems = visible_state(shard.image, lay)
            if problems:
                self.violations.extend(
                    "shard %d post-recovery: %s" % (shard.shard, p)
                    for p in problems
                )
            if visible != shard.model.kv:
                self.violations.append(
                    "shard %d post-recovery state diverged from model"
                    % shard.shard
                )

    # ------------------------------------------------------------------
    def serve(
        self,
        batch: int,
        crash_epoch: Optional[int] = None,
        crash_seed: int = 0,
        crash_torn: bool = False,
        crash_step: Optional[int] = None,
    ) -> None:
        """Run every submitted request through its shard, ``batch``
        requests per epoch.  With ``crash_epoch`` set, power fails on
        every shard during that epoch, at ``crash_step`` (or a
        per-shard seeded step), optionally with a torn battery write."""
        if crash_epoch is not None:
            from ..runtime.backend import require_recovering

            require_recovering(
                self.backend, "the store's acked-prefix recovery oracle"
            )
        n_epochs = 0
        for shard in self.shards:
            n_epochs = max(
                n_epochs, -(-len(shard.requests) // batch)
            )
        for epoch in range(n_epochs):
            epoch_steps = 0
            for shard in self.shards:
                chunk = shard.requests[epoch * batch:(epoch + 1) * batch]
                if not chunk:
                    continue
                step: Optional[int] = None
                event: Optional[FaultEvent] = None
                if crash_epoch is not None and epoch == crash_epoch:
                    if crash_step is not None:
                        step = max(1, crash_step)
                    else:
                        step = 1 + _mix_int(
                            self.seed, crash_seed, shard.shard, epoch
                        ) % (60 * len(chunk))
                    event = FaultEvent(
                        kind="cut",
                        step=step,
                        torn_index=0 if crash_torn else -1,
                    )
                before = shard.report.steps
                self._run_epoch(shard, chunk, step, event, epoch=epoch)
                epoch_steps = max(
                    epoch_steps, shard.report.steps - before
                )
            self.sim_ns += self._steps_to_ns(epoch_steps)

    # ------------------------------------------------------------------
    def finalize(self) -> List[ShardReport]:
        for shard in self.shards:
            lay = self.layout
            shard.report.compactions = shard.image.get(
                lay.meta + META_COMPACTIONS, 0
            )
            shard.report.drops = shard.image.get(lay.meta + META_DROPS, 0)
            shard.report.keys_live = len(shard.model.kv)
            h = hashlib.sha256()
            for w in sorted(shard.image):
                h.update(("%d=%d;" % (w, shard.image[w])).encode())
            shard.report.image_digest = h.hexdigest()[:16]
            visible, problems = visible_state(shard.image, lay)
            self.violations.extend(
                "shard %d final: %s" % (shard.shard, p) for p in problems
            )
            if visible != shard.model.kv:
                self.violations.append(
                    "shard %d final state diverged from model" % shard.shard
                )
        return [s.report for s in self.shards]


def run_serve(
    workload: str = "ycsb-a",
    ops: int = 2000,
    shards: int = 2,
    seed: int = 0,
    keyspace: int = 128,
    value_words: int = 4,
    batch: int = 64,
    dist: str = "zipfian",
    crash_epoch: Optional[int] = None,
    crash_seed: int = 0,
    crash_torn: bool = False,
    crash_step: Optional[int] = None,
    config: SystemConfig = DEFAULT_CONFIG,
    progress: Optional[Callable[[str], None]] = None,
    verify: Optional[bool] = None,
    backend=None,
    trace_path: Optional[str] = None,
) -> ServeReport:
    """Generate, shard, and serve a workload; see :class:`ServeReport`.

    ``verify=True`` statically verifies every epoch's compiled program
    (see :mod:`repro.verify`) before serving from it.  ``trace_path``
    records the run as a trace.v1 JSONL artifact (serve_start,
    per-shard server_epoch/server_crash, serve_end) that ``repro trace
    timeline``/``tail`` can render."""
    requests = generate_workload(
        workload, ops, keyspace, seed=seed, dist=dist
    )
    layout = StoreLayout.sized(
        keyspace, value_words=value_words, max_batch=batch
    )
    trace = JsonlTrace(trace_path) if trace_path else NullTrace()
    server = StoreServer(
        shards, layout, config=config, seed=seed, progress=progress,
        verify=verify, backend=backend, trace=trace,
    )
    trace.emit(
        "serve_start", workload=workload, dist=dist, seed=seed, ops=ops,
        shards=shards, keyspace=keyspace, batch=batch,
        backend=server.backend.name, crash_epoch=crash_epoch,
    )
    server.submit(requests)
    server.serve(
        batch,
        crash_epoch=crash_epoch,
        crash_seed=crash_seed,
        crash_torn=crash_torn,
        crash_step=crash_step,
    )
    reports = server.finalize()
    report = ServeReport(
        workload=workload,
        dist=dist,
        seed=seed,
        ops=ops,
        load_ops=keyspace,
        shards=reports,
        sim_ns=server.sim_ns,
        violations=server.violations,
        crash_epoch=crash_epoch,
    )
    trace.emit(
        "serve_end", ops=report.total_ops, sim_ns=report.sim_ns,
        throughput_mops=report.throughput_mops,
        violations=len(report.violations), digest=report.digest(),
    )
    trace.close()
    return report
