"""The store's operations as LightWSP programs.

Every operation is emitted as ordinary IR and compiled through the real
pipeline — region partitioning, checkpoint insertion, WPQ-threshold
splitting — so the store inherits crash consistency from the machine
instead of implementing a redo log of its own (the paper's whole-system
persistence pitch, §I).  The only store-specific discipline is *write
order*: a PUT appends the record words first and stores the index pointer
last, so the pointer (the visibility point) can never commit ahead of the
record it names — regions commit in program order on a single shard
thread, so a crash keeps a prefix.

Functions emitted:

* ``probe(key)``   — linear probing; returns the slot whose ``idx_keys``
  entry is ``key+1`` or the first never-claimed slot.
* ``getv(key)``    — checksum of the record's value words, or ``-1``.
* ``putv(key, seed)`` — append record + flip pointer; returns the
  checksum, or ``-2`` when the heap is full even after compaction.
* ``delv(key)``    — append tombstone + clear pointer; returns 1/0.
* ``scanv(start, count)`` — sum of checksums over a key range.
* ``compact()``    — copy live records into the inactive half, flip.
* ``main()``       — the request dispatcher: read each request triple,
  dispatch, store the result word, acknowledge with one ``io`` whose
  payload is the request's global id.

The dispatcher reads its batch from the ``reqs``/``meta`` arrays; they
can either be *baked* into the program as a setup block of immediate
stores (self-contained programs for the fault campaign and tests) or
seeded into the machine's images by the serving harness (modelling a
persistent NIC request ring).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..compiler.builder import FunctionBuilder
from ..compiler.ir import Program
from .layout import (
    META_ACTIVE,
    META_COMPACTIONS,
    META_CURSOR,
    META_DEAD,
    META_DROPS,
    META_NREQ,
    KNUTH,
    OP_DELETE,
    OP_GET,
    OP_PUT,
    RESP_DEVICE,
    StoreLayout,
)

__all__ = ["build_store_program", "request_words", "Request"]

#: one request: (opcode, key, arg) — arg is the PUT seed, the SCAN count,
#: and 0 for GET/DELETE
Request = Tuple[int, int, int]


def _emit_probe(prog: Program, lay: StoreLayout) -> None:
    fb = FunctionBuilder(prog, "probe", params=["r1"])
    mask = lay.capacity - 1
    fb.block("entry")
    fb.mul("r2", "r1", KNUTH)
    fb.shr("r2", "r2", 16)
    fb.and_("r2", "r2", mask)
    fb.add("r3", "r1", 1)            # the claimed-slot marker for key
    fb.br("loop")
    fb.block("loop")
    fb.load("r4", "r2", base=lay.idx_keys)
    fb.eq("r5", "r4", 0)
    fb.cbr("r5", "found", "check")
    fb.block("check")
    fb.eq("r5", "r4", "r3")
    fb.cbr("r5", "found", "next")
    fb.block("next")
    fb.add("r2", "r2", 1)
    fb.and_("r2", "r2", mask)
    fb.br("loop")
    fb.block("found")
    fb.ret("r2")
    fb.build()


def _emit_get(prog: Program, lay: StoreLayout) -> None:
    fb = FunctionBuilder(prog, "getv", params=["r1"])
    fb.block("entry")
    fb.call("probe", ["r1"], ret="r2")
    fb.load("r3", "r2", base=lay.idx_keys)
    fb.eq("r4", "r3", 0)
    fb.cbr("r4", "miss", "checkptr")
    fb.block("checkptr")
    fb.load("r5", "r2", base=lay.idx_ptrs)
    fb.eq("r4", "r5", 0)
    fb.cbr("r4", "miss", "sum")
    fb.block("sum")                   # value words live at r5 .. r5+V-1
    fb.const("r6", 0)
    fb.const("r7", 0)
    fb.br("sumloop")
    fb.block("sumloop")
    fb.lt("r8", "r7", lay.value_words)
    fb.cbr("r8", "sumbody", "done")
    fb.block("sumbody")
    fb.add("r9", "r5", "r7")
    fb.load("r10", "r9")
    fb.add("r6", "r6", "r10")
    fb.add("r7", "r7", 1)
    fb.br("sumloop")
    fb.block("done")
    fb.ret("r6")
    fb.block("miss")
    fb.const("r6", -1)
    fb.ret("r6")
    fb.build()


def _emit_put(prog: Program, lay: StoreLayout) -> None:
    rec = lay.record_words
    half = lay.half_words
    fb = FunctionBuilder(prog, "putv", params=["r1", "r2"])
    fb.block("entry")
    fb.load("r3", META_CURSOR, base=lay.meta)
    fb.add("r4", "r3", rec)
    fb.le("r5", "r4", half)
    fb.cbr("r5", "place", "tight")
    fb.block("tight")
    fb.call("compact")
    fb.load("r3", META_CURSOR, base=lay.meta)
    fb.add("r4", "r3", rec)
    fb.le("r5", "r4", half)
    fb.cbr("r5", "place", "drop")
    fb.block("drop")                  # full even after compaction
    fb.load("r6", META_DROPS, base=lay.meta)
    fb.add("r6", "r6", 1)
    fb.store("r6", META_DROPS, base=lay.meta)
    fb.const("r6", -2)
    fb.ret("r6")
    fb.block("place")
    fb.call("probe", ["r1"], ret="r6")
    fb.load("r7", "r6", base=lay.idx_keys)
    fb.eq("r8", "r7", 0)
    fb.cbr("r8", "claim", "overwrite")
    fb.block("claim")
    fb.add("r9", "r1", 1)
    fb.store("r9", "r6", base=lay.idx_keys)
    fb.br("writerec")
    fb.block("overwrite")             # the replaced record becomes dead
    fb.load("r9", "r6", base=lay.idx_ptrs)
    fb.eq("r8", "r9", 0)
    fb.cbr("r8", "writerec", "adddead")
    fb.block("adddead")
    fb.load("r10", META_DEAD, base=lay.meta)
    fb.add("r10", "r10", rec)
    fb.store("r10", META_DEAD, base=lay.meta)
    fb.br("writerec")
    fb.block("writerec")              # header + value words, pointer LAST
    fb.load("r11", META_ACTIVE, base=lay.meta)
    fb.mul("r11", "r11", half)
    fb.add("r11", "r11", "r3")        # heap-relative record address
    fb.mul("r12", "r1", 2)
    fb.store("r12", "r11", base=lay.heap)
    fb.const("r13", 0)
    fb.br("ploop")
    fb.block("ploop")
    fb.lt("r14", "r13", lay.value_words)
    fb.cbr("r14", "pbody", "publish")
    fb.block("pbody")
    fb.add("r15", "r11", 1)
    fb.add("r15", "r15", "r13")
    fb.add("r16", "r2", "r13")
    fb.store("r16", "r15", base=lay.heap)
    fb.add("r13", "r13", 1)
    fb.br("ploop")
    fb.block("publish")               # the visibility point
    fb.add("r17", "r11", lay.heap + 1)
    fb.store("r17", "r6", base=lay.idx_ptrs)
    fb.add("r18", "r3", rec)
    fb.store("r18", META_CURSOR, base=lay.meta)
    fb.mul("r19", "r2", lay.value_words)
    fb.add("r19", "r19", (lay.value_words * (lay.value_words - 1)) // 2)
    fb.ret("r19")
    fb.build()


def _emit_delete(prog: Program, lay: StoreLayout) -> None:
    rec = lay.record_words
    half = lay.half_words
    fb = FunctionBuilder(prog, "delv", params=["r1"])
    fb.block("entry")
    fb.call("probe", ["r1"], ret="r2")
    fb.load("r3", "r2", base=lay.idx_keys)
    fb.eq("r4", "r3", 0)
    fb.cbr("r4", "miss", "checkptr")
    fb.block("checkptr")
    fb.load("r5", "r2", base=lay.idx_ptrs)
    fb.eq("r4", "r5", 0)
    fb.cbr("r4", "miss", "room")
    fb.block("room")                  # one word for the tombstone
    fb.load("r6", META_CURSOR, base=lay.meta)
    fb.add("r7", "r6", 1)
    fb.le("r8", "r7", half)
    fb.cbr("r8", "tomb", "tight")
    fb.block("tight")
    fb.call("compact")
    fb.load("r6", META_CURSOR, base=lay.meta)
    fb.add("r7", "r6", 1)
    fb.le("r8", "r7", half)
    fb.cbr("r8", "tomb", "clear")     # no room: skip the tombstone
    fb.block("tomb")
    fb.load("r9", META_ACTIVE, base=lay.meta)
    fb.mul("r9", "r9", half)
    fb.add("r9", "r9", "r6")
    fb.mul("r10", "r1", 2)
    fb.add("r10", "r10", 1)           # odd header = tombstone
    fb.store("r10", "r9", base=lay.heap)
    fb.store("r7", META_CURSOR, base=lay.meta)
    fb.load("r11", META_DEAD, base=lay.meta)
    fb.add("r11", "r11", rec + 1)     # dead record + its own tombstone
    fb.store("r11", META_DEAD, base=lay.meta)
    fb.br("clear")
    fb.block("clear")                 # the visibility point
    fb.store(0, "r2", base=lay.idx_ptrs)
    fb.const("r12", 1)
    fb.ret("r12")
    fb.block("miss")
    fb.const("r12", 0)
    fb.ret("r12")
    fb.build()


def _emit_scan(prog: Program, lay: StoreLayout) -> None:
    fb = FunctionBuilder(prog, "scanv", params=["r1", "r2"])
    fb.block("entry")
    fb.const("r3", 0)                 # accumulator
    fb.mov("r4", "r1")                # current key
    fb.add("r5", "r1", "r2")          # end key (exclusive)
    fb.br("loop")
    fb.block("loop")
    fb.lt("r6", "r4", "r5")
    fb.cbr("r6", "body", "done")
    fb.block("body")
    fb.call("getv", ["r4"], ret="r7")
    fb.eq("r8", "r7", -1)
    fb.cbr("r8", "skip", "accum")
    fb.block("accum")
    fb.add("r3", "r3", "r7")
    fb.br("skip")
    fb.block("skip")
    fb.add("r4", "r4", 1)
    fb.br("loop")
    fb.block("done")
    fb.ret("r3")
    fb.build()


def _emit_compact(prog: Program, lay: StoreLayout) -> None:
    rec = lay.record_words
    half = lay.half_words
    fb = FunctionBuilder(prog, "compact")
    fb.block("entry")
    fb.load("r1", META_ACTIVE, base=lay.meta)
    fb.sub("r2", 1, "r1")             # the half we copy into
    fb.mul("r3", "r2", half)          # heap-relative destination cursor
    fb.const("r5", 0)                 # slot
    fb.br("loop")
    fb.block("loop")
    fb.lt("r6", "r5", lay.capacity)
    fb.cbr("r6", "body", "done")
    fb.block("body")
    fb.load("r7", "r5", base=lay.idx_keys)
    fb.eq("r8", "r7", 0)
    fb.cbr("r8", "next", "checkptr")
    fb.block("checkptr")
    fb.load("r9", "r5", base=lay.idx_ptrs)
    fb.eq("r8", "r9", 0)
    fb.cbr("r8", "next", "copy")
    fb.block("copy")                  # header, value words, pointer LAST
    fb.sub("r10", "r9", 1)
    fb.load("r11", "r10")
    fb.store("r11", "r3", base=lay.heap)
    fb.const("r12", 0)
    fb.br("ploop")
    fb.block("ploop")
    fb.lt("r13", "r12", lay.value_words)
    fb.cbr("r13", "pbody", "publish")
    fb.block("pbody")
    fb.add("r14", "r9", "r12")
    fb.load("r15", "r14")
    fb.add("r16", "r3", 1)
    fb.add("r16", "r16", "r12")
    fb.store("r15", "r16", base=lay.heap)
    fb.add("r12", "r12", 1)
    fb.br("ploop")
    fb.block("publish")
    fb.add("r17", "r3", lay.heap + 1)
    fb.store("r17", "r5", base=lay.idx_ptrs)
    fb.add("r3", "r3", rec)
    fb.br("next")
    fb.block("next")
    fb.add("r5", "r5", 1)
    fb.br("loop")
    fb.block("done")
    fb.mul("r18", "r2", half)
    fb.sub("r19", "r3", "r18")        # cursor offset in the new half
    fb.store("r19", META_CURSOR, base=lay.meta)
    fb.store("r2", META_ACTIVE, base=lay.meta)
    fb.store(0, META_DEAD, base=lay.meta)
    fb.load("r20", META_COMPACTIONS, base=lay.meta)
    fb.add("r20", "r20", 1)
    fb.store("r20", META_COMPACTIONS, base=lay.meta)
    fb.ret()
    fb.build()


def _emit_main(
    prog: Program,
    lay: StoreLayout,
    baked: Optional[Sequence[Request]],
    epoch_base: int,
) -> None:
    fb = FunctionBuilder(prog, "main")
    if baked is not None:
        if len(baked) > lay.max_batch:
            raise ValueError(
                "batch of %d exceeds max_batch %d" % (len(baked), lay.max_batch)
            )
        fb.block("setup")
        for i, (op, key, arg) in enumerate(baked):
            fb.store(op, 3 * i, base=lay.reqs)
            fb.store(key, 3 * i + 1, base=lay.reqs)
            fb.store(arg, 3 * i + 2, base=lay.reqs)
        fb.store(len(baked), META_NREQ, base=lay.meta)
        fb.br("start")
    fb.block("start")
    fb.const("r1", 0)                 # request index
    fb.load("r2", META_NREQ, base=lay.meta)
    fb.br("loop")
    fb.block("loop")
    fb.lt("r3", "r1", "r2")
    fb.cbr("r3", "fetch", "exit")
    fb.block("fetch")
    fb.mul("r4", "r1", 3)
    fb.load("r5", "r4", base=lay.reqs)            # opcode
    fb.add("r6", "r4", 1)
    fb.load("r7", "r6", base=lay.reqs)            # key
    fb.add("r6", "r4", 2)
    fb.load("r8", "r6", base=lay.reqs)            # arg
    fb.eq("r9", "r5", OP_PUT)
    fb.cbr("r9", "do_put", "c_get")
    fb.block("c_get")
    fb.eq("r9", "r5", OP_GET)
    fb.cbr("r9", "do_get", "c_del")
    fb.block("c_del")
    fb.eq("r9", "r5", OP_DELETE)
    fb.cbr("r9", "do_del", "do_scan")
    fb.block("do_put")
    fb.call("putv", ["r7", "r8"], ret="r10")
    fb.br("finish")
    fb.block("do_get")
    fb.call("getv", ["r7"], ret="r10")
    fb.br("finish")
    fb.block("do_del")
    fb.call("delv", ["r7"], ret="r10")
    fb.br("finish")
    fb.block("do_scan")
    fb.call("scanv", ["r7", "r8"], ret="r10")
    fb.br("finish")
    fb.block("finish")                # durable result, then the ack
    fb.store("r10", "r1", base=lay.out)
    fb.add("r11", "r1", epoch_base)
    fb.io(RESP_DEVICE, "r11")
    fb.add("r1", "r1", 1)
    fb.br("loop")
    fb.block("exit")
    fb.ret()
    fb.build()


def build_store_program(
    lay: StoreLayout,
    baked_requests: Optional[Sequence[Request]] = None,
    epoch_base: int = 0,
    name: str = "kvstore",
) -> Tuple[Program, StoreLayout]:
    """Emit the full store program.  Returns ``(program, placed_layout)``
    where the placed layout carries the absolute array addresses.

    With ``baked_requests`` the batch is written by a setup block of
    immediate stores (a self-contained program); without it the caller
    must seed ``reqs`` and ``meta[META_NREQ]`` into the machine's images
    (see :func:`request_words`).  ``epoch_base`` offsets the ``io``
    acknowledgement payloads so global request ids stay unique across
    epochs."""
    prog = Program(name)
    placed = lay.place(prog)
    _emit_probe(prog, placed)
    _emit_get(prog, placed)
    _emit_put(prog, placed)
    _emit_delete(prog, placed)
    _emit_scan(prog, placed)
    _emit_compact(prog, placed)
    _emit_main(prog, placed, baked_requests, epoch_base)
    prog.validate()
    return prog, placed


def request_words(
    lay: StoreLayout, requests: Sequence[Request]
) -> Dict[int, int]:
    """The words a serving harness seeds into both machine images to hand
    the dispatcher its batch (the persistent NIC request ring)."""
    if len(requests) > lay.max_batch:
        raise ValueError(
            "batch of %d exceeds max_batch %d" % (len(requests), lay.max_batch)
        )
    words: Dict[int, int] = {}
    for i, (op, key, arg) in enumerate(requests):
        words[lay.reqs + 3 * i] = op
        words[lay.reqs + 3 * i + 1] = key
        words[lay.reqs + 3 * i + 2] = arg
    words[lay.meta + META_NREQ] = len(requests)
    return words
