"""repro — a reproduction of *LightWSP: Whole-System Persistence on the
Cheap* (MICRO 2024).

Subpackages:

* :mod:`repro.compiler` — the region-partitioning compiler substrate,
* :mod:`repro.sim` — the timing simulator substrate,
* :mod:`repro.core` — LightWSP itself (WPQ redo buffering, LRPO, recovery),
* :mod:`repro.runtime` — the pluggable persist-path backends (every
  scheme's timing policy + functional crash semantics, one registry),
* :mod:`repro.baselines` — deprecation shims over :mod:`repro.runtime`,
* :mod:`repro.workloads` — the 38-application synthetic suite,
* :mod:`repro.analysis` — metrics, hardware-cost model, experiment drivers.
"""

from .config import (
    CXL_PRESETS,
    DEFAULT_CONFIG,
    CacheConfig,
    CompilerConfig,
    MCConfig,
    MemoryBackendConfig,
    PersistPathConfig,
    SystemConfig,
    VictimPolicy,
)

# The one-stop public API: build a program, compile it, run it on the
# functional persistence machine or the timing engine.
from .compiler import FunctionBuilder, Program, compile_program
from .core import (
    LIGHTWSP,
    PersistentMachine,
    reference_pm,
    run_with_crashes,
    simulate_lightwsp,
)
from .runtime import BACKENDS, PersistBackend, compare_backends, get_backend
from .sim import SchemePolicy, SimResult, simulate

__version__ = "1.0.0"

__all__ = [
    "CXL_PRESETS",
    "DEFAULT_CONFIG",
    "CacheConfig",
    "CompilerConfig",
    "MCConfig",
    "MemoryBackendConfig",
    "PersistPathConfig",
    "SystemConfig",
    "VictimPolicy",
    "FunctionBuilder",
    "Program",
    "compile_program",
    "LIGHTWSP",
    "PersistentMachine",
    "reference_pm",
    "run_with_crashes",
    "simulate_lightwsp",
    "BACKENDS",
    "PersistBackend",
    "compare_backends",
    "get_backend",
    "SchemePolicy",
    "SimResult",
    "simulate",
    "__version__",
]
