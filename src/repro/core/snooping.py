"""Front-end buffer snooping (§IV-G) — public API.

The implementation lives in :mod:`repro.sim.snoop` (the timing engine uses
it directly, and importing it through the ``repro.core`` package would
create an import cycle); this module is the stable public name.
"""

from ..sim.snoop import make_victim_selector

__all__ = ["make_victim_selector"]
