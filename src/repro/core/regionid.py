"""Region-ID management (§IV-B, §IV-C).

The paper's hardware manages region IDs with a global atomic counter: at
every region boundary the executing thread broadcasts the ID of the region
it is ending and obtains a fresh ID with an atomic fetch-and-increment.
Because the compiler places a boundary before every synchronization
instruction, the ID allocation points of conflicting threads are ordered
by the synchronization itself, so the ID sequence respects the program's
happens-before order — the property lazy region-level persist ordering
relies on to flush conflicting stores in the right order.

Each thread *owns* its current ID (all-or-nothing recovery is per thread
region), and the ID is saved/restored across context switches — the
"virtualization" of §IV-C — which this class models with an explicit
save/restore API.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["RegionIdAllocator"]


class RegionIdAllocator:
    """Global atomic counter + per-thread current region IDs."""

    def __init__(self) -> None:
        self._next = 0
        self.current: Dict[int, int] = {}
        self._saved: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def start_thread(self, tid: int) -> int:
        """A new hardware context claims its first region ID."""
        rid = self._next
        self._next += 1
        self.current[tid] = rid
        return rid

    def boundary(self, tid: int) -> int:
        """End ``tid``'s current region: returns the ended region's ID and
        atomically assigns the thread a fresh one."""
        ended = self.current[tid]
        self.current[tid] = self._next
        self._next += 1
        return ended

    def region_of(self, tid: int) -> int:
        return self.current[tid]

    @property
    def allocated(self) -> int:
        """Total IDs handed out (the exclusive upper bound of the ID
        space — the commit pipeline walks [0, allocated))."""
        return self._next

    # ------------------------------------------------------------------
    # Context-switch virtualization (§IV-C): without this, a thread that
    # was scheduled out mid-region would tag its stores with whatever ID
    # the core's hardware register happened to hold.
    # ------------------------------------------------------------------
    def save(self, tid: int) -> int:
        """Context-switch out: save the thread's region ID."""
        self._saved[tid] = self.current[tid]
        return self._saved[tid]

    def restore(self, tid: int) -> int:
        """Context-switch in: restore the saved region ID."""
        if tid not in self._saved:
            raise KeyError("no saved region ID for thread %d" % tid)
        self.current[tid] = self._saved.pop(tid)
        return self.current[tid]
