"""LightWSP itself: the scheme policy and top-level entry points.

LightWSP's timing behaviour on the shared engine:

* every store (data, checkpoint, PC-checkpointing boundary) places one
  8-byte entry on the non-temporal persist path,
* WPQs are **gated**: entries quarantine per region and flush via the
  commit pipeline — lazy region-level persist ordering (§III-B),
* the core **never waits** at a region boundary; the only stalls are
  front-end-buffer back-pressure when the path or WPQ cannot keep up.

Hardware cost (§V-G4): a 2-byte flush ID per MC — everything else (WCB as
front-end buffer, battery-backed WPQ) already exists.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..compiler.interp import run_single, run_threads
from ..compiler.pipeline import CompiledProgram
from ..config import DEFAULT_CONFIG, SystemConfig
from ..runtime.backends import LIGHTWSP
from ..runtime.policy import SchemePolicy
from ..sim.engine import SimResult, simulate
from ..sim.trace import TraceEvent

__all__ = ["LIGHTWSP", "lightwsp_policy", "simulate_lightwsp", "trace_of"]


def lightwsp_policy() -> SchemePolicy:
    """The LightWSP timing policy (defined once, in
    :mod:`repro.runtime.backends`)."""
    return LIGHTWSP


def trace_of(
    compiled: CompiledProgram,
    entries: Sequence[Tuple[str, Sequence[int]]] = (("main", ()),),
    max_steps: int = 4_000_000,
) -> Sequence[TraceEvent]:
    """The dynamic trace of a compiled program (single- or multi-thread)."""
    if len(entries) == 1:
        fname, args = entries[0]
        events, _ = run_single(
            compiled.program, fname, args=args, max_steps=max_steps
        )
        return events
    events, _ = run_threads(compiled.program, entries, max_steps=max_steps)
    return events


def simulate_lightwsp(
    compiled: CompiledProgram,
    config: SystemConfig = DEFAULT_CONFIG,
    entries: Sequence[Tuple[str, Sequence[int]]] = (("main", ()),),
    cache_scale: Optional[float] = None,
) -> SimResult:
    """Compile-trace-simulate convenience for the common case."""
    events = trace_of(compiled, entries)
    return simulate(events, config, LIGHTWSP, cache_scale=cache_scale)
