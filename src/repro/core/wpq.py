"""The functional write-pending-queue redo buffer (§III-A).

This is the *semantic* model of LightWSP's central trick: every store is
quarantined in its target MC's battery-backed WPQ, tagged with its region
ID, and reaches PM only when the region commits.  Power failure discards
everything still quarantined, so PM is never corrupted by the stores of a
power-interrupted region.

The timing counterpart lives in :mod:`repro.sim.mc`; this class is used by
the functional :class:`~repro.core.machine.PersistentMachine`, whose
crash-consistency property tests are the proof that the protocol recovers
correctly.

Entries are stored in per-region buckets (keyed by region ID, FIFO within
each bucket) with a global arrival sequence, so the hot path — region
commit popping its entries — is O(region size) instead of rebuilding the
whole queue, while every arrival-order view (:attr:`entries`,
:meth:`search`, :meth:`snapshot`) still sees the exact FIFO the bounded
buffer models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["WPQEntry", "FunctionalWPQ", "WPQFullError"]


class WPQFullError(Exception):
    """Raised when a store cannot be quarantined; the §IV-D deadlock
    fallback must run."""


@dataclass(slots=True)
class WPQEntry:
    region: int
    word: int
    value: int


class FunctionalWPQ:
    """One MC's WPQ: a bounded redo buffer, FIFO within each region."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("WPQ capacity must be positive")
        self.capacity = capacity
        self._count = 0
        self._seq = 0
        #: region -> [(arrival seq, entry)] in arrival order
        self._buckets: Dict[int, List[Tuple[int, WPQEntry]]] = {}

    def __len__(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        return self._count >= self.capacity

    @property
    def entries(self) -> List[WPQEntry]:
        """All quarantined entries in global arrival (FIFO) order."""
        merged = [p for bucket in self._buckets.values() for p in bucket]
        merged.sort()
        return [entry for _, entry in merged]

    def put(self, region: int, word: int, value: int) -> None:
        if self._count >= self.capacity:
            raise WPQFullError(
                "WPQ full (%d entries) on store to word %d" % (self.capacity, word)
            )
        bucket = self._buckets.get(region)
        if bucket is None:
            bucket = self._buckets[region] = []
        bucket.append((self._seq, WPQEntry(region, word, value)))
        self._seq += 1
        self._count += 1

    def put_many(self, region: int, pairs: List[Tuple[int, int]]) -> int:
        """Bulk :meth:`put` of one region's ``(word, value)`` stores.

        All-or-nothing: raises :class:`WPQFullError` without admitting
        anything when the batch does not fit, so callers needing the
        per-store overflow fallback must fall back to :meth:`put`.
        Returns the new occupancy."""
        if self._count + len(pairs) > self.capacity:
            raise WPQFullError(
                "WPQ full (%d entries) on bulk admit of %d stores"
                % (self.capacity, len(pairs))
            )
        bucket = self._buckets.get(region)
        if bucket is None:
            bucket = self._buckets[region] = []
        seq = self._seq
        append = bucket.append
        for word, value in pairs:
            append((seq, WPQEntry(region, word, value)))
            seq += 1
        self._seq = seq
        self._count += len(pairs)
        return self._count

    # ------------------------------------------------------------------
    def regions_present(self) -> List[int]:
        return sorted(self._buckets)

    def has_region(self, region: int) -> bool:
        return region in self._buckets

    def peek_region(self, region: int) -> List[WPQEntry]:
        """The region's entries in arrival (FIFO) order, without removing
        them — the retention view a battery drain uses while a persist
        write is still unverified (entries stay quarantined until their PM
        write completes, so a torn write can be re-issued)."""
        return [entry for _, entry in self._buckets.get(region, ())]

    def occupancy_bytes(self, entry_bytes: int = 8) -> int:
        """Bytes a battery drain of this WPQ must move to PM — the
        quantity the residual-energy model prices (§II-C1)."""
        return self._count * entry_bytes

    def pop_region(self, region: int) -> List[WPQEntry]:
        """Remove and return the region's entries in arrival (FIFO) order —
        the bulk flush that commits the region to PM."""
        bucket = self._buckets.pop(region, None)
        if bucket is None:
            return []
        self._count -= len(bucket)
        return [entry for _, entry in bucket]

    def discard_region(self, region: int) -> int:
        """Drop a power-interrupted region's entries (they vanish with the
        failure).  Returns how many were dropped."""
        bucket = self._buckets.pop(region, None)
        if bucket is None:
            return 0
        self._count -= len(bucket)
        return len(bucket)

    def discard_all(self) -> int:
        dropped = self._count
        self._buckets.clear()
        self._count = 0
        return dropped

    # ------------------------------------------------------------------
    def search(self, word: int) -> Optional[int]:
        """CAM search (§IV-H): the *youngest* matching entry's value, or
        None on a miss."""
        best_seq = -1
        best: Optional[int] = None
        for bucket in self._buckets.values():
            for seq, entry in bucket:
                if entry.word == word and seq > best_seq:
                    best_seq = seq
                    best = entry.value
        return best

    def snapshot(self) -> List[Tuple[int, int, int]]:
        return [(e.region, e.word, e.value) for e in self.entries]
