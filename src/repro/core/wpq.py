"""The functional write-pending-queue redo buffer (§III-A).

This is the *semantic* model of LightWSP's central trick: every store is
quarantined in its target MC's battery-backed WPQ, tagged with its region
ID, and reaches PM only when the region commits.  Power failure discards
everything still quarantined, so PM is never corrupted by the stores of a
power-interrupted region.

The timing counterpart lives in :mod:`repro.sim.mc`; this class is used by
the functional :class:`~repro.core.machine.PersistentMachine`, whose
crash-consistency property tests are the proof that the protocol recovers
correctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["WPQEntry", "FunctionalWPQ", "WPQFullError"]


class WPQFullError(Exception):
    """Raised when a store cannot be quarantined; the §IV-D deadlock
    fallback must run."""


@dataclass
class WPQEntry:
    region: int
    word: int
    value: int


class FunctionalWPQ:
    """One MC's WPQ: a bounded redo buffer, FIFO within each region."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("WPQ capacity must be positive")
        self.capacity = capacity
        self.entries: List[WPQEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def put(self, region: int, word: int, value: int) -> None:
        if self.full:
            raise WPQFullError(
                "WPQ full (%d entries) on store to word %d" % (self.capacity, word)
            )
        self.entries.append(WPQEntry(region, word, value))

    # ------------------------------------------------------------------
    def regions_present(self) -> List[int]:
        return sorted({e.region for e in self.entries})

    def has_region(self, region: int) -> bool:
        return any(e.region == region for e in self.entries)

    def peek_region(self, region: int) -> List[WPQEntry]:
        """The region's entries in arrival (FIFO) order, without removing
        them — the retention view a battery drain uses while a persist
        write is still unverified (entries stay quarantined until their PM
        write completes, so a torn write can be re-issued)."""
        return [e for e in self.entries if e.region == region]

    def occupancy_bytes(self, entry_bytes: int = 8) -> int:
        """Bytes a battery drain of this WPQ must move to PM — the
        quantity the residual-energy model prices (§II-C1)."""
        return len(self.entries) * entry_bytes

    def pop_region(self, region: int) -> List[WPQEntry]:
        """Remove and return the region's entries in arrival (FIFO) order —
        the bulk flush that commits the region to PM."""
        taken = [e for e in self.entries if e.region == region]
        self.entries = [e for e in self.entries if e.region != region]
        return taken

    def discard_region(self, region: int) -> int:
        """Drop a power-interrupted region's entries (they vanish with the
        failure).  Returns how many were dropped."""
        before = len(self.entries)
        self.entries = [e for e in self.entries if e.region != region]
        return before - len(self.entries)

    def discard_all(self) -> int:
        dropped = len(self.entries)
        self.entries = []
        return dropped

    # ------------------------------------------------------------------
    def search(self, word: int) -> Optional[int]:
        """CAM search (§IV-H): the *youngest* matching entry's value, or
        None on a miss."""
        for entry in reversed(self.entries):
            if entry.word == word:
                return entry.value
        return None

    def snapshot(self) -> List[Tuple[int, int, int]]:
        return [(e.region, e.word, e.value) for e in self.entries]
