"""Register reconstruction for power-failure recovery (§IV-A, §IV-F).

After a failure, a thread resumes at its latest committed boundary.  Its
live-in registers are rebuilt from the PM-resident checkpoint array —
indexed by register number — and, for checkpoints the compiler pruned,
recomputed from the recorded reconstruction recipes.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..compiler.checkpoints import Recipe, RecoveryPlan
from ..compiler.interp import _binop, _wrap

__all__ = ["evaluate_recipe", "rebuild_registers", "rollback_undo"]

#: reads one register's checkpoint-array slot for the recovering context
CkptReader = Callable[[str], int]


def evaluate_recipe(recipe: Recipe, reg: str, read_ckpt: CkptReader) -> int:
    """The recovered value of ``reg`` according to its recipe."""
    tag = recipe[0]
    if tag == "ckpt":
        return read_ckpt(reg)
    if tag == "const":
        return _wrap(recipe[1])
    if tag == "expr":
        _, op, operands = recipe
        values = []
        for operand in operands:
            if operand[0] == "imm":
                values.append(operand[1])
            elif operand[0] == "ckpt":
                values.append(read_ckpt(operand[1]))
            else:
                raise ValueError("unknown recipe operand %r" % (operand,))
        return _binop(op, values[0], values[1])
    raise ValueError("unknown recipe %r" % (recipe,))


def rebuild_registers(plan: RecoveryPlan, read_ckpt: CkptReader) -> Dict[str, int]:
    """All live-in registers of the region following ``plan``'s boundary.
    Registers absent from the plan were dead at the boundary; the caller
    should leave them unset (reading one is a compiler liveness bug that
    the crash-consistency tests will surface as divergence)."""
    return {
        reg: evaluate_recipe(recipe, reg, read_ckpt)
        for reg, recipe in sorted(plan.recipes.items())
    }


def rollback_undo(pm: Dict[int, int], undo_log: Dict[int, Dict[int, int]]) -> int:
    """Apply the §IV-D undo log: restore pre-overwrite PM values of
    overflow-flushed uncommitted regions, *youngest region first* so that
    where regions overlap on a word the oldest pre-image wins.

    Idempotent by construction — re-applying the same log writes the same
    pre-images — which is what makes the recovery protocol safe against a
    second power failure mid-rollback (the log must stay persistent until
    the rollback completes; callers clear it only afterwards).  Returns
    the number of words restored."""
    undone = 0
    for region in sorted(undo_log, reverse=True):
        for word, old in undo_log[region].items():
            pm[word] = old
            undone += 1
    return undone
