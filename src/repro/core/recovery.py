"""Register reconstruction for power-failure recovery (§IV-A, §IV-F).

After a failure, a thread resumes at its latest committed boundary.  Its
live-in registers are rebuilt from the PM-resident checkpoint array —
indexed by register number — and, for checkpoints the compiler pruned,
recomputed from the recorded reconstruction recipes.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..compiler.checkpoints import Recipe, RecoveryPlan
from ..compiler.interp import _binop, _wrap

__all__ = ["evaluate_recipe", "rebuild_registers"]

#: reads one register's checkpoint-array slot for the recovering context
CkptReader = Callable[[str], int]


def evaluate_recipe(recipe: Recipe, reg: str, read_ckpt: CkptReader) -> int:
    """The recovered value of ``reg`` according to its recipe."""
    tag = recipe[0]
    if tag == "ckpt":
        return read_ckpt(reg)
    if tag == "const":
        return _wrap(recipe[1])
    if tag == "expr":
        _, op, operands = recipe
        values = []
        for operand in operands:
            if operand[0] == "imm":
                values.append(operand[1])
            elif operand[0] == "ckpt":
                values.append(read_ckpt(operand[1]))
            else:
                raise ValueError("unknown recipe operand %r" % (operand,))
        return _binop(op, values[0], values[1])
    raise ValueError("unknown recipe %r" % (recipe,))


def rebuild_registers(plan: RecoveryPlan, read_ckpt: CkptReader) -> Dict[str, int]:
    """All live-in registers of the region following ``plan``'s boundary.
    Registers absent from the plan were dead at the boundary; the caller
    should leave them unset (reading one is a compiler liveness bug that
    the crash-consistency tests will surface as divergence)."""
    return {
        reg: evaluate_recipe(recipe, reg, read_ckpt)
        for reg, recipe in sorted(plan.recipes.items())
    }
