"""Power-failure injection harnesses.

These wrap :class:`~repro.core.machine.PersistentMachine` into the two
workflows tests and examples need:

* :func:`reference_pm` — the failure-free persisted image;
* :func:`run_with_crashes` — execute with power failures injected at given
  instruction counts, recovering after each, and return the final image.

The central theorem (checked by the property tests): for any crash
schedule, ``run_with_crashes(...) == reference_pm(...)`` on data words.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..compiler.pipeline import CompiledProgram
from ..config import DEFAULT_CONFIG, SystemConfig
from .machine import MachineStats, PersistentMachine

__all__ = ["reference_pm", "run_with_crashes", "crash_sweep"]

Entries = Sequence[Tuple[str, Sequence[int]]]
DEFAULT_ENTRIES: Entries = (("main", ()),)


def _machine(
    compiled: CompiledProgram,
    entries: Entries,
    config: SystemConfig,
    schedule_seed: int,
) -> PersistentMachine:
    return PersistentMachine(
        compiled, entries=entries, config=config, schedule_seed=schedule_seed
    )


def reference_pm(
    compiled: CompiledProgram,
    entries: Entries = DEFAULT_ENTRIES,
    config: SystemConfig = DEFAULT_CONFIG,
    schedule_seed: int = 0,
) -> Dict[int, int]:
    """Run to completion with no failures; the persisted data image."""
    machine = _machine(compiled, entries, config, schedule_seed)
    if not machine.run():
        raise RuntimeError("program did not finish within the step budget")
    return machine.pm_data()


def run_with_crashes(
    compiled: CompiledProgram,
    crash_points: Sequence[int],
    entries: Entries = DEFAULT_ENTRIES,
    config: SystemConfig = DEFAULT_CONFIG,
    schedule_seed: int = 0,
) -> Tuple[Dict[int, int], MachineStats]:
    """Execute, cutting power after each (cumulative-step) crash point,
    recovering, and resuming.  Crash points past program completion are
    ignored.  Returns (final data image, machine stats)."""
    machine = _machine(compiled, entries, config, schedule_seed)
    executed = 0
    for point in sorted(crash_points):
        budget = point - executed
        if budget <= 0:
            continue
        finished = machine.run(steps=budget)
        executed = machine.stats.steps
        if finished:
            break
        machine.crash()
    if not machine.finished:
        machine.run()
    if not machine.finished:
        raise RuntimeError("program did not finish after recovery")
    return machine.pm_data(), machine.stats


def crash_sweep(
    compiled: CompiledProgram,
    entries: Entries = DEFAULT_ENTRIES,
    config: SystemConfig = DEFAULT_CONFIG,
    stride: int = 1,
    schedule_seed: int = 0,
) -> List[int]:
    """Crash once at every ``stride``-th instruction of the failure-free
    execution and check recovery each time.  Returns the list of crash
    points whose final image DIVERGED from the reference (empty == the
    crash-consistency invariant holds everywhere)."""
    reference = reference_pm(compiled, entries, config, schedule_seed)
    probe = _machine(compiled, entries, config, schedule_seed)
    probe.run()
    total_steps = probe.stats.steps

    divergent: List[int] = []
    for point in range(1, total_steps + 1, stride):
        image, _ = run_with_crashes(
            compiled, [point], entries=entries, config=config,
            schedule_seed=schedule_seed,
        )
        if image != reference:
            divergent.append(point)
    return divergent
