"""Power-failure injection harnesses.

These wrap :class:`~repro.core.machine.PersistentMachine` into the two
workflows tests and examples need:

* :func:`reference_pm` — the failure-free persisted image;
* :func:`run_with_crashes` — execute with power failures injected at given
  instruction counts, recovering after each, and return the final image.

The central theorem (checked by the property tests): for any crash
schedule, ``run_with_crashes(...) == reference_pm(...)`` on data words.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..compiler.pipeline import CompiledProgram
from ..config import DEFAULT_CONFIG, SystemConfig
from ..trace import EK
from .machine import MachineStats, PersistentMachine

__all__ = ["reference_pm", "run_with_crashes", "crash_sweep"]

Entries = Sequence[Tuple[str, Sequence[int]]]
DEFAULT_ENTRIES: Entries = (("main", ()),)


def _machine(
    compiled: CompiledProgram,
    entries: Entries,
    config: SystemConfig,
    schedule_seed: int,
    backend: object = None,
) -> PersistentMachine:
    return PersistentMachine(
        compiled, entries=entries, config=config,
        schedule_seed=schedule_seed, backend=backend,
    )


def reference_pm(
    compiled: CompiledProgram,
    entries: Entries = DEFAULT_ENTRIES,
    config: SystemConfig = DEFAULT_CONFIG,
    schedule_seed: int = 0,
    backend: object = None,
) -> Dict[int, int]:
    """Run to completion with no failures; the persisted data image."""
    machine = _machine(compiled, entries, config, schedule_seed, backend)
    if not machine.run():
        raise RuntimeError("program did not finish within the step budget")
    return machine.pm_data()


def run_with_crashes(
    compiled: CompiledProgram,
    crash_points: Sequence[int],
    entries: Entries = DEFAULT_ENTRIES,
    config: SystemConfig = DEFAULT_CONFIG,
    schedule_seed: int = 0,
    backend: object = None,
) -> Tuple[Dict[int, int], MachineStats]:
    """Execute, cutting power after each (cumulative-step) crash point,
    recovering, and resuming.  Crash points past program completion are
    ignored — the ones that actually fired are recorded in
    ``MachineStats.crash_points_fired`` so callers can assert coverage.
    Returns (final data image, machine stats)."""
    machine = _machine(compiled, entries, config, schedule_seed, backend)
    executed = 0
    for point in sorted(crash_points):
        budget = point - executed
        if budget <= 0:
            continue
        finished = machine.run(steps=budget)
        executed = machine.stats.steps
        if finished:
            break
        machine.crash()
    if not machine.finished:
        machine.run()
    if not machine.finished:
        raise RuntimeError("program did not finish after recovery")
    return machine.pm_data(), machine.stats


def crash_sweep(
    compiled: CompiledProgram,
    entries: Entries = DEFAULT_ENTRIES,
    config: SystemConfig = DEFAULT_CONFIG,
    stride: Optional[int] = None,
    schedule_seed: int = 0,
    max_points: Optional[int] = None,
    backend: object = None,
    jobs: int = 1,
    worker_timeout: Optional[float] = None,
) -> List[int]:
    """Crash once per probe point of the failure-free execution and check
    recovery each time.  Returns the list of crash points whose final
    image DIVERGED from the reference (empty == the crash-consistency
    invariant holds everywhere).

    Probe points: every ``stride``-th instruction when ``stride`` is
    given; by default the region-boundary-adjacent points (each boundary
    step +-1, plus the first instruction) — the only places the persisted
    state machine actually changes, which turns the old
    every-instruction-times-whole-program quadratic sweep into a linear
    one.  ``max_points`` caps the probe count by even subsampling.

    Cost model: one shared execution is advanced point to point and a
    clone is forked (``PersistentMachine.clone``) at each probe, so the
    program prefix is never re-executed per crash point.  ``jobs > 1``
    shards the probe points round-robin across worker processes, each
    with its own walker; every point's verdict depends only on the point
    itself, so the sorted merge is identical to the serial sweep."""
    reference = reference_pm(compiled, entries, config, schedule_seed,
                             backend=backend)

    probe = _machine(compiled, entries, config, schedule_seed, backend)
    boundary_steps: List[int] = []
    while True:
        event = probe.step()
        if event is None:
            break
        if probe.stats.steps >= probe.max_steps:
            raise RuntimeError("machine exceeded max_steps")
        if event.kind == EK.BOUNDARY:
            boundary_steps.append(probe.stats.steps)
    total_steps = probe.stats.steps

    if stride is not None:
        points = list(range(1, total_steps + 1, stride))
    else:
        candidates = {1}
        for b in boundary_steps:
            for delta in (-1, 0, 1):
                if 1 <= b + delta <= total_steps:
                    candidates.add(b + delta)
        points = sorted(candidates)
    if max_points is not None and len(points) > max_points:
        keep = max(1, max_points)
        idx = [(i * (len(points) - 1)) // (keep - 1) for i in range(keep)] \
            if keep > 1 else [0]
        points = sorted({points[i] for i in idx})

    def sweep_points(shard_points: Sequence[int]) -> List[int]:
        divergent: List[int] = []
        walker = _machine(compiled, entries, config, schedule_seed, backend)
        for point in shard_points:
            walker.run(steps=point - walker.stats.steps)
            if walker.finished:
                break  # later points fall past program completion: ignored
            fork = walker.clone()
            fork.crash()
            if not fork.run():
                raise RuntimeError("program did not finish after recovery")
            if fork.pm_data() != reference:
                divergent.append(point)
        return divergent

    if jobs <= 1 or len(points) <= 1:
        return sweep_points(points)
    from ..parallel import run_shards, shard_units

    shards = [
        [points[i] for i in idx] for idx in shard_units(len(points), jobs)
    ]
    results = run_shards(
        sweep_points, shards, jobs=jobs, timeout=worker_timeout,
        label="crash-sweep",
    )
    return sorted(p for shard in results for p in shard)
