"""LightWSP's core: the functional persistence machine, WPQ redo buffer,
region-ID management, recovery, snooping, and the scheme policy."""

from .failure import crash_sweep, reference_pm, run_with_crashes
from .lightwsp import LIGHTWSP, simulate_lightwsp, trace_of
from .machine import Continuation, MachineStats, PersistentMachine
from .recovery import evaluate_recipe, rebuild_registers
from .regionid import RegionIdAllocator
from .snooping import make_victim_selector
from .wpq import FunctionalWPQ, WPQEntry, WPQFullError

__all__ = [
    "crash_sweep",
    "reference_pm",
    "run_with_crashes",
    "LIGHTWSP",
    "simulate_lightwsp",
    "trace_of",
    "Continuation",
    "MachineStats",
    "PersistentMachine",
    "evaluate_recipe",
    "rebuild_registers",
    "RegionIdAllocator",
    "make_victim_selector",
    "FunctionalWPQ",
    "WPQEntry",
    "WPQFullError",
]
