"""The functional persistence machine: LightWSP's whole-system-persistence
semantics, executable and crash-injectable.

:class:`PersistentMachine` runs a compiled program (one or more threads)
while maintaining *two* memory images:

* the **volatile** image — what the caches and store buffers make visible
  to executing code (always up to date);
* the **PM** image — what has actually persisted: stores sit quarantined
  in per-MC functional WPQs until their region commits (boundary broadcast
  + all older regions committed), at which point they flush in bulk.

Power failure can be injected after any instruction
(:meth:`PersistentMachine.crash`): quarantined entries of committed
regions are flushed by battery, everything else is discarded, undo logs of
overflow-flushed regions are rolled back, and every thread is resumed from
its latest committed boundary with registers rebuilt from the checkpoint
array and the compiler's recovery plans (§IV-F).  Resumed execution must
reproduce the failure-free PM image — the crash-consistency invariant the
property tests check.

Simplifications (documented in DESIGN.md): the continuation restored at a
boundary (call frames, block/index, held locks) stands in for state that a
real system keeps in persistent memory anyway (the PM-resident stack, the
lock words); *register* values are deliberately NOT snapshotted — they
must be reconstructed through the checkpoint array, so a compiler bug in
liveness, checkpoint placement, or pruning makes the property tests fail.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..compiler.interp import (
    C_BOUNDARY,
    C_IO,
    Frame,
    LockTable,
    ThreadVM,
    WordMemory,
)
from ..compiler.ir import Op, Program
from ..compiler.pipeline import CompiledProgram
from ..config import SystemConfig, DEFAULT_CONFIG
from ..errors import DeadlockError, MachineLimitError
from ..trace import EK, TraceEvent
from .recovery import rebuild_registers
from .wpq import FunctionalWPQ
from .regionid import RegionIdAllocator

__all__ = ["PersistentMachine", "Continuation", "MachineStats"]


def _copy_frames(frames: List[Frame]) -> List[Frame]:
    """Snapshot a call stack.  Frames hold only a register dict and
    resume coordinates — each CALL builds a fresh register dict, so a
    per-frame shallow dict copy is a full snapshot (this replaces a
    ``copy.deepcopy`` that dominated boundary cost)."""
    return [
        Frame(dict(f.regs), f.func, f.block, f.index, f.ret_reg)
        for f in frames
    ]


@dataclass
class Continuation:
    """A resume point: where the thread restarts after a power failure in
    the region that follows this boundary."""

    func: str
    block: str
    index: int
    frames: List
    held_locks: Set[int]
    boundary_uid: int = -1
    #: for the thread-start pseudo-boundary: the initial register file
    initial_regs: Optional[Dict[str, int]] = None


@dataclass
class MachineStats:
    steps: int = 0
    stores: int = 0
    boundaries: int = 0
    commits: int = 0
    overflow_events: int = 0
    undo_writes: int = 0
    crashes: int = 0
    max_wpq_occupancy: int = 0
    #: cumulative step counts at which a power failure actually fired
    #: (crash points past program completion never appear here)
    crash_points_fired: List[int] = field(default_factory=list)
    #: opt-in latency accounting for request-serving harnesses
    #: (``repro.store``).  Both default to ``None`` so the hot paths pay
    #: nothing; assign a list to start collecting.  ``commit_steps``
    #: receives ``(region, step)`` when a region commits; ``io_steps``
    #: receives ``(payload, region, step)`` when an IO instruction retires.
    commit_steps: Optional[List[Tuple[int, int]]] = None
    io_steps: Optional[List[Tuple[int, int, int]]] = None


class _HookedMemory(WordMemory):
    """Volatile memory that routes every write through the machine's
    persistence model."""

    def __init__(self, machine: "PersistentMachine") -> None:
        super().__init__()
        self._machine = machine

    def write(self, addr: int, value: int) -> None:
        self.words[addr] = value
        buf = self._machine._store_buf
        if buf is None:
            self._machine._on_store(addr, value)
        else:
            # batched quantum: defer persistence bookkeeping, admit the
            # whole run of same-region stores in one bulk call at the end
            buf.append((addr, value))


class PersistentMachine:
    """Functional persistence machine over a compiled program.

    The persist path is pluggable: a
    :class:`~repro.runtime.backend.PersistBackend` (default:
    ``lightwsp-lrpo``) supplies the functional runtime that owns WPQ
    admission, boundary/commit gating, drain ordering, and the
    crash-time durable set; this class owns execution, scheduling,
    continuations, the durable I/O log, and the recovery protocol's
    orchestration."""

    #: when a batched quantum is running with bulk admission enabled,
    #: _HookedMemory appends (word, value) here instead of calling
    #: _on_store per write; None outside a batch (the per-store path)
    _store_buf: Optional[List[Tuple[int, int]]] = None

    def __init__(
        self,
        compiled: CompiledProgram,
        entries: Sequence[Tuple[str, Sequence[int]]] = (("main", ()),),
        config: SystemConfig = DEFAULT_CONFIG,
        quantum: int = 16,
        schedule_seed: int = 0,
        max_steps: int = 2_000_000,
        backend: object = None,
    ) -> None:
        # lazy: repro.runtime imports core submodules (wpq, recovery)
        from ..runtime.backend import get_backend

        self.compiled = compiled
        self.config = config
        self.quantum = quantum
        self.max_steps = max_steps
        self.stats = MachineStats()

        self.pm: Dict[int, int] = {}
        self.volatile = _HookedMemory(self)
        self.locks = LockTable()
        self.allocator = RegionIdAllocator()
        #: the persistence scheme (PersistBackend) and its functional
        #: runtime — all WPQ/boundary/commit/crash state lives there
        self.backend = get_backend(backend)
        self.persist = self.backend.create_runtime(self)

        self.vms: List[ThreadVM] = []
        #: per-thread boundary history: (ended_region, Continuation)
        self.history: List[List[Tuple[int, Continuation]]] = []
        #: irrevocable operations performed: [tid, device, region,
        #: payload] — the
        #: durable log; entries of power-interrupted regions are dropped
        #: at recovery (the re-executed region re-issues them: LightWSP's
        #: restartable-I/O semantics are at-least-once at the wire, §IV-A)
        self.io_log: List[List[int]] = []
        self._stepping_tid = 0
        self._turn = schedule_seed
        self._halted_closed: Set[int] = set()

        for tid, (fname, args) in enumerate(entries):
            vm = ThreadVM(
                compiled.program,
                fname,
                args=args,
                memory=self.volatile,
                tid=tid,
                locks=self.locks,
            )
            self.vms.append(vm)
            self.allocator.start_thread(tid)
            start = Continuation(
                func=vm.func_name,
                block=vm.block,
                index=vm.index,
                frames=[],
                held_locks=set(),
                initial_regs=dict(vm.regs),
            )
            self.history.append([(-1, start)])

    # ------------------------------------------------------------------
    # persistence model hooks (delegating to the backend runtime)
    # ------------------------------------------------------------------

    # The runtime owns the protocol state; these views keep the historic
    # attribute surface (fault injection, campaigns, and tests use it).
    @property
    def wpqs(self) -> List[FunctionalWPQ]:
        return self.persist.wpqs

    @property
    def boundary_issued(self) -> Set[int]:
        return self.persist.boundary_issued

    @property
    def committed_upto(self) -> int:
        return self.persist.committed_upto

    @committed_upto.setter
    def committed_upto(self, value: int) -> None:
        self.persist.committed_upto = value

    @property
    def undo_log(self) -> Dict[int, Dict[int, int]]:
        return self.persist.undo_log

    @undo_log.setter
    def undo_log(self, value: Dict[int, Dict[int, int]]) -> None:
        self.persist.undo_log = value

    def _mc_of_word(self, word: int) -> int:
        return ((word * 8) // 64) % self.config.mc.n_mcs

    def _on_store(self, word: int, value: int) -> None:
        tid = self._stepping_tid
        region = self.allocator.region_of(tid)
        self.stats.stores += 1
        occupancy = self.persist.admit(region, word, value)
        if occupancy > self.stats.max_wpq_occupancy:
            self.stats.max_wpq_occupancy = occupancy

    def _resolve_full(
        self, wpq: FunctionalWPQ, region: int, word: int, value: int
    ) -> None:
        """§IV-D overflow fallback (gated backends); overridable so the
        fault subsystem can model the undo-logging defense switched off."""
        self.persist.resolve_full(wpq, region, word, value)

    def _boundary_executed(self, tid: int, boundary_uid: int) -> None:
        vm = self.vms[tid]
        ended = self.allocator.boundary(tid)
        self._broadcast_boundary(ended)
        self.stats.boundaries += 1
        continuation = Continuation(
            func=vm.func_name,
            block=vm.block,
            index=vm.index,
            frames=_copy_frames(vm.frames),
            held_locks=set(
                lock for lock, owner in self.locks.owner.items() if owner == tid
            ),
            boundary_uid=boundary_uid,
        )
        self.history[tid].append((ended, continuation))
        self._try_commit()

    def _sync_refresh(self, tid: int) -> None:
        """End the thread's current region at a synchronization point and
        hand it a fresh ID from the global counter — without creating a
        resume point (the compiler's boundary just before the sync
        instruction provides that)."""
        ended = self.allocator.boundary(tid)
        self._broadcast_boundary(ended)
        self._try_commit()

    def _thread_halted(self, tid: int) -> None:
        """Close the trailing (empty) region so later IDs can commit; the
        compiler's exit boundary guarantees it holds no stores."""
        if tid in self._halted_closed:
            return
        self._halted_closed.add(tid)
        ended = self.allocator.region_of(tid)
        self._broadcast_boundary(ended)
        self._try_commit()
        if all(vm.halted for vm in self.vms):
            # clean completion: schemes without a persist protocol drain
            # their volatile dirty state here (the flush a crash never gets)
            self.persist.on_all_halted()

    # -- overridable persistence-protocol hooks (the fault-injection
    # -- subsystem in repro.faults specializes these; see FaultyMachine) --
    def _broadcast_boundary(self, region: int) -> None:
        """The ended region's boundary leaves the core.  The base machine
        models a perfectly reliable interconnect: gated backends record
        the broadcast as instantly delivered and ACKed everywhere."""
        self.persist.region_ended(region)

    def _region_committable(self, region: int) -> bool:
        """Whether the commit candidate may commit now (gated backends:
        its boundary has been broadcast to, and ACKed by, all MCs)."""
        return self.persist.committable(region)

    def _commit_flush(self, region: int) -> None:
        """Move the committing region's quarantined entries to PM (no-op
        for backends that persisted them at admission)."""
        self.persist.commit_flush(region)

    def _try_commit(self) -> None:
        persist = self.persist
        stats = self.stats
        while True:
            region = persist.next_commit()
            if region is None or not self._region_committable(region):
                return
            self._commit_flush(region)
            persist.mark_committed(region)
            stats.commits += 1
            if stats.commit_steps is not None:
                stats.commit_steps.append((region, stats.steps))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> Optional[TraceEvent]:
        """One instruction of the round-robin schedule; None when all
        threads have halted.

        This is the single-step semantics reference (and the only path
        that surfaces every TraceEvent); :meth:`run_quantum` batches the
        uneventful stretches and falls back to this for anything
        machine-visible."""
        n = len(self.vms)
        for _ in range(2 * n):
            tid = self._turn % n
            vm = self.vms[tid]
            if vm.halted:
                self._turn += 1
                continue
            self._stepping_tid = tid
            # A conflicting-sync instruction must tag its (and the critical
            # section's) stores with a region ID allocated *now* — after
            # any happens-before predecessor's release — or the commit
            # order would not respect happens-before (§IV-C).  The atomic
            # global counter refresh models Fig. 4's ID handout.
            instr = vm.current_instr()
            if instr is not None and instr.op in (Op.ATOMIC_RMW, Op.FENCE):
                self._sync_refresh(tid)
            event = vm.step()
            if event is None:
                self._turn += 1  # blocked on a lock: rotate
                continue
            self.stats.steps += 1
            if self.stats.steps % self.quantum == 0:
                self._turn += 1
            if event.kind == EK.BOUNDARY:
                self._boundary_executed(tid, event.boundary_uid)
            elif event.kind == EK.IO:
                region = self.allocator.region_of(tid)
                self.io_log.append(
                    [tid, event.lock_id, region, event.payload]
                )
                if self.stats.io_steps is not None:
                    self.stats.io_steps.append(
                        (event.payload, region, self.stats.steps)
                    )
            elif event.kind == EK.LOCK:
                # successful acquire: the critical section's stores belong
                # to a region whose ID postdates the previous release
                self._sync_refresh(tid)
            elif event.kind == EK.HALT:
                self._thread_halted(tid)
            return event
        if all(vm.halted for vm in self.vms):
            return None
        raise DeadlockError(
            "all live threads blocked on locks: deadlock",
            steps=self.stats.steps,
        )

    # -- batched execution hooks (FaultyMachine specializes these) ------
    def _quantum_cap(self) -> Optional[int]:
        """Extra bound on how many instructions the next batch may retire
        before machine state must be re-examined (None: no bound)."""
        return None

    def _bulk_admit_ok(self) -> bool:
        """Whether per-store admission may be deferred and fused into one
        bulk call at batch end (fault injection must interpose per
        store, so FaultyMachine refuses while MCs are down)."""
        return True

    def _after_batch(self) -> None:
        """Called after every batch; FaultyMachine re-checks matured
        boundary ACKs here (the classic step path checks per step)."""

    def _flush_stores(self, tid: int, stores: List[Tuple[int, int]]) -> None:
        """Bulk-admit a batch's deferred stores: the per-region fused
        equivalent of per-store :meth:`_on_store` calls.  Regions cannot
        change mid-batch (boundaries and syncs pause the batch), so one
        ``region_of`` lookup and one ``admit_many`` cover the run."""
        region = self.allocator.region_of(tid)
        self.stats.stores += len(stores)
        occupancy = self.persist.admit_many(region, stores)
        if occupancy > self.stats.max_wpq_occupancy:
            self.stats.max_wpq_occupancy = occupancy

    def run_quantum(self, limit: Optional[int] = None) -> Optional[int]:
        """Execute the scheduled thread's quantum (or up to ``limit``
        instructions) in one batched inner loop; returns the number of
        instructions retired, or ``None`` when all threads have halted.

        The batch runs through :meth:`ThreadVM.run_fast` and is capped so
        it never crosses a point where the machine must intervene: the
        round-robin rotation (``steps % quantum == 0``), ``max_steps``,
        a subclass cap (:meth:`_quantum_cap`), or any machine-visible
        instruction (LOCK / ATOMIC_RMW / FENCE / BOUNDARY / IO), which
        falls back to the classic :meth:`step`.  Byte-for-bit equivalent
        to single-stepping — the parity suite pins this."""
        n = len(self.vms)
        budget = limit if limit is not None else self.quantum
        if n == 1:
            return self._run_quantum_single(budget)
        for _ in range(2 * n):
            tid = self._turn % n
            vm = self.vms[tid]
            if vm.halted:
                self._turn += 1
                continue
            self._stepping_tid = tid
            cap = self.quantum - self.stats.steps % self.quantum
            if cap > budget:
                cap = budget
            remaining = self.max_steps - self.stats.steps
            if cap > remaining:
                cap = remaining
            hook_cap = self._quantum_cap()
            if hook_cap is not None and cap > hook_cap:
                cap = hook_cap
            if cap < 1:
                # a subclass deadline is due (or max_steps is exhausted):
                # advance one instruction, then re-check machine state
                cap = 1
            # bulk admission is skipped when _on_store was replaced on
            # the instance (test spies interpose on the per-store path)
            if (
                cap > 1
                and "_on_store" not in self.__dict__
                and self._bulk_admit_ok()
            ):
                buf: List[Tuple[int, int]] = []
                self._store_buf = buf
                try:
                    retired, why = vm.run_fast(cap)
                finally:
                    self._store_buf = None
                    if buf:
                        self._flush_stores(tid, buf)
            else:
                retired, why = vm.run_fast(cap)
            if retired:
                self.stats.steps += retired
                if self.stats.steps % self.quantum == 0:
                    self._turn += 1
                if why == "halt":
                    self._thread_halted(tid)
                self._after_batch()
                return retired
            # current instruction is machine-visible or a blocked lock:
            # the classic path owns sync refreshes, event dispatch,
            # blocked-thread rotation, and deadlock detection
            event = self.step()
            return None if event is None else 1
        if all(vm.halted for vm in self.vms):
            return None
        raise DeadlockError(
            "all live threads blocked on locks: deadlock",
            steps=self.stats.steps,
        )

    def _run_quantum_single(self, budget: int) -> Optional[int]:
        """Single-thread batching: with one VM there is no round-robin
        fairness point, so batches run visible-event to visible-event
        and the loop stays here instead of bouncing through :meth:`run`
        per batch.  ``_turn`` is advanced arithmetically — the classic
        path bumps it once per ``steps %% quantum == 0`` crossing, which
        over a batch is ``(after // q) - (before // q)`` increments —
        keeping it bit-identical for the parity suite."""
        vm = self.vms[0]
        if vm.halted:
            # the classic scan visits the halted VM 2n times (n == 1),
            # rotating past it each visit, before reporting completion
            self._turn += 2
            return None
        self._stepping_tid = 0
        stats = self.stats
        q = self.quantum
        max_steps = self.max_steps
        buffered = "_on_store" not in self.__dict__
        run_fast = vm.run_fast
        total = 0
        while total < budget:
            cap = budget - total
            remaining = max_steps - stats.steps
            if cap > remaining:
                cap = remaining
            hook_cap = self._quantum_cap()
            if hook_cap is not None and cap > hook_cap:
                cap = hook_cap
            if cap < 1:
                cap = 1
            if cap > 1 and buffered and self._bulk_admit_ok():
                buf: List[Tuple[int, int]] = []
                self._store_buf = buf
                try:
                    retired, why = run_fast(cap)
                finally:
                    self._store_buf = None
                    if buf:
                        self._flush_stores(0, buf)
            else:
                retired, why = run_fast(cap)
            if retired:
                before = stats.steps
                after = before + retired
                stats.steps = after
                self._turn += after // q - before // q
                if why == "halt":
                    self._thread_halted(0)
                self._after_batch()
                total += retired
                if why == "halt" or after >= max_steps:
                    break
                if total >= budget:
                    break
                if why == "limit":
                    # the cap (not a visible instruction) ended the
                    # batch: recompute caps and keep batching
                    continue
            if why != "pause":
                # nothing visible pending: the thread is blocked on a
                # lock (or the batch bookkeeping already broke above);
                # the classic scan owns deadlock detection
                event = self.step()
                if event is None:
                    return total if total else None
                total += 1
                if vm.halted or stats.steps >= max_steps:
                    break
                continue
            # The batch paused before a machine-visible instruction whose
            # code tuple run_fast stashed.  Boundaries and IO dominate
            # that traffic and have no sync refresh or blocking cases, so
            # retire them here without the classic scan or a re-fetch;
            # the per-step ACK recheck the FaultyMachine wrapper does is
            # exactly _after_batch.  LOCK / ATOMIC_RMW / FENCE keep the
            # classic path (sync refreshes, deadlock detection).
            c = vm.paused_code
            k = c[0] if c is not None else -1
            if k == C_BOUNDARY:
                event = vm._h_boundary(c)
                stats.steps += 1
                if stats.steps % q == 0:
                    self._turn += 1
                self._boundary_executed(0, event.boundary_uid)
                self._after_batch()
            elif k == C_IO:
                event = vm._h_io(c)
                stats.steps += 1
                if stats.steps % q == 0:
                    self._turn += 1
                region = self.allocator.region_of(0)
                self.io_log.append([0, event.lock_id, region, event.payload])
                if stats.io_steps is not None:
                    stats.io_steps.append(
                        (event.payload, region, stats.steps)
                    )
                self._after_batch()
            else:
                event = self.step()
                if event is None:
                    return total if total else None
            total += 1
            if vm.halted or stats.steps >= max_steps:
                break
        return total

    def run(self, steps: Optional[int] = None) -> bool:
        """Execute up to ``steps`` instructions (or to completion).
        Returns True when the program has finished."""
        remaining = steps if steps is not None else self.max_steps
        while remaining > 0:
            retired = self.run_quantum(remaining)
            if retired is None:
                return True
            remaining -= retired
            if self.stats.steps >= self.max_steps:
                raise MachineLimitError(
                    "machine exceeded max_steps",
                    steps=self.stats.steps,
                    limit=self.max_steps,
                )
        return all(vm.halted for vm in self.vms)

    @property
    def finished(self) -> bool:
        return all(vm.halted for vm in self.vms)

    # ------------------------------------------------------------------
    # power failure + recovery (§IV-F)
    # ------------------------------------------------------------------
    def crash(self) -> Dict[str, int]:
        """Power fails *now*.  Performs the six-step recovery protocol and
        leaves the machine ready to resume.  Returns a small report.

        The protocol is split into named steps so the fault-injection
        subsystem (:mod:`repro.faults`) can adversarially perturb or
        interrupt each one (torn battery writes, energy-bounded drains, a
        second power failure mid-recovery)."""
        self.stats.crashes += 1
        self.stats.crash_points_fired.append(self.stats.steps)
        report = {"flushed": 0, "discarded": 0, "undone": 0, "io_replayed": 0}
        self._battery_drain(report)
        self._rollback_overflow(report)
        self._discard_quarantined(report)
        self._drop_interrupted_io(report)
        self._restore_threads()
        return report

    def _battery_drain(self, report: Dict[str, int]) -> None:
        """Steps 1-5: commit every region the backend can still make
        durable (the battery covers in-flight ACKs), in drain order."""
        before = self.stats.commits
        self._try_commit()
        report["flushed"] += self.stats.commits - before

    def _rollback_overflow(self, report: Dict[str, int]) -> None:
        """Roll back speculatively persisted writes of uncommitted
        regions (overflow flushes under LRPO, every store under the
        eager-undo schemes), youngest region first so the oldest
        pre-image wins."""
        report["undone"] += self.persist.rollback()

    def _discard_quarantined(self, report: Dict[str, int]) -> None:
        """Step 6: everything still volatile is lost with the power
        (quarantined WPQ entries; memory-mode's whole dirty set)."""
        report["discarded"] += self.persist.discard()

    def _drop_interrupted_io(self, report: Dict[str, int]) -> None:
        """Irrevocable operations of interrupted regions will re-execute;
        drop them from the durable log (they were not "completed")."""
        before_io = len(self.io_log)
        self.io_log = [
            entry for entry in self.io_log
            if self.persist.region_durable(entry[2])
        ]
        report["io_replayed"] += before_io - len(self.io_log)

    def _restore_threads(self) -> None:
        self.volatile.words = dict(self.pm)  # caches are gone
        self.locks = LockTable()
        self._halted_closed.clear()

        for tid, vm in enumerate(self.vms):
            # latest boundary whose *ended* region is durable
            resume: Optional[Continuation] = None
            for ended, continuation in reversed(self.history[tid]):
                if self.persist.region_durable(ended):
                    resume = continuation
                    break
            assert resume is not None  # the thread-start sentinel has -1
            # trim history past the resume point
            while self.history[tid] and self.history[tid][-1][1] is not resume:
                self.history[tid].pop()

            vm.locks = self.locks
            vm.func_name = resume.func
            vm.block = resume.block
            vm.index = resume.index
            vm.frames = _copy_frames(resume.frames)
            vm.halted = False
            vm.regs = self._rebuild_registers(tid, resume)
            for lock in resume.held_locks:
                if not self.locks.try_acquire(lock, tid):
                    raise RuntimeError(
                        "lock %d held by two threads at recovery" % lock
                    )

        # Dead region IDs (allocated to interrupted regions) will never be
        # re-broadcast; re-executed code gets fresh IDs.  Footnote 7: the
        # region ID register is reseeded from the flush ID domain.
        self.persist.reseed(self.allocator.allocated)
        for tid in range(len(self.vms)):
            self.allocator.start_thread(tid)
            if self.vms[tid].halted:
                self._thread_halted(tid)

    def _rebuild_registers(self, tid: int, resume: Continuation) -> Dict[str, int]:
        """Registers come ONLY from the checkpoint array + recovery plans
        (or the initial arguments for the thread-start sentinel)."""
        if resume.initial_regs is not None:
            return dict(resume.initial_regs)
        plan = self.compiled.plan_for(resume.boundary_uid)
        return rebuild_registers(
            plan, lambda reg: self.pm.get(Program.checkpoint_slot(tid, reg), 0)
        )

    # ------------------------------------------------------------------
    def clone(self) -> "PersistentMachine":
        """An independent snapshot of the machine's mutable state, sharing
        the (immutable) compiled program and config.  ``crash_sweep`` forks
        one clone per probe point off a single shared execution instead of
        re-running the program prefix from scratch every time."""
        new = object.__new__(type(self))
        new.compiled = self.compiled
        new.config = self.config
        new.quantum = self.quantum
        new.max_steps = self.max_steps
        new.stats = copy.deepcopy(self.stats)
        new.pm = dict(self.pm)
        new.volatile = _HookedMemory(new)
        new.volatile.words = dict(self.volatile.words)
        new.locks = LockTable()
        new.locks.owner = dict(self.locks.owner)
        new.allocator = copy.deepcopy(self.allocator)
        new.backend = self.backend
        new.persist = self.persist.clone_onto(new)
        new.io_log = [list(e) for e in self.io_log]
        new._stepping_tid = self._stepping_tid
        new._turn = self._turn
        new._halted_closed = set(self._halted_closed)
        new.vms = []
        for vm in self.vms:
            nvm = copy.copy(vm)
            nvm.memory = new.volatile
            nvm.locks = new.locks
            nvm.regs = dict(vm.regs)
            nvm.frames = _copy_frames(vm.frames)
            nvm.io_log = list(vm.io_log)
            new.vms.append(nvm)
        new.history = copy.deepcopy(self.history)
        self._clone_extra(new)
        return new

    def _clone_extra(self, new: "PersistentMachine") -> None:
        """Subclass hook: copy any additional mutable state onto a clone."""

    # ------------------------------------------------------------------
    def pm_data(self, min_word: Optional[int] = None) -> Dict[int, int]:
        """The persisted image restricted to data words (checkpoint array
        excluded) with zeros dropped."""
        floor = (
            min_word
            if min_word is not None
            else Program.CHECKPOINT_WORDS_PER_CORE * Program.MAX_CONTEXTS
        )
        return {w: v for w, v in self.pm.items() if w >= floor and v != 0}

    def wpq_occupancy(self) -> List[int]:
        return self.persist.occupancy()
