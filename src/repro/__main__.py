"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``       — Table I, hardware costs, CAM latency, CXL presets
* ``run``        — simulate one benchmark under one scheme
* ``figure``     — regenerate one table/figure
* ``serve``      — serve a YCSB-style workload from the persistent KV
                   store (sharded, optional kill-and-recover)
* ``compare``    — one workload across every persist backend: slowdown,
                   persist traffic, and a mid-region crash/recovery probe
* ``bench``      — run the curated perf suite (sim + store YCSB mixes),
                   emit a machine-readable ``BENCH_*.json`` and
                   optionally diff it against a ``--baseline`` artifact
                   (nonzero exit on >10% regression)
* ``crash-sweep``— exhaustively crash-test one benchmark
* ``cluster``    — the resilient sharded store cluster (``serve`` one
                   chaos session, ``bench`` --jobs parity + wall time)
* ``trace``      — the trace.v1 observability plane: ``timeline`` (the
                   run's ordered phases + durations), ``tail``
                   (live-follow a growing trace), ``verdicts``
                   (re-render campaign verdicts, byte-proved against
                   the recorded summary), ``validate`` (check traces
                   against the event catalogue), ``schema`` (print the
                   published JSON-Schema)

Every expensive command takes ``--jobs N`` to fan its independent work
units out over worker processes (results are bit-identical to serial;
see ``repro.parallel``).
* ``faults``     — adversarial fault-injection campaigns (``campaign``,
                   ``replay``, ``list``)
* ``compile``    — compile a textual-IR (.lir) file and print the
                   instrumented program (regions, checkpoints)
* ``verify``     — statically verify compiled programs against the five
                   recoverability rules (``--self-test`` runs the
                   mutation harness that proves each rule can fire)
* ``list``       — the 38 applications and the available schemes
"""

from __future__ import annotations

import argparse
import sys

from .analysis import (
    ExperimentContext,
    format_figure,
    format_mapping,
    table1_config,
    table3_cxl,
    vg2_cam_latency,
    vg4_hw_cost,
)
from .analysis import experiments as E
from .baselines import ALL_SCHEMES
from .compiler import compile_program
from .compiler.textir import parse_program, print_program
from .config import DEFAULT_CONFIG
from .core.failure import crash_sweep
from .core.lightwsp import LIGHTWSP
from .runtime import BACKENDS, compare_backends, format_compare, get_backend
from .workloads import BENCHMARKS, SUITES, benchmarks_of

FIGURES = {
    "fig7": E.fig7_slowdown,
    "fig8": E.fig8_efficiency,
    "fig9": E.fig9_psp_vs_wsp,
    "fig10": E.fig10_cwsp,
    "fig11": E.fig11_wpq_size,
    "fig12": E.fig12_threshold,
    "fig13": E.fig13_victim_policy,
    "fig14": E.fig14_miss_rate,
    "fig15": E.fig15_bandwidth,
    "fig16": E.fig16_threads,
    "fig17": E.fig17_cxl,
    "fig18": E.fig18_wpq_hits,
    "table2": E.table2_conflict_rate,
    "vg3": E.vg3_region_stats,
    "ablation-lrpo": E.ablation_lrpo,
    "ablation-compiler": E.ablation_compiler,
}

SCHEMES = dict(ALL_SCHEMES)
SCHEMES[LIGHTWSP.name] = LIGHTWSP


def cmd_info(args: argparse.Namespace) -> int:
    print(format_mapping("Table I — system configuration", table1_config()))
    print()
    print(format_mapping("CAM search latency (V-G2)", vg2_cam_latency()))
    print()
    print(format_mapping("Hardware cost (V-G4)", vg4_hw_cost()))
    print()
    print(format_figure(table3_cxl()))
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    from .store import MIXES, STORE_BENCHMARKS

    for suite in SUITES:
        names = ", ".join(b.name for b in benchmarks_of(suite))
        print("%-8s  %s" % (suite, names))
    print("%-8s  %s (campaign targets: %s)" % (
        "STORE",
        ", ".join(MIXES),
        ", ".join(STORE_BENCHMARKS),
    ))
    print("\nschemes: %s" % ", ".join(sorted(SCHEMES)))
    print("backends:")
    for name in sorted(BACKENDS):
        b = BACKENDS[name]
        print("  %-14s %-12s %s" % (
            name,
            "recovers" if b.recovers else "no-recovery",
            b.description,
        ))
    print("figures: %s" % ", ".join(FIGURES))
    from .perf import BENCH_SPECS

    print("bench entries: %s" % ", ".join(
        s.name + ("*" if s.smoke else "") for s in BENCH_SPECS
    ))
    print("  (* = in the --smoke subset)")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.benchmark not in BENCHMARKS:
        print("unknown benchmark %r (see `list`)" % args.benchmark)
        return 2
    if args.backend:
        try:
            policy = get_backend(args.backend).policy
        except KeyError as exc:
            print(exc.args[0])
            return 2
        label = get_backend(args.backend).name
    elif args.scheme in SCHEMES:
        policy, label = SCHEMES[args.scheme], args.scheme
    else:
        print("unknown scheme %r (see `list`)" % args.scheme)
        return 2
    if args.verify:
        from .verify import VerificationError

        try:
            compile_program(
                BENCHMARKS[args.benchmark].build(scale=args.scale),
                DEFAULT_CONFIG.compiler,
                verify=True,
            )
        except VerificationError as exc:
            print("static verification FAILED, refusing to run:")
            print(exc)
            return 1
    ctx = ExperimentContext(scale=args.scale, benchmarks=[args.benchmark])
    slowdown, result = ctx.slowdown(args.benchmark, policy)
    print("%s under %s:" % (args.benchmark, label))
    print("  cycles       %12.0f" % result.cycles)
    print("  slowdown     %12.3f (vs memory-mode)" % slowdown)
    print("  instructions %12d" % result.instructions)
    print("  regions      %12d" % result.regions)
    print("  efficiency   %11.2f%% (Eq. 1)" % result.persistence_efficiency)
    print("  stalls: fe=%.0f boundary=%.0f lock=%.0f wpq-hit=%.0f" % (
        result.fe_stall, result.boundary_stall,
        result.lock_stall, result.wpq_hit_stall))
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    if args.name not in FIGURES:
        print("unknown figure %r (see `list`)" % args.name)
        return 2
    ctx = ExperimentContext(
        scale=args.scale,
        benchmarks=args.benchmarks if args.benchmarks else None,
    )
    print(format_figure(FIGURES[args.name](ctx)))
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    with open(args.file) as fh:
        program = parse_program(fh.read())
    from .config import CompilerConfig

    compiled = compile_program(
        program, CompilerConfig(store_threshold=args.threshold)
    )
    print(print_program(compiled.program), end="")
    stats = compiled.stats
    print("# boundaries=%d checkpoints=%d (pruned %d) data_stores=%d "
          "max_region_stores=%d converged=%s"
          % (stats.boundaries, stats.checkpoint_stores,
             stats.pruned_checkpoints, stats.data_stores,
             stats.max_region_stores, stats.converged))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    import json as _json

    from .config import CompilerConfig
    from .store.bench import STORE_BENCHMARKS
    from .verify import self_validate, verify_compiled
    from .verify.mutate import validate_placement

    if args.self_test:
        outcomes = self_validate()
        placement = validate_placement()
        ok = True
        for rule, outcome in sorted(outcomes.items()):
            status = "caught" if outcome.ok else "MISSED"
            print("%s %-44s %s" % (rule, outcome.description, status))
            print("    seeded: %s" % outcome.seeded_at)
            if not outcome.ok:
                ok = False
                for diag in outcome.diagnostics[:5]:
                    print("    " + diag.format().splitlines()[0])
        for name, outcome in sorted(placement.items()):
            status = "caught" if outcome.ok else "MISSED"
            print("place[%s] %-30s %s" % (name, outcome.description, status))
            if not outcome.ok:
                ok = False
                for diag in outcome.diagnostics[:5]:
                    print("    " + diag.format().splitlines()[0])
        print("self-test: %s" % ("PASS" if ok else "FAIL"))
        return 0 if ok else 1

    config = CompilerConfig(store_threshold=args.threshold)
    targets = []
    if args.targets:
        for name in args.targets:
            if name.endswith(".lir"):
                with open(name) as fh:
                    targets.append((name, parse_program(fh.read())))
            elif name in BENCHMARKS:
                targets.append(
                    (name, BENCHMARKS[name].build(scale=args.scale))
                )
            elif name in STORE_BENCHMARKS:
                targets.append(
                    (name, STORE_BENCHMARKS[name].build(scale=args.scale))
                )
            else:
                print("unknown target %r: not a benchmark, store program, "
                      "or .lir file (see `list`)" % name)
                return 2
    else:
        for name, bench in list(BENCHMARKS.items()) + list(
            STORE_BENCHMARKS.items()
        ):
            targets.append((name, bench.build(scale=args.scale)))

    if args.synthesize or args.minimize:
        return _verify_placement_modes(args, config, targets)

    reports = []
    failed = 0
    for name, program in targets:
        compiled = compile_program(program, config, verify=False)
        report = verify_compiled(compiled)
        reports.append((name, report))
        if report.errors():
            failed += 1
        status = "FAIL" if report.errors() else (
            "pass (%d warning(s))" % len(report.warnings())
            if report.warnings() else "pass"
        )
        print("%-16s %s" % (name, status))
        if report.errors() or (args.verbose and report.warnings()):
            for line in report.format(limit=args.limit).splitlines()[1:]:
                print("  " + line)

    if args.json:
        payload = {
            "threshold": args.threshold,
            "targets": {name: report.to_json() for name, report in reports},
            "failed": failed,
        }
        with open(args.json, "w") as fh:
            _json.dump(payload, fh, indent=2, sort_keys=True)
        print("wrote %s" % args.json)

    print("verified %d target(s): %d failure(s)" % (len(reports), failed))
    return 1 if failed else 0


def _verify_placement_modes(args, config, targets) -> int:
    """``repro verify --synthesize/--minimize``: run the placement
    engine over each target, print the placement report, optionally emit
    the repaired ``.lir`` and the JSON report artifact."""
    import json as _json
    import os

    from .compiler.pipeline import compile_program
    from .compiler.textir import print_program
    from .verify.place import (
        PLACE_VERSION,
        minimize_compiled,
        synthesize_placement,
    )

    mode = "synthesize" if args.synthesize else "minimize"
    budget = args.budget if args.budget is not None else args.threshold
    if args.emit_dir:
        os.makedirs(args.emit_dir, exist_ok=True)

    reports = []
    failed = 0
    for name, program in targets:
        if args.synthesize:
            result = synthesize_placement(
                program, config, budget=budget, check=False
            )
            compiled, preport = result.compiled, result.report
        else:
            compiled = compile_program(program, config, verify=False)
            preport = minimize_compiled(compiled, check=False)
        reports.append((name, preport))
        if not preport.verify_ok:
            failed += 1
        print(preport.format(limit=args.limit if args.verbose else 0))
        if args.emit_dir:
            base = os.path.basename(name)
            if base.endswith(".lir"):
                base = base[:-4]
            path = os.path.join(args.emit_dir, base + ".lir")
            with open(path, "w") as fh:
                fh.write(print_program(compiled.program))
            print("  wrote %s" % path)

    if args.bench:
        if not args.minimize:
            print("--bench requires --minimize")
            return 2
        from .verify.place.bench import placement_bench

        payload = placement_bench(config=config, scale=args.scale)
        for row in payload["rows"]:
            print(
                "bench %-10s boundaries %d -> %d (%.1f%%)  slowdown "
                "%+.6f" % (
                    row["benchmark"], row["boundaries_base"],
                    row["boundaries_minimized"], row["removed_pct"],
                    row["slowdown_delta"],
                )
            )
        with open(args.bench, "w") as fh:
            _json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("wrote %s" % args.bench)

    differential = None
    if args.differential:
        from .verify.place import placement_differential

        differential = placement_differential(
            mode=mode, config=config, seed=args.seed
        )
        print(differential.format())
        if not differential.ok:
            failed += differential.violations

    if args.report:
        payload = {
            "kind": "repro-placement-set",
            "version": PLACE_VERSION,
            "mode": mode,
            "threshold": args.threshold,
            "budget": budget,
            "failed": failed,
            "targets": {name: rep.to_json() for name, rep in reports},
        }
        if differential is not None:
            payload["differential"] = differential.to_json()
        with open(args.report, "w") as fh:
            _json.dump(payload, fh, indent=2, sort_keys=True)
        print("wrote %s" % args.report)

    print("%s: %d target(s), %d failure(s)" % (mode, len(reports), failed))
    return 1 if failed else 0


def cmd_compare(args: argparse.Namespace) -> int:
    try:
        chosen = [get_backend(b) for b in args.backends] \
            if args.backends else None
    except KeyError as exc:
        print(exc.args[0])
        return 2
    report = compare_backends(
        benchmark=args.benchmark,
        scale=args.scale,
        backends=chosen,
        smoke=args.smoke,
        jobs=args.jobs,
    )
    print(format_compare(report))
    print("compare: %s" % ("PASS" if report.ok else
                           "FAIL (a crash-consistent backend diverged)"))
    return 0 if report.ok else 1


def cmd_bench(args: argparse.Namespace) -> int:
    from .perf import diff_reports, format_diff, format_report, load_report
    from .perf import run_bench

    try:
        report = run_bench(
            entries=args.entries or None,
            smoke=args.smoke,
            seed=args.seed,
            scale=args.scale,
            jobs=args.jobs,
            trace_path=args.trace,
            profile_path=args.profile,
        )
    except KeyError as exc:
        print(exc.args[0])
        return 2
    print(format_report(report))
    report.write(args.out)
    print("wrote %s" % args.out)
    if not args.baseline:
        return 0
    try:
        baseline = load_report(args.baseline)
    except (OSError, ValueError) as exc:
        print("cannot load baseline: %s" % exc)
        return 2
    diff = diff_reports(baseline, report.to_json(),
                        threshold=args.threshold)
    print(format_diff(diff))
    return 0 if diff.ok else 1


def cmd_crash_sweep(args: argparse.Namespace) -> int:
    if args.benchmark not in BENCHMARKS:
        print("unknown benchmark %r (see `list`)" % args.benchmark)
        return 2
    bench = BENCHMARKS[args.benchmark]
    prog = bench.build(scale=args.scale, threads=min(bench.threads, 2))
    compiled = compile_program(prog, DEFAULT_CONFIG.compiler)
    entries = bench.entries(threads=min(bench.threads, 2))
    divergent = crash_sweep(
        compiled, entries=entries, stride=args.stride,
        max_points=args.max_points, backend=args.backend,
        jobs=args.jobs,
    )
    if divergent:
        print("DIVERGED at crash points: %s" % divergent[:20])
        return 1
    where = ("stride %d" % args.stride) if args.stride else "boundary+-1"
    print("%s: crash-consistent at every probed point (%s)"
          % (args.benchmark, where))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .store import MIXES, run_serve

    if args.smoke:
        args.ops = min(args.ops, 200)
        args.keys = min(args.keys, 32)
        args.crash_epoch = 1 if args.crash_epoch is None else args.crash_epoch
    if args.workload not in MIXES:
        print("unknown workload %r (choose from: %s)"
              % (args.workload, ", ".join(MIXES)))
        return 2
    from .verify import VerificationError

    try:
        report = run_serve(
            workload=args.workload,
            ops=args.ops,
            shards=args.shards,
            seed=args.seed,
            keyspace=args.keys,
            value_words=args.value_words,
            batch=args.batch,
            dist=args.dist,
            crash_epoch=args.crash_epoch,
            crash_seed=args.crash_seed,
            crash_torn=args.crash_torn,
            crash_step=args.crash_step,
            progress=print,
            verify=True if args.verify else None,
            backend=args.backend,
            trace_path=args.trace,
        )
    except VerificationError as exc:
        print("static verification FAILED, refusing to serve:")
        print(exc)
        return 1
    print("%s/%s seed=%d: %d requests (%d load + %d mixed) over %d shard(s)"
          % (report.workload, report.dist, report.seed, report.total_ops,
             report.load_ops, report.ops, len(report.shards)))
    print("  sim time     %12.1f ns" % report.sim_ns)
    print("  throughput   %12.2f Mops/s" % report.throughput_mops)
    lat = report.latency
    print("  latency (ns) p50=%.0f p95=%.0f p99=%.0f mean=%.0f max=%.0f"
          % (lat["p50"], lat["p95"], lat["p99"], lat["mean"], lat["max"]))
    for s in report.shards:
        print("  shard %d: %d ops / %d epochs, %d commits, "
              "%d compaction(s), %d drop(s), %d crash(es), "
              "%d keys live, image %s"
              % (s.shard, s.ops, s.epochs, s.commits, s.compactions,
                 s.drops, s.crashes, s.keys_live, s.image_digest))
    print("  digest: %s" % report.digest())
    if args.trace:
        print("  trace: %s" % args.trace)
    if report.crash_epoch is not None:
        print("  acked-write oracle: %s"
              % ("PASS" if report.ok else "FAIL"))
    for v in report.violations[:10]:
        print("  VIOLATION %s" % v)
    return 0 if report.ok else 1


def cmd_faults(args: argparse.Namespace) -> int:
    from .faults import (
        DEFAULT_CAMPAIGN_BENCHMARKS,
        DEFENSE_OFF_MODES,
        FAULT_CLASSES,
        NESTED_POINTS,
        STORE_CAMPAIGN_BENCHMARKS,
        replay_trace,
        run_campaign,
    )

    if args.faults_command == "list":
        print("fault classes:  %s" % ", ".join(FAULT_CLASSES))
        print("nested points:  %s" % ", ".join(NESTED_POINTS))
        print("defense-off:    %s" % ", ".join(sorted(DEFENSE_OFF_MODES)))
        print("benchmarks:     %s" % ", ".join(DEFAULT_CAMPAIGN_BENCHMARKS))
        print("store targets:  %s" % ", ".join(STORE_CAMPAIGN_BENCHMARKS))
        return 0

    if args.faults_command == "replay":
        from .trace import read_trace

        try:
            records = read_trace(args.trace)
        except (OSError, ValueError) as exc:
            print(exc.args[0] if exc.args else str(exc))
            return 2
        if any(
            r.get("type") == "cluster_campaign_start" for r in records
        ):
            from .cluster import replay_cluster_trace

            try:
                mismatches = replay_cluster_trace(records, progress=print)
            except ValueError as exc:
                print(exc.args[0] if exc.args else str(exc))
                return 2
            print("replayed cluster trace: %d mismatch(es)"
                  % len(mismatches))
            for mm in mismatches[:10]:
                print("  MISMATCH %s" % mm)
            return 1 if mismatches else 0
        try:
            report = replay_trace(args.trace, progress=print,
                                  jobs=args.jobs)
        except ValueError as exc:
            print(exc.args[0] if exc.args else str(exc))
            return 2
        print("replayed %d scenarios, %d mismatch(es)"
              % (report["checked"], len(report["mismatches"])))
        for mm in report["mismatches"][:10]:
            print("  MISMATCH %s/%s: want %s got %s"
                  % (mm["benchmark"], mm["fault_class"],
                     mm["want_hash"], mm["got_hash"]))
        return 1 if report["mismatches"] else 0

    # campaign
    if args.workload == "cluster":
        from .cluster import run_cluster_campaign

        trace_path = args.trace or (
            ("cluster-failover-seed%d.jsonl" if args.replicate
             else "cluster-chaos-seed%d.jsonl") % args.seed
        )
        backends = (
            (args.backend,) if args.backend
            else ("lightwsp-lrpo", "cwsp-eager")
        )
        try:
            report = run_cluster_campaign(
                backends=backends,
                seeds=tuple(range(args.seed, args.seed + 3)),
                jobs=args.jobs,
                trace_path=trace_path,
                replicate=args.replicate,
                ship_lag=args.lag,
                reshard_at=args.reshard_at,
                follower_kills=(
                    args.follower_kills if args.replicate else 0
                ),
                progress=print,
            )
        except (KeyError, ValueError) as exc:
            print(exc.args[0] if exc.args else str(exc))
            return 2
        print()
        acked = sum(
            s.responses.get("ok", 0) for s in report.scenarios
        )
        print("cluster campaign: %d scenarios, %d acked ops, "
              "%d violation scenario(s)"
              % (len(report.scenarios), acked, len(report.failures)))
        for s in report.failures[:5]:
            print("  FAIL %s seed=%d: %s"
                  % (s.backend, s.seed, s.violations[:3]))
            if s.shrunk is not None:
                print("    minimal schedule (%d events): %s"
                      % (len(s.shrunk), [f.to_json() for f in s.shrunk]))
        print("trace: %s" % trace_path)
        print("PASS" if report.ok else "FAIL")
        return 0 if report.ok else 1
    benchmarks = args.benchmarks or None
    if args.workload == "store" and benchmarks is None:
        benchmarks = list(STORE_CAMPAIGN_BENCHMARKS)
    trace_path = args.trace or ("faults-campaign-seed%d.jsonl" % args.seed)
    from .verify import VerificationError

    try:
        result = run_campaign(
            seed=args.seed,
            benchmarks=benchmarks,
            scale=args.scale,
            trace_path=trace_path,
            validate_defenses=not args.no_validate,
            progress=print,
            verify=True if args.verify else None,
            backend=args.backend,
            jobs=args.jobs,
        )
    except VerificationError as exc:
        print("static verification FAILED, refusing to inject faults:")
        print(exc)
        return 1
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else str(exc))
        return 2
    print()
    print("campaign: %d scenarios over %d benchmarks x %d fault classes"
          " (backend: %s)"
          % (result.scenarios_run, len(result.benchmarks),
             len(result.fault_classes), result.backend))
    print("oracle violations (defended protocol): %d"
          % len(result.violations))
    for v in result.violations[:10]:
        print("  VIOLATION %s/%s %s" % (
            v["benchmark"], v["fault_class"], v["schedule"]))
    if result.defense_results:
        print("defense-off modes caught: %d/%d"
              % (result.defenses_caught, len(result.defense_results)))
        for mode, entry in sorted(result.defense_results.items()):
            if entry["caught"]:
                print("  %-24s caught on %s, %d-event minimal reproducer: %s"
                      % (mode, entry["benchmark"], entry["minimal_events"],
                         entry["minimal"]))
            else:
                print("  %-24s NOT CAUGHT (%d candidates tried)"
                      % (mode, entry["candidates_tried"]))
    print("trace: %s" % trace_path)
    print("PASS" if result.ok else "FAIL")
    return 0 if result.ok else 1


def cmd_trace(args) -> int:
    from .obs import (
        build_timeline,
        format_timeline,
        format_verdicts,
        render_verdicts,
        schema_json_text,
        tail_trace,
        validate_records,
    )
    from .trace import read_trace

    if args.trace_command == "schema":
        print(schema_json_text(), end="")
        return 0

    if args.trace_command == "timeline":
        try:
            timeline = build_timeline(read_trace(args.trace), args.trace)
        except (OSError, ValueError) as exc:
            print(exc.args[0] if exc.args else str(exc))
            return 2
        print(format_timeline(timeline))
        return 0

    if args.trace_command == "tail":
        try:
            tail = tail_trace(
                args.trace, out=print, poll=args.poll,
                idle_timeout=args.idle_timeout,
                follow=not args.no_follow,
            )
        except (OSError, ValueError) as exc:
            print(exc.args[0] if exc.args else str(exc))
            return 2
        return 1 if tail.violations else 0

    if args.trace_command == "verdicts":
        try:
            report = render_verdicts(args.trace)
        except (OSError, ValueError) as exc:
            print(exc.args[0] if exc.args else str(exc))
            return 2
        print(format_verdicts(report))
        return 0 if report.ok else 1

    # validate
    failures = 0
    for path in args.traces:
        try:
            records = read_trace(path)
            problems = validate_records(records)
        except (OSError, ValueError) as exc:
            records = []
            problems = [exc.args[0] if exc.args else str(exc)]
        if problems:
            failures += 1
            print("%s: INVALID" % path)
            for problem in problems[:20]:
                print("  " + problem)
        else:
            print("%s: ok (%d record(s))" % (path, len(records)))
    print("validated %d trace(s): %d invalid"
          % (len(args.traces), failures))
    return 1 if failures else 0


def cmd_cluster(args) -> int:
    from .cluster import ClusterSession, generate_cluster_chaos
    from .trace import JsonlTrace, NullTrace

    if args.cluster_command == "bench":
        # determinism/parity bench: same seeded chaos session at each
        # --jobs level must produce the same digest; report wall time
        import time

        chaos = generate_cluster_chaos(
            args.seed, args.shards, horizon=args.horizon,
            kills=args.kills, transport=args.transport,
            partitions=args.partitions, msg_faults=args.msg_faults,
            reshard_at=args.reshard_at,
            follower_kills=args.follower_kills if args.replicate else 0,
        )
        digests = {}
        for jobs in args.jobs_levels:
            session = ClusterSession.build(
                n_shards=args.shards, keyspace=args.keyspace,
                ops=args.ops, seed=args.seed, backend=args.backend,
                mix=args.mix, chaos=chaos, jobs=jobs,
                replicate=args.replicate, ship_lag=args.lag,
                reshard_at=args.reshard_at,
            )
            t0 = time.monotonic()
            session.run()
            wall = time.monotonic() - t0
            digests[jobs] = session.digest()
            print("jobs=%d: %6.2fs  digest=%s  epochs=%d  violations=%d"
                  % (jobs, wall, digests[jobs], session.epoch,
                     len(session.violations)))
        if len(set(digests.values())) == 1:
            print("PARITY OK: digest identical at every --jobs level")
            return 0
        print("PARITY BROKEN: digests differ across --jobs levels")
        return 1

    # serve / reshard: one chaos session, optionally traced
    if args.cluster_command == "reshard" and args.reshard_at < 0:
        print("reshard needs --reshard-at >= 0")
        return 2
    if args.smoke:
        args.shards = min(args.shards, 2)
        args.ops = min(args.ops, 20)
        args.kills = min(args.kills, 1)

    chaos = generate_cluster_chaos(
        args.seed, args.shards, horizon=args.horizon,
        kills=args.kills, transport=args.transport,
        partitions=args.partitions, msg_faults=args.msg_faults,
        reshard_at=args.reshard_at,
        follower_kills=args.follower_kills if args.replicate else 0,
    ) if not args.no_chaos else []
    trace = JsonlTrace(args.trace) if args.trace else NullTrace()
    try:
        session = ClusterSession.build(
            n_shards=args.shards, keyspace=args.keyspace, ops=args.ops,
            seed=args.seed, backend=args.backend, mix=args.mix,
            txn_every=args.txn_every, chaos=chaos, jobs=args.jobs,
            trace=trace, replicate=args.replicate, ship_lag=args.lag,
            reshard_at=args.reshard_at,
        )
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else str(exc))
        return 2
    session.run()
    trace.close()

    by_status: dict = {}
    for r in session.responses.values():
        by_status[r.status] = by_status.get(r.status, 0) + 1
    print("cluster: %d shards (backend: %s), %d ops, %d epochs"
          % (session.n_shards, session.backend.name,
             len(session.responses), session.epoch))
    print("responses: %s" % " ".join(
        "%s=%d" % (s, by_status[s]) for s in sorted(by_status)))
    interesting = (
        "kills", "retries", "replays_rejected", "acks_dropped",
        "acks_delayed", "reqs_dropped", "partition_drops",
        "promotions", "shipped", "fenced_rejected", "follower_kills",
        "migrated_keys",
    )
    print("chaos:     %s" % " ".join(
        "%s=%d" % (c, session.counters[c]) for c in interesting
        if session.counters.get(c)))
    for state in session.shards:
        print("  shard %d: served=%d epochs=%d crashes=%d image=%s"
              % (state.shard, state.served, state.epochs,
                 state.crashes, state.image_digest()))
    if args.replicate:
        for rs in session.ranges:
            print("  range %d: fence=%d promotions=%d follower_served=%d"
                  % (rs.range_id, rs.fence, rs.promotions,
                     rs.follower.served if rs.follower else 0))
    mig = getattr(session, "_mig", None)
    if mig is not None:
        print("reshard:   new shard %d, %d/%d keys migrated, state=%s"
              % (mig["target"], mig["copied"], len(mig["moved"]),
                 mig["state"]))
    if args.trace:
        print("trace: %s" % args.trace)
    if session.violations:
        print("oracle violations: %d" % len(session.violations))
        for v in session.violations[:10]:
            print("  VIOLATION %s" % v)
        print("FAIL")
        return 1
    print("oracle: zero acked-write loss, no half-commits  PASS")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="configuration + cost tables")
    sub.add_parser("list", help="benchmarks, schemes, figures")

    p_run = sub.add_parser("run", help="simulate one benchmark")
    p_run.add_argument("benchmark")
    p_run.add_argument("--scheme", default="LightWSP")
    p_run.add_argument(
        "--backend", default=None,
        help="persist backend (see `list`); overrides --scheme",
    )
    p_run.add_argument("--scale", type=float, default=0.1)
    p_run.add_argument(
        "--verify", action="store_true",
        help="statically verify the compiled benchmark before running",
    )

    p_fig = sub.add_parser("figure", help="regenerate one figure")
    p_fig.add_argument("name")
    p_fig.add_argument("--scale", type=float, default=0.1)
    p_fig.add_argument("--benchmarks", nargs="*", default=None)

    p_serve = sub.add_parser(
        "serve", help="serve a KV workload on the persistent store"
    )
    p_serve.add_argument(
        "--workload", default="ycsb-a",
        help="mix name (ycsb-a/b/c/e, crud; see `list`)",
    )
    p_serve.add_argument("--ops", type=int, default=2000)
    p_serve.add_argument("--shards", type=int, default=2)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--keys", type=int, default=128)
    p_serve.add_argument("--value-words", type=int, default=4)
    p_serve.add_argument("--batch", type=int, default=64)
    p_serve.add_argument(
        "--dist", default="zipfian", choices=("zipfian", "uniform")
    )
    p_serve.add_argument(
        "--crash-epoch", type=int, default=None,
        help="cut power on every shard during this epoch (0-based)",
    )
    p_serve.add_argument(
        "--crash-step", type=int, default=None,
        help="crash at this step in the epoch (default: seeded per shard)",
    )
    p_serve.add_argument("--crash-seed", type=int, default=0)
    p_serve.add_argument(
        "--crash-torn", action="store_true",
        help="tear one battery-backed WPQ write at the crash",
    )
    p_serve.add_argument(
        "--smoke", action="store_true",
        help="small fixed-cost run with a crash (CI smoke test)",
    )
    p_serve.add_argument(
        "--verify", action="store_true",
        help="statically verify every epoch's program before serving",
    )
    p_serve.add_argument(
        "--backend", default=None,
        help="persist backend the shards run on (crash epochs require "
             "a crash-consistent backend; see `list`)",
    )
    p_serve.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record the run as a trace.v1 JSONL artifact "
             "(`repro trace timeline/tail` can render it)",
    )

    p_compile = sub.add_parser("compile", help="compile a .lir file")
    p_compile.add_argument("file")
    p_compile.add_argument("--threshold", type=int, default=32)

    p_verify = sub.add_parser(
        "verify",
        help="statically verify compiled programs (5 recoverability rules)",
    )
    p_verify.add_argument(
        "targets", nargs="*",
        help="benchmark names, store programs, or .lir files "
             "(default: the full suite + store benchmarks)",
    )
    p_verify.add_argument("--threshold", type=int, default=32)
    p_verify.add_argument("--scale", type=float, default=1.0)
    p_verify.add_argument(
        "--self-test", action="store_true",
        help="run the mutation harness: seed one violation per rule and "
             "check each is caught with a witness (plus the seeded "
             "placement-engine defects)",
    )
    mode = p_verify.add_mutually_exclusive_group()
    mode.add_argument(
        "--synthesize", action="store_true",
        help="strip all instrumentation and synthesize a fresh "
             "rule-satisfying boundary placement from the verifier's "
             "own CFG/liveness analyses",
    )
    mode.add_argument(
        "--minimize", action="store_true",
        help="compile normally, then delete every boundary whose "
             "removal the verifier proves safe",
    )
    p_verify.add_argument(
        "--budget", type=int, default=None,
        help="store budget for --synthesize (default: --threshold)",
    )
    p_verify.add_argument(
        "--emit-dir", default=None, metavar="DIR",
        help="write the repaired/synthesized program of each target as "
             "DIR/<name>.lir",
    )
    p_verify.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the JSON placement report (--synthesize/--minimize)",
    )
    p_verify.add_argument(
        "--differential", action="store_true",
        help="with --synthesize/--minimize: also run the fixed-seed "
             "differential crash campaign over the deterministic "
             "workload subset (image, crash-sweep, and trace oracles)",
    )
    p_verify.add_argument(
        "--bench", default=None, metavar="PATH",
        help="with --minimize: measure the slowdown delta of "
             "minimization through the timing model and write the "
             "placement-bench JSON artifact",
    )
    p_verify.add_argument(
        "--seed", type=int, default=0,
        help="schedule seed for --differential",
    )
    p_verify.add_argument(
        "--json", default=None, metavar="PATH",
        help="write all diagnostics to a JSON file",
    )
    p_verify.add_argument(
        "--limit", type=int, default=10,
        help="max diagnostics printed per target",
    )
    p_verify.add_argument(
        "-v", "--verbose", action="store_true",
        help="also print warnings for passing targets",
    )

    p_cmp = sub.add_parser(
        "compare", help="one workload across every persist backend"
    )
    p_cmp.add_argument("benchmark", nargs="?", default="bzip2")
    p_cmp.add_argument("--scale", type=float, default=0.05)
    p_cmp.add_argument(
        "--backends", nargs="*", default=None,
        help="subset of backends (default: all registered)",
    )
    p_cmp.add_argument(
        "--smoke", action="store_true",
        help="small fixed-cost run over all backends (CI smoke test)",
    )
    p_cmp.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (one backend per worker)",
    )

    p_bench = sub.add_parser(
        "bench",
        help="run the curated perf suite, emit BENCH_*.json, and "
             "optionally gate against a baseline",
    )
    p_bench.add_argument(
        "entries", nargs="*",
        help="bench entries to run (default: all, or the smoke subset "
             "with --smoke; see `list`)",
    )
    p_bench.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run over the smoke subset",
    )
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--scale", type=float, default=0.25)
    p_bench.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (one entry per worker)",
    )
    p_bench.add_argument(
        "--out", default="BENCH_pr9.json", metavar="PATH",
        help="where to write the machine-readable report",
    )
    p_bench.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="diff against this earlier BENCH_*.json; exit nonzero on "
             "any gated metric regressing past the threshold",
    )
    p_bench.add_argument(
        "--threshold", type=float, default=0.10,
        help="regression threshold as a fraction (default 0.10)",
    )
    p_bench.add_argument(
        "--trace", default=None, metavar="PATH",
        help="also record the run as a trace.v1 JSONL artifact",
    )
    p_bench.add_argument(
        "--profile", default=None, metavar="PATH",
        help="cProfile the run: write a pstats dump at PATH and a "
             "PATH.json hot-function summary (forces --jobs 1)",
    )

    p_sweep = sub.add_parser("crash-sweep", help="crash-test a benchmark")
    p_sweep.add_argument("benchmark")
    p_sweep.add_argument("--scale", type=float, default=0.02)
    p_sweep.add_argument(
        "--stride", type=int, default=None,
        help="probe every Nth instruction (default: boundary+-1 sampling)",
    )
    p_sweep.add_argument(
        "--max-points", type=int, default=None,
        help="cap the probe count by even subsampling",
    )
    p_sweep.add_argument(
        "--backend", default=None,
        help="persist backend to sweep (see `list`)",
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (probe points sharded round-robin)",
    )

    p_faults = sub.add_parser(
        "faults", help="adversarial fault-injection campaigns"
    )
    fsub = p_faults.add_subparsers(dest="faults_command", required=True)
    p_camp = fsub.add_parser(
        "campaign",
        help="seeded fault-schedule sweep + defense-off self-validation",
    )
    p_camp.add_argument("--seed", type=int, default=0)
    p_camp.add_argument("--scale", type=float, default=0.01)
    p_camp.add_argument("--benchmarks", nargs="*", default=None)
    p_camp.add_argument(
        "--workload", default="suite", choices=("suite", "store", "cluster"),
        help="benchmark set: the CPU suite subset, the KV-store "
             "request-serving programs, or the sharded cluster chaos "
             "campaign (kills + partitions + message faults)",
    )
    p_camp.add_argument(
        "--trace", default=None,
        help="JSONL trace path (default: faults-campaign-seed<N>.jsonl)",
    )
    p_camp.add_argument(
        "--no-validate", action="store_true",
        help="skip the defense-off self-validation pass",
    )
    p_camp.add_argument(
        "--verify", action="store_true",
        help="statically verify each compiled benchmark before "
             "injecting faults",
    )
    p_camp.add_argument(
        "--backend", default=None,
        help="persist backend under attack (must be crash-consistent; "
             "see `list`)",
    )
    p_camp.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (benchmarks, then defense-off modes, "
             "sharded round-robin; the trace is bit-identical to "
             "--jobs 1)",
    )
    p_camp.add_argument(
        "--replicate", action="store_true",
        help="(--workload cluster) per-range replication with "
             "promote-on-DEAD failover",
    )
    p_camp.add_argument(
        "--lag", type=int, default=1,
        help="(--workload cluster) bounded log-shipping lag window",
    )
    p_camp.add_argument(
        "--reshard-at", type=int, default=-1,
        help="(--workload cluster) epoch a new shard joins and its "
             "arcs migrate live (-1: no reshard)",
    )
    p_camp.add_argument(
        "--follower-kills", type=int, default=0,
        help="(--workload cluster) follower power-cuts per scenario "
             "(needs --replicate)",
    )
    p_replay = fsub.add_parser(
        "replay", help="re-run every scenario of a recorded trace"
    )
    p_replay.add_argument("trace")
    p_replay.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (scenarios sharded round-robin)",
    )
    fsub.add_parser("list", help="fault classes, nested points, modes")

    p_cluster = sub.add_parser(
        "cluster", help="the resilient sharded store cluster"
    )
    csub = p_cluster.add_subparsers(dest="cluster_command", required=True)

    def _cluster_common(p):
        p.add_argument("--shards", type=int, default=3)
        p.add_argument("--keyspace", type=int, default=16)
        p.add_argument("--ops", type=int, default=36)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--backend", default=None,
            help="persist backend per shard (must be crash-consistent; "
                 "see `list`)",
        )
        p.add_argument("--mix", default="crud",
                       choices=("crud", "ycsb-a", "ycsb-b", "ycsb-c",
                                "ycsb-e"))
        p.add_argument(
            "--kills", type=int, default=2,
            help="shard power-cuts in the generated chaos schedule",
        )
        p.add_argument("--transport", type=int, default=5,
                       help="message-layer faults (drop/dup/delay)")
        p.add_argument("--partitions", type=int, default=1)
        p.add_argument("--msg-faults", type=int, default=2,
                       help="machine-level message-path faults")
        p.add_argument("--horizon", type=int, default=24,
                       help="last epoch chaos may land on")
        p.add_argument(
            "--replicate", action="store_true",
            help="per-range primary+follower replication: log shipping, "
                 "promote-on-DEAD failover behind a fencing token",
        )
        p.add_argument(
            "--lag", type=int, default=1,
            help="bounded log-shipping lag window (with --replicate)",
        )
        p.add_argument(
            "--follower-kills", type=int, default=0,
            help="follower power-cuts in the chaos schedule "
                 "(with --replicate)",
        )
        p.add_argument(
            "--reshard-at", type=int, default=-1,
            help="epoch a new shard joins and its arcs migrate live "
                 "(-1: no reshard)",
        )

    p_cserve = csub.add_parser(
        "serve",
        help="run one chaos session: routed ops, kills, recovery, "
             "typed degradation, oracle check",
    )
    _cluster_common(p_cserve)
    p_cserve.add_argument("--txn-every", type=int, default=6,
                          help="every Nth mixed-phase PUT becomes a "
                               "cross-shard transaction")
    p_cserve.add_argument("--jobs", type=int, default=1,
                          help="worker processes (shard epochs fan out; "
                               "results are bit-identical to --jobs 1)")
    p_cserve.add_argument("--trace", default=None,
                          help="JSONL session trace path")
    p_cserve.add_argument("--no-chaos", action="store_true",
                          help="fault-free run (sanity baseline)")
    p_cserve.add_argument("--smoke", action="store_true",
                          help="small fixed shape for CI smoke tests")

    p_creshard = csub.add_parser(
        "reshard",
        help="live resharding: a new shard joins mid-run and its key "
             "arcs migrate while clients keep being served",
    )
    _cluster_common(p_creshard)
    p_creshard.set_defaults(reshard_at=3)
    p_creshard.add_argument("--txn-every", type=int, default=6,
                            help="every Nth mixed-phase PUT becomes a "
                                 "cross-shard transaction")
    p_creshard.add_argument("--jobs", type=int, default=1,
                            help="worker processes (shard epochs fan "
                                 "out; bit-identical to --jobs 1)")
    p_creshard.add_argument("--trace", default=None,
                            help="JSONL session trace path")
    p_creshard.add_argument("--no-chaos", action="store_true",
                            help="fault-free migration (sanity baseline)")
    p_creshard.add_argument("--smoke", action="store_true",
                            help="small fixed shape for CI smoke tests")

    p_cbench = csub.add_parser(
        "bench",
        help="--jobs parity check + wall time for one chaos session",
    )
    _cluster_common(p_cbench)
    p_cbench.add_argument(
        "--jobs-levels", type=int, nargs="+", default=[1, 2, 4],
        help="worker counts to compare (digest must be identical)",
    )

    p_trace = sub.add_parser(
        "trace",
        help="the trace.v1 observability plane: render, follow, "
             "validate JSONL run traces",
    )
    tsub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_tl = tsub.add_parser(
        "timeline",
        help="reconstruct the run's ordered phases and durations "
             "(deterministic units: steps/epochs/sim-ns) from a trace",
    )
    p_tl.add_argument("trace")
    p_tail = tsub.add_parser(
        "tail",
        help="live-follow a growing trace: throughput, p50/p95/p99, "
             "WPQ occupancy, crash/recovery events as they land",
    )
    p_tail.add_argument("trace")
    p_tail.add_argument(
        "--poll", type=float, default=0.2,
        help="seconds between polls while waiting for growth",
    )
    p_tail.add_argument(
        "--idle-timeout", type=float, default=None,
        help="stop after this many seconds without growth "
             "(default: wait until the terminal record)",
    )
    p_tail.add_argument(
        "--no-follow", action="store_true",
        help="render what is on disk now and stop (no waiting)",
    )
    p_verd = tsub.add_parser(
        "verdicts",
        help="re-render campaign verdicts and summary stats from the "
             "trace alone, byte-compared against the recorded summary",
    )
    p_verd.add_argument("trace")
    p_val = tsub.add_parser(
        "validate",
        help="check traces against the trace.v1 event catalogue "
             "(nonzero exit on any violation)",
    )
    p_val.add_argument("traces", nargs="+")
    tsub.add_parser(
        "schema", help="print the published trace.v1 JSON-Schema"
    )

    args = parser.parse_args(argv)
    handler = {
        "info": cmd_info,
        "list": cmd_list,
        "run": cmd_run,
        "figure": cmd_figure,
        "serve": cmd_serve,
        "compare": cmd_compare,
        "bench": cmd_bench,
        "compile": cmd_compile,
        "verify": cmd_verify,
        "crash-sweep": cmd_crash_sweep,
        "faults": cmd_faults,
        "cluster": cmd_cluster,
        "trace": cmd_trace,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
