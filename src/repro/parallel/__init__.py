"""Deterministic process-level parallelism for the expensive harnesses.

See :mod:`repro.parallel.pool` for the sharding/merge contract and the
determinism rules; DESIGN.md ("Parallel execution") for the narrative.
"""

from .pool import (
    PoolStats,
    WorkerError,
    WorkerTimeout,
    current_attempt,
    fan_out,
    last_stats,
    run_shards,
    shard_units,
)

__all__ = [
    "PoolStats",
    "WorkerError",
    "WorkerTimeout",
    "current_attempt",
    "fan_out",
    "last_stats",
    "run_shards",
    "shard_units",
]
