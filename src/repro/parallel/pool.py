"""The deterministic multiprocessing fan-out layer.

Every expensive harness in this repo (fault campaigns, crash sweeps,
the backend comparison matrix, ``repro bench``) is a loop over
*independent, deterministic* work units — each unit's outcome depends
only on the unit itself plus explicit inputs (seed, scale, config),
never on execution order or shared mutable state.  That independence is
what makes parallelism safe here, and this module is the one place the
safety contract is enforced:

* **Sharding is a pure function.**  :func:`shard_units` partitions unit
  *indices* round-robin (shard ``i`` gets units ``i, i+jobs, ...``), so
  the partition depends only on ``(len(units), jobs)`` — never on
  timing, pids, or hashing.
* **Merging is order-independent.**  Results are reassembled by unit
  index, so the merged output is identical no matter which shard
  finishes first — and identical to the serial run, because the serial
  path executes the *same* worker callable in-process.
* **Workers never share RNG state.**  The pool passes no RNG anywhere;
  callers must derive any randomness from keyed streams (see
  ``repro.faults.campaign._rng``) so a unit's stream is a function of
  its label, not of which worker ran it.

Process model: one forked child per shard (``fork`` keeps closures and
compiled programs available without pickling the inputs; results travel
back through a queue and must be picklable).  A shard whose process
dies without delivering a result (OOM-kill, SIGKILL, a crashed
interpreter) is retried once in a fresh process; a shard that exceeds
``timeout`` seconds has its worker **killed first** and is then retried
once in a fresh process — a second overrun raises
:class:`WorkerTimeout` with a diagnostic, never a silent hang.  Every
queued result is tagged with the attempt that produced it, so a
merely-slow (not dead) first attempt that managed to enqueue its result
in the instant before the kill can never race the retry: stale-attempt
results are discarded (counted in ``PoolStats.stale_results``), and the
shard's result always comes from the attempt the parent believes is
current.  When ``jobs <= 1``, ``fork`` is unavailable (or
``REPRO_PARALLEL_FORCE_SERIAL=1``), everything runs serially
in-process: same worker, same order, same results.

Chaos hook (used by the robustness tests, in the spirit of
``repro.faults``): ``REPRO_PARALLEL_KILL="<shard>:<attempt>[,...]"``
makes the matching child SIGKILL itself before touching its shard, so
the retry path can be exercised deterministically.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = [
    "WorkerError",
    "WorkerTimeout",
    "PoolStats",
    "shard_units",
    "fan_out",
    "run_shards",
    "current_attempt",
    "last_stats",
]

#: polling granularity of the parent's monitor loop (seconds)
_POLL_S = 0.02

#: how long a dead-looking worker gets for its already-queued result to
#: drain before the death is declared real (a child that finished and
#: exited cleanly may still have its result in flight in the queue)
_DEATH_GRACE_S = 1.0

#: attempt number inside a worker process (0 on first try, 1 on retry);
#: module-global so worker callables can observe retries without any
#: change to their signature
_ATTEMPT = 0


def current_attempt() -> int:
    """The retry attempt of the calling worker (0 first try, 1 retry).
    Serial execution always reports attempt 0."""
    return _ATTEMPT


class WorkerError(RuntimeError):
    """A shard failed permanently (worker died twice, or raised an
    exception that could not be re-raised verbatim)."""


class WorkerTimeout(RuntimeError):
    """A shard exceeded its time budget on both attempts; each overrun
    worker was killed and this diagnostic raised instead of hanging the
    harness."""


@dataclass
class PoolStats:
    """What one :func:`run_shards` call actually did (diagnostics +
    robustness tests; never part of any result artifact)."""

    jobs: int = 1
    shards: int = 0
    units: int = 0
    mode: str = "serial"          # "serial" | "fork"
    retries: int = 0
    worker_deaths: int = 0
    timeouts: int = 0             # workers killed for exceeding the budget
    stale_results: int = 0        # results from a superseded attempt


#: stats of the most recent pool invocation in this process (test +
#: diagnostic hook; results never depend on it)
_LAST_STATS = PoolStats()


def last_stats() -> PoolStats:
    return _LAST_STATS


def shard_units(n_units: int, jobs: int) -> List[List[int]]:
    """Round-robin partition of unit indices: shard ``i`` owns indices
    ``i, i+jobs, i+2*jobs, ...``.  Deterministic in ``(n_units, jobs)``;
    empty shards are dropped (``jobs > n_units``)."""
    jobs = max(1, jobs)
    shards = [list(range(i, n_units, jobs)) for i in range(jobs)]
    return [s for s in shards if s]


def _chaos_kill_set() -> frozenset:
    """Parse ``REPRO_PARALLEL_KILL`` into {(shard, attempt), ...}."""
    spec = os.environ.get("REPRO_PARALLEL_KILL", "")
    out = set()
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        shard, _, attempt = part.partition(":")
        out.add((int(shard), int(attempt or 0)))
    return frozenset(out)


def _fork_available() -> bool:
    if os.environ.get("REPRO_PARALLEL_FORCE_SERIAL") == "1":
        return False
    try:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()
    except ImportError:  # pragma: no cover - stdlib always has it
        return False


def _shard_main(worker, shard_id: int, shard: Any,
                attempt: int, queue) -> None:
    """Child entry point: run one shard, ship its result back."""
    global _ATTEMPT
    _ATTEMPT = attempt
    if (shard_id, attempt) in _chaos_kill_set():
        os.kill(os.getpid(), signal.SIGKILL)
    try:
        queue.put((shard_id, attempt, "ok", worker(shard)))
    except BaseException as exc:
        try:
            payload = pickle.dumps(exc)
            queue.put((shard_id, attempt, "exc", payload))
        except Exception:
            queue.put((shard_id, attempt, "err", traceback.format_exc()))


@dataclass
class _LiveShard:
    shard_id: int
    process: Any
    attempt: int
    started: float = field(default_factory=time.monotonic)
    dead_since: Optional[float] = None


def fan_out(
    worker: Callable[[Any], Any],
    units: Sequence[Any],
    jobs: int = 1,
    *,
    timeout: Optional[float] = None,
    label: str = "work",
) -> List[Any]:
    """Apply ``worker`` to every unit, fanned out over up to ``jobs``
    forked processes, and return the per-unit results **in input
    order** — bit-for-bit what ``[worker(u) for u in units]`` returns,
    because that is literally the serial path.

    ``worker`` must be a deterministic function of its unit (plus
    whatever it closes over, which the fork snapshots); its return value
    must be picklable.  Exceptions raised by a worker are re-raised in
    the parent with their original type whenever they pickle."""
    shards = shard_units(len(units), jobs)

    def shard_worker(indices: List[int]) -> List[Any]:
        return [worker(units[i]) for i in indices]

    shard_results = run_shards(
        shard_worker, shards, jobs=jobs, timeout=timeout, label=label
    )
    merged: List[Any] = [None] * len(units)
    for indices, results in zip(shards, shard_results):
        for idx, value in zip(indices, results):
            merged[idx] = value
    return merged


def run_shards(
    worker: Callable[[Any], Any],
    shards: Sequence[Any],
    jobs: int = 1,
    *,
    timeout: Optional[float] = None,
    label: str = "work",
) -> List[Any]:
    """Lower-level primitive: run ``worker(shard)`` once per shard (one
    process each, at most ``jobs`` live at a time) and return the shard
    results in shard order.  Use this instead of :func:`fan_out` when a
    shard benefits from shared incremental state across its units (the
    crash sweep's point-to-point walker)."""
    global _LAST_STATS
    stats = PoolStats(jobs=max(1, jobs), shards=len(shards),
                      units=sum(len(s) if hasattr(s, "__len__") else 1
                                for s in shards))
    _LAST_STATS = stats
    if not shards:
        return []
    # A single shard runs in-process — unless a timeout was requested,
    # which is only enforceable on a child we can kill.
    if jobs <= 1 or not _fork_available() or \
            (len(shards) == 1 and timeout is None):
        global _ATTEMPT
        _ATTEMPT = 0
        return [worker(shard) for shard in shards]

    import multiprocessing
    from queue import Empty

    ctx = multiprocessing.get_context("fork")
    stats.mode = "fork"
    queue = ctx.Queue()
    results: Dict[int, Any] = {}
    attempts: Dict[int, int] = {i: 0 for i in range(len(shards))}
    pending = list(range(len(shards)))
    live: Dict[int, _LiveShard] = {}

    def spawn(shard_id: int) -> None:
        proc = ctx.Process(
            target=_shard_main,
            args=(worker, shard_id, shards[shard_id],
                  attempts[shard_id], queue),
        )
        proc.daemon = True
        proc.start()
        live[shard_id] = _LiveShard(shard_id, proc, attempts[shard_id])

    def reap(shard_id: int) -> None:
        entry = live.pop(shard_id, None)
        if entry is not None:
            entry.process.join(timeout=5)
            if entry.process.is_alive():  # pragma: no cover - defensive
                entry.process.kill()

    def shutdown() -> None:
        for entry in list(live.values()):
            if entry.process.is_alive():
                entry.process.kill()
            entry.process.join(timeout=5)
        live.clear()

    try:
        while len(results) < len(shards):
            while pending and len(live) < jobs:
                spawn(pending.pop(0))
            try:
                shard_id, attempt, status, payload = \
                    queue.get(timeout=_POLL_S)
            except Empty:  # no result yet — check worker health
                now = time.monotonic()
                for shard_id, entry in list(live.items()):
                    if entry.process.is_alive():
                        if timeout is not None \
                                and now - entry.started > timeout:
                            # Kill the stale worker FIRST — the retry
                            # must never share the machine with its
                            # predecessor, and any result the
                            # predecessor slipped into the queue is
                            # dropped by the attempt tag below.
                            entry.process.kill()
                            reap(shard_id)
                            stats.timeouts += 1
                            if attempts[shard_id] == 0:
                                attempts[shard_id] = 1
                                stats.retries += 1
                                spawn(shard_id)
                                continue
                            raise WorkerTimeout(
                                "%s shard %d (attempt %d) exceeded its "
                                "%.1fs budget and was killed; partial "
                                "results were discarded"
                                % (label, shard_id, entry.attempt, timeout)
                            )
                        continue
                    # a worker that died (rather than overran) is always
                    # reported as a death, even if it also sat past the
                    # budget while the parent was looking elsewhere
                    # the process is gone; give an already-queued result
                    # a grace window to drain before declaring a death
                    if entry.dead_since is None:
                        entry.dead_since = now
                        continue
                    if now - entry.dead_since < _DEATH_GRACE_S:
                        continue
                    exitcode = entry.process.exitcode
                    reap(shard_id)
                    stats.worker_deaths += 1
                    if attempts[shard_id] == 0:
                        attempts[shard_id] = 1
                        stats.retries += 1
                        spawn(shard_id)
                    else:
                        raise WorkerError(
                            "%s shard %d died twice (last exit code %s); "
                            "giving up" % (label, shard_id, exitcode)
                        )
                continue
            if attempt != attempts[shard_id]:
                # a late duplicate from a killed/superseded attempt —
                # the retry owns this shard now; discard the straggler
                stats.stale_results += 1
                continue
            reap(shard_id)
            if status == "ok":
                results[shard_id] = payload
            elif status == "exc":
                raise pickle.loads(payload)
            else:
                raise WorkerError(
                    "%s shard %d raised:\n%s" % (label, shard_id, payload)
                )
        return [results[i] for i in range(len(shards))]
    finally:
        shutdown()
        queue.close()
