"""The curated entry list ``repro bench`` tracks over time.

Two entry kinds cover the repo's two serving surfaces:

* ``sim`` — one benchmark from the figure suite simulated under the
  LightWSP backend (the hot path behind every ``benchmarks/bench_*.py``
  figure script): cycles, slowdown vs memory-mode, instruction
  throughput, persist-path traffic, persistence efficiency;
* ``store`` — one YCSB-style mix served from the persistent KV store
  (the ``repro serve`` hot path): request throughput and the
  p50/p95/p99 tail-latency quantiles.

The list is deliberately small and representative rather than
exhaustive — a perf-trajectory artifact is only useful if regenerating
it is cheap enough to run on every PR.  Entries marked ``smoke`` form
the CI subset (``repro bench --smoke``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["BenchSpec", "BENCH_SPECS", "select_specs"]


@dataclass(frozen=True)
class BenchSpec:
    """One tracked entry: what to run and at what size."""

    name: str                 # entry key in BENCH_*.json
    kind: str                 # "sim" | "store"
    target: str               # benchmark name (sim) / mix name (store)
    smoke: bool = False       # part of the CI smoke subset?
    # store-kind sizing (ops scales with the runner's --scale)
    ops: int = 1200
    keyspace: int = 64
    shards: int = 2
    batch: int = 64


#: the tracked entries, in canonical (report) order
BENCH_SPECS: List[BenchSpec] = [
    # sim plane: two memory-bound, two compute/store-heavy, two
    # multithreaded (STAMP + WHISPER) — every figure-suite shape
    BenchSpec("sim/bzip2", "sim", "bzip2", smoke=True),
    BenchSpec("sim/mcf", "sim", "mcf"),
    BenchSpec("sim/xz", "sim", "xz", smoke=True),
    BenchSpec("sim/namd", "sim", "namd"),
    BenchSpec("sim/vacation", "sim", "vacation"),
    BenchSpec("sim/tpcc", "sim", "tpcc"),
    # store plane: the YCSB mixes the server chapter reports
    BenchSpec("store/ycsb-a", "store", "ycsb-a", smoke=True),
    BenchSpec("store/ycsb-b", "store", "ycsb-b"),
    BenchSpec("store/ycsb-c", "store", "ycsb-c"),
    BenchSpec("store/crud", "store", "crud", smoke=True),
]

_BY_NAME: Dict[str, BenchSpec] = {s.name: s for s in BENCH_SPECS}


def select_specs(
    names: List[str] = None, smoke: bool = False
) -> List[BenchSpec]:
    """The entries one run covers: an explicit subset, the smoke subset,
    or everything."""
    if names:
        unknown = [n for n in names if n not in _BY_NAME]
        if unknown:
            raise KeyError(
                "unknown bench entries: %s (available: %s)"
                % (", ".join(unknown), ", ".join(_BY_NAME))
            )
        return [_BY_NAME[n] for n in names]
    if smoke:
        return [s for s in BENCH_SPECS if s.smoke]
    return list(BENCH_SPECS)
