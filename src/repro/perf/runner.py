"""The ``repro bench`` runner: execute the curated entries, emit
``BENCH_<tag>.json``.

Every metric except wall-clock time is **deterministic** — simulated
cycles, persist traffic, and request latencies come out of the timing
model, not the host — so two runs of the same tree produce the same
numbers and the regression gate (:mod:`repro.perf.regress`) compares
real quantities, not noise.  Wall-clock seconds are recorded per entry
(the harness's own cost trajectory matters too) but are informational
only and never gate.

Entries are independent, so ``jobs > 1`` fans them out one-per-worker
through :mod:`repro.parallel`; the report is identical for every
``jobs`` value apart from the wall-time fields.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .suite import BenchSpec, select_specs

__all__ = ["BenchEntry", "BenchReport", "run_bench", "format_report"]

#: schema version of the BENCH_*.json artifact
BENCH_VERSION = 1

#: smoke sizing: small enough for a CI gate, large enough to cross the
#: interesting paths (compaction, multi-epoch serving)
SMOKE_SCALE = 0.02
SMOKE_OPS = 200
SMOKE_KEYSPACE = 32

#: how many functions the --profile JSON summary keeps
PROFILE_TOP_N = 40


@dataclass
class BenchEntry:
    """One measured entry."""

    name: str
    kind: str
    metrics: Dict[str, float]
    wall_s: float

    def to_json(self) -> Dict:
        return {
            "kind": self.kind,
            "metrics": dict(self.metrics),
            "wall_s": self.wall_s,
        }


@dataclass
class BenchReport:
    """Everything one ``repro bench`` run measured."""

    seed: int
    scale: float
    smoke: bool
    jobs: int
    entries: List[BenchEntry] = field(default_factory=list)
    wall_s_total: float = 0.0

    def to_json(self) -> Dict:
        return {
            "kind": "repro-bench",
            "version": BENCH_VERSION,
            "seed": self.seed,
            "scale": self.scale,
            "smoke": self.smoke,
            "jobs": self.jobs,
            "entries": {e.name: e.to_json() for e in self.entries},
            "wall_s_total": self.wall_s_total,
        }

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def _run_sim_entry(spec: BenchSpec, scale: float) -> Dict[str, float]:
    from ..analysis import ExperimentContext
    from ..compiler.pipeline import compile_program
    from ..config import DEFAULT_CONFIG, CompilerConfig
    from ..runtime import get_backend
    from ..workloads.suite import BENCHMARKS

    backend = get_backend(None)  # lightwsp-lrpo
    ctx = ExperimentContext(scale=scale, benchmarks=[spec.target])
    slowdown, res = ctx.slowdown(spec.target, backend.policy)
    ns = DEFAULT_CONFIG.cycles_to_ns(res.cycles)
    # Static placement footprint (ungated observability: the placement
    # minimizer's effect shows up here and in the regress diff notes).
    stats = compile_program(
        BENCHMARKS[spec.target].build(scale=scale),
        CompilerConfig(), verify=False,
    ).stats
    return {
        "cycles": res.cycles,
        "slowdown": slowdown,
        "boundaries": float(stats.boundaries),
        "instrumentation_stores": float(stats.instrumentation_stores),
        "instructions": float(res.instructions),
        "throughput_minst_s": (res.instructions / ns * 1e3) if ns else 0.0,
        "persist_entries": float(res.persist_entries),
        "persist_bytes": float(
            res.persist_entries * 8 * backend.policy.entry_factor
        ),
        "efficiency": res.persistence_efficiency,
    }


def _run_store_entry(
    spec: BenchSpec, seed: int, smoke: bool
) -> Dict[str, float]:
    from ..store import run_serve

    report = run_serve(
        workload=spec.target,
        ops=SMOKE_OPS if smoke else spec.ops,
        shards=spec.shards,
        seed=seed,
        keyspace=SMOKE_KEYSPACE if smoke else spec.keyspace,
        batch=spec.batch,
        dist="zipfian",
    )
    lat = report.latency
    return {
        "throughput_mops": report.throughput_mops,
        "p50": lat["p50"],
        "p95": lat["p95"],
        "p99": lat["p99"],
        "mean": lat["mean"],
        "ops": float(report.total_ops),
        "sim_ns": report.sim_ns,
        "commits": float(sum(s.commits for s in report.shards)),
        "epochs": float(sum(s.epochs for s in report.shards)),
    }


def _write_profile(prof: "cProfile.Profile", path: str) -> None:
    """Persist a profile twice: the raw pstats dump next to a JSON
    summary of the hottest functions (by cumulative time), so the
    artifact is both loadable into ``pstats``/snakeviz and greppable."""
    import pstats

    prof.dump_stats(path)
    stats = pstats.Stats(prof)
    rows = []
    for (filename, lineno, func), (cc, nc, tt, ct, _callers) in sorted(
        stats.stats.items(), key=lambda item: -item[1][3]
    )[:PROFILE_TOP_N]:
        rows.append({
            "function": "%s:%d(%s)" % (filename, lineno, func),
            "ncalls": nc,
            "primitive_calls": cc,
            "tottime_s": round(tt, 6),
            "cumtime_s": round(ct, 6),
        })
    summary = {
        "kind": "repro-bench-profile",
        "total_calls": stats.total_calls,
        "total_time_s": round(stats.total_tt, 6),
        "top_cumulative": rows,
    }
    with open(path + ".json", "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")


def run_bench(
    entries: Optional[List[str]] = None,
    smoke: bool = False,
    seed: int = 0,
    scale: float = 0.25,
    jobs: int = 1,
    worker_timeout: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
    trace_path: Optional[str] = None,
    profile_path: Optional[str] = None,
) -> BenchReport:
    """Run the curated benchmark entries and return the report.

    ``smoke`` shrinks every entry to CI size (and restricts the default
    entry list to the smoke subset); ``entries`` names an explicit
    subset instead.  ``jobs`` fans entries out one per worker.
    ``trace_path`` additionally records the run as a trace.v1 JSONL
    artifact (bench_start, one bench_entry per entry, bench_end) —
    note the wall_s fields there are informational, so a bench trace
    is *not* byte-reproducible across runs, unlike every other trace
    the system writes.  ``profile_path`` wraps the measurement in
    cProfile and writes a pstats dump there plus a ``<path>.json``
    hot-function summary; it forces ``jobs=1`` so the work stays in
    the profiled process."""
    import cProfile

    from ..parallel import fan_out
    from ..trace import JsonlTrace, NullTrace

    say = progress or (lambda msg: None)
    specs = select_specs(entries, smoke=smoke)
    sim_scale = min(scale, SMOKE_SCALE) if smoke else scale
    if profile_path:
        jobs = 1  # forked workers would escape the profiler

    # Import the measurement dependencies in the parent before forking:
    # workers inherit warm modules, so per-entry wall_s measures the
    # run, not a cold import of the analysis/store planes per worker.
    from .. import analysis as _analysis  # noqa: F401
    from .. import store as _store  # noqa: F401
    from ..runtime import get_backend as _get_backend  # noqa: F401
    from ..workloads import suite as _workload_suite  # noqa: F401

    def measure(spec: BenchSpec) -> BenchEntry:
        t0 = time.perf_counter()
        if spec.kind == "sim":
            metrics = _run_sim_entry(spec, sim_scale)
        else:
            metrics = _run_store_entry(spec, seed, smoke)
        return BenchEntry(
            name=spec.name, kind=spec.kind, metrics=metrics,
            wall_s=round(time.perf_counter() - t0, 4),
        )

    trace = JsonlTrace(trace_path) if trace_path else NullTrace()
    trace.emit(
        "bench_start", seed=seed, scale=sim_scale, smoke=smoke,
        jobs=max(1, jobs), entries=[spec.name for spec in specs],
    )
    prof = cProfile.Profile() if profile_path else None
    if prof is not None:
        prof.enable()
    t0 = time.perf_counter()
    measured = fan_out(
        measure, specs, jobs=jobs, timeout=worker_timeout, label="bench"
    )
    if prof is not None:
        prof.disable()
        _write_profile(prof, profile_path)
    report = BenchReport(
        seed=seed, scale=sim_scale, smoke=smoke, jobs=max(1, jobs),
        entries=measured,
        wall_s_total=round(time.perf_counter() - t0, 4),
    )
    for entry in report.entries:
        say("%-16s %s" % (entry.name, _one_line(entry)))
        trace.emit(
            "bench_entry", name=entry.name, kind=entry.kind,
            metrics=dict(entry.metrics), wall_s=entry.wall_s,
        )
    trace.emit(
        "bench_end", entries=len(report.entries),
        wall_s_total=report.wall_s_total,
    )
    trace.close()
    return report


def _one_line(entry: BenchEntry) -> str:
    m = entry.metrics
    if entry.kind == "sim":
        return (
            "%(cycles)12.0f cycles  slowdown %(slowdown)5.3f  "
            "%(persist_entries)7.0f persist-ent  eff %(efficiency)6.2f%%"
            % m
        )
    return (
        "%(throughput_mops)8.2f Mops/s  p50 %(p50)6.0f  p95 %(p95)6.0f  "
        "p99 %(p99)6.0f ns" % m
    )


def format_report(report: BenchReport) -> str:
    lines = [
        "bench: %d entr%s, seed=%d scale=%.3g%s (jobs=%d, %.1fs wall)"
        % (len(report.entries),
           "y" if len(report.entries) == 1 else "ies",
           report.seed, report.scale,
           " [smoke]" if report.smoke else "", report.jobs,
           report.wall_s_total),
    ]
    for entry in report.entries:
        lines.append("  %-16s %s" % (entry.name, _one_line(entry)))
    return "\n".join(lines)
