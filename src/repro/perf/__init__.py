"""``repro bench``: the curated perf suite + the regression gate.

See :mod:`repro.perf.suite` for what is tracked, :mod:`repro.perf.runner`
for how it is measured (deterministic metrics, parallel fan-out), and
:mod:`repro.perf.regress` for the ``--baseline`` diff semantics.
"""

from .regress import (
    BenchDiff,
    Regression,
    diff_reports,
    format_diff,
    load_report,
)
from .runner import BenchEntry, BenchReport, format_report, run_bench
from .suite import BENCH_SPECS, BenchSpec, select_specs

__all__ = [
    "BENCH_SPECS",
    "BenchDiff",
    "BenchEntry",
    "BenchReport",
    "BenchSpec",
    "Regression",
    "diff_reports",
    "format_diff",
    "format_report",
    "load_report",
    "run_bench",
    "select_specs",
]
