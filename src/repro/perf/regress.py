"""The benchmark-regression gate: diff two ``BENCH_*.json`` artifacts.

Each metric has a declared direction; a *gated* metric that moves in
the bad direction by more than the threshold (default 10%) is a
regression and fails the diff.  Wall-clock fields never gate — they
vary with the host — and neither do workload-size counters (``ops``,
``instructions``): those are inputs, not outcomes, but a *change* in
them is reported so a silently resized workload can't masquerade as a
speedup.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = [
    "LOWER_IS_BETTER",
    "HIGHER_IS_BETTER",
    "BenchDiff",
    "Regression",
    "diff_reports",
    "load_report",
    "format_diff",
]

#: gated metrics where a decrease is an improvement
LOWER_IS_BETTER = frozenset({
    "cycles", "slowdown", "persist_entries", "persist_bytes",
    "p50", "p95", "p99", "mean", "sim_ns", "commits",
})

#: gated metrics where an increase is an improvement
HIGHER_IS_BETTER = frozenset({
    "throughput_minst_s", "throughput_mops", "efficiency",
})

#: reported-but-never-gating (host-dependent or workload-size inputs)
INFORMATIONAL = frozenset({"wall_s", "ops", "instructions", "epochs"})


@dataclass
class Regression:
    """One gated metric that got worse past the threshold."""

    entry: str
    metric: str
    baseline: float
    current: float
    change: float      # signed fraction, positive == worse

    def format(self) -> str:
        return (
            "%-16s %-18s %12.4g -> %-12.4g (%+.1f%% worse)"
            % (self.entry, self.metric, self.baseline, self.current,
               self.change * 100.0)
        )


@dataclass
class BenchDiff:
    """The verdict of one baseline comparison."""

    threshold: float
    compared: int = 0                      # gated metric comparisons made
    regressions: List[Regression] = field(default_factory=list)
    improvements: List[Regression] = field(default_factory=list)
    #: entries present on only one side, or whose size-inputs changed
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def load_report(path: str) -> Dict:
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("kind") != "repro-bench":
        raise ValueError("%s is not a repro-bench artifact" % path)
    return payload


def _worseness(metric: str, base: float, cur: float) -> float:
    """Signed fraction by which ``cur`` is worse than ``base`` (positive
    == regression) for a gated metric."""
    if metric in LOWER_IS_BETTER:
        return (cur - base) / base
    return (base - cur) / base


def diff_reports(
    baseline: Dict, current: Dict, threshold: float = 0.10
) -> BenchDiff:
    """Compare two bench artifacts (parsed JSON); see module docstring."""
    diff = BenchDiff(threshold=threshold)
    base_entries = baseline.get("entries", {})
    cur_entries = current.get("entries", {})
    for name in sorted(set(base_entries) | set(cur_entries)):
        if name not in cur_entries:
            diff.notes.append("entry %s missing from current run" % name)
            continue
        if name not in base_entries:
            diff.notes.append("entry %s is new (no baseline)" % name)
            continue
        base_m = base_entries[name].get("metrics", {})
        cur_m = cur_entries[name].get("metrics", {})
        for metric in sorted(set(base_m) & set(cur_m)):
            base, cur = base_m[metric], cur_m[metric]
            if metric in INFORMATIONAL:
                if base != cur and metric != "wall_s":
                    diff.notes.append(
                        "%s: size input %s changed %g -> %g (comparison "
                        "may not be like-for-like)"
                        % (name, metric, base, cur)
                    )
                continue
            if metric not in LOWER_IS_BETTER | HIGHER_IS_BETTER:
                continue
            if base == 0.0:
                if cur != 0.0:
                    diff.notes.append(
                        "%s: %s baseline is 0, cannot compute a ratio "
                        "(now %g)" % (name, metric, cur)
                    )
                continue
            diff.compared += 1
            worse = _worseness(metric, base, cur)
            record = Regression(
                entry=name, metric=metric, baseline=base, current=cur,
                change=worse,
            )
            if worse > threshold:
                diff.regressions.append(record)
            elif worse < -threshold:
                diff.improvements.append(record)
    return diff


def format_diff(diff: BenchDiff) -> str:
    lines = [
        "baseline diff: %d gated comparisons, threshold %.0f%%"
        % (diff.compared, diff.threshold * 100.0)
    ]
    for reg in diff.regressions:
        lines.append("  REGRESSION " + reg.format())
    for imp in diff.improvements:
        lines.append("  improved   " + imp.format())
    for note in diff.notes:
        lines.append("  note: " + note)
    lines.append(
        "verdict: %s"
        % ("PASS" if diff.ok else
           "FAIL (%d regression(s) past %.0f%%)"
           % (len(diff.regressions), diff.threshold * 100.0))
    )
    return "\n".join(lines)
