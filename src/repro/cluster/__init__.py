"""``repro.cluster`` — a resilient sharded store cluster on LightWSP.

N store shards (consistent hashing over keys), each a full LightWSP
machine with its own pluggable persist backend, run as real worker
processes via :mod:`repro.parallel`, fronted by a coordinator that
routes GET/PUT/DELETE/SCAN and executes cross-shard multi-key writes as
epoch-ordered two-phase commits over shadow keys.  The robustness spine:

* a supervisor that detects shard crashes and drives
  recovery-and-rejoin (DOWN -> DEAD -> RECOVERING -> UP);
* a client protocol with idempotency tokens, per-request deadlines, and
  seeded-jitter exponential backoff — retries through duplicate and
  delayed deliveries never double-apply an operation;
* graceful degradation: un-replicated, a shard dead past its deadline
  turns its key range into typed ``unavailable`` errors while every
  other range keeps serving;
* per-range **replication** (``replicate=True``): primary + follower
  images with epoch-ordered log shipping, promote-on-DEAD behind a
  bumped fencing token — the range keeps serving with zero acked-write
  loss instead of degrading;
* **live resharding** (``reshard_at``): a new shard joins the extended
  hash ring and the arcs it steals migrate — chunked copy, dirty-key
  delta sync, one atomic handoff between epochs — while clients keep
  being served.

The cluster oracle (:mod:`repro.cluster.oracle`) extends the store's
acked-prefix theorem: zero acked-write loss and no visible 2PC
half-commit after *any* shard-kill schedule; the seeded chaos campaign
(:mod:`repro.cluster.chaos`) hammers the cluster with kills, partitions,
and message faults, shrinks failures, and replays from the JSONL trace.
See DESIGN.md ("The resilient store cluster") for the full narrative.

Layers:

* :mod:`repro.cluster.ring`        — consistent-hash key placement
* :mod:`repro.cluster.protocol`    — tokens, deadlines, typed errors, backoff
* :mod:`repro.cluster.workload`    — logical client ops + transactions
* :mod:`repro.cluster.shard`       — the pure per-epoch shard executor
* :mod:`repro.cluster.supervisor`  — the crash/recovery state machine
* :mod:`repro.cluster.coordinator` — routing, retries, 2PC, the epoch loop
* :mod:`repro.cluster.oracle`      — zero acked-write loss + atomicity
* :mod:`repro.cluster.chaos`       — fault vocabulary, campaign, replay
"""

from .chaos import (
    CLUSTER_FAULT_KINDS,
    ClusterCampaignReport,
    ClusterFault,
    ClusterScenario,
    chaos_from_json,
    chaos_to_json,
    generate_cluster_chaos,
    replay_cluster_trace,
    run_cluster_campaign,
)
from .coordinator import Applied, ClusterSession
from .oracle import check_cluster
from .protocol import (
    ABORTED,
    DEADLINE_EXCEEDED,
    FOLLOWER,
    OK,
    PRIMARY,
    ROLES,
    STATUSES,
    UNAVAILABLE,
    ClusterResponse,
    RetryPolicy,
    SessionTracker,
    fence_admits,
)
from .ring import DEFAULT_VNODES, HashRing, moved_keys
from .shard import EpochResult, RangeState, ShardState, execute_shard_epoch
from .supervisor import DEAD, DOWN, RECOVERING, SUSPECT, UP, Supervisor
from .workload import LogicalOp, generate_cluster_ops

__all__ = [
    "CLUSTER_FAULT_KINDS",
    "ClusterCampaignReport",
    "ClusterFault",
    "ClusterScenario",
    "chaos_from_json",
    "chaos_to_json",
    "generate_cluster_chaos",
    "replay_cluster_trace",
    "run_cluster_campaign",
    "Applied",
    "ClusterSession",
    "check_cluster",
    "ABORTED",
    "DEADLINE_EXCEEDED",
    "FOLLOWER",
    "OK",
    "PRIMARY",
    "ROLES",
    "STATUSES",
    "UNAVAILABLE",
    "ClusterResponse",
    "RetryPolicy",
    "SessionTracker",
    "fence_admits",
    "DEFAULT_VNODES",
    "HashRing",
    "moved_keys",
    "EpochResult",
    "RangeState",
    "ShardState",
    "execute_shard_epoch",
    "DEAD",
    "DOWN",
    "RECOVERING",
    "SUSPECT",
    "UP",
    "Supervisor",
    "LogicalOp",
    "generate_cluster_ops",
]
