"""The cluster coordinator: routing, retries, supervision, and 2PC.

A :class:`ClusterSession` drives N store shards — each a full LightWSP
machine with its own pluggable persist backend, executed as real worker
processes through :mod:`repro.parallel` — in lock-step *epochs*:

1. **supervise** — tick the shard state machine; shards whose darkness
   expired rejoin (their recovery completed the interrupted batch; the
   acks it produced in the dark are delivered now).
2. **admit** — pending logical ops acquire their per-key locks (a
   transaction locks all its keys; FIFO per key) and get a deadline.
3. **dispatch** — every due sub-operation is routed over the hash ring
   and batched per shard with a fencing sequence number
   (``first_id = served``); batches execute via :func:`fan_out`, one
   forked worker per busy shard.  The cluster chaos layer perturbs the
   exchange: kills crash the machine mid-epoch, requests and acks drop,
   delay, or duplicate, partitions silence a shard coordinator-side.
4. **ack** — surviving acknowledgements complete sub-ops (idempotency
   tokens make duplicates no-ops), drive the 2PC decision log, and
   complete flights.
5. **expire** — ops past their deadline complete with a typed error:
   ``unavailable`` when the blamed shard is not serving (and immediately
   when the supervisor has declared it dead — graceful degradation:
   the dead range fails fast while every other range keeps serving),
   ``deadline_exceeded`` when the shard is up but the retries lost the
   race.  Writes whose application is unknown are marked indeterminate.

Cross-shard multi-key writes are epoch-ordered two-phase commits over
*shadow keys*: prepare PUTs the value under ``key + keyspace`` on the
owner shard, the coordinator logs the commit/abort decision, and the
commit phase PUTs the real key and DELETEs the shadow (abort just
DELETEs the shadow).  Post-decision sub-ops retry forever — a decision,
once logged, always drains.  No client ever reads a shadow key (scans
are clamped to the real keyspace), so a half-prepared transaction is
invisible by construction and a *visible* shadow key at quiesce is a
cluster-oracle violation.

Everything is deterministic in ``(workload seed, chaos schedule,
policy)``: executor calls are pure functions fanned out per epoch and
merged in shard order, and the JSONL trace is emitted only from the
merged timeline — so the same seed produces a byte-identical trace at
any ``--jobs``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..compiler.pipeline import compile_program
from ..config import DEFAULT_CONFIG, SystemConfig
from ..faults.model import FaultEvent
from ..parallel import fan_out
from ..runtime.backend import get_backend, require_recovering
from ..store.layout import OP_DELETE, OP_GET, OP_PUT, OP_SCAN
from ..store.oracle import StoreModel
from ..store.programs import Request, build_store_program
from ..trace import NullTrace
from .chaos import ClusterFault
from .protocol import (
    ABORTED,
    DEADLINE_EXCEEDED,
    OK,
    UNAVAILABLE,
    ClusterResponse,
    RetryPolicy,
)
from .ring import HashRing
from .shard import ShardState, execute_shard_epoch
from .supervisor import Supervisor
from .workload import LogicalOp, generate_cluster_ops

__all__ = ["ClusterSession", "mix_int"]


def mix_int(*parts) -> int:
    """Seeded, PYTHONHASHSEED-independent integer stream."""
    text = ":".join(str(p) for p in parts)
    return int.from_bytes(
        hashlib.sha256(text.encode()).digest()[:8], "big"
    )


@dataclass
class _SubOp:
    """One routed store request belonging to a logical op."""

    token: int
    index: int                  # position within the flight's phase
    shard: int
    request: Request
    post_decision: bool = False  # 2PC commit/abort: retry forever
    acked: bool = False
    attempts: int = 0
    next_due: int = 0
    value: Optional[int] = None


@dataclass
class _Flight:
    """A logical op in flight: its sub-ops, phase, and deadline."""

    op: LogicalOp
    admitted: int
    deadline: int
    phase: str                  # "single" | "prepare" | "commit" | "abort"
    subops: List[_SubOp] = field(default_factory=list)
    decision: str = ""          # txn only: "" | "commit" | "abort"
    decision_epoch: int = -1
    response: Optional[ClusterResponse] = None

    @property
    def settled(self) -> bool:
        """Response issued and every sub-op drained (locks releasable)."""
        return self.response is not None and all(
            s.acked for s in self.subops
        )

    def total_attempts(self) -> int:
        return sum(s.attempts for s in self.subops)


class ClusterSession:
    """One run of the resilient sharded store cluster."""

    def __init__(
        self,
        n_shards: int,
        keyspace: int,
        ops: Sequence[LogicalOp],
        seed: int = 0,
        backend: str = None,
        policy: Optional[RetryPolicy] = None,
        chaos: Sequence[ClusterFault] = (),
        value_words: int = 2,
        batch: int = 8,
        vnodes: int = 16,
        jobs: int = 1,
        max_epochs: int = 400,
        config: SystemConfig = DEFAULT_CONFIG,
        trace=None,
        verify: Optional[bool] = None,
    ) -> None:
        from ..store.layout import StoreLayout

        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards
        self.keyspace = keyspace
        self.seed = seed
        self.backend = require_recovering(
            get_backend(backend), "the cluster's crash-recovery supervisor"
        )
        self.policy = policy or RetryPolicy(seed=seed)
        self.config = config
        self.jobs = jobs
        self.max_epochs = max_epochs
        self.trace = trace if trace is not None else NullTrace()
        # shadow keys live at key + keyspace, so the layout is sized for
        # both halves; scans are clamped to the real half by the workload
        sizing = StoreLayout.sized(
            2 * keyspace, value_words=value_words, max_batch=batch
        )
        prog, self.layout = build_store_program(sizing, epoch_base=0)
        self.compiled = compile_program(prog, config.compiler, verify=verify)
        self.ring = HashRing(n_shards, vnodes)
        self.shards = [
            ShardState(shard=i, model=StoreModel(self.layout))
            for i in range(n_shards)
        ]
        self.supervisor = Supervisor(n_shards, self.policy.shard_deadline)
        self.pending: List[LogicalOp] = list(ops)
        self.ops_by_token: Dict[int, LogicalOp] = {
            op.token: op for op in self.pending
        }
        self.inflight: Dict[int, _Flight] = {}
        self.locks: Dict[int, int] = {}          # key -> token
        self.responses: Dict[int, ClusterResponse] = {}
        self.violations: List[str] = []
        #: ground truth: every request actually applied, in application
        #: order per shard: (shard, global_id, token, request)
        self.applied_log: List[Tuple[int, int, int, Request]] = []
        self.decision_log: List[Tuple[int, int, str]] = []
        self.epoch = 0
        self.admit_cap = max(2, 2 * n_shards)
        # chaos, indexed for O(1) lookup per (epoch, shard)
        self._kills: Dict[Tuple[int, int], ClusterFault] = {}
        self._transport: Dict[Tuple[int, int], List[ClusterFault]] = {}
        self._partitions: List[ClusterFault] = []
        self._msg: Dict[Tuple[int, int], List[ClusterFault]] = {}
        for fault in chaos:
            key = (fault.epoch, fault.shard)
            if fault.kind == "kill":
                self._kills[key] = fault
            elif fault.kind == "partition":
                self._partitions.append(fault)
            elif fault.kind == "msg":
                self._msg.setdefault(key, []).append(fault)
            else:
                self._transport.setdefault(key, []).append(fault)
        self.chaos = list(chaos)
        #: acks awaiting delivery: (deliver_epoch, shard, [(global_id, value)])
        self._held: List[Tuple[int, int, List[Tuple[int, int]]]] = []
        #: global_id -> sub-op, for ack routing (ids are never reused)
        self._dispatched: Dict[Tuple[int, int], _SubOp] = {}
        self.counters: Dict[str, int] = {
            "dispatches": 0, "retries": 0, "replays_rejected": 0,
            "acks_dropped": 0, "acks_delayed": 0, "acks_duplicated": 0,
            "reqs_dropped": 0, "partition_drops": 0, "kills": 0,
        }

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        n_shards: int = 3,
        keyspace: int = 16,
        ops: int = 32,
        seed: int = 0,
        backend: str = None,
        mix: str = "crud",
        dist: str = "zipfian",
        txn_every: int = 6,
        chaos: Sequence[ClusterFault] = (),
        **kwargs,
    ) -> "ClusterSession":
        """Session over a generated workload (the common entry point)."""
        logical = generate_cluster_ops(
            mix, ops, keyspace, seed=seed, dist=dist, txn_every=txn_every
        )
        return cls(
            n_shards, keyspace, logical, seed=seed, backend=backend,
            chaos=chaos, **kwargs,
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def owner(self, key: int) -> int:
        """Owning shard; a shadow key lives with its real key."""
        real = key - self.keyspace if key > self.keyspace else key
        return self.ring.shard_for(real)

    def _lock_keys(self, op: LogicalOp) -> Tuple[int, ...]:
        if op.kind == "scan":
            return ()
        return op.keys

    def _scan_targets(self, op: LogicalOp) -> List[int]:
        start, count = op.keys[0], op.args[0]
        return sorted({
            self.owner(k) for k in range(start, start + count)
        })

    # ------------------------------------------------------------------
    # the epoch loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        self.trace.emit(
            "cluster_start",
            n_shards=self.n_shards, keyspace=self.keyspace,
            backend=self.backend.name, seed=self.seed,
            ring=self.ring.digest(), vnodes=self.ring.vnodes,
            ops=len(self.pending),
            policy={
                "ack_timeout": self.policy.ack_timeout,
                "backoff_base": self.policy.backoff_base,
                "backoff_cap": self.policy.backoff_cap,
                "max_attempts": self.policy.max_attempts,
                "deadline": self.policy.deadline,
                "shard_deadline": self.policy.shard_deadline,
            },
            chaos=[f.to_json() for f in self.chaos],
            sharding="epoch executors are pure per-shard functions merged "
                     "in shard order; --jobs never changes this trace",
        )
        while self.pending or self.inflight:
            if self.epoch >= self.max_epochs:
                self.violations.append(
                    "cluster did not quiesce within %d epochs "
                    "(%d pending, %d in flight)"
                    % (self.max_epochs, len(self.pending), len(self.inflight))
                )
                break
            self.step_epoch()
        self.finalize()

    def step_epoch(self) -> None:
        e = self.epoch
        rejoined = self.supervisor.tick(e)
        self._deliver_held(e)
        self._admit(e)
        completions = self._dispatch(e)
        completions.extend(self._expire(e))
        self._settle_flights()
        transitions = self.supervisor.drain_transitions()
        if completions or transitions or rejoined:
            self.trace.emit(
                "cluster_epoch",
                epoch=e,
                rejoined=rejoined,
                transitions=[
                    {"epoch": te, "shard": ts, "status": st}
                    for te, ts, st in transitions
                ],
                completions=[
                    self.responses[t].to_json() for t in completions
                ],
            )
        self.epoch = e + 1

    # ------------------------------------------------------------------
    def _admit(self, e: int) -> None:
        admitted = 0
        blocked: Set[int] = set()
        remaining: List[LogicalOp] = []
        for op in self.pending:
            keys = self._lock_keys(op)
            contended = any(k in self.locks or k in blocked for k in keys)
            if contended or admitted >= self.admit_cap:
                blocked.update(keys)
                remaining.append(op)
                continue
            for k in keys:
                self.locks[k] = op.token
            self.inflight[op.token] = self._launch(op, e)
            admitted += 1
        self.pending = remaining

    def _launch(self, op: LogicalOp, e: int) -> _Flight:
        flight = _Flight(
            op=op, admitted=e, deadline=e + self.policy.deadline,
            phase="prepare" if op.kind == "txn" else "single",
        )
        if op.kind == "txn":
            # phase 1: PUT each value under its shadow key on the owner
            for i, (k, seed_val) in enumerate(zip(op.keys, op.args)):
                shadow = k + self.keyspace
                flight.subops.append(_SubOp(
                    token=op.token, index=i, shard=self.owner(k),
                    request=(OP_PUT, shadow, seed_val), next_due=e,
                ))
        elif op.kind == "scan":
            start, count = op.keys[0], op.args[0]
            for i, shard in enumerate(self._scan_targets(op)):
                flight.subops.append(_SubOp(
                    token=op.token, index=i, shard=shard,
                    request=(OP_SCAN, start, count), next_due=e,
                ))
        else:
            key = op.keys[0]
            opcode = {"put": OP_PUT, "get": OP_GET, "delete": OP_DELETE}[
                op.kind
            ]
            arg = op.args[0] if op.kind == "put" else 0
            flight.subops.append(_SubOp(
                token=op.token, index=0, shard=self.owner(key),
                request=(opcode, key, arg), next_due=e,
            ))
        return flight

    # ------------------------------------------------------------------
    def _partitioned(self, shard: int, e: int) -> bool:
        return any(
            p.shard == shard and p.epoch <= e < p.until
            for p in self._partitions
        )

    def _dispatch(self, e: int) -> List[int]:
        # gather due sub-ops per serving shard, in token order
        per_shard: Dict[int, List[_SubOp]] = {}
        for token in sorted(self.inflight):
            flight = self.inflight[token]
            for sub in flight.subops:
                if sub.acked or sub.next_due > e:
                    continue
                health = self.supervisor[sub.shard]
                if not health.serving:
                    continue  # wait for rejoin (or the deadline)
                if not sub.post_decision and \
                        sub.attempts >= self.policy.max_attempts:
                    continue  # out of attempts; the deadline decides
                per_shard.setdefault(sub.shard, []).append(sub)
        exec_units = []
        for shard_id in sorted(per_shard):
            subs = per_shard[shard_id][: self.layout.max_batch]
            for sub in subs:
                attempt = sub.attempts
                sub.attempts += 1
                if attempt:
                    self.counters["retries"] += 1
                sub.next_due = self.policy.retry_at(sub.token, attempt, e)
            self.counters["dispatches"] += len(subs)
            if self._partitioned(shard_id, e):
                self.counters["partition_drops"] += len(subs)
                self.supervisor.observe_silence(shard_id, e)
                continue
            faults = self._transport.get((e, shard_id), [])
            if any(f.kind == "drop_req" for f in faults):
                self.counters["reqs_dropped"] += len(subs)
                self.supervisor.observe_silence(shard_id, e)
                continue
            state = self.shards[shard_id]
            first_id = state.served
            for i, sub in enumerate(subs):
                self._dispatched[(shard_id, first_id + i)] = sub
            kill = self._kills.get((e, shard_id))
            crash_step = None
            crash_event = None
            if kill is not None:
                crash_step = 1 + mix_int(
                    self.seed, "kill", e, shard_id
                ) % (60 * len(subs))
                crash_event = FaultEvent(kind="cut", step=crash_step)
                self.counters["kills"] += 1
            msg_events = [
                FaultEvent(
                    kind="msg", step=1, op=f.op, mc=f.mc, delay=f.delay
                )
                for f in self._msg.get((e, shard_id), [])
            ]
            exec_units.append({
                "shard": shard_id,
                "subs": subs,
                "first_id": first_id,
                "requests": [s.request for s in subs],
                "crash_step": crash_step,
                "crash_event": crash_event,
                "msg": msg_events,
                "kill": kill,
                "faults": faults,
            })

        # the actual shard work: pure executors over worker processes
        layout, compiled, config = self.layout, self.compiled, self.config
        backend_name = self.backend.name
        shard_states = self.shards

        def unit_worker(unit):
            state = shard_states[unit["shard"]]
            return execute_shard_epoch(
                unit["shard"], compiled, layout,
                state.image, state.served, unit["requests"],
                unit["first_id"], state.model, backend_name,
                config=config, crash_step=unit["crash_step"],
                crash_event=unit["crash_event"], msg_faults=unit["msg"],
            )
        results = fan_out(
            unit_worker, exec_units, jobs=self.jobs, label="cluster-epoch"
        )

        completions: List[int] = []
        for unit, result in zip(exec_units, results):
            completions.extend(self._merge(e, unit, result))

        # a power cut strikes whether or not a batch was in flight: a
        # kill on an idle (or partitioned/dropped) exchange still takes
        # the shard dark — there is just no interrupted batch to resume
        executed = {u["shard"] for u in exec_units}
        for (fe, fs), kill in sorted(self._kills.items()):
            if fe != e or fs in executed or not self.supervisor[fs].serving:
                continue
            self.counters["kills"] += 1
            self.supervisor.observe_crash(fs, e, kill.down_for)
            self.shards[fs].crashes += 1
            self.trace.emit(
                "shard_kill", epoch=e, shard=fs, step=0,
                down_for=kill.down_for, acked_before_cut=0,
                completed_in_dark=0,
            )
        return completions

    # ------------------------------------------------------------------
    def _merge(self, e: int, unit: Dict, result) -> List[int]:
        shard_id = unit["shard"]
        state = self.shards[shard_id]
        subs: List[_SubOp] = unit["subs"]
        first_id: int = unit["first_id"]
        requests: List[Request] = unit["requests"]
        self.violations.extend(result.violations)
        if result.outcome == "replay_rejected":
            # a live dispatch must always be at the shard's fence; the
            # dup_req chaos path exercises the fence via _replay_probe
            state.replays_rejected += 1
            self.counters["replays_rejected"] += 1
            self.violations.append(
                "shard %d epoch %d: live dispatch at id %d was fenced "
                "(coordinator sequencing bug)" % (shard_id, e, first_id)
            )
            return []

        # advance the ground truth: the batch is applied in full (a cut
        # resumes and completes on recovery — whole-system persistence)
        want = state.model.apply_all(requests)
        if result.results != want:
            self.violations.append(
                "shard %d epoch %d: durable results %r diverge from "
                "model %r" % (shard_id, e, result.results, want)
            )
        state.image = result.image
        state.served += len(requests)
        state.epochs += 1
        state.steps += result.steps
        for k, v in result.fault_counters.items():
            state.fault_counters[k] = state.fault_counters.get(k, 0) + v
        for i, sub in enumerate(subs):
            self.applied_log.append(
                (shard_id, first_id + i, sub.token, requests[i])
            )

        acks = [
            (first_id + p, result.results[p]) for p in result.acked_local
        ]
        late = [
            (first_id + p, result.results[p]) for p in result.late_local
        ]
        if result.outcome == "crashed":
            state.crashes += 1
            kill: ClusterFault = unit["kill"]
            self.supervisor.observe_crash(shard_id, e, kill.down_for)
            if late:
                # completed in the dark; delivered at the rejoin
                self._held.append((e + kill.down_for, shard_id, late))
            self.trace.emit(
                "shard_kill", epoch=e, shard=shard_id,
                step=result.crash_step, down_for=kill.down_for,
                acked_before_cut=len(acks), completed_in_dark=len(late),
            )

        # transport faults on the ack path
        dup = False
        for fault in unit["faults"]:
            if fault.kind == "drop_ack":
                self.counters["acks_dropped"] += len(acks)
                acks = []
            elif fault.kind == "delay_ack":
                self.counters["acks_delayed"] += len(acks)
                self._held.append((e + max(1, fault.delay), shard_id, acks))
                acks = []
            elif fault.kind == "dup_ack":
                dup = True
        if not acks and result.outcome == "ok":
            self.supervisor.observe_silence(shard_id, e)
        completions: List[int] = []
        for rounds in range(2 if dup else 1):
            if rounds:
                self.counters["acks_duplicated"] += len(acks)
            for global_id, value in acks:
                completions.extend(
                    self._deliver_ack(shard_id, global_id, value, e)
                )
        for fault in unit["faults"]:
            if fault.kind == "dup_req":
                self._replay_probe(shard_id, requests, first_id, e)
        return completions

    def _replay_probe(
        self, shard_id: int, requests: List[Request], first_id: int, e: int
    ) -> None:
        """A duplicated batch delivery: the shard's sequence fence must
        reject it (its ``served`` has moved past ``first_id``)."""
        state = self.shards[shard_id]
        probe = execute_shard_epoch(
            shard_id, self.compiled, self.layout,
            state.image, state.served, requests, first_id, state.model,
            self.backend.name, config=self.config,
        )
        if probe.outcome != "replay_rejected":
            self.violations.append(
                "shard %d epoch %d: duplicated batch at id %d was "
                "re-applied instead of fenced" % (shard_id, e, first_id)
            )
            return
        state.replays_rejected += 1
        self.counters["replays_rejected"] += 1
        self.trace.emit(
            "replay_rejected", epoch=e, shard=shard_id, first_id=first_id
        )

    # ------------------------------------------------------------------
    def _deliver_held(self, e: int) -> None:
        due = [h for h in self._held if h[0] <= e]
        if not due:
            return
        self._held = [h for h in self._held if h[0] > e]
        completions: List[int] = []
        for _, shard_id, acks in sorted(due, key=lambda h: (h[0], h[1])):
            for global_id, value in acks:
                completions.extend(
                    self._deliver_ack(shard_id, global_id, value, e)
                )
        for token in completions:
            self.trace.emit(
                "late_completion", epoch=e,
                response=self.responses[token].to_json(),
            )

    def _deliver_ack(
        self, shard_id: int, global_id: int, value: int, e: int
    ) -> List[int]:
        self.supervisor.observe_ack(shard_id, e)
        sub = self._dispatched.get((shard_id, global_id))
        if sub is None or sub.acked:
            return []  # duplicate or superseded: the token absorbs it
        sub.acked = True
        sub.value = value
        flight = self.inflight.get(sub.token)
        if flight is None or flight.response is not None:
            return []
        return self._advance_flight(flight, e)

    # ------------------------------------------------------------------
    # flight state machine
    # ------------------------------------------------------------------
    def _advance_flight(self, flight: _Flight, e: int) -> List[int]:
        if not all(s.acked for s in flight.subops):
            return []
        op = flight.op
        if flight.phase == "single":
            if op.kind == "scan":
                value = sum(s.value or 0 for s in flight.subops)
            else:
                value = flight.subops[0].value
            return self._respond(flight, OK, e, value=value)
        if flight.phase == "prepare":
            self._decide(flight, "commit", e)
            return []
        if flight.phase == "commit":
            return self._respond(flight, OK, e)
        return self._respond(flight, ABORTED, e)

    def _decide(self, flight: _Flight, decision: str, e: int) -> None:
        """Log a 2PC decision and launch its post-decision phase; the
        phase's sub-ops retry forever — the decision always drains."""
        op = flight.op
        flight.decision = decision
        flight.decision_epoch = e
        flight.phase = decision
        self.decision_log.append((e, op.token, decision))
        self.trace.emit(
            "txn_decision", epoch=e, token=op.token, decision=decision,
            keys=list(op.keys),
        )
        subops: List[_SubOp] = []
        for i, (k, seed_val) in enumerate(zip(op.keys, op.args)):
            shadow = k + self.keyspace
            shard = self.owner(k)
            if decision == "commit":
                subops.append(_SubOp(
                    token=op.token, index=2 * i, shard=shard,
                    request=(OP_PUT, k, seed_val),
                    post_decision=True, next_due=e + 1,
                ))
                subops.append(_SubOp(
                    token=op.token, index=2 * i + 1, shard=shard,
                    request=(OP_DELETE, shadow, 0),
                    post_decision=True, next_due=e + 1,
                ))
            else:
                subops.append(_SubOp(
                    token=op.token, index=i, shard=shard,
                    request=(OP_DELETE, shadow, 0),
                    post_decision=True, next_due=e + 1,
                ))
        flight.subops = subops

    def _respond(
        self,
        flight: _Flight,
        status: str,
        e: int,
        value: Optional[int] = None,
        shard: int = -1,
        indeterminate: bool = False,
    ) -> List[int]:
        token = flight.op.token
        flight.response = ClusterResponse(
            token=token, status=status, value=value, shard=shard,
            attempts=flight.total_attempts(), epoch=e,
            indeterminate=indeterminate,
        )
        self.responses[token] = flight.response
        return [token]

    def _settle_flights(self) -> List[int]:
        """Release locks and retire flights whose response is out and
        whose sub-ops have drained."""
        done = [t for t, f in self.inflight.items() if f.settled]
        for token in sorted(done):
            flight = self.inflight.pop(token)
            for k in self._lock_keys(flight.op):
                if self.locks.get(k) == token:
                    del self.locks[k]
        return []

    # ------------------------------------------------------------------
    def _expire(self, e: int) -> List[int]:
        """Deadlines and fail-fast degradation."""
        completions: List[int] = []
        for token in sorted(self.inflight):
            flight = self.inflight[token]
            if flight.response is not None:
                continue
            op = flight.op
            # fail fast: a declared-dead shard degrades its whole key
            # range immediately — no point burning the client's deadline
            dead = [
                s.shard for s in flight.subops
                if not s.acked and self.supervisor[s.shard].declared_dead
            ]
            if dead and flight.phase == "prepare":
                self._decide(flight, "abort", e)
                continue
            if dead and flight.phase == "single":
                indeterminate = op.is_write and any(
                    s.attempts and not s.acked for s in flight.subops
                )
                # cancel undone work so nothing lands after the verdict
                flight.subops = [s for s in flight.subops if s.acked]
                completions.extend(self._respond(
                    flight, UNAVAILABLE, e, shard=dead[0],
                    indeterminate=indeterminate,
                ))
                continue
            if e < flight.deadline or flight.phase in ("commit", "abort"):
                continue  # post-decision phases always drain
            if flight.phase == "prepare":
                self._decide(flight, "abort", e)
                continue
            blamed = next(
                (s for s in flight.subops if not s.acked), flight.subops[0]
            )
            status = (
                DEADLINE_EXCEEDED
                if self.supervisor[blamed.shard].serving
                else UNAVAILABLE
            )
            indeterminate = op.is_write and any(
                s.attempts and not s.acked for s in flight.subops
            )
            flight.subops = [s for s in flight.subops if s.acked]
            completions.extend(self._respond(
                flight, status, e, shard=blamed.shard,
                indeterminate=indeterminate,
            ))
        return completions

    # ------------------------------------------------------------------
    # the end of the run
    # ------------------------------------------------------------------
    def digest(self) -> str:
        h = hashlib.sha256()
        for state in self.shards:
            h.update(
                ("%d:%s:%d;" % (state.shard, state.image_digest(),
                                state.served)).encode()
            )
        for token in sorted(self.responses):
            r = self.responses[token]
            h.update(
                ("%d=%s:%s:%d;" % (token, r.status, r.value,
                                   r.epoch)).encode()
            )
        return h.hexdigest()[:16]

    def finalize(self) -> None:
        from .oracle import check_cluster

        self.violations.extend(check_cluster(self))
        self.trace.emit(
            "cluster_end",
            epochs=self.epoch,
            responses={
                str(t): self.responses[t].to_json()
                for t in sorted(self.responses)
            },
            violations=self.violations,
            counters=self.counters,
            shards=[
                {
                    "shard": s.shard, "served": s.served,
                    "epochs": s.epochs, "crashes": s.crashes,
                    "image": s.image_digest(),
                }
                for s in self.shards
            ],
            digest=self.digest(),
        )
