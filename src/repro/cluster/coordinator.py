"""The cluster coordinator: routing, retries, supervision, and 2PC.

A :class:`ClusterSession` drives N store shards — each a full LightWSP
machine with its own pluggable persist backend, executed as real worker
processes through :mod:`repro.parallel` — in lock-step *epochs*:

1. **supervise** — tick the shard state machine; shards whose darkness
   expired rejoin (their recovery completed the interrupted batch; the
   acks it produced in the dark are delivered now).
2. **admit** — pending logical ops acquire their per-key locks (a
   transaction locks all its keys; FIFO per key) and get a deadline.
3. **dispatch** — every due sub-operation is routed over the hash ring
   and batched per shard with a fencing sequence number
   (``first_id = served``); batches execute via :func:`fan_out`, one
   forked worker per busy shard.  The cluster chaos layer perturbs the
   exchange: kills crash the machine mid-epoch, requests and acks drop,
   delay, or duplicate, partitions silence a shard coordinator-side.
4. **ack** — surviving acknowledgements complete sub-ops (idempotency
   tokens make duplicates no-ops), drive the 2PC decision log, and
   complete flights.
5. **expire** — ops past their deadline complete with a typed error:
   ``unavailable`` when the blamed shard is not serving (and immediately
   when the supervisor has declared it dead — graceful degradation:
   the dead range fails fast while every other range keeps serving),
   ``deadline_exceeded`` when the shard is up but the retries lost the
   race.  Writes whose application is unknown are marked indeterminate.

Cross-shard multi-key writes are epoch-ordered two-phase commits over
*shadow keys*: prepare PUTs the value under ``key + keyspace`` on the
owner shard, the coordinator logs the commit/abort decision, and the
commit phase PUTs the real key and DELETEs the shadow (abort just
DELETEs the shadow).  Post-decision sub-ops retry forever — a decision,
once logged, always drains.  No client ever reads a shadow key (scans
are clamped to the real keyspace), so a half-prepared transaction is
invisible by construction and a *visible* shadow key at quiesce is a
cluster-oracle violation.

Replication phase two (``replicate=True``) upgrades every key range to
a **primary + follower** pair.  The primary's settled per-epoch batches
are shipped to the follower in epoch order (the follower re-applies
them through the same pure executor, lagging by at most ``ship_lag``
settled batches); when the supervisor declares a primary DEAD, the
coordinator catches the follower up on the full shipped log, bumps the
range's fencing token, swaps the follower into the primary slot, clones
a fresh follower, and delivers the dead primary's dark acknowledgements
from the replicated log — the range keeps serving with zero acked-write
loss instead of degrading to ``unavailable``.  **Live resharding**
(``reshard_at >= 0``) migrates the arcs a new shard steals from the
extended hash ring while the cluster serves: copied in chunks with
dirty-key tracking, then one delta-sync + migrate-out handoff between
epochs flips the ring and reroutes in-flight sub-operations, reusing
the sequence-fence machinery so no epoch is ever double-served.

Everything is deterministic in ``(workload seed, chaos schedule,
policy)``: executor calls are pure functions fanned out per epoch and
merged in shard order — replication shipping, promotion, and migration
are coordinator-side inline work — and the JSONL trace is emitted only
from the merged timeline, so the same seed produces a byte-identical
trace at any ``--jobs``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..compiler.pipeline import compile_program
from ..config import DEFAULT_CONFIG, SystemConfig
from ..faults.model import FaultEvent
from ..parallel import fan_out
from ..runtime.backend import get_backend, require_recovering
from ..store.layout import OP_DELETE, OP_GET, OP_PUT, OP_SCAN
from ..store.oracle import StoreModel
from ..store.programs import Request, build_store_program
from ..trace import NullTrace
from .chaos import ClusterFault
from .protocol import (
    ABORTED,
    DEADLINE_EXCEEDED,
    OK,
    UNAVAILABLE,
    ClusterResponse,
    RetryPolicy,
    SessionTracker,
)
from .ring import HashRing, moved_keys
from .shard import RangeState, ShardState, execute_shard_epoch
from .supervisor import Supervisor
from .workload import LogicalOp, generate_cluster_ops

__all__ = ["ClusterSession", "Applied", "mix_int"]


def mix_int(*parts: object) -> int:
    """Seeded, PYTHONHASHSEED-independent integer stream."""
    text = ":".join(str(p) for p in parts)
    return int.from_bytes(
        hashlib.sha256(text.encode()).digest()[:8], "big"
    )


class Applied(NamedTuple):
    """One ground-truth log entry: a request a shard actually executed.

    ``request`` stays at index 3 (the pre-replication tuple shape) so
    positional consumers keep working.  ``role`` distinguishes client
    traffic (``serve``) from resharding's internal copies
    (``migrate_in`` at the target, ``migrate_out`` at the source);
    ``fence`` is the range's fencing token at application time and
    ``epoch`` the cluster epoch — together they let the oracle prove no
    demoted primary's write ever entered the log."""

    shard: int
    gid: int
    token: int                  # client token; -1 internal; -2 probe
    request: Request
    role: str = "serve"
    fence: int = 1
    epoch: int = 0


@dataclass
class _SubOp:
    """One routed store request belonging to a logical op."""

    token: int
    index: int                  # position within the flight's phase
    shard: int
    request: Request
    post_decision: bool = False  # 2PC commit/abort: retry forever
    acked: bool = False
    attempts: int = 0
    next_due: int = 0
    value: Optional[int] = None
    gid: int = -1               # log position of the accepted ack
    served_by: int = -1         # shard slot that produced that ack


@dataclass
class _Flight:
    """A logical op in flight: its sub-ops, phase, and deadline."""

    op: LogicalOp
    admitted: int
    deadline: int
    phase: str                  # "single" | "prepare" | "commit" | "abort"
    subops: List[_SubOp] = field(default_factory=list)
    decision: str = ""          # txn only: "" | "commit" | "abort"
    decision_epoch: int = -1
    response: Optional[ClusterResponse] = None

    @property
    def settled(self) -> bool:
        """Response issued and every sub-op drained (locks releasable)."""
        return self.response is not None and all(
            s.acked for s in self.subops
        )

    def total_attempts(self) -> int:
        return sum(s.attempts for s in self.subops)


class ClusterSession:
    """One run of the resilient sharded store cluster."""

    def __init__(
        self,
        n_shards: int,
        keyspace: int,
        ops: Sequence[LogicalOp],
        seed: int = 0,
        backend: Optional[str] = None,
        policy: Optional[RetryPolicy] = None,
        chaos: Sequence[ClusterFault] = (),
        value_words: int = 2,
        batch: int = 8,
        vnodes: int = 16,
        jobs: int = 1,
        max_epochs: int = 400,
        config: SystemConfig = DEFAULT_CONFIG,
        trace: Any = None,
        verify: Optional[bool] = None,
        replicate: bool = False,
        ship_lag: int = 1,
        reshard_at: int = -1,
        copy_chunk: int = 4,
    ) -> None:
        from ..store.layout import StoreLayout

        if n_shards < 1:
            raise ValueError("need at least one shard")
        if ship_lag < 0:
            raise ValueError("ship_lag must be >= 0")
        if reshard_at >= 0 and batch < 2:
            raise ValueError("live resharding needs max_batch >= 2 "
                             "(a key and its shadow copy in one batch)")
        self.n_shards = n_shards
        self.keyspace = keyspace
        self.seed = seed
        self.backend = require_recovering(
            get_backend(backend), "the cluster's crash-recovery supervisor"
        )
        self.policy = policy or RetryPolicy(seed=seed)
        self.config = config
        self.jobs = jobs
        self.max_epochs = max_epochs
        self.trace = trace if trace is not None else NullTrace()
        # shadow keys live at key + keyspace, so the layout is sized for
        # both halves; scans are clamped to the real half by the workload
        sizing = StoreLayout.sized(
            2 * keyspace, value_words=value_words, max_batch=batch
        )
        prog, self.layout = build_store_program(sizing, epoch_base=0)
        self.compiled = compile_program(prog, config.compiler, verify=verify)
        self.ring = HashRing(n_shards, vnodes)
        self.shards = [
            ShardState(shard=i, model=StoreModel(self.layout))
            for i in range(n_shards)
        ]
        self.replicate = replicate
        self.ship_lag = ship_lag
        self.reshard_at = reshard_at
        self.copy_chunk = max(1, copy_chunk)
        self.ranges: List[RangeState] = []
        if replicate:
            self.ranges = [
                RangeState(
                    range_id=i,
                    follower=ShardState(
                        shard=i, model=StoreModel(self.layout)
                    ),
                )
                for i in range(n_shards)
            ]
        self.sessions = SessionTracker()
        #: (epoch, range, new fence) per promotion, in order
        self.promotion_log: List[Tuple[int, int, int]] = []
        self._follower_dark: Dict[int, int] = {}
        self._mig: Optional[Dict[str, Any]] = None
        self.supervisor = Supervisor(n_shards, self.policy.shard_deadline)
        self.pending: List[LogicalOp] = list(ops)
        self.ops_by_token: Dict[int, LogicalOp] = {
            op.token: op for op in self.pending
        }
        self.inflight: Dict[int, _Flight] = {}
        self.locks: Dict[int, int] = {}          # key -> token
        self.responses: Dict[int, ClusterResponse] = {}
        self.violations: List[str] = []
        #: ground truth: every request actually applied, in application
        #: order per shard (see :class:`Applied`)
        self.applied_log: List[Applied] = []
        self.decision_log: List[Tuple[int, int, str]] = []
        self.epoch = 0
        self.admit_cap = max(2, 2 * n_shards)
        # chaos, indexed for O(1) lookup per (epoch, shard)
        self._kills: Dict[Tuple[int, int], ClusterFault] = {}
        self._follower_kills: Dict[Tuple[int, int], ClusterFault] = {}
        self._transport: Dict[Tuple[int, int], List[ClusterFault]] = {}
        self._partitions: List[ClusterFault] = []
        self._msg: Dict[Tuple[int, int], List[ClusterFault]] = {}
        for fault in chaos:
            key = (fault.epoch, fault.shard)
            if fault.kind == "kill" and fault.replica == 1:
                self._follower_kills[key] = fault
            elif fault.kind == "kill":
                self._kills[key] = fault
            elif fault.kind == "partition":
                self._partitions.append(fault)
            elif fault.kind == "msg":
                self._msg.setdefault(key, []).append(fault)
            else:
                self._transport.setdefault(key, []).append(fault)
        self.chaos = list(chaos)
        #: acks awaiting delivery: (deliver_epoch, shard, [(global_id, value)])
        self._held: List[Tuple[int, int, List[Tuple[int, int]]]] = []
        #: global_id -> sub-op, for ack routing (ids are never reused)
        self._dispatched: Dict[Tuple[int, int], _SubOp] = {}
        self.counters: Dict[str, int] = {
            "dispatches": 0, "retries": 0, "replays_rejected": 0,
            "acks_dropped": 0, "acks_delayed": 0, "acks_duplicated": 0,
            "reqs_dropped": 0, "partition_drops": 0, "kills": 0,
            "promotions": 0, "shipped": 0, "fenced_rejected": 0,
            "follower_kills": 0, "migrated_keys": 0, "ryw_checked": 0,
        }

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        n_shards: int = 3,
        keyspace: int = 16,
        ops: int = 32,
        seed: int = 0,
        backend: Optional[str] = None,
        mix: str = "crud",
        dist: str = "zipfian",
        txn_every: int = 6,
        chaos: Sequence[ClusterFault] = (),
        **kwargs: Any,
    ) -> "ClusterSession":
        """Session over a generated workload (the common entry point)."""
        logical = generate_cluster_ops(
            mix, ops, keyspace, seed=seed, dist=dist, txn_every=txn_every
        )
        return cls(
            n_shards, keyspace, logical, seed=seed, backend=backend,
            chaos=chaos, **kwargs,
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def owner(self, key: int) -> int:
        """Owning shard; a shadow key lives with its real key."""
        real = key - self.keyspace if key > self.keyspace else key
        return self.ring.shard_for(real)

    def _lock_keys(self, op: LogicalOp) -> Tuple[int, ...]:
        if op.kind == "scan":
            return ()
        return op.keys

    def _scan_targets(self, op: LogicalOp) -> List[int]:
        start, count = op.keys[0], op.args[0]
        return sorted({
            self.owner(k) for k in range(start, start + count)
        })

    # ------------------------------------------------------------------
    # the epoch loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        extras: Dict[str, Any] = {}
        if self.replicate:
            extras["replicate"] = True
            extras["ship_lag"] = self.ship_lag
        if self.reshard_at >= 0:
            extras["reshard_at"] = self.reshard_at
        self.trace.emit(
            "cluster_start",
            n_shards=self.n_shards, keyspace=self.keyspace,
            backend=self.backend.name, seed=self.seed,
            ring=self.ring.digest(), vnodes=self.ring.vnodes,
            ops=len(self.pending),
            policy={
                "ack_timeout": self.policy.ack_timeout,
                "backoff_base": self.policy.backoff_base,
                "backoff_cap": self.policy.backoff_cap,
                "max_attempts": self.policy.max_attempts,
                "deadline": self.policy.deadline,
                "shard_deadline": self.policy.shard_deadline,
            },
            chaos=[f.to_json() for f in self.chaos],
            sharding="epoch executors are pure per-shard functions merged "
                     "in shard order; --jobs never changes this trace",
            **extras,
        )
        while self.pending or self.inflight or self._reshard_active():
            if self.epoch >= self.max_epochs:
                self.violations.append(
                    "cluster did not quiesce within %d epochs "
                    "(%d pending, %d in flight)"
                    % (self.max_epochs, len(self.pending), len(self.inflight))
                )
                break
            self.step_epoch()
        self.finalize()

    def step_epoch(self) -> None:
        e = self.epoch
        rejoined = self.supervisor.tick(e)
        self._promote_dead(e)
        self._strike_followers(e)
        self._deliver_held(e)
        self._reshard_tick(e)
        self._admit(e)
        completions = self._dispatch(e)
        completions.extend(self._expire(e))
        self._settle_flights()
        self._ship(e)
        transitions = self.supervisor.drain_transitions()
        if completions or transitions or rejoined:
            self.trace.emit(
                "cluster_epoch",
                epoch=e,
                rejoined=rejoined,
                transitions=[
                    {"epoch": te, "shard": ts, "status": st}
                    for te, ts, st in transitions
                ],
                completions=[
                    self.responses[t].to_json() for t in completions
                ],
            )
        self.epoch = e + 1

    # ------------------------------------------------------------------
    def _admit(self, e: int) -> None:
        admitted = 0
        blocked: Set[int] = set()
        remaining: List[LogicalOp] = []
        for op in self.pending:
            keys = self._lock_keys(op)
            contended = any(k in self.locks or k in blocked for k in keys)
            if contended or admitted >= self.admit_cap:
                blocked.update(keys)
                remaining.append(op)
                continue
            for k in keys:
                self.locks[k] = op.token
            self.inflight[op.token] = self._launch(op, e)
            admitted += 1
        self.pending = remaining

    def _launch(self, op: LogicalOp, e: int) -> _Flight:
        flight = _Flight(
            op=op, admitted=e, deadline=e + self.policy.deadline,
            phase="prepare" if op.kind == "txn" else "single",
        )
        if op.kind == "txn":
            # phase 1: PUT each value under its shadow key on the owner
            for i, (k, seed_val) in enumerate(zip(op.keys, op.args)):
                shadow = k + self.keyspace
                flight.subops.append(_SubOp(
                    token=op.token, index=i, shard=self.owner(k),
                    request=(OP_PUT, shadow, seed_val), next_due=e,
                ))
        elif op.kind == "scan":
            start, count = op.keys[0], op.args[0]
            for i, shard in enumerate(self._scan_targets(op)):
                flight.subops.append(_SubOp(
                    token=op.token, index=i, shard=shard,
                    request=(OP_SCAN, start, count), next_due=e,
                ))
        else:
            key = op.keys[0]
            opcode = {"put": OP_PUT, "get": OP_GET, "delete": OP_DELETE}[
                op.kind
            ]
            arg = op.args[0] if op.kind == "put" else 0
            flight.subops.append(_SubOp(
                token=op.token, index=0, shard=self.owner(key),
                request=(opcode, key, arg), next_due=e,
            ))
        return flight

    # ------------------------------------------------------------------
    def _partitioned(self, shard: int, e: int) -> bool:
        return any(
            p.shard == shard and p.epoch <= e < p.until
            for p in self._partitions
        )

    def _dispatch(self, e: int) -> List[int]:
        # gather due sub-ops per serving shard, in token order
        per_shard: Dict[int, List[_SubOp]] = {}
        for token in sorted(self.inflight):
            flight = self.inflight[token]
            for sub in flight.subops:
                if sub.acked or sub.next_due > e:
                    continue
                health = self.supervisor[sub.shard]
                if not health.serving:
                    continue  # wait for rejoin (or the deadline)
                if not sub.post_decision and \
                        sub.attempts >= self.policy.max_attempts:
                    continue  # out of attempts; the deadline decides
                per_shard.setdefault(sub.shard, []).append(sub)
        exec_units = []
        for shard_id in sorted(per_shard):
            subs = per_shard[shard_id][: self.layout.max_batch]
            for sub in subs:
                attempt = sub.attempts
                sub.attempts += 1
                if attempt:
                    self.counters["retries"] += 1
                sub.next_due = self.policy.retry_at(sub.token, attempt, e)
            self.counters["dispatches"] += len(subs)
            if self._partitioned(shard_id, e):
                self.counters["partition_drops"] += len(subs)
                self.supervisor.observe_silence(shard_id, e)
                continue
            faults = self._transport.get((e, shard_id), [])
            if any(f.kind == "drop_req" for f in faults):
                self.counters["reqs_dropped"] += len(subs)
                self.supervisor.observe_silence(shard_id, e)
                continue
            state = self.shards[shard_id]
            first_id = state.served
            for i, sub in enumerate(subs):
                self._dispatched[(shard_id, first_id + i)] = sub
            kill = self._kills.get((e, shard_id))
            crash_step = None
            crash_event = None
            if kill is not None:
                crash_step = 1 + mix_int(
                    self.seed, "kill", e, shard_id
                ) % (60 * len(subs))
                crash_event = FaultEvent(kind="cut", step=crash_step)
                self.counters["kills"] += 1
            msg_events = [
                FaultEvent(
                    kind="msg", step=1, op=f.op, mc=f.mc, delay=f.delay
                )
                for f in self._msg.get((e, shard_id), [])
            ]
            exec_units.append({
                "shard": shard_id,
                "subs": subs,
                "first_id": first_id,
                "requests": [s.request for s in subs],
                "crash_step": crash_step,
                "crash_event": crash_event,
                "msg": msg_events,
                "kill": kill,
                "faults": faults,
                "fence": self._fence_of(shard_id),
            })

        # the actual shard work: pure executors over worker processes
        layout, compiled, config = self.layout, self.compiled, self.config
        backend_name = self.backend.name
        shard_states = self.shards

        def unit_worker(unit: Dict[str, Any]) -> Any:
            state = shard_states[unit["shard"]]
            return execute_shard_epoch(
                unit["shard"], compiled, layout,
                state.image, state.served, unit["requests"],
                unit["first_id"], state.model, backend_name,
                config=config, crash_step=unit["crash_step"],
                crash_event=unit["crash_event"], msg_faults=unit["msg"],
                batch_fence=unit["fence"], range_fence=unit["fence"],
            )
        results = fan_out(
            unit_worker, exec_units, jobs=self.jobs, label="cluster-epoch"
        )

        completions: List[int] = []
        for unit, result in zip(exec_units, results):
            completions.extend(self._merge(e, unit, result))

        # a power cut strikes whether or not a batch was in flight: a
        # kill on an idle (or partitioned/dropped) exchange still takes
        # the shard dark — there is just no interrupted batch to resume
        executed = {u["shard"] for u in exec_units}
        for (fe, fs), kill in sorted(self._kills.items()):
            if fe != e or fs in executed or not self.supervisor[fs].serving:
                continue
            self.counters["kills"] += 1
            self.supervisor.observe_crash(fs, e, kill.down_for)
            self.shards[fs].crashes += 1
            self.trace.emit(
                "shard_kill", epoch=e, shard=fs, step=0,
                down_for=kill.down_for, acked_before_cut=0,
                completed_in_dark=0,
            )
        return completions

    # ------------------------------------------------------------------
    def _merge(self, e: int, unit: Dict[str, Any], result: Any) -> List[int]:
        shard_id = unit["shard"]
        state = self.shards[shard_id]
        subs: List[_SubOp] = unit["subs"]
        first_id: int = unit["first_id"]
        requests: List[Request] = unit["requests"]
        self.violations.extend(result.violations)
        if result.outcome in ("replay_rejected", "fenced_rejected"):
            # a live dispatch must always be at the shard's fence; the
            # dup_req chaos path exercises the fence via _replay_probe
            state.replays_rejected += 1
            self.counters["replays_rejected"] += 1
            self.violations.append(
                "shard %d epoch %d: live dispatch at id %d was fenced "
                "(coordinator sequencing bug)" % (shard_id, e, first_id)
            )
            return []

        # advance the ground truth: the batch is applied in full (a cut
        # resumes and completes on recovery — whole-system persistence)
        want = state.model.apply_all(requests)
        if result.results != want:
            self.violations.append(
                "shard %d epoch %d: durable results %r diverge from "
                "model %r" % (shard_id, e, result.results, want)
            )
        state.image = result.image
        state.served += len(requests)
        state.epochs += 1
        state.steps += result.steps
        for k, v in result.fault_counters.items():
            state.fault_counters[k] = state.fault_counters.get(k, 0) + v
        fence = unit["fence"]
        for i, sub in enumerate(subs):
            self.applied_log.append(Applied(
                shard_id, first_id + i, sub.token, requests[i],
                "serve", fence, e,
            ))
        if self.replicate:
            self.ranges[shard_id].ship_log.append(
                (e, first_id, list(requests))
            )
        self._track_dirty(requests)

        acks = [
            (first_id + p, result.results[p]) for p in result.acked_local
        ]
        late = [
            (first_id + p, result.results[p]) for p in result.late_local
        ]
        if result.outcome == "crashed":
            state.crashes += 1
            kill: ClusterFault = unit["kill"]
            self.supervisor.observe_crash(shard_id, e, kill.down_for)
            if late:
                # completed in the dark; delivered at the rejoin
                self._held.append((e + kill.down_for, shard_id, late))
            self.trace.emit(
                "shard_kill", epoch=e, shard=shard_id,
                step=result.crash_step, down_for=kill.down_for,
                acked_before_cut=len(acks), completed_in_dark=len(late),
            )

        # transport faults on the ack path
        dup = False
        for fault in unit["faults"]:
            if fault.kind == "drop_ack":
                self.counters["acks_dropped"] += len(acks)
                acks = []
            elif fault.kind == "delay_ack":
                self.counters["acks_delayed"] += len(acks)
                self._held.append((e + max(1, fault.delay), shard_id, acks))
                acks = []
            elif fault.kind == "dup_ack":
                dup = True
        if not acks and result.outcome == "ok":
            self.supervisor.observe_silence(shard_id, e)
        completions: List[int] = []
        for rounds in range(2 if dup else 1):
            if rounds:
                self.counters["acks_duplicated"] += len(acks)
            for global_id, value in acks:
                completions.extend(
                    self._deliver_ack(shard_id, global_id, value, e)
                )
        for fault in unit["faults"]:
            if fault.kind == "dup_req":
                self._replay_probe(shard_id, requests, first_id, e)
        return completions

    def _replay_probe(
        self, shard_id: int, requests: List[Request], first_id: int, e: int
    ) -> None:
        """A duplicated batch delivery: the shard's sequence fence must
        reject it (its ``served`` has moved past ``first_id``)."""
        state = self.shards[shard_id]
        probe = execute_shard_epoch(
            shard_id, self.compiled, self.layout,
            state.image, state.served, requests, first_id, state.model,
            self.backend.name, config=self.config,
        )
        if probe.outcome != "replay_rejected":
            self.violations.append(
                "shard %d epoch %d: duplicated batch at id %d was "
                "re-applied instead of fenced" % (shard_id, e, first_id)
            )
            return
        state.replays_rejected += 1
        self.counters["replays_rejected"] += 1
        self.trace.emit(
            "replay_rejected", epoch=e, shard=shard_id, first_id=first_id
        )

    # ------------------------------------------------------------------
    # replication: log shipping, failover, fencing
    # ------------------------------------------------------------------
    def _fence_of(self, shard_id: int) -> int:
        """The range's current fencing token (1 when un-replicated)."""
        if self.replicate and shard_id < len(self.ranges):
            return self.ranges[shard_id].fence
        return 1

    def _ship(self, e: int) -> None:
        """Epoch-ordered log shipping: apply the primary's settled
        batches at the follower until each range's lag is within the
        bounded window.  Inline coordinator work — identical at any
        ``--jobs``."""
        if not self.replicate:
            return
        for rs in self.ranges:
            if self._follower_dark.get(rs.range_id, 0) > e:
                continue  # follower dark: shipping pauses, backlog grows
            while rs.lag > self.ship_lag:
                self._ship_one(rs)

    def _ship_one(self, rs: RangeState) -> None:
        """Apply the oldest unshipped settled batch at the follower,
        through the same pure executor the primary used."""
        _settled_epoch, first_id, requests = rs.ship_log[rs.shipped]
        follower = rs.follower
        assert follower is not None
        result = execute_shard_epoch(
            rs.range_id, self.compiled, self.layout,
            follower.image, follower.served, requests, first_id,
            follower.model, self.backend.name, config=self.config,
        )
        self.violations.extend(result.violations)
        rs.shipped += 1
        if result.outcome != "ok":
            self.violations.append(
                "range %d: follower refused shipped batch at id %d (%s)"
                % (rs.range_id, first_id, result.outcome)
            )
            return
        want = follower.model.apply_all(requests)
        if result.results != want:
            self.violations.append(
                "range %d: follower replay of shipped batch at id %d "
                "diverged from the model" % (rs.range_id, first_id)
            )
        follower.image = result.image
        follower.served += len(requests)
        follower.epochs += 1
        follower.steps += result.steps
        self.counters["shipped"] += 1

    def _promote_dead(self, e: int) -> None:
        """Promote-on-DEAD: a range whose primary the supervisor just
        declared dead fails over to its follower instead of degrading."""
        if not self.replicate:
            return
        for rs in self.ranges:
            if self.supervisor[rs.range_id].declared_dead:
                self._promote(rs, e)

    def _promote(self, rs: RangeState, e: int) -> None:
        r = rs.range_id
        caught_up = rs.lag
        # 1. fence the follower at the last replicated epoch: catch it up
        #    on the full shipped log (every settled batch, including the
        #    one the dead primary completed during its crash-recovery)
        self._follower_dark.pop(r, None)
        while rs.shipped < len(rs.ship_log):
            self._ship_one(rs)
        # 2. bump the fencing token and retire the dead primary: any
        #    batch it could still utter carries the old token and is
        #    refused by fence_admits
        retired = self.shards[r]
        rs.retired = retired
        rs.retired_fence = rs.fence
        rs.fence += 1
        rs.promotions += 1
        promoted = rs.follower
        assert promoted is not None
        self.shards[r] = promoted
        # 3. re-replicate: clone the new primary as the next follower
        rs.follower = ShardState(
            shard=r, image=dict(promoted.image),
            model=promoted.model.copy(), served=promoted.served,
        )
        rs.ship_log = []
        rs.shipped = 0
        self.promotion_log.append((e, r, rs.fence))
        self.counters["promotions"] += 1
        self.supervisor.reset(r, e)
        # 4. the dark acknowledgements: every settled-but-undelivered ack
        #    is in the replicated log the new primary serves from, so it
        #    is deliverable immediately — zero acked-write loss
        self._held = [
            (min(due, e), shard, acks) if shard == r else
            (due, shard, acks)
            for due, shard, acks in self._held
        ]
        self.trace.emit(
            "promote", epoch=e, range=r, fence=rs.fence,
            caught_up=caught_up, served=promoted.served,
        )

    def _strike_followers(self, e: int) -> None:
        """Follower power cuts (``kill`` faults with ``replica=1``):
        whole-system persistence means the interrupted ship apply resumes
        on restored power, so the only effect is a paused replication
        channel — the backlog drains at the rejoin."""
        if not self.replicate:
            return
        for (fe, r), kill in sorted(self._follower_kills.items()):
            if fe != e or r >= len(self.ranges):
                continue
            self._follower_dark[r] = e + kill.down_for
            self.counters["follower_kills"] += 1
            self.trace.emit(
                "shard_kill", epoch=e, shard=r, step=0,
                down_for=kill.down_for, acked_before_cut=0,
                completed_in_dark=0, replica=1,
            )

    # ------------------------------------------------------------------
    # live resharding
    # ------------------------------------------------------------------
    def _reshard_active(self) -> bool:
        if self.reshard_at < 0:
            return False
        return self._mig is None or self._mig["state"] != "done"

    def _reshard_tick(self, e: int) -> None:
        if self.reshard_at < 0:
            return
        if self._mig is None:
            if e < self.reshard_at:
                return
            self._reshard_setup(e)
        m = self._mig
        assert m is not None
        if m["state"] == "copy":
            self._reshard_copy(e)
        elif m["state"] == "handoff":
            self._reshard_handoff(e)

    def _reshard_setup(self, e: int) -> None:
        """Open the migration: one new shard joins the extended ring;
        the arcs it steals are the complete copy plan."""
        old = self.ring
        new = old.extended()
        moved = moved_keys(old, new, self.keyspace)
        target = self.supervisor.add_shard()
        self.shards.append(
            ShardState(shard=target, model=StoreModel(self.layout))
        )
        if self.replicate:
            self.ranges.append(RangeState(
                range_id=target,
                follower=ShardState(
                    shard=target, model=StoreModel(self.layout)
                ),
            ))
        self._mig = {
            "state": "copy", "target": target,
            "moved": moved, "moved_set": set(moved),
            "copied": 0, "dirty": set(),
            "old_ring": old, "new_ring": new,
        }
        self.trace.emit(
            "reshard_start", epoch=e, new_shard=target,
            moved=len(moved), ring_from=old.digest(),
            ring_to=new.digest(),
        )

    def _track_dirty(self, requests: Sequence[Request]) -> None:
        """While a migration is copying, every write to a moved key (or
        its shadow) applied at the old owner is re-synced at handoff."""
        m = self._mig
        if m is None or m["state"] not in ("copy", "handoff"):
            return
        for opcode, key, _arg in requests:
            if opcode not in (OP_PUT, OP_DELETE):
                continue
            real = key - self.keyspace if key > self.keyspace else key
            if real in m["moved_set"]:
                m["dirty"].add(key)

    def _reshard_copy(self, e: int) -> None:
        """Copy one chunk of moved keys (values from the old owners'
        settled state, shadows included) into the target shard."""
        m = self._mig
        assert m is not None
        target: int = m["target"]
        if not self.supervisor[target].serving or \
                self._partitioned(target, e):
            return  # migration pauses while the target is unreachable
        moved: List[int] = m["moved"]
        if m["copied"] < len(moved):
            chunk = max(1, min(self.copy_chunk, self.layout.max_batch // 2))
            keys = moved[m["copied"]:m["copied"] + chunk]
            requests: List[Request] = []
            for k in keys:
                kv = self.shards[m["old_ring"].shard_for(k)].model.kv
                if k in kv:
                    requests.append((OP_PUT, k, kv[k]))
                shadow = k + self.keyspace
                if shadow in kv:
                    requests.append((OP_PUT, shadow, kv[shadow]))
            kill = self._kills.pop((e, target), None)
            if requests:
                self._apply_internal(
                    target, requests, e, "migrate_in", kill=kill
                )
            elif kill is not None:
                # nothing to copy this chunk, but the power cut strikes
                # regardless — the idle-kill path, migration edition
                self.counters["kills"] += 1
                self.supervisor.observe_crash(target, e, kill.down_for)
                self.shards[target].crashes += 1
                self.trace.emit(
                    "shard_kill", epoch=e, shard=target, step=0,
                    down_for=kill.down_for, acked_before_cut=0,
                    completed_in_dark=0,
                )
            m["copied"] += len(keys)
            self.counters["migrated_keys"] += len(keys)
            self.trace.emit(
                "reshard_copy", epoch=e, new_shard=target,
                keys=len(keys), copied=m["copied"], total=len(moved),
            )
        if m["copied"] >= len(moved):
            m["state"] = "handoff"

    def _reshard_handoff(self, e: int) -> None:
        """The one-shot handoff between epochs: delta-sync the dirty
        keys, drop the moved arc at the sources, flip the ring, and
        reroute in-flight sub-operations — no epoch double-served, no
        frozen window a client can observe."""
        m = self._mig
        assert m is not None
        target: int = m["target"]
        old_ring: HashRing = m["old_ring"]
        sources = sorted({old_ring.shard_for(k) for k in m["moved"]})
        involved = sources + [target]
        if any(
            not self.supervisor[s].serving or self._partitioned(s, e)
            for s in involved
        ):
            return  # partition/darkness during handoff: postpone whole
        max_batch = self.layout.max_batch
        # delta sync: re-copy every key written behind the copy pass
        delta: List[Request] = []
        for key in sorted(m["dirty"]):
            real = key - self.keyspace if key > self.keyspace else key
            kv = self.shards[old_ring.shard_for(real)].model.kv
            if key in kv:
                delta.append((OP_PUT, key, kv[key]))
            else:
                delta.append((OP_DELETE, key, 0))
        for i in range(0, len(delta), max_batch):
            self._apply_internal(
                target, delta[i:i + max_batch], e, "migrate_in"
            )
        # migrate out: the sources drop the arc they no longer own
        dropped = 0
        for src in sources:
            kv = self.shards[src].model.kv
            drops: List[Request] = []
            for k in m["moved"]:
                if old_ring.shard_for(k) != src:
                    continue
                for kk in (k, k + self.keyspace):
                    if kk in kv:
                        drops.append((OP_DELETE, kk, 0))
            for i in range(0, len(drops), max_batch):
                self._apply_internal(
                    src, drops[i:i + max_batch], e, "migrate_out"
                )
            dropped += len(drops)
        # the flip: one atomic ownership switch between epochs
        self.ring = m["new_ring"]
        self.n_shards = len(self.shards)
        self._reroute(e)
        m["state"] = "done"
        self.trace.emit(
            "reshard_handoff", epoch=e, new_shard=target,
            delta=len(delta), dropped=dropped, moved=len(m["moved"]),
        )

    def _reroute(self, e: int) -> None:
        """Point every unacknowledged in-flight sub-op at the new ring.
        Scans restart whole (a half-old, half-new scan would double- or
        under-count the moved arc); single-key sub-ops just re-aim."""
        for token in sorted(self.inflight):
            flight = self.inflight[token]
            if flight.response is not None:
                continue
            if flight.op.kind == "scan" and \
                    any(not s.acked for s in flight.subops):
                start, count = flight.op.keys[0], flight.op.args[0]
                flight.subops = [
                    _SubOp(
                        token=token, index=i, shard=shard,
                        request=(OP_SCAN, start, count), next_due=e,
                    )
                    for i, shard in enumerate(self._scan_targets(flight.op))
                ]
                continue
            for sub in flight.subops:
                if not sub.acked:
                    sub.shard = self.owner(sub.request[1])

    def _apply_internal(
        self,
        shard_id: int,
        requests: List[Request],
        e: int,
        role: str,
        kill: Optional[ClusterFault] = None,
    ) -> None:
        """Apply one coordinator-internal batch (migration traffic) at a
        shard, through the same executor, fences, ground-truth log, and
        ship log as client batches — a kill mid-copy crashes the real
        machine and recovery completes the batch."""
        if not requests:
            return
        state = self.shards[shard_id]
        first_id = state.served
        fence = self._fence_of(shard_id)
        crash_step = None
        crash_event = None
        if kill is not None:
            crash_step = 1 + mix_int(
                self.seed, "kill", e, shard_id
            ) % (60 * len(requests))
            crash_event = FaultEvent(kind="cut", step=crash_step)
            self.counters["kills"] += 1
        result = execute_shard_epoch(
            shard_id, self.compiled, self.layout,
            state.image, state.served, requests, first_id,
            state.model, self.backend.name, config=self.config,
            crash_step=crash_step, crash_event=crash_event,
            batch_fence=fence, range_fence=fence,
        )
        self.violations.extend(result.violations)
        if result.outcome in ("replay_rejected", "fenced_rejected"):
            self.violations.append(
                "shard %d epoch %d: internal %s batch at id %d was "
                "refused (%s) — coordinator sequencing bug"
                % (shard_id, e, role, first_id, result.outcome)
            )
            return
        want = state.model.apply_all(requests)
        if result.results != want:
            self.violations.append(
                "shard %d epoch %d: internal %s batch results diverge "
                "from model" % (shard_id, e, role)
            )
        state.image = result.image
        state.served += len(requests)
        state.epochs += 1
        state.steps += result.steps
        for k, v in result.fault_counters.items():
            state.fault_counters[k] = state.fault_counters.get(k, 0) + v
        for i, req in enumerate(requests):
            self.applied_log.append(Applied(
                shard_id, first_id + i, -1, req, role, fence, e,
            ))
        if self.replicate:
            self.ranges[shard_id].ship_log.append(
                (e, first_id, list(requests))
            )
        if result.outcome == "crashed" and kill is not None:
            state.crashes += 1
            self.supervisor.observe_crash(shard_id, e, kill.down_for)
            self.trace.emit(
                "shard_kill", epoch=e, shard=shard_id,
                step=result.crash_step, down_for=kill.down_for,
                acked_before_cut=len(result.acked_local),
                completed_in_dark=len(result.late_local),
            )

    # ------------------------------------------------------------------
    # negative-oracle hooks (the cluster's mutation self-test)
    # ------------------------------------------------------------------
    def inject_stale_primary_write(
        self, range_id: int, request: Request, honor_fence: bool = True
    ) -> bool:
        """Test/chaos hook: a demoted primary tries to serve one more
        write.  With ``honor_fence`` the executor's fence refuses it
        (the defended path); with ``honor_fence=False`` the fence check
        is bypassed — modelling a broken fencing layer — the write lands
        and is recorded under the stale token, which
        :func:`~repro.cluster.oracle.check_cluster` must flag.  Returns
        True iff the write was (wrongly) applied."""
        rs = self.ranges[range_id]
        retired = rs.retired
        if retired is None:
            raise ValueError(
                "range %d has no retired primary to probe" % range_id
            )
        guard = rs.fence if honor_fence else rs.retired_fence
        result = execute_shard_epoch(
            range_id, self.compiled, self.layout,
            retired.image, retired.served, [request], retired.served,
            retired.model, self.backend.name, config=self.config,
            batch_fence=rs.retired_fence, range_fence=guard,
        )
        if result.outcome == "fenced_rejected":
            self.counters["fenced_rejected"] += 1
            return False
        retired.model.apply_all([request])
        retired.image = result.image
        gid = retired.served
        retired.served += 1
        self.applied_log.append(Applied(
            range_id, gid, -2, request, "serve", rs.retired_fence,
            self.epoch,
        ))
        return True

    def drop_shipped_batch(self, range_id: int) -> int:
        """Test/chaos hook: the shipping layer silently loses one
        settled batch — the follower's book-keeping advances as if it
        applied, its durable image does not.  The replica-divergence
        check in :func:`~repro.cluster.oracle.check_cluster` must flag
        the gap at quiesce.  Returns the number of ops dropped."""
        rs = self.ranges[range_id]
        if rs.shipped >= len(rs.ship_log):
            raise ValueError(
                "range %d has no unshipped batch to drop" % range_id
            )
        _epoch, _first_id, requests = rs.ship_log[rs.shipped]
        follower = rs.follower
        assert follower is not None
        follower.model.apply_all(requests)
        follower.served += len(requests)
        rs.shipped += 1
        return len(requests)

    # ------------------------------------------------------------------
    def _deliver_held(self, e: int) -> None:
        due = [h for h in self._held if h[0] <= e]
        if not due:
            return
        self._held = [h for h in self._held if h[0] > e]
        completions: List[int] = []
        for _, shard_id, acks in sorted(due, key=lambda h: (h[0], h[1])):
            for global_id, value in acks:
                completions.extend(
                    self._deliver_ack(shard_id, global_id, value, e)
                )
        for token in completions:
            self.trace.emit(
                "late_completion", epoch=e,
                response=self.responses[token].to_json(),
            )

    def _deliver_ack(
        self, shard_id: int, global_id: int, value: int, e: int
    ) -> List[int]:
        self.supervisor.observe_ack(shard_id, e)
        sub = self._dispatched.get((shard_id, global_id))
        if sub is None or sub.acked:
            return []  # duplicate or superseded: the token absorbs it
        sub.acked = True
        sub.value = value
        sub.gid = global_id
        sub.served_by = shard_id
        flight = self.inflight.get(sub.token)
        if flight is None or flight.response is not None:
            return []
        return self._advance_flight(flight, e)

    # ------------------------------------------------------------------
    # flight state machine
    # ------------------------------------------------------------------
    def _advance_flight(self, flight: _Flight, e: int) -> List[int]:
        if not all(s.acked for s in flight.subops):
            return []
        op = flight.op
        if flight.phase == "single":
            if op.kind == "scan":
                value = sum(s.value or 0 for s in flight.subops)
            else:
                value = flight.subops[0].value
            return self._respond(flight, OK, e, value=value)
        if flight.phase == "prepare":
            self._decide(flight, "commit", e)
            return []
        if flight.phase == "commit":
            return self._respond(flight, OK, e)
        return self._respond(flight, ABORTED, e)

    def _decide(self, flight: _Flight, decision: str, e: int) -> None:
        """Log a 2PC decision and launch its post-decision phase; the
        phase's sub-ops retry forever — the decision always drains."""
        op = flight.op
        flight.decision = decision
        flight.decision_epoch = e
        flight.phase = decision
        self.decision_log.append((e, op.token, decision))
        self.trace.emit(
            "txn_decision", epoch=e, token=op.token, decision=decision,
            keys=list(op.keys),
        )
        subops: List[_SubOp] = []
        for i, (k, seed_val) in enumerate(zip(op.keys, op.args)):
            shadow = k + self.keyspace
            shard = self.owner(k)
            if decision == "commit":
                subops.append(_SubOp(
                    token=op.token, index=2 * i, shard=shard,
                    request=(OP_PUT, k, seed_val),
                    post_decision=True, next_due=e + 1,
                ))
                subops.append(_SubOp(
                    token=op.token, index=2 * i + 1, shard=shard,
                    request=(OP_DELETE, shadow, 0),
                    post_decision=True, next_due=e + 1,
                ))
            else:
                subops.append(_SubOp(
                    token=op.token, index=i, shard=shard,
                    request=(OP_DELETE, shadow, 0),
                    post_decision=True, next_due=e + 1,
                ))
        flight.subops = subops

    def _respond(
        self,
        flight: _Flight,
        status: str,
        e: int,
        value: Optional[int] = None,
        shard: int = -1,
        indeterminate: bool = False,
    ) -> List[int]:
        token = flight.op.token
        flight.response = ClusterResponse(
            token=token, status=status, value=value, shard=shard,
            attempts=flight.total_attempts(), epoch=e,
            indeterminate=indeterminate,
        )
        self.responses[token] = flight.response
        if status == OK:
            self._track_session(flight)
        return [token]

    def _track_session(self, flight: _Flight) -> None:
        """Read-your-writes certification at acknowledgement time: an OK
        write records its log position for the client session, an OK
        read must observe a position at least as new (per key, per
        range) — the guarantee a promoted follower must preserve."""
        op = flight.op
        if op.kind == "get":
            sub = flight.subops[0]
            problem = self.sessions.check_read(
                op.token, op.keys[0], sub.served_by, sub.gid
            )
            if problem:
                self.violations.append(problem)
        elif op.kind in ("put", "delete"):
            sub = flight.subops[0]
            self.sessions.note_write(
                op.token, op.keys[0], sub.served_by, sub.gid
            )
        elif op.kind == "txn" and flight.phase == "commit":
            for sub in flight.subops:
                if sub.request[0] == OP_PUT and \
                        sub.request[1] <= self.keyspace:
                    self.sessions.note_write(
                        op.token, sub.request[1], sub.served_by, sub.gid
                    )

    def _settle_flights(self) -> List[int]:
        """Release locks and retire flights whose response is out and
        whose sub-ops have drained."""
        done = [t for t, f in self.inflight.items() if f.settled]
        for token in sorted(done):
            flight = self.inflight.pop(token)
            for k in self._lock_keys(flight.op):
                if self.locks.get(k) == token:
                    del self.locks[k]
        return []

    # ------------------------------------------------------------------
    def _expire(self, e: int) -> List[int]:
        """Deadlines and fail-fast degradation."""
        completions: List[int] = []
        for token in sorted(self.inflight):
            flight = self.inflight[token]
            if flight.response is not None:
                continue
            op = flight.op
            # fail fast: a declared-dead shard degrades its whole key
            # range immediately — no point burning the client's deadline
            dead = [
                s.shard for s in flight.subops
                if not s.acked and self.supervisor[s.shard].declared_dead
            ]
            if dead and flight.phase == "prepare":
                self._decide(flight, "abort", e)
                continue
            if dead and flight.phase == "single":
                indeterminate = op.is_write and any(
                    s.attempts and not s.acked for s in flight.subops
                )
                # cancel undone work so nothing lands after the verdict
                flight.subops = [s for s in flight.subops if s.acked]
                completions.extend(self._respond(
                    flight, UNAVAILABLE, e, shard=dead[0],
                    indeterminate=indeterminate,
                ))
                continue
            if e < flight.deadline or flight.phase in ("commit", "abort"):
                continue  # post-decision phases always drain
            if flight.phase == "prepare":
                self._decide(flight, "abort", e)
                continue
            blamed = next(
                (s for s in flight.subops if not s.acked), flight.subops[0]
            )
            status = (
                DEADLINE_EXCEEDED
                if self.supervisor[blamed.shard].serving
                else UNAVAILABLE
            )
            indeterminate = op.is_write and any(
                s.attempts and not s.acked for s in flight.subops
            )
            flight.subops = [s for s in flight.subops if s.acked]
            completions.extend(self._respond(
                flight, status, e, shard=blamed.shard,
                indeterminate=indeterminate,
            ))
        return completions

    # ------------------------------------------------------------------
    # the end of the run
    # ------------------------------------------------------------------
    def digest(self) -> str:
        h = hashlib.sha256()
        for state in self.shards:
            h.update(
                ("%d:%s:%d;" % (state.shard, state.image_digest(),
                                state.served)).encode()
            )
        for token in sorted(self.responses):
            r = self.responses[token]
            h.update(
                ("%d=%s:%s:%d;" % (token, r.status, r.value,
                                   r.epoch)).encode()
            )
        return h.hexdigest()[:16]

    def finalize(self) -> None:
        from .oracle import check_cluster

        if self.replicate:
            # drain the ship backlog: at quiesce the replica pair must
            # have converged for the oracle's divergence check
            self._follower_dark.clear()
            for rs in self.ranges:
                while rs.lag > 0:
                    self._ship_one(rs)
        self.counters["ryw_checked"] = self.sessions.reads_checked
        self.violations.extend(check_cluster(self))
        extras: Dict[str, Any] = {}
        if self.replicate:
            extras["ranges"] = [
                {
                    "range": rs.range_id, "fence": rs.fence,
                    "promotions": rs.promotions,
                    "follower_served": (
                        rs.follower.served if rs.follower else 0
                    ),
                }
                for rs in self.ranges
            ]
        if self._mig is not None:
            extras["resharded"] = {
                "new_shard": self._mig["target"],
                "moved": len(self._mig["moved"]),
                "done": self._mig["state"] == "done",
            }
        self.trace.emit(
            "cluster_end",
            epochs=self.epoch,
            responses={
                str(t): self.responses[t].to_json()
                for t in sorted(self.responses)
            },
            violations=self.violations,
            counters=self.counters,
            shards=[
                {
                    "shard": s.shard, "served": s.served,
                    "epochs": s.epochs, "crashes": s.crashes,
                    "image": s.image_digest(),
                }
                for s in self.shards
            ],
            digest=self.digest(),
            **extras,
        )
