"""The cluster client protocol: idempotency tokens, deadlines, typed
errors, and seeded-jitter exponential backoff.

The cluster's clock is the *epoch* — one coordinator dispatch round.
Every logical client operation carries:

* an **idempotency token** (its index in the workload) — retries reuse
  the token, completion is recorded per token exactly once, and a
  duplicate acknowledgement (dup/delayed transport) can never complete
  an operation twice;
* a **deadline** (epochs after admission) — when it passes, the
  operation completes with a typed error instead of waiting forever:
  :data:`UNAVAILABLE` if its shard is down/dead (the degraded range),
  :data:`DEADLINE_EXCEEDED` if the shard is nominally up but the
  retries did not land in time;
* a **retry schedule** — exponential backoff with *seeded* jitter: the
  jitter is a pure function of ``(seed, token, attempt)``, so the same
  seed reproduces the same retry schedule byte for byte at any
  ``--jobs`` value, while different tokens still decorrelate (no
  thundering-herd retry spikes after a shard recovers).

Responses are data, not exceptions: a :class:`ClusterResponse` carries
the status and, for failures, which shard / key range degraded — the
"typed Unavailable" the coordinator serves for a dead range while the
surviving ranges keep answering.

Replication phase two adds two more protocol-level concepts:

* **replica roles and fencing tokens** — every key range is served by a
  :data:`PRIMARY` image and replicated to a :data:`FOLLOWER` image.
  Each range carries a monotonically increasing *fencing token*, bumped
  at every promotion; a batch is admitted to the range's settled log
  only if it carries the current token (:func:`fence_admits`).  A
  demoted primary — dead, promoted past, then resurrected — still holds
  its old token, so nothing it serves can ever re-enter the log.
* **read-your-writes session tokens** — logical ops are grouped into
  client sessions; a :class:`SessionTracker` remembers, per session and
  key, the log position of the last acknowledged write, and certifies
  that every later read in the same session observed a position at
  least that new.  Retries and failovers must preserve this: a retry
  that lands on a freshly promoted follower may only be acknowledged
  from a log that already contains the session's writes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "OK",
    "UNAVAILABLE",
    "DEADLINE_EXCEEDED",
    "ABORTED",
    "STATUSES",
    "PRIMARY",
    "FOLLOWER",
    "ROLES",
    "fence_admits",
    "SessionTracker",
    "ClusterResponse",
    "RetryPolicy",
]

#: terminal statuses of a logical operation
OK = "ok"
UNAVAILABLE = "unavailable"            # target range down past its deadline
DEADLINE_EXCEEDED = "deadline_exceeded"  # op's own deadline passed, shard up
ABORTED = "aborted"                    # 2PC transaction aborted pre-decision

STATUSES: Tuple[str, ...] = (OK, UNAVAILABLE, DEADLINE_EXCEEDED, ABORTED)

#: replica roles within one key range
PRIMARY = "primary"
FOLLOWER = "follower"
ROLES: Tuple[str, ...] = (PRIMARY, FOLLOWER)


def fence_admits(range_fence: int, batch_fence: int) -> bool:
    """Whether a batch stamped with ``batch_fence`` may enter the
    range's settled log when the range's current fencing token is
    ``range_fence``.  Only the exact current token is admitted: a stale
    token is a demoted primary speaking after its promotion (split
    brain), a newer token is a sequencing bug — both are refused."""
    return batch_fence == range_fence


@dataclass
class SessionTracker:
    """Read-your-writes bookkeeping per client session.

    Sessions partition the token space (session = ``token % n_sessions``
    — a deterministic stand-in for per-client connections).  Positions
    are ``(range_id, gid)`` pairs: within one range the per-range log
    position ``gid`` totally orders applications, which is exactly what
    a promoted follower inherits (it serves from the same settled log),
    so the guarantee survives failover.  Reads routed to a *different*
    range than the session's last write to that key (a completed
    migration) are certified by the migration machinery instead — the
    delta sync puts every settled write in the target's log before the
    arc flips — and are not double-counted here."""

    n_sessions: int = 4
    #: (session, key) -> (range_id, gid) of the last acked write
    writes: Dict[Tuple[int, int], Tuple[int, int]] = field(
        default_factory=dict
    )
    reads_checked: int = 0

    def session_of(self, token: int) -> int:
        return token % max(1, self.n_sessions)

    def note_write(
        self, token: int, key: int, range_id: int, gid: int
    ) -> None:
        """An acknowledged write of ``key`` applied at log position
        ``(range_id, gid)``."""
        self.writes[(self.session_of(token), key)] = (range_id, gid)

    def check_read(
        self, token: int, key: int, range_id: int, gid: int
    ) -> Optional[str]:
        """Certify one acknowledged read of ``key`` served from log
        position ``(range_id, gid)``.  Returns a violation description
        if the session had acknowledged a *later* write to the key at
        the same range — a stale read — else None."""
        last = self.writes.get((self.session_of(token), key))
        if last is None:
            return None
        wrange, wgid = last
        if wrange != range_id:
            return None  # cross-range: certified by migration handoff
        self.reads_checked += 1
        if gid < wgid:
            return (
                "read-your-writes: session %d token %d read key %d at "
                "range %d position %d, but the session's write was "
                "acknowledged at position %d"
                % (self.session_of(token), token, key, range_id, gid,
                   wgid)
            )
        return None


def _mix(*parts: object) -> int:
    text = ":".join(str(p) for p in parts)
    return int.from_bytes(
        hashlib.sha256(text.encode()).digest()[:8], "big"
    )


@dataclass(frozen=True)
class ClusterResponse:
    """The terminal answer for one logical operation (one token)."""

    token: int
    status: str                 # one of STATUSES
    value: Optional[int] = None  # durable result word (OK only)
    shard: int = -1             # the shard blamed for a failure status
    attempts: int = 0           # physical dispatch attempts consumed
    epoch: int = 0              # epoch the response was issued
    #: a write that may or may not have applied durably (its last
    #: dispatch got no acknowledgement before the deadline) — the
    #: classic indeterminate outcome; the oracle treats it as either
    indeterminate: bool = False

    def to_json(self) -> Dict:
        data = {
            "token": self.token, "status": self.status,
            "attempts": self.attempts, "epoch": self.epoch,
        }
        if self.value is not None:
            data["value"] = self.value
        if self.shard >= 0:
            data["shard"] = self.shard
        if self.indeterminate:
            data["indeterminate"] = True
        return data


@dataclass(frozen=True)
class RetryPolicy:
    """Deadlines and seeded-jitter exponential backoff, in epochs."""

    seed: int = 0
    ack_timeout: int = 2        # epochs to wait for an ack before retrying
    backoff_base: int = 1       # first retry gap (epochs)
    backoff_cap: int = 8        # gap ceiling
    max_attempts: int = 5       # physical dispatches per logical op
    deadline: int = 16          # epochs from admission to forced completion
    shard_deadline: int = 4     # epochs down before a shard is declared dead

    def jitter(self, token: int, attempt: int) -> int:
        """Seeded jitter in ``[0, 2**attempt)``, capped by the backoff
        ceiling — a pure function of ``(seed, token, attempt)``."""
        span = min(1 << attempt, self.backoff_cap)
        return _mix(self.seed, "jitter", token, attempt) % max(1, span)

    def backoff(self, token: int, attempt: int) -> int:
        """Epoch gap between the ack timeout of dispatch ``attempt`` and
        dispatch ``attempt + 1``."""
        base = min(self.backoff_base << attempt, self.backoff_cap)
        return base + self.jitter(token, attempt)

    def retry_at(self, token: int, attempt: int, dispatched: int) -> int:
        """The epoch at which dispatch ``attempt + 1`` becomes due, for a
        dispatch made at epoch ``dispatched`` whose ack never arrived."""
        return dispatched + self.ack_timeout + self.backoff(token, attempt)

    def schedule(self, token: int, admitted: int = 0) -> List[int]:
        """The full would-be dispatch schedule of one token admitted at
        ``admitted`` if every ack were lost — the deterministic retry
        timeline the parity tests pin."""
        out = [admitted]
        for attempt in range(self.max_attempts - 1):
            out.append(self.retry_at(token, attempt, out[-1]))
        return out
