"""The shard supervisor: crash detection, declared death, and rejoin.

A small explicit state machine per shard, ticked once per cluster epoch:

::

            ack received                observe_crash(down_for)
      UP <---------------- SUSPECT              |
      | \\                     ^                 v
      |  \\  dispatch got      |               DOWN ---- down past ----> DEAD
      |   `- no response -----'                 |     shard_deadline      |
      |                                         |                         |
      |            down_for elapsed             v                         |
      `<------------- RECOVERING <--------------+<------------------------'

* **UP** — serving; batches are dispatched normally.
* **SUSPECT** — a dispatched batch produced no acknowledgement (dropped
  acks, a partition): the shard may be fine; dispatch continues, the
  client layer's retries carry the load.  One ack clears suspicion.
* **DOWN** — a crash was observed (the dispatch RPC failed mid-epoch).
  No dispatch; in-flight ops wait for the rejoin or their deadlines.
* **DEAD** — down longer than ``RetryPolicy.shard_deadline``: the
  supervisor declares the shard's key range *degraded* and the router
  fails its requests fast with typed ``Unavailable`` instead of letting
  every client burn its full deadline.  Other ranges keep serving.
* **RECOVERING** — power restored this epoch: LightWSP recovery resumes
  the interrupted batch; the acks it completes in the dark are delivered
  now.  The shard serves again next epoch.

With replication the DEAD verdict stops meaning degraded service: the
coordinator promotes the range's follower and calls :meth:`reset` — the
slot restarts UP immediately (the promoted image *is* up), while the
retired primary's crash history stays on the record.  :meth:`add_shard`
grows the cluster by one supervised slot for live resharding.

Every transition is recorded (and emitted into the cluster trace) so a
chaos run's supervision history replays bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = [
    "UP",
    "SUSPECT",
    "DOWN",
    "DEAD",
    "RECOVERING",
    "ShardHealth",
    "Supervisor",
]

UP = "up"
SUSPECT = "suspect"
DOWN = "down"
DEAD = "dead"
RECOVERING = "recovering"


@dataclass
class ShardHealth:
    """Supervision state of one shard."""

    shard: int
    status: str = UP
    since: int = 0              # epoch the current status was entered
    down_until: int = 0         # epoch power returns (DOWN/DEAD only)
    crashes: int = 0
    transitions: List[Tuple[int, str]] = field(default_factory=list)

    def _move(self, epoch: int, status: str) -> None:
        if status == self.status:
            return
        self.status = status
        self.since = epoch
        self.transitions.append((epoch, status))

    @property
    def serving(self) -> bool:
        return self.status in (UP, SUSPECT)

    @property
    def declared_dead(self) -> bool:
        return self.status == DEAD


class Supervisor:
    """Watches every shard; drives DOWN -> DEAD -> RECOVERING -> UP."""

    def __init__(self, n_shards: int, shard_deadline: int) -> None:
        self.shard_deadline = shard_deadline
        self.health = [ShardHealth(shard=i) for i in range(n_shards)]

    def __getitem__(self, shard: int) -> ShardHealth:
        return self.health[shard]

    # ------------------------------------------------------------------
    # observations (coordinator-side evidence)
    # ------------------------------------------------------------------
    def observe_crash(self, shard: int, epoch: int, down_for: int) -> None:
        """The dispatch to ``shard`` failed mid-epoch: power was cut.
        The shard stays dark for ``down_for`` epochs."""
        h = self.health[shard]
        h.crashes += 1
        h.down_until = epoch + max(1, down_for)
        h._move(epoch, DOWN)

    def observe_silence(self, shard: int, epoch: int) -> None:
        """A dispatched batch produced no acknowledgement (ack loss or a
        partition) — suspicion, not a verdict."""
        h = self.health[shard]
        if h.status == UP:
            h._move(epoch, SUSPECT)

    def observe_ack(self, shard: int, epoch: int) -> None:
        """Any acknowledgement from a suspect shard clears suspicion."""
        h = self.health[shard]
        if h.status == SUSPECT:
            h._move(epoch, UP)

    # ------------------------------------------------------------------
    # the per-epoch tick
    # ------------------------------------------------------------------
    def tick(self, epoch: int) -> List[int]:
        """Advance timers.  Returns the shards that rejoin *this* epoch
        (entered RECOVERING; their dark-window acks are deliverable now;
        they serve again from the next epoch)."""
        rejoined: List[int] = []
        for h in self.health:
            if h.status == RECOVERING:
                h._move(epoch, UP)
            elif h.status in (DOWN, DEAD):
                if epoch >= h.down_until:
                    h._move(epoch, RECOVERING)
                    rejoined.append(h.shard)
                elif (
                    h.status == DOWN
                    and epoch - h.since >= self.shard_deadline
                ):
                    # declared dead: the router degrades this key range
                    h._move(epoch, DEAD)
        return rejoined

    # ------------------------------------------------------------------
    # replication-phase-two hooks
    # ------------------------------------------------------------------
    def reset(self, shard: int, epoch: int) -> None:
        """A promoted follower took over the slot: serving resumes *now*.
        The transition to UP is logged (it is part of the supervision
        history the trace replays) and the dark-window timer is cleared —
        the retired image's pending rejoin no longer governs the range."""
        h = self.health[shard]
        h.down_until = 0
        h._move(epoch, UP)

    def add_shard(self) -> int:
        """Grow the cluster by one supervised slot (live resharding).
        Returns the new shard id; it starts UP with a clean history."""
        shard = len(self.health)
        self.health.append(ShardHealth(shard=shard))
        return shard

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[int, str]:
        return {h.shard: h.status for h in self.health}

    def drain_transitions(self) -> List[Tuple[int, int, str]]:
        """All (epoch, shard, status) transitions so far, in epoch order,
        clearing the per-shard logs (trace emission)."""
        out: List[Tuple[int, int, str]] = []
        for h in self.health:
            out.extend((e, h.shard, s) for e, s in h.transitions)
            h.transitions.clear()
        out.sort()
        return out
