"""Cluster-level chaos: the fault vocabulary, seeded schedule generation,
and the campaign runner that hammers the cluster and checks the oracle.

A :class:`ClusterFault` is one adversarial event at the *cluster* layer —
above the machine-level fault model of :mod:`repro.faults.model`, which
keeps attacking each shard from below (``msg`` faults here arm real
boundary-broadcast drops/delays/dups inside the target shard's machine):

=============  ======================================================
kind           effect, at ``(epoch, shard)``
=============  ======================================================
``kill``       power cut mid-epoch at a seeded step; the shard is dark
               for ``down_for`` epochs, then LightWSP recovery resumes
               and completes the interrupted batch and the shard rejoins
``drop_req``   the epoch's batch never reaches the shard
``dup_req``    the batch is delivered twice; the replica must bounce
               off the shard's sequence fence, not double-apply
``drop_ack``   the batch executes but every acknowledgement is lost
``delay_ack``  acknowledgements arrive ``delay`` epochs late
``dup_ack``    acknowledgements are delivered twice (idempotency tokens
               make the second delivery a no-op)
``partition``  coordinator-side: all traffic to the shard is lost from
               ``epoch`` until ``until`` (requests and acks both)
``msg``        arm one machine-level boundary-broadcast fault (op/mc)
               inside the shard's epoch execution
=============  ======================================================

Schedules are lists of these events with a loss-free JSON round-trip, so
a chaos run's full adversary serializes into the JSONL trace, replays
bit-for-bit, and shrinks with the generic delta-debugging minimizer
(:func:`repro.faults.shrink.shrink_schedule`).

:func:`run_cluster_campaign` is the entry point behind
``repro faults campaign --workload cluster``: a seeded sweep of chaos
scenarios over every *recovering* backend, fanned out over worker
processes, asserting zero acked-write loss and transaction atomicity for
each, and shrinking any failure to a minimal fault schedule.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..faults.model import MSG_OPS
from ..parallel import fan_out
from ..runtime.backend import get_backend, require_recovering
from ..trace import JsonlTrace, NullTrace

__all__ = [
    "CLUSTER_FAULT_KINDS",
    "ClusterFault",
    "chaos_to_json",
    "chaos_from_json",
    "generate_cluster_chaos",
    "ClusterScenario",
    "ClusterCampaignReport",
    "run_cluster_campaign",
    "replay_cluster_trace",
]

CLUSTER_FAULT_KINDS: Tuple[str, ...] = (
    "kill",
    "drop_req",
    "dup_req",
    "drop_ack",
    "delay_ack",
    "dup_ack",
    "partition",
    "msg",
)


@dataclass(frozen=True)
class ClusterFault:
    """One cluster-layer adversarial event."""

    kind: str
    epoch: int
    shard: int
    down_for: int = 0       # kill: epochs of darkness before rejoin
    until: int = 0          # partition: first epoch traffic flows again
    delay: int = 1          # delay_ack: epochs of ack lateness
    op: str = ""            # msg: "drop" | "delay" | "dup"
    mc: int = -1            # msg: target memory controller
    replica: int = 0        # kill: 0 = primary, 1 = the range's follower

    def __post_init__(self) -> None:
        if self.kind not in CLUSTER_FAULT_KINDS:
            raise ValueError("unknown cluster fault kind %r" % (self.kind,))
        if self.epoch < 0 or self.shard < 0:
            raise ValueError("fault needs epoch >= 0 and shard >= 0")
        if self.kind == "kill" and self.down_for < 1:
            raise ValueError("kill needs down_for >= 1")
        if self.replica not in (0, 1):
            raise ValueError("replica must be 0 (primary) or 1 (follower)")
        if self.replica == 1 and self.kind != "kill":
            raise ValueError("only kill faults target a follower replica")
        if self.kind == "partition" and self.until <= self.epoch:
            raise ValueError("partition needs until > epoch")
        if self.kind == "msg":
            if self.op not in MSG_OPS:
                raise ValueError("msg fault needs op in %r" % (MSG_OPS,))
            if self.mc < 0:
                raise ValueError("msg fault needs a target mc")

    def to_json(self) -> Dict:
        data = asdict(self)
        for key, default in (
            ("down_for", 0), ("until", 0), ("delay", 1),
            ("op", ""), ("mc", -1), ("replica", 0),
        ):
            if data[key] == default:
                del data[key]
        return data

    @classmethod
    def from_json(cls, data: Dict) -> "ClusterFault":
        return cls(**data)


def chaos_to_json(schedule: Sequence[ClusterFault]) -> List[Dict]:
    return [f.to_json() for f in schedule]


def chaos_from_json(data: Sequence[Dict]) -> List[ClusterFault]:
    return [ClusterFault.from_json(d) for d in data]


def generate_cluster_chaos(
    seed: int,
    n_shards: int,
    horizon: int,
    kills: int = 2,
    transport: int = 6,
    partitions: int = 1,
    msg_faults: int = 2,
    n_mcs: int = 4,
    reshard_at: int = -1,
    follower_kills: int = 0,
) -> List[ClusterFault]:
    """A seeded chaos schedule within ``horizon`` epochs: ``kills`` power
    cuts (each healing within the horizon), ``transport`` request/ack
    faults, ``partitions`` coordinator-side partitions, and
    ``msg_faults`` machine-level broadcast faults.  When ``reshard_at``
    names a migration epoch, kills landing at or after it may target the
    joining shard too (kill-during-migration schedules);
    ``follower_kills`` adds ``replica=1`` power cuts for replicated
    runs.  Deterministic in its arguments."""
    rng = random.Random(seed * 2654435761 + 0x5EED)
    out: List[ClusterFault] = []
    span = max(2, horizon - 1)
    for _ in range(kills):
        # long enough that some kills outlive the supervisor's
        # shard_deadline and exercise declared-death degradation
        down = rng.randint(2, 6)
        epoch = rng.randint(1, max(1, span - down - 1))
        targets = n_shards
        if reshard_at >= 0 and epoch >= reshard_at:
            targets = n_shards + 1
        out.append(ClusterFault(
            kind="kill", epoch=epoch,
            shard=rng.randrange(targets), down_for=down,
        ))
    for _ in range(follower_kills):
        down = rng.randint(2, 6)
        epoch = rng.randint(1, max(1, span - down - 1))
        out.append(ClusterFault(
            kind="kill", epoch=epoch,
            shard=rng.randrange(n_shards), down_for=down, replica=1,
        ))
    kinds = ("drop_req", "dup_req", "drop_ack", "delay_ack", "dup_ack")
    for _ in range(transport):
        kind = kinds[rng.randrange(len(kinds))]
        out.append(ClusterFault(
            kind=kind, epoch=rng.randint(0, span),
            shard=rng.randrange(n_shards),
            delay=rng.randint(1, 3) if kind == "delay_ack" else 1,
        ))
    for _ in range(partitions):
        epoch = rng.randint(1, max(1, span - 3))
        out.append(ClusterFault(
            kind="partition", epoch=epoch,
            shard=rng.randrange(n_shards),
            until=epoch + rng.randint(1, 3),
        ))
    for _ in range(msg_faults):
        out.append(ClusterFault(
            kind="msg", epoch=rng.randint(0, span),
            shard=rng.randrange(n_shards),
            op=MSG_OPS[rng.randrange(len(MSG_OPS))],
            mc=rng.randrange(n_mcs),
        ))
    out.sort(key=lambda f: (
        f.epoch, f.shard, f.kind, f.replica, f.until, f.delay
    ))
    return out


# ----------------------------------------------------------------------
# the chaos campaign
# ----------------------------------------------------------------------

@dataclass
class ClusterScenario:
    """One chaos scenario's outcome."""

    backend: str
    seed: int
    chaos: List[ClusterFault]
    violations: List[str]
    digest: str
    epochs: int
    responses: Dict[str, int]           # status -> count
    unavailable_shards: List[int]
    shrunk: Optional[List[ClusterFault]] = None
    shrink_evals: int = 0
    promotions: int = 0                 # failovers served (replicate)
    resharded: bool = False             # a live migration completed

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class ClusterCampaignReport:
    """The whole campaign: one scenario per (backend, seed)."""

    scenarios: List[ClusterScenario]
    trace_path: Optional[str] = None

    @property
    def failures(self) -> List[ClusterScenario]:
        return [s for s in self.scenarios if not s.ok]

    @property
    def ok(self) -> bool:
        return not self.failures


def _scenario_unit(unit: Tuple[str, int], params: Dict) -> ClusterScenario:
    """Run one (backend, seed) chaos scenario — a pool worker body."""
    from .coordinator import ClusterSession

    backend, seed = unit
    chaos = generate_cluster_chaos(
        seed, params["n_shards"], params["horizon"],
        kills=params["kills"], transport=params["transport"],
        partitions=params["partitions"], msg_faults=params["msg_faults"],
        reshard_at=params["reshard_at"],
        follower_kills=(
            params["follower_kills"] if params["replicate"] else 0
        ),
    )

    def run_once(schedule: Sequence[ClusterFault]) -> "ClusterSession":
        session = ClusterSession.build(
            n_shards=params["n_shards"],
            keyspace=params["keyspace"],
            ops=params["ops"],
            seed=seed,
            backend=backend,
            mix=params["mix"],
            chaos=list(schedule),
            replicate=params["replicate"],
            ship_lag=params["ship_lag"],
            reshard_at=params["reshard_at"],
        )
        session.run()
        return session

    session = run_once(chaos)
    shrunk = None
    evals = 0
    if session.violations and chaos:
        from ..faults.shrink import shrink_schedule

        def still_fails(schedule: Sequence[ClusterFault]) -> bool:
            return bool(run_once(schedule).violations)

        shrunk, evals = shrink_schedule(
            list(chaos), still_fails, budget=params["shrink_budget"]
        )
    counts: Dict[str, int] = {}
    for resp in session.responses.values():
        counts[resp.status] = counts.get(resp.status, 0) + 1
    resharded = bool(
        session._mig is not None and session._mig["state"] == "done"
    )
    return ClusterScenario(
        backend=backend,
        seed=seed,
        chaos=chaos,
        violations=list(session.violations),
        digest=session.digest(),
        epochs=session.epoch,
        responses=counts,
        unavailable_shards=sorted({
            r.shard for r in session.responses.values()
            if r.status == "unavailable" and r.shard >= 0
        }),
        shrunk=shrunk,
        shrink_evals=evals,
        promotions=session.counters.get("promotions", 0),
        resharded=resharded,
    )


def run_cluster_campaign(
    backends: Sequence[str] = ("lightwsp-lrpo", "cwsp-eager"),
    seeds: Sequence[int] = (0, 1, 2),
    n_shards: int = 3,
    keyspace: int = 16,
    ops: int = 36,
    mix: str = "crud",
    jobs: int = 1,
    trace_path: Optional[str] = None,
    kills: int = 2,
    transport: int = 5,
    partitions: int = 1,
    msg_faults: int = 2,
    horizon: int = 24,
    shrink_budget: int = 40,
    replicate: bool = False,
    ship_lag: int = 1,
    reshard_at: int = -1,
    follower_kills: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> ClusterCampaignReport:
    """The seeded cluster chaos campaign: every (backend, seed) pair gets
    its own generated fault schedule, cluster run, and oracle check;
    failing scenarios are shrunk to a minimal schedule.  Backends must be
    crash-consistent by design (``require_recovering``) — a backend that
    loses acked writes at a power cut cannot satisfy the cluster oracle
    and belongs in ``repro compare`` instead."""
    say = progress or (lambda msg: None)
    for name in backends:
        require_recovering(get_backend(name), "the cluster chaos campaign")
    params = {
        "n_shards": n_shards, "keyspace": keyspace, "ops": ops, "mix": mix,
        "kills": kills, "transport": transport, "partitions": partitions,
        "msg_faults": msg_faults, "horizon": horizon,
        "shrink_budget": shrink_budget, "replicate": replicate,
        "ship_lag": ship_lag, "reshard_at": reshard_at,
        "follower_kills": follower_kills,
    }
    units = [(b, s) for b in backends for s in seeds]
    say("cluster campaign: %d scenarios (%d backends x %d seeds), jobs=%d"
        % (len(units), len(backends), len(seeds), jobs))
    scenarios = fan_out(
        lambda unit: _scenario_unit(unit, params),
        units, jobs=jobs, label="cluster-chaos",
    )
    trace = JsonlTrace(trace_path) if trace_path else NullTrace()
    extras: Dict = {}
    if replicate:
        extras["replicate"] = True
        extras["ship_lag"] = ship_lag
        extras["follower_kills"] = follower_kills
    if reshard_at >= 0:
        extras["reshard_at"] = reshard_at
    trace.emit(
        "cluster_campaign_start",
        backends=list(backends), seeds=list(seeds), n_shards=n_shards,
        keyspace=keyspace, ops=ops, mix=mix, kills=kills,
        transport=transport, partitions=partitions, msg_faults=msg_faults,
        horizon=horizon,
        sharding="unit order is (backend-major, seed-minor); results are "
                 "merged by unit index, so jobs never changes this trace",
        **extras,
    )
    for scenario in scenarios:
        record = {
            "backend": scenario.backend, "seed": scenario.seed,
            "chaos": chaos_to_json(scenario.chaos),
            "violations": scenario.violations,
            "digest": scenario.digest,
            "epochs": scenario.epochs,
            "responses": scenario.responses,
            "unavailable_shards": scenario.unavailable_shards,
        }
        if scenario.promotions:
            record["promotions"] = scenario.promotions
        if scenario.resharded:
            record["resharded"] = True
        if scenario.shrunk is not None:
            record["shrunk"] = chaos_to_json(scenario.shrunk)
            record["shrink_evals"] = scenario.shrink_evals
        trace.emit("cluster_scenario", **record)
        say("  %-14s seed=%-3d %s (%d epochs, %s)"
            % (scenario.backend, scenario.seed,
               "ok" if scenario.ok else "VIOLATION",
               scenario.epochs,
               ", ".join("%s=%d" % kv
                         for kv in sorted(scenario.responses.items()))))
    failures = [s for s in scenarios if not s.ok]
    trace.emit(
        "cluster_campaign_end",
        scenarios=len(scenarios), failures=len(failures),
    )
    trace.close()
    return ClusterCampaignReport(
        scenarios=scenarios, trace_path=trace_path
    )


def replay_cluster_trace(
    records: List[Dict],
    progress: Optional[Callable[[str], None]] = None,
) -> List[str]:
    """Re-run every ``cluster_scenario`` in a campaign trace and verify
    its outcome (digest + violations) reproduces exactly.  Returns the
    mismatches (empty = faithful replay)."""
    from .coordinator import ClusterSession
    from ..obs.schema import ensure_supported_version

    say = progress or (lambda msg: None)
    ensure_supported_version(records, "cluster trace")
    start = next(
        (r for r in records if r.get("type") == "cluster_campaign_start"),
        None,
    )
    if start is None:
        return ["trace has no cluster_campaign_start record"]
    mismatches: List[str] = []
    n = 0
    for record in records:
        if record.get("type") != "cluster_scenario":
            continue
        n += 1
        session = ClusterSession.build(
            n_shards=start["n_shards"],
            keyspace=start["keyspace"],
            ops=start["ops"],
            seed=record["seed"],
            backend=record["backend"],
            mix=start["mix"],
            chaos=chaos_from_json(record["chaos"]),
            replicate=start.get("replicate", False),
            ship_lag=start.get("ship_lag", 1),
            reshard_at=start.get("reshard_at", -1),
        )
        session.run()
        label = "%s seed=%d" % (record["backend"], record["seed"])
        if session.digest() != record["digest"]:
            mismatches.append(
                "%s: digest %s, trace recorded %s"
                % (label, session.digest(), record["digest"])
            )
        if list(session.violations) != list(record["violations"]):
            mismatches.append(
                "%s: violations %r, trace recorded %r"
                % (label, session.violations, record["violations"])
            )
        say("  replayed %s: %s" % (label, "ok" if not mismatches else "MISMATCH"))
    if n == 0:
        mismatches.append("trace has no cluster_scenario records")
    return mismatches
