"""The cluster's shard executor: one epoch of one store shard, as a pure
function fit for a :mod:`repro.parallel` worker process.

Each shard is a full LightWSP store node — its own
:class:`~repro.faults.machine.FaultyMachine` with all defenses on and
its own pluggable persist backend — but the executor holds **no** live
machine between epochs: a shard's identity is its durable data
(``image``, a word map) plus how many requests it has served.  Every
epoch the executor boots a fresh machine from that image, seeds the
request ring, runs the shared compiled store program (``epoch_base=0``;
acknowledgement payloads are *local* indices the coordinator translates
through the batch's ``first_id``), and returns the new image.  That
makes :func:`execute_shard_epoch` a deterministic, picklable function of
its arguments — exactly what lets the coordinator fan shards out over
real worker processes with bit-identical results at any ``--jobs``.

Three robustness guards live here, at the point of application:

* **sequence fencing** — a batch whose ``first_id`` does not equal the
  shard's served count is refused (``replay_rejected`` outcome, mirroring
  :class:`repro.store.ReplayedEpochError`): a duplicated or re-ordered
  epoch delivery can never double-apply non-idempotent ops.
* **promotion fencing** — with replication every batch is stamped with
  its range's fencing token; a token that is not the range's current one
  is refused (``fenced_rejected``), checked *before* the sequence fence:
  a demoted primary speaking after failover is split brain, not replay,
  and nothing it applies may count.
* **crash-means-finish** — a power cut mid-epoch triggers the machine's
  real recovery, and — whole-system persistence — the interrupted batch
  *resumes and completes* on restored power.  The executor reports which
  acks were durable before the cut (those are all a live client saw) and
  the full post-recovery ack set separately, so the coordinator can model
  the dark window between the kill and the shard's rejoin.  The store's
  acked-prefix theorem is checked at the cut via
  :func:`repro.store.check_recovery`.

:class:`RangeState` is the coordinator-held replication record per key
range: the fencing token, the follower image the primary's settled
batches are shipped to, the ship log itself, and — after a failover —
the retired primary kept around for the oracle's split-brain checks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..compiler.pipeline import CompiledProgram
from ..config import DEFAULT_CONFIG, SystemConfig
from ..faults.defenses import ALL_ON
from ..faults.machine import FaultyMachine
from ..faults.model import FaultEvent
from ..store.layout import StoreLayout
from ..store.oracle import StoreModel, check_recovery
from ..store.programs import Request, request_words
from ..store.server import DATA_FLOOR
from .protocol import fence_admits

__all__ = [
    "ShardState",
    "RangeState",
    "ShipEntry",
    "EpochResult",
    "execute_shard_epoch",
]

#: per-epoch machine step budget — a batch that exceeds it is a bug, not
#: a slow run, and surfaces as a violation instead of a hang
MAX_EPOCH_STEPS = 8_000_000


@dataclass
class ShardState:
    """Everything durable about one shard between epochs (parent-side)."""

    shard: int
    image: Dict[int, int] = field(default_factory=dict)
    model: StoreModel = None  # type: ignore[assignment]
    served: int = 0           # requests applied in completed epochs
    epochs: int = 0
    steps: int = 0
    crashes: int = 0
    replays_rejected: int = 0
    fault_counters: Dict[str, int] = field(default_factory=dict)

    def image_digest(self) -> str:
        h = hashlib.sha256()
        for w in sorted(self.image):
            h.update(("%d=%d;" % (w, self.image[w])).encode())
        return h.hexdigest()[:16]


#: one shipped unit of the replication log: the epoch the batch settled,
#: its sequence-fence position, and the requests it applied, in order
ShipEntry = Tuple[int, int, List[Request]]


@dataclass
class RangeState:
    """Replication bookkeeping for one key range (coordinator-held).

    The *range* is the unit of failover: its primary is always
    ``ClusterSession.shards[range_id]`` (promotion swaps the object into
    that slot), its follower re-applies the primary's settled batches
    from ``ship_log`` — each exactly once, in order, through the same
    executor — lagging by at most the configured window.  ``fence``
    starts at 1 and bumps at every promotion; the retired primary and
    the token it was fenced at stay on record so the oracle can prove no
    post-demotion write of it was ever admitted."""

    range_id: int
    fence: int = 1
    follower: Optional[ShardState] = None
    #: settled batches not all of which have reached the follower yet
    ship_log: List[ShipEntry] = field(default_factory=list)
    shipped: int = 0          # ship_log prefix applied at the follower
    promotions: int = 0
    retired: Optional[ShardState] = None
    retired_fence: int = 0    # token the retired primary was fenced at

    @property
    def lag(self) -> int:
        """Settled batches the follower has not applied yet."""
        return len(self.ship_log) - self.shipped


@dataclass
class EpochResult:
    """What one :func:`execute_shard_epoch` call produced (picklable)."""

    shard: int
    #: "ok" | "crashed" | "replay_rejected" | "fenced_rejected"
    outcome: str = "ok"
    image: Dict[int, int] = field(default_factory=dict)
    #: local request indices whose acks were durable before any cut —
    #: the acknowledgements a live coordinator actually receives
    acked_local: List[int] = field(default_factory=list)
    #: local indices acked only after crash-recovery resumed the batch
    #: (delivered to the coordinator when the shard rejoins)
    late_local: List[int] = field(default_factory=list)
    #: durable result word per local request index, post-epoch
    results: List[int] = field(default_factory=list)
    steps: int = 0
    crash_step: int = 0
    violations: List[str] = field(default_factory=list)
    fault_counters: Dict[str, int] = field(default_factory=dict)


def execute_shard_epoch(
    shard: int,
    compiled: CompiledProgram,
    layout: StoreLayout,
    image: Dict[int, int],
    served: int,
    batch: Sequence[Request],
    first_id: int,
    base_model: StoreModel,
    backend: str,
    config: SystemConfig = DEFAULT_CONFIG,
    crash_step: Optional[int] = None,
    crash_event: Optional[FaultEvent] = None,
    msg_faults: Sequence[FaultEvent] = (),
    batch_fence: int = 1,
    range_fence: int = 1,
) -> EpochResult:
    """Run one epoch of one shard.  Pure in its arguments; touches no
    global state, so it can run in a forked worker or inline with
    identical results."""
    result = EpochResult(shard=shard)
    if not fence_admits(range_fence, batch_fence):
        # promotion fence: a batch stamped with a stale (or future)
        # fencing token is split brain, refused before anything applies
        result.outcome = "fenced_rejected"
        result.image = dict(image)
        return result
    if first_id != served:
        # sequence fence: the message layer (or a buggy driver) delivered
        # an epoch the shard is not at — refuse rather than double-apply
        result.outcome = "replay_rejected"
        result.image = dict(image)
        return result

    machine = FaultyMachine(
        compiled, config=config, defenses=ALL_ON,
        max_steps=MAX_EPOCH_STEPS, backend=backend,
    )
    machine.pm.update(image)
    machine.volatile.words.update(image)
    ring = request_words(layout, list(batch))
    machine.pm.update(ring)
    machine.volatile.words.update(ring)
    for event in msg_faults:
        machine.arm_msg(event)

    crashed = False
    pre_acked: List[int] = []
    if crash_step is not None:
        machine.run(steps=max(1, crash_step))
        if not machine.finished:
            crashed = True
            result.crash_step = machine.stats.steps
            machine.crash(crash_event)
            # acks durable at the cut: payloads are local indices
            pre_acked = sorted({entry[3] for entry in machine.io_log})
            acked_global = {first_id + p for p in pre_acked}
            found = check_recovery(
                machine.pm, acked_global, base_model, list(batch), first_id
            )
            result.violations.extend(
                "shard %d epoch at id %d (cut at step %d): %s"
                % (shard, first_id, result.crash_step, v)
                for v in found
            )
    # whole-system persistence: on restored power the interrupted batch
    # resumes from its checkpoint and completes
    machine.run()
    machine.finish_messages()
    if not machine.finished:
        result.outcome = "crashed" if crashed else "ok"
        result.violations.append(
            "shard %d: epoch at id %d did not finish within %d steps"
            % (shard, first_id, MAX_EPOCH_STEPS)
        )
        return result

    all_acked = sorted({entry[3] for entry in machine.io_log})
    if crashed:
        result.outcome = "crashed"
        result.acked_local = pre_acked
        result.late_local = [p for p in all_acked if p not in set(pre_acked)]
    else:
        result.outcome = "ok"
        result.acked_local = all_acked
    result.image = {
        w: v for w, v in machine.pm.items()
        if w >= DATA_FLOOR and v != 0
    }
    result.results = [
        machine.pm.get(layout.out + i, 0) for i in range(len(batch))
    ]
    result.steps = machine.stats.steps
    result.fault_counters = dict(machine.fault_counters)
    return result
