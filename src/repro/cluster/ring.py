"""Consistent-hash key placement for the sharded store cluster.

Keys are placed on a 64-bit hash ring: every shard owns ``vnodes``
points (hashed from ``(shard, replica)``), and a key belongs to the
first shard point at or clockwise-after the key's own hash.  Placement
is a pure function of ``(n_shards, vnodes)`` — independent of
``PYTHONHASHSEED``, process, or time — so the coordinator, the chaos
replayer, and every worker process agree on the ownership map without
exchanging it.

The ring exists for the property the modulo hash lacks: adding or
removing one shard remaps only the arcs adjacent to its points (about
``1/n`` of the keyspace) instead of reshuffling almost every key.  The
cluster keeps placement *fixed* while a shard is down — a dead shard's
arc fails over to its replica (or, un-replicated, degrades to typed
``Unavailable`` errors) rather than migrating, so recovery-and-rejoin
never moves data.  The stability property is what makes *live
resharding* incremental: :meth:`HashRing.extended` adds one shard's
points without touching any existing point, so :func:`moved_keys` — the
arcs the new shard steals — is the complete migration plan, about
``1/(n+1)`` of the keyspace, and the test suite pins it.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Tuple

__all__ = ["HashRing", "DEFAULT_VNODES", "moved_keys"]

DEFAULT_VNODES = 64


def _point(*parts: object) -> int:
    text = ":".join(str(p) for p in parts)
    return int.from_bytes(
        hashlib.sha256(text.encode()).digest()[:8], "big"
    )


class HashRing:
    """Consistent hashing of integer keys over ``n_shards`` shards."""

    def __init__(self, n_shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if vnodes < 1:
            raise ValueError("need at least one vnode per shard")
        self.n_shards = n_shards
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for shard in range(n_shards):
            for replica in range(vnodes):
                points.append((_point("shard", shard, replica), shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    def extended(self) -> "HashRing":
        """The ring with one more shard.  Existing shard points are a
        pure function of ``(shard, replica)``, so every point of this
        ring survives unchanged — the new shard only *steals* arcs,
        which is what makes live resharding an incremental copy of
        :func:`moved_keys` instead of a full reshuffle."""
        return HashRing(self.n_shards + 1, self.vnodes)

    def shard_for(self, key: int) -> int:
        """The shard owning ``key`` (clockwise-next point on the ring)."""
        h = _point("key", key)
        i = bisect.bisect_right(self._hashes, h)
        if i == len(self._hashes):
            i = 0
        return self._owners[i]

    def ownership(self, keyspace: int) -> Dict[int, List[int]]:
        """shard -> sorted keys it owns, over keys ``1..keyspace``."""
        out: Dict[int, List[int]] = {s: [] for s in range(self.n_shards)}
        for key in range(1, keyspace + 1):
            out[self.shard_for(key)].append(key)
        return out

    def digest(self) -> str:
        """A fingerprint of the placement function, recorded in cluster
        traces so replay can verify it reproduces the same ring."""
        h = hashlib.sha256()
        h.update(("%d:%d;" % (self.n_shards, self.vnodes)).encode())
        for point, owner in zip(self._hashes[:64], self._owners[:64]):
            h.update(("%d=%d;" % (point, owner)).encode())
        return h.hexdigest()[:16]


def moved_keys(old: HashRing, new: HashRing, keyspace: int) -> List[int]:
    """The migration plan: keys in ``1..keyspace`` whose owner differs
    between the two rings, sorted.  With ``new = old.extended()`` every
    moved key lands on the new shard (pinned by the ring tests), so this
    list is exactly what the live reshard must copy."""
    return [
        key
        for key in range(1, keyspace + 1)
        if old.shard_for(key) != new.shard_for(key)
    ]
