"""Logical client operations for the cluster: the store workload lifted
one level up, plus cross-shard multi-key transactions.

A :class:`LogicalOp` is what a *client* asks the cluster — keyed by an
idempotency token, routed by the coordinator, possibly fanned out over
several shards — as opposed to a shard-level :data:`repro.store.Request`
which is one already-routed store opcode.  Kinds:

* ``put`` / ``get`` / ``delete`` — single-key, one shard;
* ``scan`` — a contiguous key range summed across every shard that owns
  part of it (scatter-gather read; weakly consistent, takes no locks);
* ``txn`` — an atomic multi-key PUT across 2..3 keys, usually spanning
  shards, executed by the coordinator as a two-phase commit over shadow
  keys (see DESIGN.md "Cluster").

Generation reuses the seeded store workload generator so the cluster
inherits the YCSB mixes and key distributions, then lifts every ``ops``
request into a logical op and replaces every ``txn_every``-th PUT with a
multi-put transaction whose keys are drawn fresh (seeded, distinct).
Same ``(mix, ops, keyspace, seed, dist, txn_every)`` -> same op list,
independent of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..store.layout import OP_DELETE, OP_GET, OP_PUT, OP_SCAN
from ..store.workload import MAX_SEED, generate_workload

__all__ = ["LogicalOp", "OP_KINDS", "generate_cluster_ops"]

OP_KINDS: Tuple[str, ...] = ("put", "get", "delete", "scan", "txn")

_KIND_OF = {OP_PUT: "put", OP_GET: "get", OP_DELETE: "delete", OP_SCAN: "scan"}

#: keys per multi-put transaction (2PC participants)
TXN_KEYS = (2, 3)


@dataclass(frozen=True)
class LogicalOp:
    """One client-level operation, identified by its idempotency token.

    ``keys``/``args`` by kind: ``put`` -> ``(key,)``/``(seed,)``;
    ``get``/``delete`` -> ``(key,)``/``()``; ``scan`` ->
    ``(start,)``/``(count,)``; ``txn`` -> ``(k1..kn)``/``(s1..sn)``.
    """

    token: int
    kind: str
    keys: Tuple[int, ...]
    args: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError("unknown op kind %r" % (self.kind,))
        if not self.keys:
            raise ValueError("op needs at least one key")
        if self.kind in ("put", "txn") and len(self.args) != len(self.keys):
            raise ValueError("%s needs one seed per key" % self.kind)

    @property
    def is_write(self) -> bool:
        return self.kind in ("put", "delete", "txn")

    def to_json(self) -> Dict:
        return {
            "token": self.token, "kind": self.kind,
            "keys": list(self.keys), "args": list(self.args),
        }

    @classmethod
    def from_json(cls, data: Dict) -> "LogicalOp":
        return cls(
            token=data["token"], kind=data["kind"],
            keys=tuple(data["keys"]), args=tuple(data["args"]),
        )


def generate_cluster_ops(
    mix: str,
    ops: int,
    keyspace: int,
    seed: int = 0,
    dist: str = "zipfian",
    txn_every: int = 8,
) -> List[LogicalOp]:
    """The cluster workload: the store's load phase + mixed phase lifted
    to logical ops, with every ``txn_every``-th mixed PUT upgraded to a
    cross-shard multi-put transaction (``txn_every <= 0`` disables
    transactions)."""
    base = generate_workload(mix, ops, keyspace, seed=seed, dist=dist)
    rng = random.Random(seed * 2654435761 + 97)
    out: List[LogicalOp] = []
    puts_seen = 0
    for op, key, arg in base:
        token = len(out)
        kind = _KIND_OF[op]
        in_mixed_phase = token >= keyspace
        if kind == "put" and in_mixed_phase:
            puts_seen += 1
            if txn_every > 0 and puts_seen % txn_every == 0:
                n = TXN_KEYS[rng.randrange(len(TXN_KEYS))]
                keys = rng.sample(range(1, keyspace + 1), n)
                seeds = tuple(rng.randint(1, MAX_SEED) for _ in keys)
                out.append(LogicalOp(token, "txn", tuple(keys), seeds))
                continue
        if kind == "put":
            out.append(LogicalOp(token, "put", (key,), (arg,)))
        elif kind == "scan":
            # clamp the range inside the real keyspace so a scan can
            # never observe a transaction's transient shadow keys
            count = min(arg, keyspace - key + 1)
            out.append(LogicalOp(token, "scan", (key,), (max(1, count),)))
        else:
            out.append(LogicalOp(token, kind, (key,)))
    return out
