"""The cluster-level oracle: zero acked-write loss and 2PC atomicity.

Checked at quiesce, against two independent sources of truth:

* the **applied log** — every store request a shard actually executed,
  in application order, recorded as batches merged (the ground truth a
  real cluster does not have; the simulation does, which is the point);
* the **client's view** — the typed responses per idempotency token.

The theorem, cluster edition:

1. **Shard honesty.**  Replaying each shard's applied log through a
   fresh :class:`~repro.store.StoreModel` reproduces exactly the visible
   state of its final durable image (no dirty, torn, or lost state at
   any shard — whatever kills, partitions, and message faults ran).
2. **Zero acked-write loss.**  Every write the client saw succeed
   (status ``ok``) was applied; since the final value of every key is by
   (1) the last *applied* write, an acknowledged write can only be
   superseded by another applied — i.e. legitimately issued — write,
   never silently dropped.
3. **No phantom writes.**  A write that failed *determinately* (the
   coordinator proved no dispatch could have reached a shard) appears
   nowhere in the applied log; only ``indeterminate`` failures may have
   landed.
4. **Transaction atomicity.**  A committed transaction's every real-key
   PUT is applied; an aborted transaction touched no real key at all
   (its prepares live under shadow keys); and no shadow key is visible
   anywhere at quiesce — so no client-visible half-commit exists after
   any shard-kill schedule.
5. **Completion.**  Every admitted token carries exactly one response
   (idempotent retries never double-complete) and nothing is left in
   flight.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Set

from ..store.layout import OP_DELETE, OP_PUT
from ..store.oracle import StoreModel, visible_state

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .coordinator import ClusterSession

__all__ = ["check_cluster"]


def check_cluster(session: "ClusterSession") -> List[str]:
    """Run the full cluster oracle; returns violation descriptions
    (empty = the theorem holds)."""
    violations: List[str] = []
    keyspace = session.keyspace
    layout = session.layout

    # (1) shard honesty: independent replay of the applied log
    per_shard: Dict[int, List] = {s.shard: [] for s in session.shards}
    for shard_id, _gid, _token, request in session.applied_log:
        per_shard[shard_id].append(request)
    for state in session.shards:
        replay = StoreModel(layout)
        replay.apply_all(per_shard[state.shard])
        visible, problems = visible_state(state.image, layout)
        violations.extend(
            "shard %d final: %s" % (state.shard, p) for p in problems
        )
        if visible != replay.kv:
            diffs = sorted(
                k for k in set(visible) | set(replay.kv)
                if visible.get(k) != replay.kv.get(k)
            )
            violations.append(
                "shard %d: visible state diverges from its applied log "
                "at keys %s" % (state.shard, diffs[:6])
            )
        # (4, part) no shadow key survives quiesce
        shadows = sorted(k for k in visible if k > keyspace)
        if shadows:
            violations.append(
                "shard %d: shadow keys %s visible at quiesce "
                "(2PC half-commit left behind)" % (state.shard, shadows[:6])
            )

    applied_tokens: Set[int] = {t for _, _, t, _ in session.applied_log}

    # (5) completion: one response per admitted token, nothing in flight
    if session.inflight:
        violations.append(
            "tokens still in flight at quiesce: %s"
            % sorted(session.inflight)[:6]
        )
    admitted = applied_tokens | set(session.responses) | set(
        session.inflight
    )
    unanswered = sorted(admitted - set(session.responses))
    if unanswered:
        violations.append(
            "tokens never completed: %s" % unanswered[:6]
        )

    flights_by_token = {
        t: session.responses[t] for t in session.responses
    }

    # (2) zero acked-write loss + (3) no phantom writes
    for token, resp in sorted(flights_by_token.items()):
        if resp.status == "ok":
            continue
        # a determinately-failed write must not have landed anywhere
        if not resp.indeterminate and resp.status in (
            "unavailable", "deadline_exceeded"
        ):
            wrote = [
                (s, g) for s, g, t, req in session.applied_log
                if t == token and req[0] in (OP_PUT, OP_DELETE)
                and req[1] <= keyspace
            ]
            if wrote:
                violations.append(
                    "token %d failed %s (determinate) but its write was "
                    "applied at %s" % (token, resp.status, wrote[:3])
                )

    # (4) transaction atomicity against the decision log
    decisions = {token: d for _, token, d in session.decision_log}
    txn_tokens = set(decisions)
    for token in sorted(txn_tokens):
        decision = decisions[token]
        resp = session.responses.get(token)
        real_puts = [
            req for _, _, t, req in session.applied_log
            if t == token and req[0] == OP_PUT and req[1] <= keyspace
        ]
        if decision == "commit":
            if resp is None or resp.status != "ok":
                violations.append(
                    "txn %d: committed but client saw %s"
                    % (token, resp.status if resp else "nothing")
                )
            # every participant's real-key PUT drained at least once
            flight_keys = {req[1] for req in real_puts}
            want = _txn_keys(session, token)
            missing = sorted(want - flight_keys)
            if missing:
                violations.append(
                    "txn %d: committed but keys %s never received their "
                    "PUT (half-commit)" % (token, missing)
                )
        else:
            if real_puts:
                violations.append(
                    "txn %d: aborted but applied real-key PUTs %s"
                    % (token, sorted({r[1] for r in real_puts}))
                )
            if resp is not None and resp.status == "ok":
                violations.append(
                    "txn %d: aborted but client saw ok" % token
                )
    return violations


def _txn_keys(session: "ClusterSession", token: int) -> Set[int]:
    """The transaction's key set — the workload op is the authority."""
    op = session.ops_by_token.get(token)
    if op is not None:
        return set(op.keys)
    # fall back to the prepare-phase shadow writes
    return {
        req[1] - session.keyspace
        for _, _, t, req in session.applied_log
        if t == token and req[0] == OP_PUT and req[1] > session.keyspace
    }
