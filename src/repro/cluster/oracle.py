"""The cluster-level oracle: zero acked-write loss and 2PC atomicity,
extended with the replication/failover/resharding invariants.

Checked at quiesce, against two independent sources of truth:

* the **applied log** — every store request a shard actually executed,
  in application order, recorded as batches merged (the ground truth a
  real cluster does not have; the simulation does, which is the point);
* the **client's view** — the typed responses per idempotency token.

The theorem, cluster edition:

1. **Shard honesty.**  Replaying each shard's applied log through a
   fresh :class:`~repro.store.StoreModel` reproduces exactly the visible
   state of its final durable image (no dirty, torn, or lost state at
   any shard — whatever kills, partitions, and message faults ran).
2. **Zero acked-write loss.**  Every write the client saw succeed
   (status ``ok``) was applied; since the final value of every key is by
   (1) the last *applied* write, an acknowledged write can only be
   superseded by another applied — i.e. legitimately issued — write,
   never silently dropped.  Failover preserves this: a promoted
   follower serves from the full shipped log, so the dead primary's
   acknowledged writes survive the promotion.
3. **No phantom writes.**  A write that failed *determinately* (the
   coordinator proved no dispatch could have reached a shard) appears
   nowhere in the applied log; only ``indeterminate`` failures may have
   landed.
4. **Transaction atomicity.**  A committed transaction's every real-key
   PUT is applied; an aborted transaction touched no real key at all
   (its prepares live under shadow keys); and no shadow key is visible
   anywhere at quiesce — so no client-visible half-commit exists after
   any shard-kill schedule, including kills during a live migration.
5. **Completion.**  Every admitted token carries exactly one response
   (idempotent retries never double-complete) and nothing is left in
   flight.
6. **No double-serving.**  Per shard slot, the applied log's positions
   are exactly ``0..served-1``, each applied once, in order — a
   duplicated or skipped epoch (the failure live resharding and
   promotion must not introduce) breaks the sequence.
7. **Key placement.**  Every key visible at quiesce lives on the shard
   the final hash ring assigns it — after a live reshard the moved arc
   exists only at the joining shard (the sources dropped it at
   handoff).
8. **Fence integrity** (replicated runs).  Every applied op carries the
   fencing token its range held at that epoch; an op under a stale
   token is a demoted primary speaking after its promotion — split
   brain — and is flagged.
9. **Replica convergence** (replicated runs).  At quiesce, after the
   ship backlog drains, each range's follower has applied exactly the
   primary's log: same served count, same durable image.  A shipping
   layer that silently lost a batch cannot pass.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Set

from ..store.layout import OP_DELETE, OP_PUT
from ..store.oracle import StoreModel, visible_state

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .coordinator import ClusterSession

__all__ = ["check_cluster"]


def check_cluster(session: "ClusterSession") -> List[str]:
    """Run the full cluster oracle; returns violation descriptions
    (empty = the theorem holds)."""
    violations: List[str] = []
    keyspace = session.keyspace
    layout = session.layout

    # (1) shard honesty: independent replay of the applied log,
    # (7) key placement under the final ring
    per_shard: Dict[int, List] = {s.shard: [] for s in session.shards}
    for entry in session.applied_log:
        if entry.shard in per_shard:
            per_shard[entry.shard].append(entry.request)
    for state in session.shards:
        replay = StoreModel(layout)
        replay.apply_all(per_shard[state.shard])
        visible, problems = visible_state(state.image, layout)
        violations.extend(
            "shard %d final: %s" % (state.shard, p) for p in problems
        )
        if visible != replay.kv:
            diffs = sorted(
                k for k in set(visible) | set(replay.kv)
                if visible.get(k) != replay.kv.get(k)
            )
            violations.append(
                "shard %d: visible state diverges from its applied log "
                "at keys %s" % (state.shard, diffs[:6])
            )
        # (4, part) no shadow key survives quiesce
        shadows = sorted(k for k in visible if k > keyspace)
        if shadows:
            violations.append(
                "shard %d: shadow keys %s visible at quiesce "
                "(2PC half-commit left behind)" % (state.shard, shadows[:6])
            )
        misplaced = sorted(
            k for k in visible
            if k <= keyspace and session.owner(k) != state.shard
        )
        if misplaced:
            violations.append(
                "shard %d: keys %s visible but owned by another shard "
                "under the final ring (migration left the arc behind)"
                % (state.shard, misplaced[:6])
            )

    # (6) no double-serving: per-slot positions are 0..served-1 in order
    next_gid: Dict[int, int] = {}
    for entry in session.applied_log:
        want = next_gid.get(entry.shard, 0)
        if entry.gid != want:
            violations.append(
                "shard %d: application order broke at position %d "
                "(expected %d) — an epoch was double-served or skipped"
                % (entry.shard, entry.gid, want)
            )
        next_gid[entry.shard] = max(want, entry.gid) + 1

    applied_tokens: Set[int] = {
        e.token for e in session.applied_log if e.token >= 0
    }

    # (5) completion: one response per admitted token, nothing in flight
    if session.inflight:
        violations.append(
            "tokens still in flight at quiesce: %s"
            % sorted(session.inflight)[:6]
        )
    admitted = applied_tokens | set(session.responses) | set(
        session.inflight
    )
    unanswered = sorted(admitted - set(session.responses))
    if unanswered:
        violations.append(
            "tokens never completed: %s" % unanswered[:6]
        )

    flights_by_token = {
        t: session.responses[t] for t in session.responses
    }

    # (2) zero acked-write loss + (3) no phantom writes
    for token, resp in sorted(flights_by_token.items()):
        if resp.status == "ok":
            continue
        # a determinately-failed write must not have landed anywhere
        if not resp.indeterminate and resp.status in (
            "unavailable", "deadline_exceeded"
        ):
            wrote = [
                (e.shard, e.gid) for e in session.applied_log
                if e.token == token and e.request[0] in (OP_PUT, OP_DELETE)
                and e.request[1] <= keyspace
            ]
            if wrote:
                violations.append(
                    "token %d failed %s (determinate) but its write was "
                    "applied at %s" % (token, resp.status, wrote[:3])
                )

    # (4) transaction atomicity against the decision log
    decisions = {token: d for _, token, d in session.decision_log}
    txn_tokens = set(decisions)
    for token in sorted(txn_tokens):
        decision = decisions[token]
        resp = session.responses.get(token)
        real_puts = [
            e.request for e in session.applied_log
            if e.token == token and e.request[0] == OP_PUT
            and e.request[1] <= keyspace
        ]
        if decision == "commit":
            if resp is None or resp.status != "ok":
                violations.append(
                    "txn %d: committed but client saw %s"
                    % (token, resp.status if resp else "nothing")
                )
            # every participant's real-key PUT drained at least once
            flight_keys = {req[1] for req in real_puts}
            want = _txn_keys(session, token)
            missing = sorted(want - flight_keys)
            if missing:
                violations.append(
                    "txn %d: committed but keys %s never received their "
                    "PUT (half-commit)" % (token, missing)
                )
        else:
            if real_puts:
                violations.append(
                    "txn %d: aborted but applied real-key PUTs %s"
                    % (token, sorted({r[1] for r in real_puts}))
                )
            if resp is not None and resp.status == "ok":
                violations.append(
                    "txn %d: aborted but client saw ok" % token
                )

    # (8) fence integrity: every applied op under its range's live token
    promos: Dict[int, List] = {}
    for pe, pr, pf in session.promotion_log:
        promos.setdefault(pr, []).append((pe, pf))
    if session.replicate:
        for entry in session.applied_log:
            want_fence = 1
            for pe, pf in promos.get(entry.shard, []):
                if pe <= entry.epoch:
                    want_fence = pf
            if entry.fence != want_fence:
                violations.append(
                    "shard %d: op at position %d applied under fencing "
                    "token %d but the range's token at epoch %d was %d "
                    "(a demoted primary's write entered the log)"
                    % (entry.shard, entry.gid, entry.fence,
                       entry.epoch, want_fence)
                )

    # (9) replica convergence at quiesce
    if session.replicate:
        for rs in session.ranges:
            primary = session.shards[rs.range_id]
            follower = rs.follower
            if follower is None:
                violations.append(
                    "range %d: no follower at quiesce" % rs.range_id
                )
                continue
            if follower.served != primary.served or \
                    follower.image_digest() != primary.image_digest():
                violations.append(
                    "range %d: replica divergence at quiesce (primary "
                    "served %d image %s, follower served %d image %s) "
                    "— a shipped batch was lost or reordered"
                    % (rs.range_id, primary.served,
                       primary.image_digest(), follower.served,
                       follower.image_digest())
                )
    return violations


def _txn_keys(session: "ClusterSession", token: int) -> Set[int]:
    """The transaction's key set — the workload op is the authority."""
    op = session.ops_by_token.get(token)
    if op is not None:
        return set(op.keys)
    # fall back to the prepare-phase shadow writes
    return {
        e.request[1] - session.keyspace
        for e in session.applied_log
        if e.token == token and e.request[0] == OP_PUT
        and e.request[1] > session.keyspace
    }
