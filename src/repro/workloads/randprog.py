"""Seeded random program generation for differential testing.

``random_program`` builds structured, always-terminating programs —
straight-line compute, counted loops, read-modify-write bursts, fences,
function calls, and (optionally) lock-protected multi-threaded sections —
from a seed.  The fuzz harness (``examples/fuzz_crash_consistency.py``)
and the property-test suites use it to hammer the compiler + persistence
machine with shapes no hand-written kernel covers.

All generated multi-threaded programs are data-race-free by construction:
shared words are touched only inside a lock that every thread uses, and
per-thread slices are disjoint — matching the DRF assumption LightWSP
inherits from persistency models (§III-D).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..compiler.builder import FunctionBuilder
from ..compiler.ir import Program

__all__ = ["random_program", "random_mt_program"]

_REGS = ["r%d" % i for i in range(1, 8)]
_OPS = ["add", "sub", "mul", "xor", "and_", "or_", "min", "max"]


def _random_segment(rng: random.Random, fb: FunctionBuilder, base: int, span: int) -> None:
    kind = rng.choice(["straight", "loop", "rmw", "fence"])
    if kind == "straight":
        for _ in range(rng.randint(1, 8)):
            choice = rng.random()
            dst = rng.choice(_REGS)
            src = rng.choice(_REGS)
            if choice < 0.5:
                op = rng.choice(_OPS)
                operand = rng.choice([rng.randint(-9, 9), rng.choice(_REGS)])
                getattr(fb, op)(dst, src, operand)
            elif choice < 0.75:
                fb.store(src, rng.randrange(span), base=base)
            else:
                fb.load(dst, rng.randrange(span), base=base)
    elif kind == "loop":
        label = fb.func.fresh_label("rloop")
        after = fb.func.fresh_label("rafter")
        trip = rng.randint(1, 10)
        stores = rng.randint(1, 3)
        fb.const("r1", 0)
        fb.br(label)
        fb.block(label)
        for k in range(stores):
            fb.add("r2", "r1", k)
            fb.store("r2", "r1", base=base + rng.randrange(span // 2))
        fb.add("r1", "r1", 1)
        fb.lt("r3", "r1", trip)
        fb.cbr("r3", label, after)
        fb.block(after)
    elif kind == "rmw":
        idx = rng.randrange(span)
        fb.load("r4", idx, base=base)
        fb.add("r4", "r4", rng.randint(1, 5))
        fb.store("r4", idx, base=base)
    else:
        fb.fence()


def random_program(
    seed: int,
    segments: Optional[int] = None,
    with_calls: bool = True,
) -> Program:
    """A deterministic random single-threaded program for ``seed``."""
    rng = random.Random(seed)
    prog = Program("rand%d" % seed)
    span = 128
    base = prog.array("data", span)

    if with_calls and rng.random() < 0.5:
        helper = FunctionBuilder(prog, "helper", params=("r1",))
        helper.block("entry")
        helper.mul("r2", "r1", rng.randint(2, 5))
        helper.store("r2", "r1", base=base)
        helper.ret("r2")
        helper.build()

    fb = FunctionBuilder(prog, "main")
    fb.block("entry")
    for reg in _REGS:
        fb.const(reg, rng.randint(-40, 40))
    for _ in range(segments if segments is not None else rng.randint(1, 5)):
        _random_segment(rng, fb, base, span)
    if "helper" in prog.functions and rng.random() < 0.8:
        fb.call("helper", args=(rng.randrange(span),), ret="r5")
        fb.store("r5", span - 1, base=base)
    fb.ret()
    fb.build()
    return prog


def random_mt_program(
    seed: int, n_threads: int = 2
) -> Tuple[Program, List[Tuple[str, Tuple[int, ...]]]]:
    """A deterministic random DRF multi-threaded program: each worker owns
    a private slice and shares a lock-protected accumulator region.
    Returns (program, entries)."""
    rng = random.Random(seed)
    prog = Program("randmt%d" % seed)
    slice_words = 32
    shared_words = 8
    shared = prog.array("shared", shared_words)
    private = prog.array("private", n_threads * slice_words)

    fb = FunctionBuilder(prog, "worker", params=("r11",))
    fb.block("entry")
    fb.mul("r9", "r11", slice_words)
    for reg in ("r1", "r2", "r3"):
        fb.const(reg, rng.randint(-9, 9))
    iters = rng.randint(2, 6)
    fb.const("r1", 0)
    fb.br("loop")
    fb.block("loop")
    # private work
    for _ in range(rng.randint(1, 3)):
        fb.add("r2", "r2", rng.randint(1, 4))
        fb.mod("r4", "r2", slice_words)
        fb.add("r4", "r4", "r9")
        fb.store("r2", "r4", base=private)
    # shared critical section
    fb.lock(0)
    slot = rng.randrange(shared_words)
    fb.load("r5", slot, base=shared)
    fb.add("r5", "r5", 1)
    fb.store("r5", slot, base=shared)
    fb.unlock(0)
    fb.add("r1", "r1", 1)
    fb.lt("r6", "r1", iters)
    fb.cbr("r6", "loop", "exit")
    fb.block("exit")
    fb.ret()
    fb.build()
    entries = [("worker", (t,)) for t in range(n_threads)]
    return prog, entries
