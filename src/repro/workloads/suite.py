"""The 38-application evaluation suite (§V-A).

Every benchmark the paper evaluates — SPEC CPU2006/2017, STAMP, NPB,
SPLASH3, WHISPER — is mapped onto a workload archetype with parameters
chosen to match its qualitative behaviour: store density, memory
intensity (footprint vs. the scaled cache hierarchy), locality, and
synchronization frequency.  Absolute trace lengths are sized so a full
suite sweep stays tractable in pure Python; the ``scale`` knob shrinks or
grows the dynamic op counts without changing footprints (so cache
behaviour is preserved).

The per-benchmark parameters are the calibration surface of this
reproduction: they were tuned so the *shape* of the paper's figures —
which scheme wins where, roughly by how much — reproduces, not absolute
gem5 cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..compiler.ir import Program
from . import archetypes as A

__all__ = ["Benchmark", "SUITES", "BENCHMARKS", "benchmarks_of", "MEMORY_INTENSIVE"]


@dataclass(frozen=True)
class Benchmark:
    """One application of the evaluation."""

    name: str
    suite: str
    #: factory(scale, threads) -> Program
    factory: Callable[[float, int], Program]
    threads: int = 1
    memory_intensive: bool = False

    def build(self, scale: float = 1.0, threads: Optional[int] = None) -> Program:
        return self.factory(scale, threads or self.threads)

    def entries(self, threads: Optional[int] = None) -> List[Tuple[str, Tuple[int, ...]]]:
        n = threads or self.threads
        if n == 1:
            return [("main", ())]
        return [("worker", (t,)) for t in range(n)]


def _n(value: float, minimum: int = 1) -> int:
    return max(minimum, int(value))


# ----------------------------------------------------------------------
# single-threaded factories (scale multiplies dynamic op counts)
# ----------------------------------------------------------------------

def _streaming(n_words: int, sweeps: int, stores: int = 1, compute: int = 2,
               min_sweeps: int = 1):
    def build(scale: float, threads: int) -> Program:
        return A.streaming(
            n_words=n_words,
            sweeps=_n(sweeps * scale, minimum=min_sweeps),
            stores_per_element=stores,
            compute_per_element=compute,
        )
    return build


def _stencil(n_words: int, sweeps: int, min_sweeps: int = 1):
    def build(scale: float, threads: int) -> Program:
        return A.stencil(n_words=n_words, sweeps=_n(sweeps * scale, minimum=min_sweeps))
    return build


def _random(n_words: int, ops: int, read_ratio: int = 1):
    def build(scale: float, threads: int) -> Program:
        return A.random_update(
            n_words=n_words, ops=_n(ops * scale), read_ratio=read_ratio
        )
    return build


def _chase(n_words: int, hops: int):
    def build(scale: float, threads: int) -> Program:
        return A.pointer_chase(n_words=n_words, hops=_n(hops * scale))
    return build


def _reduce(n_words: int, sweeps: int):
    def build(scale: float, threads: int) -> Program:
        return A.reduction(n_words=n_words, sweeps=_n(sweeps * scale))
    return build


def _compute(iters: int, alu: int, n_words: int = 2048):
    def build(scale: float, threads: int) -> Program:
        return A.compute_bound(
            iterations=_n(iters * scale), alu_per_iter=alu, n_words=n_words
        )
    return build


def _hist(buckets: int, ops: int):
    def build(scale: float, threads: int) -> Program:
        return A.histogram(n_buckets=buckets, ops=_n(ops * scale))
    return build


def _matrix(dim: int):
    def build(scale: float, threads: int) -> Program:
        return A.blocked_matrix(dim=_n(dim * (scale ** (1.0 / 3.0)), minimum=8))
    return build


# ----------------------------------------------------------------------
# multi-threaded factories (threads comes from the caller)
# ----------------------------------------------------------------------

def _txn(txns: int, table: int, writes: int, locks: int = 8, reads: int = 8):
    """Transactions floor at enough per-thread work that the table gets
    ~2.5 full traversals of random touches — without reuse past the
    compulsory misses, the DRAM-cache comparison of Fig. 9 is
    meaningless."""
    def build(scale: float, threads: int) -> Program:
        touches_per_txn = threads * (reads + writes)
        min_txns = (5 * table) // (2 * max(1, touches_per_txn)) + 1
        return A.transactional(
            n_threads=threads,
            txns_per_thread=_n(txns * scale, minimum=min_txns),
            table_words=table,
            writes_per_txn=writes,
            n_locks=locks,
            reads_per_txn=reads,
        )
    return build


def _pfor(words: int, compute: int, stores: int = 1, sweeps: int = 1,
          fixed_words: bool = False):
    """``words`` is the per-thread slice at the default 8 threads; the
    *total* problem size stays fixed as the thread count varies (real NPB
    inputs are fixed-size), so cache behaviour does not shift under the
    Fig. 16 thread sweep.  ``fixed_words`` additionally pins the footprint
    against ``scale`` (memory-intensive variants must keep their cache
    behaviour at every scale; the sweep count absorbs the scaling)."""
    def build(scale: float, threads: int) -> Program:
        if fixed_words:
            base_words, sw = words, _n(sweeps * scale, minimum=2)
        else:
            base_words, sw = _n(words * scale), sweeps
        wpt = _n(base_words * 8 / threads)
        return A.parallel_for(
            n_threads=threads,
            words_per_thread=wpt,
            compute=compute,
            stores_per_elem=stores,
            sweeps=sw,
        )
    return build


def _prodcons(items: int, queue: int = 1024):
    def build(scale: float, threads: int) -> Program:
        return A.producer_consumer(
            n_threads=threads, items_per_thread=_n(items * scale), queue_words=queue
        )
    return build


# ----------------------------------------------------------------------
# the suite
# ----------------------------------------------------------------------

def _bench(name, suite, factory, threads=1, mem=False) -> Benchmark:
    return Benchmark(
        name=name, suite=suite, factory=factory, threads=threads,
        memory_intensive=mem,
    )


BENCHMARKS: Dict[str, Benchmark] = {}


def _register(b: Benchmark) -> None:
    BENCHMARKS[b.name] = b


# --- SPEC CPU2006 (single-threaded) ---
_register(_bench("bzip2", "CPU2006", _hist(3072, 9000)))
_register(_bench("h264ref", "CPU2006", _compute(5500, 10, n_words=768)))
_register(_bench("hmmer", "CPU2006", _reduce(2048, 8)))
_register(_bench("lbm", "CPU2006", _streaming(6144, 2, stores=2, compute=4, min_sweeps=2), mem=True))
_register(_bench("libquan", "CPU2006", _streaming(8192, 2, stores=1, compute=3, min_sweeps=2), mem=True))
_register(_bench("mcf", "CPU2006", _chase(6144, 14000), mem=True))
_register(_bench("milc", "CPU2006", _stencil(6144, 2, min_sweeps=2), mem=True))
_register(_bench("namd", "CPU2006", _compute(6000, 12, n_words=640)))

# --- SPEC CPU2017 (single-threaded) ---
_register(_bench("dsjeng", "CPU2017", _compute(5200, 11, n_words=768)))
_register(_bench("imagick", "CPU2017", _matrix(24)))
_register(_bench("lbm17", "CPU2017", _streaming(6144, 2, stores=2, compute=4, min_sweeps=2), mem=True))
_register(_bench("leela", "CPU2017", _compute(5400, 10, n_words=896)))
_register(_bench("nab", "CPU2017", _reduce(1536, 8)))
_register(_bench("namd17", "CPU2017", _compute(6000, 12, n_words=640)))
_register(_bench("xz", "CPU2017", _hist(4096, 8000)))

# --- STAMP (multi-threaded, transactional) ---
_register(_bench("intruder", "STAMP", _prodcons(320), threads=8))
_register(_bench("labyrinth", "STAMP", _txn(110, 6144, 8, locks=4), threads=8))
_register(_bench("ssca2", "STAMP", _pfor(1200, 3, stores=1), threads=8))
_register(_bench("vacation", "STAMP", _txn(150, 8192, 4, locks=8), threads=8))

# --- NPB (multi-threaded, data-parallel) ---
_register(_bench("cg", "NPB", _pfor(1100, 4, stores=1), threads=8))
_register(_bench("ep", "NPB", _pfor(900, 8, stores=1), threads=8))
_register(_bench("is", "NPB", _pfor(768, 3, stores=1, fixed_words=True), threads=8, mem=True))
_register(_bench("ft", "NPB", _pfor(1024, 3, stores=1, fixed_words=True), threads=8, mem=True))
_register(_bench("lu", "NPB", _pfor(1000, 5, stores=1), threads=8))
_register(_bench("mg", "NPB", _pfor(1200, 4, stores=1), threads=8))
_register(_bench("sp", "NPB", _pfor(1100, 4, stores=1), threads=8))

# --- SPLASH3 (multi-threaded) ---
_register(_bench("cholesky", "SPLASH3", _pfor(900, 6, stores=1), threads=8))
_register(_bench("fft", "SPLASH3", _pfor(1024, 3, stores=1, fixed_words=True), threads=8, mem=True))
_register(_bench("radix", "SPLASH3", _pfor(768, 3, stores=1, fixed_words=True), threads=8, mem=True))
_register(_bench("barnes", "SPLASH3", _pfor(800, 7, stores=1), threads=8))
_register(_bench("raytrace", "SPLASH3", _prodcons(300), threads=8))
_register(_bench("lu-cg", "SPLASH3", _pfor(1000, 5, stores=1), threads=8))
_register(_bench("lu-ncg", "SPLASH3", _pfor(1000, 4, stores=1), threads=8))
_register(_bench("ocean-cg", "SPLASH3", _pfor(1024, 3, stores=1, fixed_words=True), threads=8, mem=True))
_register(_bench("water-ns", "SPLASH3", _pfor(900, 7, stores=1), threads=8))
_register(_bench("water-sp", "SPLASH3", _pfor(900, 6, stores=1), threads=8))

# --- WHISPER (persistent-memory applications, multi-threaded) ---
_register(_bench("rb", "WHISPER", _txn(140, 6144, 5, locks=8), threads=8, mem=True))
_register(_bench("tatp", "WHISPER", _txn(160, 8192, 3, locks=8), threads=8, mem=True))
_register(_bench("tpcc", "WHISPER", _txn(120, 8192, 8, locks=8), threads=8, mem=True))

SUITES: Tuple[str, ...] = (
    "CPU2006", "CPU2017", "STAMP", "NPB", "SPLASH3", "WHISPER",
)

#: the memory-intensive subset of Fig. 9
MEMORY_INTENSIVE: Tuple[str, ...] = ("lbm", "libquan", "milc", "rb", "tatp", "tpcc")


def benchmarks_of(suite: str) -> List[Benchmark]:
    return [b for b in BENCHMARKS.values() if b.suite == suite]
