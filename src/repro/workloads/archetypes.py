"""Workload archetypes: parameterized IR kernels.

Each factory builds a :class:`~repro.compiler.ir.Program` whose dynamic
behaviour (instruction mix, store density, footprint, locality, and — for
the multi-threaded archetypes — synchronization frequency) is set by its
parameters.  The 38-application suite (:mod:`repro.workloads.suite`) maps
every benchmark of the paper's evaluation onto one of these archetypes
with per-benchmark parameters.

All kernels are written against the registers ``r1``..``r12`` (within the
checkpoint array's 32 architectural slots) and are guaranteed to
terminate; sizes are in 8-byte words.
"""

from __future__ import annotations

from ..compiler.builder import FunctionBuilder
from ..compiler.ir import Program

__all__ = [
    "streaming",
    "stencil",
    "random_update",
    "pointer_chase",
    "reduction",
    "compute_bound",
    "histogram",
    "blocked_matrix",
    "transactional",
    "parallel_for",
    "producer_consumer",
    "sort_kernel",
    "strided",
]

#: multiplicative hash constant for the synthetic RNG (Knuth)
_HASH = 2654435761


def _lcg(fb: FunctionBuilder, state: str, tmp: str, modulo: int) -> None:
    """tmp = next pseudo-random index in [0, modulo); state advances."""
    fb.mul(state, state, _HASH)
    fb.add(state, state, 12345)
    fb.shr(tmp, state, 16)
    fb.mod(tmp, tmp, modulo)


def streaming(
    n_words: int = 32768,
    sweeps: int = 2,
    stores_per_element: int = 1,
    compute_per_element: int = 2,
) -> Program:
    """Sequential sweeps over a large array: read x[i], compute, write
    y[i].  The lbm / libquantum shape — memory-intensive, low reuse, high
    store density."""
    prog = Program("streaming")
    x = prog.array("x", n_words)
    y = prog.array("y", n_words * stores_per_element)
    fb = FunctionBuilder(prog, "main")
    fb.block("entry")
    fb.const("r5", 0)  # sweep counter
    fb.br("sweep")
    fb.block("sweep")
    fb.const("r1", 0)
    fb.br("loop")
    fb.block("loop")
    fb.load("r2", "r1", base=x)
    for k in range(compute_per_element):
        fb.add("r2", "r2", k + 1)
    for s in range(stores_per_element):
        fb.store("r2", "r1", base=y + s * n_words)
    fb.add("r1", "r1", 1)
    fb.lt("r3", "r1", n_words)
    fb.cbr("r3", "loop", "next_sweep")
    fb.block("next_sweep")
    fb.add("r5", "r5", 1)
    fb.lt("r6", "r5", sweeps)
    fb.cbr("r6", "sweep", "exit")
    fb.block("exit")
    fb.ret()
    fb.build()
    return prog


def stencil(n_words: int = 16384, sweeps: int = 2) -> Program:
    """3-point stencil: y[i] = x[i-1] + x[i] + x[i+1] — milc / mg / sp
    shape: moderate reuse, one store per three loads."""
    prog = Program("stencil")
    x = prog.array("x", n_words + 2)
    y = prog.array("y", n_words + 2)
    fb = FunctionBuilder(prog, "main")
    fb.block("entry")
    fb.const("r5", 0)
    fb.br("sweep")
    fb.block("sweep")
    fb.const("r1", 1)
    fb.br("loop")
    fb.block("loop")
    fb.sub("r6", "r1", 1)
    fb.load("r2", "r6", base=x)
    fb.load("r3", "r1", base=x)
    fb.add("r2", "r2", "r3")
    fb.add("r6", "r1", 1)
    fb.load("r3", "r6", base=x)
    fb.add("r2", "r2", "r3")
    fb.store("r2", "r1", base=y)
    fb.add("r1", "r1", 1)
    fb.lt("r4", "r1", n_words)
    fb.cbr("r4", "loop", "next")
    fb.block("next")
    fb.add("r5", "r5", 1)
    fb.lt("r6", "r5", sweeps)
    fb.cbr("r6", "sweep", "exit")
    fb.block("exit")
    fb.ret()
    fb.build()
    return prog


def random_update(n_words: int = 32768, ops: int = 8192, read_ratio: int = 1) -> Program:
    """Random read-modify-writes over a table — mcf / vacation / tatp
    shape: poor locality, frequent RMW."""
    prog = Program("random_update")
    table = prog.array("table", n_words)
    fb = FunctionBuilder(prog, "main")
    fb.block("entry")
    fb.const("r1", 0)
    fb.const("r7", 12345)  # rng state
    fb.br("loop")
    fb.block("loop")
    _lcg(fb, "r7", "r2", n_words)
    fb.load("r3", "r2", base=table)
    for _ in range(read_ratio):
        _lcg(fb, "r7", "r4", n_words)
        fb.load("r5", "r4", base=table)
        fb.add("r3", "r3", "r5")
    fb.add("r3", "r3", 1)
    fb.store("r3", "r2", base=table)
    fb.add("r1", "r1", 1)
    fb.lt("r6", "r1", ops)
    fb.cbr("r6", "loop", "exit")
    fb.block("exit")
    fb.ret()
    fb.build()
    return prog


def pointer_chase(n_words: int = 16384, hops: int = 20000, stride: int = 7919) -> Program:
    """Dependent loads around a permutation cycle with occasional stores —
    the mcf / barnes shape: latency-bound, very low store density.

    The "pointers" are computed as (i + stride) % n so the init loop is
    cheap; a store happens every 16 hops.  The chase always makes at least
    two full traversals of the ring (hops >= 2n), so the second traversal
    exercises DRAM-cache reuse — the effect Fig. 9 measures."""
    hops = max(hops, 2 * n_words + n_words // 4)
    prog = Program("pointer_chase")
    ring = prog.array("ring", n_words)
    out = prog.array("out", max(1, hops // 16 + 1))
    fb = FunctionBuilder(prog, "main")
    fb.block("entry")
    fb.const("r1", 0)
    fb.br("init")
    fb.block("init")
    fb.add("r2", "r1", stride)
    fb.mod("r2", "r2", n_words)
    fb.mul("r4", "r2", 3)       # extra work keeps the init phase's store
    fb.xor("r4", "r4", "r1")    # density realistic (~1 store / 9 instrs)
    fb.add("r4", "r4", 5)
    fb.store("r2", "r1", base=ring)
    fb.add("r1", "r1", 1)
    fb.lt("r3", "r1", n_words)
    fb.cbr("r3", "init", "chase_pre")
    fb.block("chase_pre")
    fb.const("r1", 0)   # hop counter
    fb.const("r2", 0)   # current node
    fb.const("r8", 0)   # accumulator
    fb.br("chase")
    fb.block("chase")
    fb.load("r2", "r2", base=ring)
    fb.add("r8", "r8", "r2")
    fb.mod("r4", "r1", 16)
    fb.eq("r4", "r4", 15)
    fb.cbr("r4", "emit", "advance")
    fb.block("emit")
    fb.div("r5", "r1", 16)
    fb.store("r8", "r5", base=out)
    fb.br("advance")
    fb.block("advance")
    fb.add("r1", "r1", 1)
    fb.lt("r6", "r1", hops)
    fb.cbr("r6", "chase", "exit")
    fb.block("exit")
    fb.ret()
    fb.build()
    return prog


def reduction(n_words: int = 16384, sweeps: int = 3) -> Program:
    """Load-heavy reduction with a single result store per sweep — the
    hmmer / nab / ep shape: high compute, negligible store traffic."""
    prog = Program("reduction")
    x = prog.array("x", n_words)
    out = prog.array("out", max(1, sweeps))
    fb = FunctionBuilder(prog, "main")
    fb.block("entry")
    fb.const("r5", 0)
    fb.br("sweep")
    fb.block("sweep")
    fb.const("r1", 0)
    fb.const("r2", 0)
    fb.br("loop")
    fb.block("loop")
    fb.load("r3", "r1", base=x)
    fb.mul("r3", "r3", 3)
    fb.add("r2", "r2", "r3")
    fb.add("r1", "r1", 1)
    fb.lt("r4", "r1", n_words)
    fb.cbr("r4", "loop", "done")
    fb.block("done")
    fb.store("r2", "r5", base=out)
    fb.add("r5", "r5", 1)
    fb.lt("r6", "r5", sweeps)
    fb.cbr("r6", "sweep", "exit")
    fb.block("exit")
    fb.ret()
    fb.build()
    return prog


def compute_bound(iterations: int = 20000, alu_per_iter: int = 12, n_words: int = 2048) -> Program:
    """ALU-dominated kernel with a small working set — the namd / leela /
    dsjeng shape: caches absorb almost everything."""
    prog = Program("compute_bound")
    x = prog.array("x", n_words)
    fb = FunctionBuilder(prog, "main")
    fb.block("entry")
    fb.const("r1", 0)
    fb.const("r2", 1)
    fb.br("loop")
    fb.block("loop")
    fb.mod("r3", "r1", n_words)
    fb.load("r4", "r3", base=x)
    for k in range(alu_per_iter):
        if k % 3 == 0:
            fb.mul("r2", "r2", 3)
        elif k % 3 == 1:
            fb.xor("r2", "r2", "r4")
        else:
            fb.add("r2", "r2", k)
    fb.store("r2", "r3", base=x)
    fb.add("r1", "r1", 1)
    fb.lt("r5", "r1", iterations)
    fb.cbr("r5", "loop", "exit")
    fb.block("exit")
    fb.ret()
    fb.build()
    return prog


def histogram(n_buckets: int = 8192, ops: int = 12000) -> Program:
    """Scattered increments — the radix / ssca2 / is shape: store-heavy
    with medium locality."""
    prog = Program("histogram")
    buckets = prog.array("buckets", n_buckets)
    fb = FunctionBuilder(prog, "main")
    fb.block("entry")
    fb.const("r1", 0)
    fb.const("r7", 777)
    fb.br("loop")
    fb.block("loop")
    _lcg(fb, "r7", "r2", n_buckets)
    fb.load("r3", "r2", base=buckets)
    fb.add("r3", "r3", 1)
    fb.store("r3", "r2", base=buckets)
    fb.add("r1", "r1", 1)
    fb.lt("r4", "r1", ops)
    fb.cbr("r4", "loop", "exit")
    fb.block("exit")
    fb.ret()
    fb.build()
    return prog


def blocked_matrix(dim: int = 48, block: int = 8) -> Program:
    """Blocked matrix multiply C += A*B — the cholesky / lu / imagick
    shape: strong reuse inside blocks, bursts of stores at block ends."""
    prog = Program("blocked_matrix")
    a = prog.array("A", dim * dim)
    b = prog.array("B", dim * dim)
    c = prog.array("C", dim * dim)
    fb = FunctionBuilder(prog, "main")
    fb.block("entry")
    fb.const("r1", 0)  # i
    fb.br("iloop")
    fb.block("iloop")
    fb.const("r2", 0)  # j
    fb.br("jloop")
    fb.block("jloop")
    fb.const("r3", 0)  # k
    fb.const("r4", 0)  # acc
    fb.br("kloop")
    fb.block("kloop")
    fb.mul("r5", "r1", dim)
    fb.add("r5", "r5", "r3")
    fb.load("r6", "r5", base=a)
    fb.mul("r5", "r3", dim)
    fb.add("r5", "r5", "r2")
    fb.load("r7", "r5", base=b)
    fb.mul("r6", "r6", "r7")
    fb.add("r4", "r4", "r6")
    fb.add("r3", "r3", 1)
    fb.lt("r8", "r3", dim)
    fb.cbr("r8", "kloop", "kdone")
    fb.block("kdone")
    fb.mul("r5", "r1", dim)
    fb.add("r5", "r5", "r2")
    fb.store("r4", "r5", base=c)
    fb.add("r2", "r2", 1)
    fb.lt("r8", "r2", dim)
    fb.cbr("r8", "jloop", "jdone")
    fb.block("jdone")
    fb.add("r1", "r1", 1)
    fb.lt("r8", "r1", dim)
    fb.cbr("r8", "iloop", "exit")
    fb.block("exit")
    fb.ret()
    fb.build()
    return prog


# ----------------------------------------------------------------------
# multi-threaded archetypes: each defines a "worker" entry (param r11 =
# thread id); suite.py builds the entries list.
# ----------------------------------------------------------------------

def transactional(
    n_threads: int = 8,
    txns_per_thread: int = 200,
    table_words: int = 16384,
    writes_per_txn: int = 4,
    n_locks: int = 8,
    reads_per_txn: int = 8,
) -> Program:
    """Lock-protected multi-word transactions over a shared table — the
    STAMP / WHISPER (rb, tatp, tpcc) shape.  Each transaction scans
    ``reads_per_txn`` random words *outside* the critical section (index
    lookups / validation reads), then takes one of ``n_locks`` striped
    locks and performs a read-modify-write burst."""
    prog = Program("transactional")
    table = prog.array("table", table_words)
    fb = FunctionBuilder(prog, "worker", params=("r11",))
    fb.block("entry")
    fb.const("r1", 0)
    fb.mul("r7", "r11", 99991)
    fb.add("r7", "r7", 7)
    fb.br("txn")
    fb.block("txn")
    # read phase (no lock held): the PM-latency-sensitive part
    for _ in range(reads_per_txn):
        _lcg(fb, "r7", "r2", table_words)
        fb.load("r3", "r2", base=table)
        fb.add("r12", "r12", "r3")
    _lcg(fb, "r7", "r2", n_locks)
    fb.mov("r10", "r2")  # lock-stripe id
    # Striped locks: one lock instruction per stripe (static lock ids),
    # dispatched on r10 via a comparison chain.  The lock instructions
    # themselves force the §III-D boundaries.
    for lock in range(n_locks):
        fb.eq("r3", "r10", lock)
        fb.cbr("r3", "lock%d" % lock, "chk%d" % lock)
        fb.block("chk%d" % lock)
    fb.br("after")  # unreachable fallback
    for lock in range(n_locks):
        fb.block("lock%d" % lock)
        fb.lock(lock)
        for w in range(writes_per_txn):
            _lcg(fb, "r7", "r4", table_words // n_locks)
            fb.mul("r5", "r10", table_words // n_locks)
            fb.add("r4", "r4", "r5")
            fb.load("r6", "r4", base=table)
            fb.add("r6", "r6", 1)
            fb.store("r6", "r4", base=table)
        fb.unlock(lock)
        fb.br("after")
    fb.block("after")
    fb.add("r1", "r1", 1)
    fb.lt("r8", "r1", txns_per_thread)
    fb.cbr("r8", "txn", "exit")
    fb.block("exit")
    fb.ret()
    fb.build()
    return prog


def parallel_for(
    n_threads: int = 8,
    words_per_thread: int = 4096,
    compute: int = 3,
    stores_per_elem: int = 1,
    sweeps: int = 1,
) -> Program:
    """Data-parallel partitioned loop with an atomic progress counter —
    the NPB (cg, ft, lu, mg, sp) and SPLASH3 (ocean, water) shape.
    ``sweeps`` re-traverses each partition (iterative solvers), creating
    the DRAM-cache-level reuse the memory-intensive variants need."""
    prog = Program("parallel_for")
    data = prog.array("data", n_threads * words_per_thread * (1 + stores_per_elem))
    progress = prog.array("progress", 1)
    fb = FunctionBuilder(prog, "worker", params=("r11",))
    fb.block("entry")
    fb.mul("r9", "r11", words_per_thread)
    fb.const("r8", 0)
    fb.br("sweep")
    fb.block("sweep")
    fb.const("r1", 0)
    fb.br("loop")
    fb.block("loop")
    fb.add("r2", "r9", "r1")
    fb.load("r3", "r2", base=data)
    for k in range(compute):
        fb.add("r3", "r3", k + 1)
    for s in range(stores_per_elem):
        fb.store(
            "r3", "r2", base=data + (s + 1) * n_threads * words_per_thread
        )
    fb.add("r1", "r1", 1)
    fb.lt("r4", "r1", words_per_thread)
    fb.cbr("r4", "loop", "next_sweep")
    fb.block("next_sweep")
    fb.add("r8", "r8", 1)
    fb.lt("r4", "r8", sweeps)
    fb.cbr("r4", "sweep", "done")
    fb.block("done")
    fb.atomic_rmw("r5", 0, 1, op="add", base=progress)
    fb.ret()
    fb.build()
    return prog


def producer_consumer(
    n_threads: int = 8,
    items_per_thread: int = 400,
    queue_words: int = 1024,
) -> Program:
    """Threads alternate producing into and consuming from a shared ring
    protected by one lock — the intruder / raytrace shape: high
    synchronization frequency, small critical sections."""
    prog = Program("producer_consumer")
    ring = prog.array("ring", queue_words)
    cursor = prog.array("cursor", 2)
    fb = FunctionBuilder(prog, "worker", params=("r11",))
    fb.block("entry")
    fb.const("r1", 0)
    fb.br("loop")
    fb.block("loop")
    fb.lock(0)
    fb.load("r2", 0, base=cursor)       # head
    fb.mod("r3", "r2", queue_words)
    fb.add("r4", "r2", "r11")
    fb.store("r4", "r3", base=ring)     # produce
    fb.add("r2", "r2", 1)
    fb.store("r2", 0, base=cursor)
    fb.load("r5", 1, base=cursor)       # tail
    fb.mod("r6", "r5", queue_words)
    fb.load("r7", "r6", base=ring)      # consume
    fb.add("r5", "r5", 1)
    fb.store("r5", 1, base=cursor)
    fb.unlock(0)
    fb.add("r8", "r8", "r7")            # local work outside the lock
    fb.mul("r8", "r8", 3)
    fb.add("r1", "r1", 1)
    fb.lt("r9", "r1", items_per_thread)
    fb.cbr("r9", "loop", "exit")
    fb.block("exit")
    fb.ret()
    fb.build()
    return prog


def sort_kernel(n_words: int = 2048, segments: int = 8) -> Program:
    """Insertion-sort over fixed-size segments — the integer-sort (is)
    shape at its most store-intense: data-dependent swap stores with
    strong spatial locality."""
    prog = Program("sort_kernel")
    data = prog.array("data", n_words)
    seg = max(2, n_words // max(1, segments))
    fb = FunctionBuilder(prog, "main")
    fb.block("entry")
    # fill with a descending-ish hash so there is real work to do
    fb.const("r1", 0)
    fb.br("fill")
    fb.block("fill")
    fb.mul("r2", "r1", _HASH)
    fb.shr("r2", "r2", 20)
    fb.mod("r2", "r2", 997)
    fb.store("r2", "r1", base=data)
    fb.add("r1", "r1", 1)
    fb.lt("r3", "r1", n_words)
    fb.cbr("r3", "fill", "outer_pre")
    # insertion sort each segment: for i in 1..seg: sift data[i] left
    fb.block("outer_pre")
    fb.const("r9", 0)            # segment base
    fb.br("outer")
    fb.block("outer")
    fb.const("r1", 1)            # i within segment
    fb.br("iloop")
    fb.block("iloop")
    fb.add("r4", "r9", "r1")
    fb.load("r5", "r4", base=data)   # key
    fb.mov("r6", "r4")               # j = i (absolute)
    fb.br("sift")
    fb.block("sift")
    fb.le("r7", "r6", "r9")          # j <= segment base: stop
    fb.cbr("r7", "place", "cmp")
    fb.block("cmp")
    fb.sub("r8", "r6", 1)
    fb.load("r10", "r8", base=data)
    fb.le("r7", "r10", "r5")         # data[j-1] <= key: stop
    fb.cbr("r7", "place", "shift")
    fb.block("shift")
    fb.store("r10", "r6", base=data)
    fb.sub("r6", "r6", 1)
    fb.br("sift")
    fb.block("place")
    fb.store("r5", "r6", base=data)
    fb.add("r1", "r1", 1)
    fb.lt("r7", "r1", seg)
    fb.cbr("r7", "iloop", "next_seg")
    fb.block("next_seg")
    fb.add("r9", "r9", seg)
    fb.lt("r7", "r9", n_words)
    fb.cbr("r7", "outer", "exit")
    fb.block("exit")
    fb.ret()
    fb.build()
    return prog


def strided(n_words: int = 16384, stride: int = 512, passes: int = 3,
            compute: int = 2) -> Program:
    """Strided butterfly-ish sweeps — the fft / ft shape: each pass reads
    pairs ``stride`` apart and writes both back, so locality degrades as
    the stride crosses cache-way capacity."""
    prog = Program("strided")
    data = prog.array("data", n_words)
    fb = FunctionBuilder(prog, "main")
    fb.block("entry")
    fb.const("r9", 0)   # pass counter
    fb.br("pass")
    fb.block("pass")
    fb.const("r1", 0)
    fb.br("loop")
    fb.block("loop")
    fb.load("r2", "r1", base=data)
    fb.add("r4", "r1", stride)
    fb.mod("r4", "r4", n_words)
    fb.load("r3", "r4", base=data)
    for k in range(compute):
        fb.add("r2", "r2", "r3")
        fb.sub("r3", "r3", k + 1)
    fb.store("r2", "r1", base=data)
    fb.store("r3", "r4", base=data)
    fb.add("r1", "r1", 1)
    fb.lt("r5", "r1", n_words)
    fb.cbr("r5", "loop", "next_pass")
    fb.block("next_pass")
    fb.add("r9", "r9", 1)
    fb.lt("r5", "r9", passes)
    fb.cbr("r5", "pass", "exit")
    fb.block("exit")
    fb.ret()
    fb.build()
    return prog
