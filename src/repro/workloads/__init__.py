"""Workloads: archetype kernels and the 38-application synthetic suite
standing in for SPEC CPU2006/2017, STAMP, NPB, SPLASH3, and WHISPER."""

from . import archetypes, randprog
from .suite import BENCHMARKS, MEMORY_INTENSIVE, SUITES, Benchmark, benchmarks_of

__all__ = [
    "archetypes",
    "randprog",
    "BENCHMARKS",
    "MEMORY_INTENSIVE",
    "SUITES",
    "Benchmark",
    "benchmarks_of",
]
