"""Automatic shrinking of failing fault schedules.

When the differential oracle flags a schedule, the campaign reduces it to
a minimal reproducer before recording it: first by removing events one at
a time, then by weakening the modifiers of the survivors (an un-torn cut,
an ample battery, no nested failure, a 1-boundary delay) — keeping every
reduction that still fails the oracle.  The result is the smallest
schedule a human needs to read to understand the bug.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Sequence, Tuple

from .model import FaultEvent

__all__ = ["shrink_schedule"]


def _weakenings(event: FaultEvent) -> List[FaultEvent]:
    """Strictly simpler variants of one event, most aggressive first."""
    out: List[FaultEvent] = []
    if event.kind == "cut":
        if event.nested_after:
            out.append(replace(event, nested_after=""))
        if event.torn_index > 0:
            out.append(replace(event, torn_index=0))
        if event.torn_index >= 0:
            out.append(replace(event, torn_index=-1))
        if event.residual_j >= 0.0:
            out.append(replace(event, residual_j=-1.0))
    elif event.kind == "msg" and event.op == "delay" and event.delay > 1:
        out.append(replace(event, delay=1))
    return out


def shrink_schedule(
    schedule: Sequence[FaultEvent],
    still_fails: Callable[[List[FaultEvent]], bool],
    budget: int = 64,
) -> Tuple[List[FaultEvent], int]:
    """Greedy delta-debugging: returns (minimal schedule, oracle runs
    spent).  ``still_fails`` runs the candidate schedule and reports
    whether the oracle still flags it; at most ``budget`` evaluations."""
    current = list(schedule)
    evals = 0
    progress = True
    while progress and evals < budget:
        progress = False
        # 1) drop whole events
        if len(current) > 1:
            for i in range(len(current)):
                candidate = current[:i] + current[i + 1:]
                evals += 1
                if still_fails(candidate):
                    current = candidate
                    progress = True
                    break
                if evals >= budget:
                    return current, evals
            if progress:
                continue
        # 2) weaken modifiers of the survivors
        for i, event in enumerate(current):
            for weak in _weakenings(event):
                candidate = list(current)
                candidate[i] = weak
                evals += 1
                if still_fails(candidate):
                    current = candidate
                    progress = True
                    break
                if evals >= budget:
                    return current, evals
            if progress:
                break
    return current, evals
