"""The adversarial fault model: every injectable event, as data.

The base :class:`~repro.core.machine.PersistentMachine` exercises the
crash-consistency theorem only under the gentlest adversary — a clean
whole-system power cut at an instruction boundary with a perfectly
faithful broadcast/ACK protocol.  This module enumerates the hostile
events the paper's own machinery implies but never probes:

* ``cut`` — a power failure, optionally adversarial: torn 8-byte persist
  writes during the battery drain, a drain bounded by the battery's
  residual energy (§II-C1), and/or a *second* failure injected during the
  §IV-F recovery protocol itself;
* ``msg`` — a boundary-broadcast message to one MC is dropped, delayed,
  or duplicated (§IV-C's bdry/flush-ACK exchange; the sender retries a
  dropped broadcast after a timeout, the protocol the paper implies but
  never states);
* ``mc_down`` — one MC's power domain fails early (per-MC-skewed crash
  instants): it stops accepting stores and broadcasts, while its
  battery-held WPQ contents survive until the global cut.

Events are plain frozen dataclasses with a loss-free JSON round-trip so
fault schedules serialize into the append-only JSONL trace and any
failure replays exactly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "FaultEvent",
    "FAULT_CLASSES",
    "MSG_OPS",
    "NESTED_POINTS",
    "ACK_LATENCY_STEPS",
    "RETRY_TIMEOUT_BOUNDARIES",
    "tear_value",
    "schedule_to_json",
    "schedule_from_json",
]

#: instructions between a boundary becoming fully ACKed and its region's
#: flush-ID commit (the flush-ACK exchange in flight).  A power cut inside
#: this window finds committable-but-uncommitted entries for the battery
#: to drain — the surface torn-write and partial-drain faults attack.
ACK_LATENCY_STEPS = 6

#: boundary-broadcast retry timeout, measured in subsequent boundary
#: events: a sender that saw no ACK re-broadcasts after this many.
RETRY_TIMEOUT_BOUNDARIES = 2

#: campaign fault classes (scenario labels), each mapping to a schedule
#: shape built by :mod:`repro.faults.campaign`.
FAULT_CLASSES: Tuple[str, ...] = (
    "clean_cut",
    "torn_cut",
    "drained_cut",
    "msg_drop",
    "msg_delay",
    "msg_dup",
    "skew_cut",
    "nested_cut",
)

MSG_OPS: Tuple[str, ...] = ("drop", "delay", "dup")

#: where a nested (during-recovery) power failure may strike, named after
#: the recovery step it interrupts.
NESTED_POINTS: Tuple[str, ...] = (
    "after_drain",
    "mid_rollback",
    "after_discard",
    "after_recovery",
)

_MASK64 = (1 << 64) - 1
_LOW32 = (1 << 32) - 1


def tear_value(old: int, new: int) -> int:
    """An 8-byte persist write torn across its two 4-byte halves: the new
    high half landed, the low half still holds the pre-write bits.  (For
    the small word values the workloads produce this makes the store
    appear lost — the harshest observable tear.)"""
    torn = ((new & _MASK64) & ~_LOW32) | ((old & _MASK64) & _LOW32)
    return torn - (1 << 64) if torn >= (1 << 63) else torn


@dataclass(frozen=True)
class FaultEvent:
    """One injectable adversarial event, armed at a cumulative instruction
    count (``step``) of the faulty execution."""

    kind: str                 # "cut" | "msg" | "mc_down"
    step: int
    # -- msg modifiers --
    op: str = ""              # "drop" | "delay" | "dup"
    mc: int = -1              # target MC (msg / mc_down)
    delay: int = 1            # delivery delay, in boundary events
    # -- cut modifiers --
    torn_index: int = -1      # battery-drain entry index to tear (-1: none)
    residual_j: float = -1.0  # battery residual energy (<0: ample)
    nested_after: str = ""    # "" or a NESTED_POINTS name

    def __post_init__(self) -> None:
        if self.kind not in ("cut", "msg", "mc_down"):
            raise ValueError("unknown fault kind %r" % (self.kind,))
        if self.kind == "msg" and self.op not in MSG_OPS:
            raise ValueError("msg fault needs op in %r" % (MSG_OPS,))
        if self.kind in ("msg", "mc_down") and self.mc < 0:
            raise ValueError("%s fault needs a target mc" % self.kind)
        if self.nested_after and self.nested_after not in NESTED_POINTS:
            raise ValueError("unknown nested point %r" % (self.nested_after,))
        if self.step < 1:
            raise ValueError("fault step must be >= 1")

    # ------------------------------------------------------------------
    def to_json(self) -> Dict:
        data = asdict(self)
        # drop inert defaults so traces stay readable
        for key, default in (
            ("op", ""), ("mc", -1), ("delay", 1), ("torn_index", -1),
            ("residual_j", -1.0), ("nested_after", ""),
        ):
            if data[key] == default:
                del data[key]
        return data

    @classmethod
    def from_json(cls, data: Dict) -> "FaultEvent":
        return cls(**data)

    def shifted(self, step: int) -> "FaultEvent":
        return replace(self, step=step)


def schedule_to_json(schedule: Sequence[FaultEvent]) -> List[Dict]:
    return [ev.to_json() for ev in schedule]


def schedule_from_json(data: Sequence[Dict]) -> List[FaultEvent]:
    return [FaultEvent.from_json(d) for d in data]
