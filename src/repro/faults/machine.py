"""The fault-injectable machine: :class:`FaultyMachine` layers the
adversarial fault model onto the functional persistence machine.

It specializes the protocol hooks :class:`~repro.core.machine.
PersistentMachine` exposes:

* **boundary broadcasts become messages.**  Each ended region's boundary
  is delivered to every MC individually; armed faults can drop, delay, or
  duplicate a delivery.  A region is committable only once every MC has
  seen its boundary (the flush-ACK wait), and — new versus the base
  machine — only after :data:`~repro.faults.model.ACK_LATENCY_STEPS` more
  instructions, modelling the flush-ACK exchange in flight.  Dropped
  broadcasts are re-sent after a timeout (the retry the paper's §IV-C
  implies), so message faults merely delay commits; a power cut inside
  the window finds committable-but-uncommitted entries, which is the
  attack surface of torn-write and partial-drain faults.
* **the battery drain becomes perturbable.**  At a cut, committable
  regions drain entry by entry on residual energy: the drain budget comes
  from the §II-C1 energy model (:mod:`repro.analysis.battery`), a
  scheduled entry can land torn (half old, half new bits), and — with the
  ``wpq_retention`` defense on — the still-quarantined entry is re-issued
  so the tear never survives.
* **recovery can be re-entered.**  A second power failure can strike
  after any recovery step (and mid-rollback); with the
  ``idempotent_recovery`` defense on, the persistent undo log makes the
  re-entered recovery converge to the same state.
* **MCs can die early.**  A downed MC (per-MC-skewed crash instant)
  silently loses new stores and ACKs nothing, so regions ending after the
  skew never commit and recovery resumes from before it — exactly the
  all-or-nothing the protocol promises.

With every defense on (the unmodified protocol) ALL of these faults must
preserve the crash-consistency theorem; the seeded defense-off modes in
:mod:`repro.faults.defenses` are what the differential oracle must catch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.battery import default_battery_joules, drainable_entries
from ..compiler.pipeline import CompiledProgram
from ..config import DEFAULT_CONFIG, SystemConfig
from ..core.machine import PersistentMachine
from ..core.recovery import rollback_undo
from .defenses import ALL_ON, Defenses
from .model import (
    ACK_LATENCY_STEPS,
    RETRY_TIMEOUT_BOUNDARIES,
    FaultEvent,
    tear_value,
)
from .trace import NullTrace

__all__ = ["FaultyMachine", "NestedPowerFailure"]


class NestedPowerFailure(Exception):
    """Raised inside the recovery protocol when a scheduled second power
    failure strikes; :meth:`FaultyMachine.crash` catches it and re-enters
    recovery from the interrupted state."""


class FaultyMachine(PersistentMachine):
    """A :class:`PersistentMachine` under an adversarial fault model."""

    def __init__(
        self,
        compiled: CompiledProgram,
        entries: Sequence[Tuple[str, Sequence[int]]] = (("main", ()),),
        config: SystemConfig = DEFAULT_CONFIG,
        quantum: int = 16,
        schedule_seed: int = 0,
        max_steps: int = 2_000_000,
        defenses: Defenses = ALL_ON,
        trace=None,
        backend=None,
    ) -> None:
        self.defenses = defenses
        self.trace = trace if trace is not None else NullTrace()
        super().__init__(
            compiled,
            entries=entries,
            config=config,
            quantum=quantum,
            schedule_seed=schedule_seed,
            max_steps=max_steps,
            backend=backend,
        )
        n_mcs = config.mc.n_mcs
        #: per-MC set of region boundaries delivered (and ACKed)
        self.mc_seen: List[Set[int]] = [set() for _ in range(n_mcs)]
        #: region -> step at which its flush-ACK exchange completes
        self._ack_due: Dict[int, int] = {}
        #: queued (re)deliveries: [due boundary-seq, mc, region]
        self._pending_msgs: List[List[int]] = []
        self._boundary_seq = 0
        #: armed message faults, each consumed by the next broadcast
        self._armed_msgs: List[FaultEvent] = []
        #: mc -> step of its early power-domain failure
        self.down_mcs: Dict[int, int] = {}
        # crash-time adversary state
        self._battery_powered = False
        self._settling = False
        self._armed_budget: Optional[int] = None
        self._drain_budget: Optional[int] = None
        self._torn_indices: Set[int] = set()
        self._drain_index = 0
        self._nested_armed: Optional[str] = None
        self.fault_counters: Dict[str, int] = {
            "msg_drops": 0, "msg_delays": 0, "msg_dups": 0,
            "retries_delivered": 0, "straggler_flushes": 0,
            "lost_stores": 0, "mc_downs": 0, "torn_repaired": 0,
            "torn_landed": 0, "drain_lost": 0, "nested_cuts": 0,
        }

    # ------------------------------------------------------------------
    # fault arming (driven by the campaign injector)
    # ------------------------------------------------------------------
    def arm_msg(self, event: FaultEvent) -> None:
        """Queue a message fault for the next boundary broadcast that
        targets ``event.mc``."""
        self._armed_msgs.append(event)

    def mc_down(self, mc: int) -> None:
        """MC ``mc``'s power domain fails now (skewed crash instant): it
        stops accepting stores and broadcasts; its battery holds the WPQ
        contents until the global cut."""
        if mc in self.down_mcs:
            return
        self.down_mcs[mc] = self.stats.steps
        self.fault_counters["mc_downs"] += 1
        self.trace.emit("mc_down", mc=mc, step=self.stats.steps)

    # ------------------------------------------------------------------
    # message layer
    # ------------------------------------------------------------------
    def _take_armed_msg(self, mc: int) -> Optional[FaultEvent]:
        for i, event in enumerate(self._armed_msgs):
            if event.mc == mc:
                return self._armed_msgs.pop(i)
        return None

    def _broadcast_boundary(self, region: int) -> None:
        if not self.persist.gated:
            # no boundary/ACK message layer to attack: eager schemes
            # persist at admission, so the broadcast faults are inert
            super()._broadcast_boundary(region)
            return
        self.persist.region_ended(region)
        self._boundary_seq += 1
        if (
            not self._armed_msgs
            and not self._pending_msgs
            and not self.down_mcs
            and region >= self.persist.committed_upto
        ):
            # Clean interconnect, no straggler: every MC sees the
            # boundary now and the ACK matures one latency later —
            # the generic per-MC _deliver walk collapsed to its net
            # effect (identical counters, identical ack schedule).
            for seen in self.mc_seen:
                seen.add(region)
            if region not in self._ack_due and self.mc_seen:
                self._ack_due[region] = self.stats.steps + ACK_LATENCY_STEPS
            return
        self._deliver_due()
        for mc in range(len(self.wpqs)):
            armed = self._take_armed_msg(mc)
            if armed is None:
                self._deliver(mc, region)
            elif armed.op == "drop":
                self.fault_counters["msg_drops"] += 1
                self.trace.emit(
                    "msg_drop", mc=mc, region=region, step=self.stats.steps
                )
                if self.defenses.broadcast_retry:
                    self._pending_msgs.append(
                        [self._boundary_seq + RETRY_TIMEOUT_BOUNDARIES,
                         mc, region]
                    )
            elif armed.op == "delay":
                self.fault_counters["msg_delays"] += 1
                self.trace.emit(
                    "msg_delay", mc=mc, region=region, step=self.stats.steps,
                    by=max(1, armed.delay),
                )
                self._pending_msgs.append(
                    [self._boundary_seq + max(1, armed.delay), mc, region]
                )
            else:  # dup: delivered twice; the seen-set makes it idempotent
                self.fault_counters["msg_dups"] += 1
                self.trace.emit(
                    "msg_dup", mc=mc, region=region, step=self.stats.steps
                )
                self._deliver(mc, region)
                self._deliver(mc, region)

    def _deliver(self, mc: int, region: int) -> None:
        if mc in self.down_mcs:
            # a dead MC ACKs nothing; the sender keeps retrying
            if self.defenses.broadcast_retry and not self._settling:
                self._pending_msgs.append(
                    [self._boundary_seq + RETRY_TIMEOUT_BOUNDARIES, mc, region]
                )
            return
        if region < self.committed_upto:
            # straggler: the region's flush ID already advanced (only
            # reachable with the ack_wait defense off) — the MC flushes
            # the late region immediately, possibly clobbering younger
            # committed values: the ordering hazard the defense prevents
            self.fault_counters["straggler_flushes"] += 1
            self.trace.emit("straggler_flush", mc=mc, region=region)
            for entry in self.wpqs[mc].pop_region(region):
                self.pm[entry.word] = entry.value
            return
        self.mc_seen[mc].add(region)
        if region not in self._ack_due and self._seen_ok(region):
            self._ack_due[region] = self.stats.steps + ACK_LATENCY_STEPS

    def _deliver_due(self) -> None:
        if not self._pending_msgs:
            return
        due_now = [p for p in self._pending_msgs if p[0] <= self._boundary_seq]
        if not due_now:
            return
        self._pending_msgs = [
            p for p in self._pending_msgs if p[0] > self._boundary_seq
        ]
        for _, mc, region in due_now:
            self.fault_counters["retries_delivered"] += 1
            self._deliver(mc, region)

    def _seen_ok(self, region: int) -> bool:
        if self.defenses.ack_wait:
            for s in self.mc_seen:
                if region not in s:
                    return False
            return True
        for s in self.mc_seen:
            if region in s:
                return True
        return False

    def finish_messages(self) -> None:
        """The program has halted but the persist tail is still settling:
        wall-clock passes, queued (re)deliveries land, and the in-flight
        flush-ACK exchanges complete.  Call after a fault-free tail run to
        reach the final durable image."""
        self._settling = True
        try:
            for _ in range(len(self._pending_msgs) + 4):
                pending, self._pending_msgs = self._pending_msgs, []
                for _, mc, region in pending:
                    self._deliver(mc, region)
                self._try_commit()
                if not self._pending_msgs:
                    break
            self._try_commit()
        finally:
            self._settling = False

    # ------------------------------------------------------------------
    # commit gating
    # ------------------------------------------------------------------
    def _region_committable(self, region: int) -> bool:
        persist = self.persist
        if not persist.gated:
            return super()._region_committable(region)
        if region not in persist.boundary_issued:
            return False
        if not self._seen_ok(region):
            return False
        if self._battery_powered or self._settling:
            return True  # the battery/wall-clock finishes in-flight ACKs
        due = self._ack_due.get(region)
        return due is not None and self.stats.steps >= due

    def step(self):
        event = super().step()
        if event is not None and self.persist.gated:
            due = self._ack_due.get(self.persist.committed_upto)
            if due is not None and self.stats.steps >= due:
                self._try_commit()
        return event

    # -- batched-execution hooks ---------------------------------------
    # _ack_due / committed_upto only change on boundary, sync, halt, or
    # commit paths — all machine-visible, so none can fire mid-batch.
    # Capping the batch at the pending ACK deadline and re-checking in
    # _after_batch is therefore byte-identical to the per-step check.
    def _quantum_cap(self):
        persist = self.persist
        if not persist.gated:
            return None
        due = self._ack_due.get(persist.committed_upto)
        if due is None:
            return None
        return due - self.stats.steps

    def _bulk_admit_ok(self) -> bool:
        # a downed MC loses stores one at a time (_on_store interposes);
        # bulk admission must stay off while any MC is dark
        return not (self.persist.gated and self.down_mcs)

    def _after_batch(self) -> None:
        persist = self.persist
        if persist.gated:
            due = self._ack_due.get(persist.committed_upto)
            if due is not None and self.stats.steps >= due:
                self._try_commit()

    def _commit_flush(self, region: int) -> None:
        if not self.persist.gated:
            super()._commit_flush(region)
            return
        self._ack_due.pop(region, None)
        if self._battery_powered:
            for mc, wpq in enumerate(self.wpqs):
                if region in self.mc_seen[mc]:
                    for entry in wpq.pop_region(region):
                        self._drain_one(entry)
            return
        if self.defenses.ack_wait:
            super()._commit_flush(region)
            return
        # ack_wait off: only the MCs that saw the boundary flush; the
        # others keep the region quarantined (they never learned it ended)
        for mc, wpq in enumerate(self.wpqs):
            if region in self.mc_seen[mc]:
                for entry in wpq.pop_region(region):
                    self.pm[entry.word] = entry.value

    # ------------------------------------------------------------------
    # stores
    # ------------------------------------------------------------------
    def _on_store(self, word: int, value: int) -> None:
        if self.persist.gated and self._mc_of_word(word) in self.down_mcs:
            # the target MC's power domain is gone: the persist-path entry
            # vanishes (its region can never commit, so recovery will
            # re-execute the store)
            self.stats.stores += 1
            self.fault_counters["lost_stores"] += 1
            return
        super()._on_store(word, value)

    def _resolve_full(self, wpq, region, word, value) -> None:
        if self.defenses.undo_logging:
            super()._resolve_full(wpq, region, word, value)
            return
        # defense off: the §IV-D overflow flush writes PM speculatively
        # WITHOUT recording pre-images — nothing to roll back at a crash
        self.stats.overflow_events += 1
        present = wpq.regions_present()
        victim = (
            self.committed_upto if self.committed_upto in present
            else min(present)
        )
        for entry in wpq.pop_region(victim):
            self.pm[entry.word] = entry.value
        wpq.put(region, word, value)

    # ------------------------------------------------------------------
    # power failure
    # ------------------------------------------------------------------
    def crash(self, event: Optional[FaultEvent] = None) -> Dict[str, int]:
        """Power fails now, optionally with the adversarial modifiers of
        ``event`` (torn drain writes, bounded residual energy, a nested
        failure during recovery)."""
        self._arm_cut(event)
        self.trace.emit(
            "power_cut", step=self.stats.steps,
            budget_entries=self._armed_budget,
            torn=sorted(self._torn_indices),
            nested=self._nested_armed or "",
        )
        self._pending_msgs.clear()  # in-flight broadcasts die with the power
        self._armed_msgs.clear()
        self._battery_powered = True
        try:
            while True:
                try:
                    report = super().crash()
                    break
                except NestedPowerFailure:
                    self.fault_counters["nested_cuts"] += 1
                    self.trace.emit("nested_cut", step=self.stats.steps)
                    self._pending_msgs.clear()
                    # the second failure strikes after power returned and
                    # recovery restarted on mains: the battery has had
                    # time to recharge to its full (possibly undersized)
                    # budget
                    self._drain_budget = self._armed_budget
                    self._drain_index = 0
        finally:
            self._battery_powered = False
            self._torn_indices = set()
            self._nested_armed = None
        return report

    def _arm_cut(self, event: Optional[FaultEvent]) -> None:
        residual = None
        self._torn_indices = set()
        self._nested_armed = None
        if event is not None:
            if event.torn_index >= 0:
                self._torn_indices = {event.torn_index}
            if event.residual_j >= 0.0:
                residual = event.residual_j
            self._nested_armed = event.nested_after or None
        if self.defenses.sized_battery:
            # a correctly provisioned battery never holds less than the
            # worst-case drain energy, whatever the schedule claims
            floor = default_battery_joules(self.config)
            residual = floor if residual is None else max(residual, floor)
        self._armed_budget = (
            None if residual is None
            else drainable_entries(residual, self.config)
        )
        self._drain_budget = self._armed_budget
        self._drain_index = 0

    def _drain_one(self, entry) -> None:
        limited = self._drain_budget is not None
        if limited and self._drain_budget <= 0:
            # battery exhausted mid-drain: the entry never reaches PM
            # (only reachable with the sized_battery defense off)
            self.fault_counters["drain_lost"] += 1
            self.trace.emit("drain_exhausted", word=entry.word)
            self._drain_index += 1
            return
        if limited:
            self._drain_budget -= 1
        if self._drain_index in self._torn_indices:
            old = self.pm.get(entry.word, 0)
            self.pm[entry.word] = tear_value(old, entry.value)
            repaired = False
            if self.defenses.wpq_retention and (
                not limited or self._drain_budget > 0
            ):
                # the entry is still quarantined until its write verifies:
                # the battery re-issues it and the tear never survives
                if limited:
                    self._drain_budget -= 1
                self.pm[entry.word] = entry.value
                repaired = True
            key = "torn_repaired" if repaired else "torn_landed"
            self.fault_counters[key] += 1
            self.trace.emit("torn_write", word=entry.word, repaired=repaired)
        else:
            self.pm[entry.word] = entry.value
        self._drain_index += 1

    # ------------------------------------------------------------------
    # recovery steps (nested-failure injection points)
    # ------------------------------------------------------------------
    def _battery_drain(self, report: Dict[str, int]) -> None:
        super()._battery_drain(report)
        if self._nested_armed == "after_drain":
            self._nested_armed = None
            raise NestedPowerFailure()

    def _rollback_overflow(self, report: Dict[str, int]) -> None:
        if self._nested_armed == "mid_rollback" and self.undo_log:
            log = self.undo_log
            if not self.defenses.idempotent_recovery:
                # defense off: the log was truncated the moment recovery
                # began consuming it — the pre-images below survive only
                # in this volatile copy
                self.undo_log = {}
            regions = sorted(log, reverse=True)
            for region in regions[: len(regions) // 2]:
                for word, old in log[region].items():
                    self.pm[word] = old
                    report["undone"] += 1
            self._nested_armed = None
            raise NestedPowerFailure()
        if not self.defenses.idempotent_recovery:
            log, self.undo_log = self.undo_log, {}
            report["undone"] += rollback_undo(self.pm, log)
            return
        super()._rollback_overflow(report)

    def _discard_quarantined(self, report: Dict[str, int]) -> None:
        super()._discard_quarantined(report)
        if self._nested_armed == "after_discard":
            self._nested_armed = None
            raise NestedPowerFailure()

    def _restore_threads(self) -> None:
        # power is back everywhere: dead MCs rejoin, the message layer
        # starts from scratch (undelivered broadcasts died with the power)
        self.down_mcs.clear()
        for seen in self.mc_seen:
            seen.clear()
        self._ack_due.clear()
        self._pending_msgs.clear()
        super()._restore_threads()
        if self._nested_armed == "after_recovery":
            self._nested_armed = None
            raise NestedPowerFailure()

    # ------------------------------------------------------------------
    def _clone_extra(self, new: "PersistentMachine") -> None:
        new.defenses = self.defenses
        new.trace = self.trace
        new.mc_seen = [set(s) for s in self.mc_seen]
        new._ack_due = dict(self._ack_due)
        new._pending_msgs = [list(p) for p in self._pending_msgs]
        new._boundary_seq = self._boundary_seq
        new._armed_msgs = list(self._armed_msgs)
        new.down_mcs = dict(self.down_mcs)
        new._battery_powered = self._battery_powered
        new._settling = self._settling
        new._armed_budget = self._armed_budget
        new._drain_budget = self._drain_budget
        new._torn_indices = set(self._torn_indices)
        new._drain_index = self._drain_index
        new._nested_armed = self._nested_armed
        new.fault_counters = dict(self.fault_counters)
