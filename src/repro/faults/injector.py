"""The scenario injector: drive one :class:`FaultyMachine` through one
fault schedule, deterministically.

A schedule is a list of :class:`~repro.faults.model.FaultEvent`, each
armed at a cumulative instruction count.  The injector advances the
machine to each event's step and applies it (``msg`` faults arm the next
boundary broadcast; ``mc_down`` kills one MC's power domain; ``cut`` cuts
power and runs recovery), then runs the program to completion and lets
the persist tail settle.  Events scheduled past program completion are
counted, not fired — mirroring ``run_with_crashes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..compiler.pipeline import CompiledProgram
from ..config import DEFAULT_CONFIG, SystemConfig
from ..core.machine import MachineStats
from .defenses import ALL_ON, Defenses
from .machine import FaultyMachine
from .model import FaultEvent

__all__ = ["ScenarioResult", "run_scenario"]

Entries = Sequence[Tuple[str, Sequence[int]]]
DEFAULT_ENTRIES: Entries = (("main", ()),)


@dataclass
class ScenarioResult:
    """What one scenario run produced."""

    image: Dict[int, int]          # final persisted data image
    finished: bool
    stats: MachineStats
    fault_counters: Dict[str, int]
    skipped_events: int            # scheduled past program completion


def run_scenario(
    compiled: CompiledProgram,
    schedule: Sequence[FaultEvent],
    entries: Entries = DEFAULT_ENTRIES,
    config: SystemConfig = DEFAULT_CONFIG,
    defenses: Defenses = ALL_ON,
    schedule_seed: int = 0,
    quantum: int = 16,
    max_steps: int = 2_000_000,
    trace=None,
    backend=None,
) -> ScenarioResult:
    machine = FaultyMachine(
        compiled,
        entries=entries,
        config=config,
        quantum=quantum,
        schedule_seed=schedule_seed,
        max_steps=max_steps,
        defenses=defenses,
        trace=trace,
        backend=backend,
    )
    skipped = 0
    for event in sorted(schedule, key=lambda e: e.step):
        gap = event.step - machine.stats.steps
        if gap > 0:
            machine.run(steps=gap)
        if machine.finished:
            skipped += 1
            continue
        if event.kind == "msg":
            machine.arm_msg(event)
        elif event.kind == "mc_down":
            machine.mc_down(event.mc)
        else:  # cut
            machine.crash(event)
    finished = machine.finished or machine.run()
    machine.finish_messages()
    return ScenarioResult(
        image=machine.pm_data(),
        finished=finished,
        stats=machine.stats,
        fault_counters=dict(machine.fault_counters),
        skipped_events=skipped,
    )
