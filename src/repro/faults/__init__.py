"""Adversarial fault injection for the LightWSP reproduction.

The base machine proves crash consistency under clean power cuts; this
package layers the hostile events the paper's machinery implies — torn
battery writes, energy-bounded WPQ drains, dropped/delayed/duplicated
boundary broadcasts, per-MC-skewed crash instants, nested power failures
during recovery — onto the functional machine, sweeps seeded fault
schedules over the workload suite with a differential oracle, shrinks
failures to minimal reproducers, and self-validates by proving it flags
every seeded defense-off protocol variant.
"""

from .campaign import (
    DEFAULT_CAMPAIGN_BENCHMARKS,
    STORE_CAMPAIGN_BENCHMARKS,
    CampaignResult,
    replay_trace,
    resolve_benchmark,
    run_campaign,
)
from .defenses import ALL_ON, DEFENSE_OFF_MODES, Defenses
from .injector import ScenarioResult, run_scenario
from .machine import FaultyMachine, NestedPowerFailure
from .model import (
    ACK_LATENCY_STEPS,
    FAULT_CLASSES,
    MSG_OPS,
    NESTED_POINTS,
    RETRY_TIMEOUT_BOUNDARIES,
    FaultEvent,
    schedule_from_json,
    schedule_to_json,
    tear_value,
)
from .oracle import Violation, check_image, diff_images
from .shrink import shrink_schedule
from .trace import FaultTrace, NullTrace, image_hash, read_trace

__all__ = [
    "ACK_LATENCY_STEPS",
    "ALL_ON",
    "CampaignResult",
    "DEFAULT_CAMPAIGN_BENCHMARKS",
    "DEFENSE_OFF_MODES",
    "Defenses",
    "FAULT_CLASSES",
    "FaultEvent",
    "FaultTrace",
    "FaultyMachine",
    "MSG_OPS",
    "NESTED_POINTS",
    "NestedPowerFailure",
    "NullTrace",
    "RETRY_TIMEOUT_BOUNDARIES",
    "STORE_CAMPAIGN_BENCHMARKS",
    "ScenarioResult",
    "resolve_benchmark",
    "Violation",
    "check_image",
    "diff_images",
    "image_hash",
    "read_trace",
    "replay_trace",
    "run_campaign",
    "run_scenario",
    "schedule_from_json",
    "schedule_to_json",
    "shrink_schedule",
    "tear_value",
]
