"""The deterministic fault-injection campaign runner.

One campaign = a seeded sweep of fault schedules over the (single-
threaded, strictly deterministic) workload subset, every scenario checked
by the differential oracle against the failure-free reference image,
everything recorded in an append-only JSONL trace for exact replay — plus
the self-validation pass: each seeded defense-off mode must be flagged by
the oracle, and the flagged schedule is shrunk to a minimal reproducer.

Two machine configurations are swept:

* the paper's default (64-entry WPQs) — overflow never fires on these
  workloads, so the campaign probes the broadcast/ACK/battery surfaces;
* a 4-entry "tiny WPQ" (same compiled program: the compiler threshold is
  deliberately left at the default) — §IV-D overflow fires constantly and
  the undo log is live, so undo-rollback and nested-recovery faults have
  teeth.

Multithreaded benchmarks are excluded by design: recovery legitimately
perturbs the interleaving, so their final image is not slot-exact and the
strict differential oracle does not apply (the property-test suite checks
their weaker invariants instead).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.battery import per_entry_drain_joules
from ..compiler.pipeline import CompiledProgram, compile_program
from ..config import DEFAULT_CONFIG, SystemConfig
from ..core.failure import reference_pm
from ..errors import DeadlockError, MachineLimitError
from ..workloads.suite import BENCHMARKS
from .defenses import ALL_ON, DEFENSE_OFF_MODES, Defenses
from .injector import run_scenario
from .machine import FaultyMachine
from .model import (
    ACK_LATENCY_STEPS,
    FAULT_CLASSES,
    NESTED_POINTS,
    FaultEvent,
    schedule_from_json,
    schedule_to_json,
)
from .oracle import Violation, check_image
from .shrink import shrink_schedule
from .trace import FaultTrace, NullTrace, image_hash, read_trace

__all__ = [
    "DEFAULT_CAMPAIGN_BENCHMARKS",
    "DEFAULT_CAMPAIGN_SCALE",
    "STORE_CAMPAIGN_BENCHMARKS",
    "TINY_WPQ_ENTRIES",
    "CAMPAIGN_SHARDING",
    "CampaignResult",
    "resolve_benchmark",
    "run_campaign",
    "replay_trace",
]

#: the sharding contract this build uses when ``jobs > 1``, recorded in
#: every trace's ``campaign_start``: work is partitioned round-robin
#: over whole benchmarks (scenario phase) and defense-off modes
#: (validation phase), every worker derives its RNG streams from
#: ``(seed, label)`` alone, and records are merged back in canonical
#: serial order before anything is written.  Because the partition
#: never influences a unit's inputs, the trace is byte-identical for
#: every ``--jobs`` value — which is exactly why replay can refuse any
#: trace recorded under a sharding contract it does not know how to
#: reproduce (see :func:`replay_trace`).
CAMPAIGN_SHARDING = {
    "strategy": "round-robin",
    "unit": "benchmark+mode",
    "version": 1,
}

#: sharding contracts this build can reproduce bit-for-bit
SUPPORTED_SHARDINGS = (CAMPAIGN_SHARDING,)

#: the deterministic (single-threaded) subset the campaign sweeps: every
#: CPU2006/2017 benchmark whose clean run stays under ~15k steps at the
#: default scale, so a full campaign remains a smoke test.
DEFAULT_CAMPAIGN_BENCHMARKS: Tuple[str, ...] = (
    "bzip2", "h264ref", "hmmer", "namd", "dsjeng",
    "imagick", "leela", "nab", "namd17", "xz",
)

DEFAULT_CAMPAIGN_SCALE = 0.01

#: the KV-store workload set (``repro faults campaign --workload store``):
#: single-threaded baked-batch store programs from repro.store.bench
STORE_CAMPAIGN_BENCHMARKS: Tuple[str, ...] = (
    "store-ycsb-a", "store-ycsb-b", "store-crud",
)


def resolve_benchmark(name: str):
    """Benchmark lookup that also knows the store workloads.  The store
    package imports the suite (for :class:`Benchmark`), so the reverse
    lookup must stay lazy to avoid a cycle."""
    if name in BENCHMARKS:
        return BENCHMARKS[name]
    from ..store.bench import STORE_BENCHMARKS

    if name in STORE_BENCHMARKS:
        return STORE_BENCHMARKS[name]
    raise KeyError("unknown benchmark %r" % (name,))

#: WPQ size of the overflow-prone sweep configuration (compiler threshold
#: untouched, so regions overflow their WPQs and the undo log goes live)
TINY_WPQ_ENTRIES = 4

SHRINK_BUDGET = 32


def _tiny_config(config: SystemConfig) -> SystemConfig:
    return replace(
        config, mc=replace(config.mc, wpq_entries=TINY_WPQ_ENTRIES)
    )


def _rng(seed: int, *parts: str) -> random.Random:
    """A deterministic stream per (seed, label...) — independent of
    PYTHONHASHSEED, unlike seeding Random with a string."""
    key = ("%d|" % seed) + "|".join(parts)
    return random.Random(
        int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "big")
    )


# ----------------------------------------------------------------------
# per-benchmark probe
# ----------------------------------------------------------------------

@dataclass
class _Probe:
    """What one failure-free walk learns about a benchmark."""

    total_steps: int
    boundary_steps: List[int]
    #: steps (tiny-WPQ config) where an undo-logged region is still open
    #: (not committable), i.e. where the undo log has rollback work to do
    open_undo_steps: List[int]
    reference: Dict[int, int]       # default config
    reference_tiny: Dict[int, int]  # tiny-WPQ config


def _probe_benchmark(
    compiled: CompiledProgram, config: SystemConfig, backend=None
) -> _Probe:
    from ..trace import EK

    machine = FaultyMachine(compiled, config=config, backend=backend)
    boundary_steps: List[int] = []
    while True:
        event = machine.step()
        if event is None:
            break
        if event.kind == EK.BOUNDARY:
            boundary_steps.append(machine.stats.steps)
    total = machine.stats.steps

    reference = reference_pm(compiled, config=config, backend=backend)
    if not machine.persist.gated:
        # no WPQ to shrink: the tiny-WPQ overflow surface only exists
        # for gated (quarantine-based) backends
        return _Probe(
            total_steps=total,
            boundary_steps=boundary_steps,
            open_undo_steps=[],
            reference=reference,
            reference_tiny=reference,
        )

    tiny = _tiny_config(config)
    walker = FaultyMachine(compiled, config=tiny, backend=backend)
    open_undo: List[int] = []
    while True:
        if walker.step() is None:
            break
        for region in walker.undo_log:
            if (region not in walker.boundary_issued
                    or not walker._seen_ok(region)):
                open_undo.append(walker.stats.steps)
                break
    return _Probe(
        total_steps=total,
        boundary_steps=boundary_steps,
        open_undo_steps=open_undo,
        reference=reference,
        reference_tiny=reference_pm(compiled, config=tiny, backend=backend),
    )


# ----------------------------------------------------------------------
# schedule generation
# ----------------------------------------------------------------------

def _mid_boundaries(probe: _Probe, rng: random.Random, k: int) -> List[int]:
    """Up to ``k`` distinct boundary steps away from the run's edges."""
    lo, hi = 8, max(9, probe.total_steps - ACK_LATENCY_STEPS - 8)
    eligible = [b for b in probe.boundary_steps if lo <= b <= hi]
    if not eligible:
        eligible = probe.boundary_steps[1:-1] or probe.boundary_steps
    rng.shuffle(eligible)
    return sorted(eligible[:k])


def generate_schedules(
    fault_class: str,
    probe: _Probe,
    rng: random.Random,
    config: SystemConfig,
) -> List[List[FaultEvent]]:
    """The campaign's schedules for one (benchmark, fault class) cell.
    Deterministic given the rng stream."""
    n_mcs = config.mc.n_mcs
    bs = _mid_boundaries(probe, rng, 3)
    if not bs:
        return []
    in_window = lambda b: b + rng.randint(1, ACK_LATENCY_STEPS - 1)
    mc = lambda: rng.randrange(n_mcs)

    if fault_class == "clean_cut":
        mid = max(1, rng.randint(1, probe.total_steps - 1))
        return [[FaultEvent("cut", step=mid)],
                [FaultEvent("cut", step=in_window(bs[0]))]]
    if fault_class == "torn_cut":
        return [
            [FaultEvent("cut", step=in_window(b),
                        torn_index=rng.randint(0, 2))]
            for b in bs[:2]
        ]
    if fault_class == "drained_cut":
        # tiny residuals: honored only when sized_battery is off — the
        # defended sweep proves the sizing invariant neutralizes them
        per_entry = per_entry_drain_joules(config)
        return [
            [FaultEvent("cut", step=in_window(b),
                        residual_j=per_entry * rng.uniform(0.5, 2.5))]
            for b in bs[:2]
        ]
    if fault_class in ("msg_drop", "msg_delay", "msg_dup"):
        op = fault_class[len("msg_"):]
        out = []
        for i, b in enumerate(bs[:2]):
            msg = FaultEvent(
                "msg", step=max(1, b - 1), op=op, mc=mc(),
                delay=rng.randint(1, 3),
            )
            schedule = [msg]
            if i == 1:  # one variant also cuts power inside the gap
                schedule.append(
                    FaultEvent("cut", step=b + ACK_LATENCY_STEPS + 2)
                )
            out.append(schedule)
        return out
    if fault_class == "skew_cut":
        out = []
        for b in bs[:2]:
            down_at = max(1, b - rng.randint(1, 4))
            cut_at = b + rng.randint(2, ACK_LATENCY_STEPS + 4)
            out.append([
                FaultEvent("mc_down", step=down_at, mc=mc()),
                FaultEvent("cut", step=cut_at),
            ])
        return out
    if fault_class == "nested_cut":
        out = [
            [FaultEvent("cut", step=in_window(bs[i % len(bs)]),
                        nested_after=point)]
            for i, point in enumerate(NESTED_POINTS)
        ]
        return out
    raise ValueError("unknown fault class %r" % (fault_class,))


def _tiny_wpq_schedules(
    probe: _Probe, rng: random.Random
) -> List[Tuple[str, List[FaultEvent]]]:
    """Extra overflow-surface scenarios under the tiny-WPQ config: cuts
    (plain and nested-mid-rollback) while the undo log has live rollback
    work."""
    steps = probe.open_undo_steps
    if not steps:
        return []
    picks = sorted({steps[0], steps[len(steps) // 2], steps[-1]})
    out: List[Tuple[str, List[FaultEvent]]] = []
    for s in picks[:2]:
        out.append(("clean_cut", [FaultEvent("cut", step=s)]))
    out.append((
        "nested_cut",
        [FaultEvent("cut", step=rng.choice(picks),
                    nested_after="mid_rollback")],
    ))
    return out


# ----------------------------------------------------------------------
# defense-off self-validation
# ----------------------------------------------------------------------

def _defense_candidates(
    mode: str, probe: _Probe, rng: random.Random, config: SystemConfig
) -> Tuple[str, List[List[FaultEvent]]]:
    """(config tag, candidate schedules) expected to expose ``mode``."""
    n_mcs = config.mc.n_mcs
    bs = _mid_boundaries(probe, rng, 4)
    if mode == "no_undo":
        steps = probe.open_undo_steps
        picks = sorted(set(
            steps[(i * (len(steps) - 1)) // 5] for i in range(6)
        )) if steps else []
        return "tiny_wpq", [[FaultEvent("cut", step=s)] for s in picks]
    if mode == "no_recovery_idempotence":
        steps = probe.open_undo_steps
        picks = sorted(set(
            steps[(i * (len(steps) - 1)) // 5] for i in range(6)
        )) if steps else []
        return "tiny_wpq", [
            [FaultEvent("cut", step=s, nested_after="mid_rollback")]
            for s in picks
        ]
    if mode == "no_ack_wait":
        out = []
        for b in bs:
            for m in range(n_mcs):
                out.append([
                    FaultEvent("msg", step=max(1, b - 1), op="drop", mc=m),
                    FaultEvent("cut", step=b + ACK_LATENCY_STEPS + 2),
                ])
        return "default", out
    if mode == "torn_unrepaired":
        return "default", [
            [FaultEvent("cut", step=b + k, torn_index=0)]
            for b in bs for k in (1, 3)
        ]
    if mode == "undersized_battery":
        per_entry = per_entry_drain_joules(config)
        return "default", [
            [FaultEvent("cut", step=b + k, residual_j=per_entry * 1.2)]
            for b in bs for k in (1, 3)
        ]
    if mode == "no_retry":
        return "default", [
            [FaultEvent("msg", step=max(1, b - 1), op="drop", mc=m)]
            for b in bs for m in range(n_mcs)
        ]
    raise ValueError("unknown defense-off mode %r" % (mode,))


# ----------------------------------------------------------------------
# the campaign
# ----------------------------------------------------------------------

@dataclass
class CampaignResult:
    """Everything `repro faults campaign` reports."""

    seed: int
    benchmarks: List[str]
    backend: str = "lightwsp-lrpo"
    fault_classes: Tuple[str, ...] = FAULT_CLASSES
    scenarios_run: int = 0
    #: oracle failures of the DEFENDED protocol (must stay empty)
    violations: List[Dict] = field(default_factory=list)
    #: mode -> {"caught": bool, "benchmark": ..., "minimal": [...], ...}
    defense_results: Dict[str, Dict] = field(default_factory=dict)
    trace_path: Optional[str] = None

    @property
    def defenses_caught(self) -> int:
        return sum(1 for r in self.defense_results.values() if r["caught"])

    @property
    def ok(self) -> bool:
        return not self.violations and all(
            r["caught"] for r in self.defense_results.values()
        )


def _run_one(
    compiled: CompiledProgram,
    schedule: List[FaultEvent],
    config: SystemConfig,
    defenses: Defenses,
    reference: Dict[int, int],
    trace,
    backend=None,
) -> Tuple[Optional[Violation], Dict]:
    try:
        result = run_scenario(
            compiled, schedule, config=config, defenses=defenses, trace=trace,
            backend=backend,
        )
    except (MachineLimitError, DeadlockError) as exc:
        # A wedged or runaway run loop is a scenario verdict, not a
        # harness crash: a fault schedule that livelocks recovery is
        # exactly what the campaign exists to flag.
        kind = (
            "machine_limit" if isinstance(exc, MachineLimitError)
            else "deadlock"
        )
        violation = Violation(kind=kind, detail=str(exc))
        record = {
            "schedule": schedule_to_json(schedule),
            "image_hash": image_hash({}),
            "steps": exc.steps,
            "crashes": 0,
            "skipped_events": 0,
            "counters": {},
            "violation": violation.to_json(),
        }
        return violation, record
    violation = check_image(result.finished, result.image, reference)
    record = {
        "schedule": schedule_to_json(schedule),
        "image_hash": image_hash(result.image),
        "steps": result.stats.steps,
        "crashes": result.stats.crashes,
        "skipped_events": result.skipped_events,
        "counters": {k: v for k, v in result.fault_counters.items() if v},
        "violation": violation.to_json() if violation else None,
    }
    return violation, record


def _benchmark_task(
    name: str,
    seed: int,
    scale: float,
    configs: Dict[str, SystemConfig],
    fault_classes: Tuple[str, ...],
    verify: Optional[bool],
    backend,
) -> Dict:
    """One benchmark's whole scenario sweep — the unit of work the
    scenario phase shards across workers.  A pure function of its
    arguments (all RNG streams are keyed on ``(seed, name, ...)``), so
    running it in a forked worker or in-process yields the same records
    byte for byte."""
    config = configs["default"]
    bench = resolve_benchmark(name)
    if bench.threads != 1:
        raise ValueError(
            "campaign benchmarks must be single-threaded "
            "(got %r); the strict differential oracle does not "
            "apply to racy interleavings" % name
        )
    compiled = compile_program(
        bench.build(scale=scale), config.compiler, verify=verify
    )
    probe = _probe_benchmark(compiled, config, backend=backend)

    cells: List[Tuple[str, str, List[FaultEvent]]] = []
    for fault_class in fault_classes:
        rng = _rng(seed, name, fault_class)
        for schedule in generate_schedules(fault_class, probe, rng, config):
            cells.append((fault_class, "default", schedule))
    if backend.gated:
        for fault_class, schedule in _tiny_wpq_schedules(
            probe, _rng(seed, name, "tiny_wpq")
        ):
            cells.append((fault_class, "tiny_wpq", schedule))

    records: List[Dict] = []
    for fault_class, cfg_tag, schedule in cells:
        reference = (
            probe.reference if cfg_tag == "default"
            else probe.reference_tiny
        )
        _, record = _run_one(
            compiled, schedule, configs[cfg_tag], ALL_ON,
            reference, NullTrace(), backend=backend,
        )
        record.update(
            benchmark=name, fault_class=fault_class,
            config=cfg_tag, mode="all_on",
        )
        records.append(record)
    return {
        "benchmark": name,
        "n_cells": len(cells),
        "records": records,
        "compiled": compiled,
        "probe": probe,
    }


def run_campaign(
    seed: int = 0,
    benchmarks: Optional[Sequence[str]] = None,
    scale: float = DEFAULT_CAMPAIGN_SCALE,
    config: SystemConfig = DEFAULT_CONFIG,
    trace_path: Optional[str] = None,
    validate_defenses: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    verify: Optional[bool] = None,
    backend=None,
    jobs: int = 1,
    worker_timeout: Optional[float] = None,
) -> CampaignResult:
    """Run the full deterministic campaign.  Same seed, same benchmarks,
    same scale -> bit-identical trace (modulo the trace path) — for
    **every** value of ``jobs``: parallel workers are sharded round-robin
    over benchmarks (then defense-off modes), never share RNG state, and
    their records are merged back in canonical order before the trace is
    written (see :data:`CAMPAIGN_SHARDING`).

    ``verify=True`` statically verifies each compiled benchmark (see
    :mod:`repro.verify`) before injecting any fault into it.

    ``backend`` selects the persist backend under attack.  The sweep is
    restricted to the backend's meaningful fault classes; the differential
    oracle demands a crash-consistent scheme, so backends with
    ``recovers=False`` (PSP, memory-mode) are refused — every scenario
    would be a guaranteed, uninformative violation.

    ``jobs`` caps the worker processes (1 = serial, in-process);
    ``worker_timeout`` kills any shard that exceeds the budget (seconds)
    and raises a diagnostic instead of hanging."""
    from ..parallel import fan_out
    from ..runtime.backend import get_backend, require_recovering

    backend = require_recovering(
        get_backend(backend), "the differential campaign oracle"
    )
    fault_classes = tuple(
        fc for fc in FAULT_CLASSES if fc in backend.fault_classes
    )
    names = list(benchmarks or DEFAULT_CAMPAIGN_BENCHMARKS)
    say = progress or (lambda msg: None)
    trace = FaultTrace(trace_path) if trace_path else NullTrace()
    result = CampaignResult(seed=seed, benchmarks=names,
                            backend=backend.name,
                            fault_classes=fault_classes,
                            trace_path=trace_path)
    tiny = _tiny_config(config)
    configs = {"default": config, "tiny_wpq": tiny}

    trace.emit(
        "campaign_start", seed=seed, scale=scale, benchmarks=names,
        backend=backend.name,
        fault_classes=list(fault_classes),
        tiny_wpq_entries=TINY_WPQ_ENTRIES, version=1,
        sharding=dict(CAMPAIGN_SHARDING),
    )

    def scenario_worker(name: str) -> Dict:
        return _benchmark_task(
            name, seed, scale, configs, fault_classes, verify, backend
        )

    tasks = fan_out(
        scenario_worker, names, jobs=jobs, timeout=worker_timeout,
        label="campaign",
    )
    compiled_cache: Dict[str, CompiledProgram] = {}
    probes: Dict[str, _Probe] = {}
    for task in tasks:
        name = task["benchmark"]
        compiled_cache[name] = task["compiled"]
        probes[name] = task["probe"]
        bench_violations = 0
        for record in task["records"]:
            trace.emit("scenario_end", **record)
            result.scenarios_run += 1
            if record["violation"] is not None:
                bench_violations += 1
                result.violations.append(record)
        say("%-10s %2d scenarios, %d violation(s)"
            % (name, task["n_cells"], bench_violations))

    if validate_defenses and backend.validates_defenses:
        _validate_defenses(
            result, compiled_cache, probes, configs, seed, trace, say,
            backend=backend, jobs=jobs, worker_timeout=worker_timeout,
        )
    elif validate_defenses:
        say("defense validation skipped: backend %r has no LRPO "
            "defenses to switch off" % backend.name)

    trace.emit(
        "campaign_end",
        scenarios=result.scenarios_run,
        violations=len(result.violations),
        defenses_caught=result.defenses_caught,
        defenses_total=len(result.defense_results),
    )
    trace.close()
    return result


def _defense_mode_task(
    mode: str,
    benchmarks: Sequence[str],
    compiled_cache: Dict[str, CompiledProgram],
    probes: Dict[str, _Probe],
    configs: Dict[str, SystemConfig],
    seed: int,
    backend,
) -> Dict:
    """One defense-off mode's whole hunt (candidates -> first failure ->
    shrink) — the unit of work the validation phase shards across
    workers.  Deterministic per ``(seed, mode)``."""
    defenses = DEFENSE_OFF_MODES[mode]
    entry: Dict = {"caught": False, "benchmark": None,
                   "candidates_tried": 0}
    for name in benchmarks:
        compiled = compiled_cache[name]
        probe = probes[name]
        rng = _rng(seed, "defense", mode, name)
        cfg_tag, candidates = _defense_candidates(
            mode, probe, rng, configs["default"]
        )
        cfg = configs[cfg_tag]
        reference = (
            probe.reference if cfg_tag == "default"
            else probe.reference_tiny
        )

        def fails(schedule: List[FaultEvent]) -> bool:
            res = run_scenario(
                compiled, schedule, config=cfg, defenses=defenses,
                trace=NullTrace(), backend=backend,
            )
            return check_image(
                res.finished, res.image, reference
            ) is not None

        caught_schedule = None
        for schedule in candidates:
            entry["candidates_tried"] += 1
            if fails(schedule):
                caught_schedule = schedule
                break
        if caught_schedule is None:
            continue

        minimal, evals = shrink_schedule(
            caught_schedule, fails, budget=SHRINK_BUDGET
        )
        # record the minimal reproducer's actual violation
        res = run_scenario(
            compiled, minimal, config=cfg, defenses=defenses,
            trace=NullTrace(), backend=backend,
        )
        violation = check_image(res.finished, res.image, reference)
        entry.update(
            caught=True, benchmark=name, config=cfg_tag,
            minimal=schedule_to_json(minimal),
            original_events=len(caught_schedule),
            minimal_events=len(minimal),
            shrink_evals=evals,
            violation=violation.to_json() if violation else None,
        )
        break
    return entry


def _validate_defenses(
    result: CampaignResult,
    compiled_cache: Dict[str, CompiledProgram],
    probes: Dict[str, _Probe],
    configs: Dict[str, SystemConfig],
    seed: int,
    trace,
    say: Callable[[str], None],
    backend=None,
    jobs: int = 1,
    worker_timeout: Optional[float] = None,
) -> None:
    """Self-validation: every defense-off mode must be flagged, then its
    failing schedule is shrunk to a minimal reproducer (verified to still
    fail).  Modes are independent, so they shard round-robin across
    workers; entries are merged back in sorted-mode order."""
    from ..parallel import fan_out

    modes = sorted(DEFENSE_OFF_MODES)

    def mode_worker(mode: str) -> Dict:
        return _defense_mode_task(
            mode, result.benchmarks, compiled_cache, probes, configs,
            seed, backend,
        )

    entries = fan_out(
        mode_worker, modes, jobs=jobs, timeout=worker_timeout,
        label="defense-validation",
    )
    for mode, entry in zip(modes, entries):
        result.defense_results[mode] = entry
        trace.emit("defense_mode", mode=mode, **entry)
        say("defense %-24s %s" % (
            mode,
            "caught (%d-event reproducer on %s)"
            % (entry.get("minimal_events", 0), entry["benchmark"])
            if entry["caught"] else "NOT CAUGHT",
        ))


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------

def _check_trace_sharding(start: Dict, path: str) -> None:
    """Refuse a trace whose recorded sharding contract this build cannot
    reproduce.  Re-sharding such a trace silently would partition the
    scenarios differently from the run that produced it, so any
    mismatch could be an artifact of the partitioning rather than a
    regression — an explanatory refusal is the only honest outcome.
    Traces from before the parallel layer carry no ``sharding`` field
    and replay fine (their serial order is the canonical order)."""
    sharding = start.get("sharding")
    if sharding is None:
        return
    known = [
        {k: s[k] for k in ("strategy", "unit", "version")}
        for s in SUPPORTED_SHARDINGS
    ]
    probe = {
        k: sharding.get(k) for k in ("strategy", "unit", "version")
    }
    if probe not in known:
        raise ValueError(
            "trace %s was recorded under sharding contract %r, which "
            "this build cannot reproduce (supported: %r); refusing to "
            "replay rather than silently re-sharding — scenario "
            "partitioning would differ from the recording run"
            % (path, sharding, list(SUPPORTED_SHARDINGS))
        )


def replay_trace(
    path: str,
    config: SystemConfig = DEFAULT_CONFIG,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    worker_timeout: Optional[float] = None,
) -> Dict:
    """Re-run every scenario recorded in a campaign trace and verify the
    outcome (image hash + oracle verdict) reproduces bit for bit.

    Scenarios are independent, so ``jobs > 1`` shards them round-robin
    across workers; the report (checked count + mismatches in recorded
    order) is identical for every ``jobs`` value.  A trace recorded
    under a sharding contract this build does not support is refused
    with an explanation (see :func:`_check_trace_sharding`)."""
    from ..parallel import fan_out

    from ..obs.schema import ensure_supported_version

    say = progress or (lambda msg: None)
    records = read_trace(path)
    ensure_supported_version(records, path)
    starts = [r for r in records if r.get("type") == "campaign_start"]
    if not starts:
        raise ValueError("not a campaign trace: %s" % path)
    _check_trace_sharding(starts[0], path)
    scale = starts[0]["scale"]
    backend = starts[0].get("backend", "lightwsp-lrpo")
    configs = {"default": config, "tiny_wpq": _tiny_config(config)}

    scenarios = [r for r in records if r.get("type") == "scenario_end"]
    compiled_cache: Dict[str, CompiledProgram] = {}

    def replay_one(record: Dict) -> Optional[Dict]:
        # the cache is per-process: the serial path fills one for the
        # whole trace, a forked worker fills its own for its shard
        name = record["benchmark"]
        if name not in compiled_cache:
            compiled_cache[name] = compile_program(
                resolve_benchmark(name).build(scale=scale), config.compiler
            )
        cfg = configs[record["config"]]
        defenses = (
            ALL_ON if record["mode"] == "all_on"
            else DEFENSE_OFF_MODES[record["mode"]]
        )
        schedule = schedule_from_json(record["schedule"])
        res = run_scenario(
            compiled_cache[name], schedule, config=cfg, defenses=defenses,
            backend=backend,
        )
        # the recorded hash pins the exact final image (including any
        # divergence), so one comparison verifies the whole outcome
        got_hash = image_hash(res.image)
        if got_hash == record["image_hash"]:
            return None
        return {
            "benchmark": name,
            "fault_class": record["fault_class"],
            "schedule": record["schedule"],
            "want_hash": record["image_hash"],
            "got_hash": got_hash,
        }

    outcomes = fan_out(
        replay_one, scenarios, jobs=jobs, timeout=worker_timeout,
        label="replay",
    )
    mismatches: List[Dict] = []
    checked = 0
    for outcome in outcomes:
        checked += 1
        if outcome is not None:
            mismatches.append(outcome)
        if checked % 50 == 0:
            say("replayed %d scenarios..." % checked)
    return {"checked": checked, "mismatches": mismatches}
