"""The differential oracle: after any fault scenario, the recovered
execution's final persisted image must equal the failure-free reference
image bit for bit (the crash-consistency theorem, now quantified over the
whole adversarial fault model instead of clean cuts only)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Violation", "diff_images", "check_image"]

#: how many differing words a Violation records verbatim
SAMPLE_LIMIT = 8


@dataclass(frozen=True)
class Violation:
    """One oracle failure, with enough detail to read the diff."""

    #: "pm_divergence" | "incomplete" | "machine_limit" | "deadlock"
    kind: str
    missing: int = 0    # words in the reference but not the final image
    extra: int = 0      # words in the final image but not the reference
    differing: int = 0  # words present in both with different values
    #: up to SAMPLE_LIMIT (word, got, want) triples; got/want None when absent
    sample: Tuple = field(default_factory=tuple)
    #: free text for run-loop verdicts (the typed exception's message)
    detail: str = ""

    def to_json(self) -> Dict:
        return {
            "kind": self.kind,
            "missing": self.missing,
            "extra": self.extra,
            "differing": self.differing,
            "sample": [list(s) for s in self.sample],
            "detail": self.detail,
        }

    def describe(self) -> str:
        if self.kind == "incomplete":
            return "execution did not finish"
        if self.kind == "machine_limit":
            return "run loop exceeded its step budget: " + self.detail
        if self.kind == "deadlock":
            return "run loop deadlocked: " + self.detail
        parts = []
        if self.differing:
            parts.append("%d differing" % self.differing)
        if self.missing:
            parts.append("%d missing" % self.missing)
        if self.extra:
            parts.append("%d extra" % self.extra)
        return "pm divergence: " + ", ".join(parts)


def diff_images(
    got: Dict[int, int], want: Dict[int, int]
) -> Optional[Violation]:
    """None when the images match; a populated Violation otherwise."""
    if got == want:
        return None
    missing = extra = differing = 0
    sample: List[Tuple[int, Optional[int], Optional[int]]] = []
    for word in sorted(set(got) | set(want)):
        g, w = got.get(word), want.get(word)
        if g == w:
            continue
        if g is None:
            missing += 1
        elif w is None:
            extra += 1
        else:
            differing += 1
        if len(sample) < SAMPLE_LIMIT:
            sample.append((word, g, w))
    return Violation(
        kind="pm_divergence",
        missing=missing,
        extra=extra,
        differing=differing,
        sample=tuple(sample),
    )


def check_image(
    finished: bool, image: Dict[int, int], reference: Dict[int, int]
) -> Optional[Violation]:
    if not finished:
        return Violation(kind="incomplete")
    return diff_images(image, reference)
