"""The protocol's defenses, as switches — and the seeded "defense-off"
modes that prove the fault harness has teeth.

Each flag names one mechanism the paper's protocol relies on to survive
an adversarial event.  With every flag on (``ALL_ON``) the campaign must
report zero oracle violations; turning any single flag off creates a
deliberately broken machine that the differential oracle MUST flag — the
harness's self-validation (`repro faults campaign` runs both sides).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

__all__ = ["Defenses", "ALL_ON", "DEFENSE_OFF_MODES"]


@dataclass(frozen=True)
class Defenses:
    #: §IV-D: record pre-images before an overflow flush so a later crash
    #: can roll the speculative PM writes back.
    undo_logging: bool = True
    #: §IV-B: a region commits only after EVERY MC has seen (ACKed) its
    #: boundary broadcast; off = commit as soon as any MC has.
    ack_wait: bool = True
    #: WPQ entries stay quarantined until their PM write is verified, so
    #: the battery drain re-issues a torn write; off = slot released at
    #: issue, the torn value lands.
    wpq_retention: bool = True
    #: the battery holds >= the worst-case drain energy (§II-C1); off =
    #: the residual energy the fault schedule specifies is taken at face
    #: value and the drain truncates when it runs out.
    sized_battery: bool = True
    #: the undo log is PM-resident and cleared only after the rollback
    #: completes, making recovery idempotent under a nested power failure;
    #: off = the log is truncated as soon as recovery starts consuming it.
    idempotent_recovery: bool = True
    #: a boundary broadcast that draws no ACK is re-sent after a timeout;
    #: off = a dropped broadcast is simply lost and its region (and every
    #: younger one) never commits.
    broadcast_retry: bool = True


ALL_ON = Defenses()

#: every seeded defense-off mode the self-validation campaign must catch.
DEFENSE_OFF_MODES: Dict[str, Defenses] = {
    "no_undo": replace(ALL_ON, undo_logging=False),
    "no_ack_wait": replace(ALL_ON, ack_wait=False),
    "torn_unrepaired": replace(ALL_ON, wpq_retention=False),
    "undersized_battery": replace(ALL_ON, sized_battery=False),
    "no_recovery_idempotence": replace(ALL_ON, idempotent_recovery=False),
    "no_retry": replace(ALL_ON, broadcast_retry=False),
}
