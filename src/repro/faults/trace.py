"""Append-only JSONL fault-trace artifacts.

Every campaign writes one ``.jsonl`` file: one JSON object per line, in
the order things happened, never rewritten.  The trace is the campaign's
replay artifact — it records each scenario's benchmark, fault schedule,
defense switches, and outcome (violation flag + a stable hash of the
final persisted image), so ``repro faults replay <trace>`` can re-run
every scenario and verify the outcomes reproduce bit-for-bit.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterator, List, Optional

__all__ = ["FaultTrace", "NullTrace", "image_hash", "read_trace"]


def image_hash(image: Dict[int, int]) -> str:
    """A stable fingerprint of a persisted data image."""
    digest = hashlib.sha256()
    for word in sorted(image):
        digest.update(("%d:%d;" % (word, image[word])).encode())
    return digest.hexdigest()[:16]


class FaultTrace:
    """Append-only JSONL writer.  One instance per campaign run."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "a")
        self.lines_written = 0

    def emit(self, rectype: str, **fields) -> None:
        record = {"type": rectype}
        record.update(fields)
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        self.lines_written += 1

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "FaultTrace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullTrace:
    """Trace sink for runs that don't record (shrinking probes, tests)."""

    path: Optional[str] = None
    lines_written = 0

    def emit(self, rectype: str, **fields) -> None:
        pass

    def close(self) -> None:
        pass


def read_trace(path: str) -> List[Dict]:
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


def iter_scenarios(records: List[Dict]) -> Iterator[Dict]:
    """Yield the scenario_end records (each carries everything needed to
    replay: benchmark, fault class, schedule, defenses, outcome)."""
    for record in records:
        if record.get("type") == "scenario_end":
            yield record
