"""Compatibility shim: the append-only JSONL trace artifacts moved to
:mod:`repro.trace` so runtime-layer events have a single schema.  Import
from there (``FaultTrace`` is an alias of :class:`repro.trace.JsonlTrace`)."""

from __future__ import annotations

from ..trace import (
    FaultTrace,
    JsonlTrace,
    NullTrace,
    image_hash,
    iter_scenarios,
    read_trace,
)

__all__ = [
    "FaultTrace",
    "JsonlTrace",
    "NullTrace",
    "image_hash",
    "iter_scenarios",
    "read_trace",
]
