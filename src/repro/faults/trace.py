"""Deprecated compatibility shim — import from :mod:`repro.trace`.

The append-only JSONL trace artifacts moved to :mod:`repro.trace` so
runtime-layer events have a single schema (``FaultTrace`` is an alias
of :class:`repro.trace.JsonlTrace`).  This module is a pure re-export
(every name here *is* the :mod:`repro.trace` object, pinned by test)
kept only for existing imports; new code should import from
:mod:`repro.trace`."""

from __future__ import annotations

from ..trace import (
    FaultTrace,
    JsonlTrace,
    NullTrace,
    image_hash,
    iter_scenarios,
    read_trace,
)

__all__ = [
    "FaultTrace",
    "JsonlTrace",
    "NullTrace",
    "image_hash",
    "iter_scenarios",
    "read_trace",
]
