"""Fig. 8 — region-level persistence efficiency (Eq. 1), PPA vs LightWSP.

Paper averages: PPA 89.3%, LightWSP 99.9%."""

from repro.analysis import fig8_efficiency


def bench_fig08_efficiency(benchmark, ctx, record):
    result = benchmark.pedantic(fig8_efficiency, args=(ctx,), rounds=1, iterations=1)
    record(result, "fig08_efficiency.txt")
    assert result.overall["LightWSP"] > result.overall["PPA"]
    assert result.overall["LightWSP"] > 90.0
