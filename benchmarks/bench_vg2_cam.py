"""§V-G2 — CAM search latency of the front-end buffer / WPQ (CACTI-fit
model).  Paper: 0.99 ns = 2 cycles at 2 GHz for 64 x 8 B at 22 nm."""

import os

from repro.analysis import format_mapping, vg2_cam_latency


def bench_vg2_cam(benchmark):
    result = benchmark.pedantic(vg2_cam_latency, rounds=1, iterations=1)
    text = format_mapping("V-G2 CAM search latency", result)
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "vg2_cam.txt"), "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)
    assert result["search_cycles"] == 2
    assert 0.8 <= result["search_ns"] <= 1.1
