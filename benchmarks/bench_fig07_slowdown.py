"""Fig. 7 — slowdown of Capri, PPA, and LightWSP over the memory-mode
baseline across the application suites.

Paper geomeans: Capri 1.505, PPA 1.081, LightWSP 1.090."""

from repro.analysis import fig7_slowdown


def bench_fig07_slowdown(benchmark, ctx, record):
    result = benchmark.pedantic(fig7_slowdown, args=(ctx,), rounds=1, iterations=1)
    record(result, "fig07_slowdown.txt")
    overall = result.overall
    # shape: Capri is the clear loser; PPA and LightWSP are close
    assert overall["Capri"] > overall["LightWSP"]
    assert overall["Capri"] > overall["PPA"]
    assert overall["LightWSP"] < 1.6
