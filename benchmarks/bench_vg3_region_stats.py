"""§V-G3 — dynamic instruction overhead and region statistics.

Paper: +7.03% instructions (checkpoint + boundary stores), 91.33
instructions and 11.29 stores per region on average."""

from repro.analysis import vg3_region_stats


def bench_vg3_region_stats(benchmark, ctx, record):
    result = benchmark.pedantic(vg3_region_stats, args=(ctx,), rounds=1, iterations=1)
    record(result, "vg3_region_stats.txt")
    overhead = result.overall["instrumentation_pct"]
    assert 0.0 <= overhead < 40.0
    assert result.overall["insts_per_region"] > 5.0
