"""Fig. 18 — WPQ hit rate (hits per million instructions) on LLC load
misses, across WPQ sizes.

Paper: 0.039 hits/Minst average at WPQ-64 — low enough that the §IV-H
wait-for-flush path never matters."""

from repro.analysis import fig18_wpq_hits


def bench_fig18_wpq_hits(benchmark, ctx, record):
    result = benchmark.pedantic(
        fig18_wpq_hits, args=(ctx,), kwargs={"sizes": (256, 128, 64)},
        rounds=1, iterations=1,
    )
    record(result, "fig18_wpq_hits.txt")
    for row in result.rows:
        # hit rates stay tiny (the paper's core observation)
        assert row["WPQ-64"] < 1000.0
