"""Fig. 17 / Table III — LightWSP over CXL-attached persistent devices.

Paper: below 16% average overhead on every CXL preset."""

from repro.analysis import fig17_cxl, table3_cxl


def bench_fig17_cxl(benchmark, ctx, record):
    record(table3_cxl(), "table3_cxl.txt")
    result = benchmark.pedantic(fig17_cxl, args=(ctx,), rounds=1, iterations=1)
    record(result, "fig17_cxl.txt")
    for series, value in result.overall.items():
        assert value < 2.0, (series, value)
