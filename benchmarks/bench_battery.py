"""§II-C1 quantified — residual-energy budgets: why JIT-checkpointing
cannot cover whole-system persistence while LightWSP's WPQ battery is a
rounding error."""

import os

from repro.analysis import battery_compare


def bench_battery(benchmark):
    rows = benchmark.pedantic(battery_compare, rounds=1, iterations=1)
    lines = ["Residual-energy budgets (II-C1)"]
    for scheme, row in rows.items():
        lines.append(
            "%-22s %12d B  %10.4g J  ATX:%-5s serverPSU:%s"
            % (scheme, row["bytes"], row["energy_J"],
               row["fits_ATX"], row["fits_server_PSU"])
        )
    text = "\n".join(lines)
    results = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results, exist_ok=True)
    with open(os.path.join(results, "battery.txt"), "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)
    assert rows["LightWSP"]["fits_ATX"]
    assert not rows["JIT-checkpoint+DRAM$"]["fits_server_PSU"]
