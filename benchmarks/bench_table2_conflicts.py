"""Table II — front-end buffer conflict rate (permille of L1 evictions).

Paper: ~0 for SPEC; up to 0.0031 permille for NPB — conflicts are rare,
which is why the victim-selection policy barely matters (Fig. 13)."""

from repro.analysis import table2_conflict_rate


def bench_table2_conflicts(benchmark, ctx, record):
    result = benchmark.pedantic(
        table2_conflict_rate, args=(ctx,), rounds=1, iterations=1
    )
    record(result, "table2_conflicts.txt")
    for row in result.rows:
        assert row["conflict_permille"] < 50.0  # rare, as the paper finds
