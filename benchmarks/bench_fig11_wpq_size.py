"""Fig. 11 — WPQ-size sensitivity: 64 (default) / 128 / 256 entries,
with the store threshold tracking half the WPQ.

Paper: larger WPQs perform best; WPQ-64 is the practical default."""

from repro.analysis import fig11_wpq_size


def bench_fig11_wpq_size(benchmark, ctx, record):
    result = benchmark.pedantic(
        fig11_wpq_size, args=(ctx,), kwargs={"sizes": (256, 128, 64)},
        rounds=1, iterations=1,
    )
    record(result, "fig11_wpq_size.txt")
    assert result.overall["WPQ-256"] <= result.overall["WPQ-64"] * 1.05
