"""Fig. 10 — LightWSP vs the state-of-the-art cWSP (NPB excluded).

Paper: cWSP 1.057 vs LightWSP 1.085 — cWSP slightly ahead on run time,
LightWSP matching it with near-zero hardware."""

from repro.analysis import fig10_cwsp


def bench_fig10_cwsp(benchmark, ctx, record):
    result = benchmark.pedantic(fig10_cwsp, args=(ctx,), rounds=1, iterations=1)
    record(result, "fig10_cwsp.txt")
    assert all(row["suite"] != "NPB" for row in result.rows)
    # both land in the same modest-overhead band
    assert result.overall["cWSP"] < 1.5
    assert result.overall["LightWSP"] < 1.5
