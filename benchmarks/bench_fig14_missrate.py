"""Fig. 14 — L1 miss rate for the three victim policies plus the
stale-load (snooping disabled) case.

Paper: the stale-load case shows the highest miss rate; snooping keeps
hot conflicting lines resident."""

from repro.analysis import fig14_miss_rate


def bench_fig14_missrate(benchmark, ctx, record):
    result = benchmark.pedantic(fig14_miss_rate, args=(ctx,), rounds=1, iterations=1)
    record(result, "fig14_missrate.txt")
    for row in result.rows:
        for series in result.series:
            assert 0.0 <= row[series] <= 100.0
