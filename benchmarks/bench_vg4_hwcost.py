"""§V-G4 — hardware cost: LightWSP 0.5 B/core (a 2 B flush ID per MC)
vs PPA's 337 B/core and Capri's 54 KB/core."""

import os

from repro.analysis import format_mapping, lightwsp_cost, vg4_hw_cost
from repro.config import SystemConfig


def bench_vg4_hwcost(benchmark):
    costs = benchmark.pedantic(vg4_hw_cost, rounds=1, iterations=1)
    text = format_mapping("V-G4 hardware cost", costs)
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "vg4_hwcost.txt"), "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)
    assert lightwsp_cost(SystemConfig()).per_core_bytes == 0.5
