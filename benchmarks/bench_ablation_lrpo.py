"""Ablation — lazy region-level persist ordering vs naive boundary
stalls.

§III-B's motivation: "naive use of sfence at each region boundary causes
significant performance overhead".  Both configurations replay the same
compiled binary; only the ordering mechanism differs, so the gap *is*
LRPO's contribution."""

from repro.analysis import ablation_lrpo


def bench_ablation_lrpo(benchmark, ctx, record):
    result = benchmark.pedantic(ablation_lrpo, args=(ctx,), rounds=1, iterations=1)
    record(result, "ablation_lrpo.txt")
    # LRPO must beat waiting at every boundary, and by a wide margin
    assert result.overall["LightWSP"] < result.overall["naive-wait"]
    assert result.overall["naive-wait"] / result.overall["LightWSP"] > 1.3
