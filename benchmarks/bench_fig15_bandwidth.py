"""Fig. 15 — persist-path bandwidth sensitivity: 4 (default) / 2 / 1 GB/s.

Paper: lower bandwidth fills the front-end buffer and stalls the core;
1 GB/s degrades sharply on store-heavy suites."""

from repro.analysis import fig15_bandwidth


def bench_fig15_bandwidth(benchmark, ctx, record):
    result = benchmark.pedantic(
        fig15_bandwidth, args=(ctx,), kwargs={"bandwidths": (4.0, 2.0, 1.0)},
        rounds=1, iterations=1,
    )
    record(result, "fig15_bandwidth.txt")
    overall = result.overall
    assert overall["1GB/s"] >= overall["2GB/s"] * 0.999
    assert overall["2GB/s"] >= overall["4GB/s"] * 0.999
