"""Shared fixtures for the per-figure benchmark harness.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — trace-size multiplier (default 0.05; the
  documented full-size runs in EXPERIMENTS.md used 0.25),
* ``REPRO_BENCH_FULL=1`` — run all 38 applications instead of the
  suite-representative subset.

Every bench regenerates one table/figure, prints it, and appends it to
``benchmarks/results/<figure>.txt`` so a full run leaves the evaluation
on disk.
"""

import os

import pytest

from repro.analysis import ExperimentContext, FigureResult, format_figure

#: two applications per suite: keeps the default run quick while every
#: suite (and both single- and multi-threaded shapes) stays represented
REPRESENTATIVE = [
    "lbm", "mcf",            # CPU2006 (memory-bound)
    "namd", "xz",            # compute-bound + store-heavy
    "vacation", "ssca2",     # STAMP
    "cg", "ft",              # NPB
    "radix", "barnes",       # SPLASH3
    "rb", "tpcc",            # WHISPER
]

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    benchmarks = (
        None if os.environ.get("REPRO_BENCH_FULL") == "1" else REPRESENTATIVE
    )
    return ExperimentContext(scale=bench_scale(), benchmarks=benchmarks)


def _record(result: FigureResult, filename: str) -> str:
    """Print and persist one figure's rows."""
    text = format_figure(result)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, filename), "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)
    return text


@pytest.fixture(scope="session")
def record():
    return _record


@pytest.fixture(scope="session")
def full_run() -> bool:
    return os.environ.get("REPRO_BENCH_FULL") == "1"
