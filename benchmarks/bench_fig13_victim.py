"""Fig. 13 — cache-eviction victim-selection policies under buffer
snooping: full-scan (default) vs half-scan vs zero (delay).

Paper: no significant difference — conflicts are too rare to matter."""

from repro.analysis import fig13_victim_policy


def bench_fig13_victim(benchmark, ctx, record):
    result = benchmark.pedantic(
        fig13_victim_policy, args=(ctx,), rounds=1, iterations=1
    )
    record(result, "fig13_victim.txt")
    values = list(result.overall.values())
    assert max(values) / min(values) < 1.1  # within noise of each other
