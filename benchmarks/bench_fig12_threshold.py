"""Fig. 12 — store-threshold sensitivity at WPQ 64: thresholds 16/32/64.

Paper: half the WPQ (32) wins by balancing checkpoint overhead against
WPQ pressure."""

from repro.analysis import fig12_threshold


def bench_fig12_threshold(benchmark, ctx, record):
    result = benchmark.pedantic(
        fig12_threshold, args=(ctx,), kwargs={"thresholds": (16, 32, 64)},
        rounds=1, iterations=1,
    )
    record(result, "fig12_threshold.txt")
    series = result.overall
    # the default must not be the worst of the three
    assert series["St-Threshold-32"] <= max(series.values())
