"""Fig. 16 — thread-count sensitivity for the multi-threaded suites,
plus the §V-F5 WPQ-overflow counts.

Paper: overhead grows with threads (contention on the two shared WPQs);
overflow stays rare (1.9 per 10k instructions at 64 threads)."""

from repro.analysis import fig16_threads


def bench_fig16_threads(benchmark, ctx, record, full_run):
    counts = (8, 16, 32, 64) if full_run else (8, 16)
    result = benchmark.pedantic(
        fig16_threads, args=(ctx,), kwargs={"counts": counts},
        rounds=1, iterations=1,
    )
    record(result, "fig16_threads.txt")
    for row in result.rows:
        assert row["suite"] in ("STAMP", "NPB", "SPLASH3", "WHISPER")
