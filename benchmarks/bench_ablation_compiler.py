"""Ablation — the compiler passes of §IV-A: region-size extension
(unrolling), checkpoint pruning, and region merging.

Each variant recompiles the suite with one pass disabled; the table shows
the slowdown and (overhead_* columns) the dynamic instrumentation cost."""

from repro.analysis import ablation_compiler


def bench_ablation_compiler(benchmark, ctx, record):
    result = benchmark.pedantic(
        ablation_compiler, args=(ctx,), rounds=1, iterations=1
    )
    record(result, "ablation_compiler.txt")
    # disabling region-size extension must never help
    assert result.overall["no-unroll"] >= result.overall["default"] * 0.999
