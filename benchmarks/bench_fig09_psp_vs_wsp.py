"""Fig. 9 — the ideal PSP scheme (no DRAM cache) vs LightWSP on the
memory-intensive applications.

Paper: PSP-Ideal ~1.51 geomean (2.6 on libquantum), LightWSP ~1.03."""

from repro.analysis import fig9_psp_vs_wsp


def bench_fig09_psp_vs_wsp(benchmark, ctx, record):
    result = benchmark.pedantic(fig9_psp_vs_wsp, args=(ctx,), rounds=1, iterations=1)
    record(result, "fig09_psp_vs_wsp.txt")
    # the whole point of WSP: the DRAM cache pays for itself
    assert result.overall["PSP-Ideal"] > result.overall["LightWSP"]
