"""Table I — the simulated system configuration."""

import os

from repro.analysis import format_mapping, table1_config


def bench_table1_config(benchmark):
    table = benchmark.pedantic(table1_config, rounds=1, iterations=1)
    text = format_mapping("Table I — system configuration", table)
    os.makedirs(os.path.join(os.path.dirname(__file__), "results"), exist_ok=True)
    with open(os.path.join(os.path.dirname(__file__), "results", "table1.txt"), "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)
    assert "8-core" in table["Processor"]
    assert "64-entry" in table["Memory Controller"]
