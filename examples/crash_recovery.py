#!/usr/bin/env python
"""Crash recovery under fire: a ledger of account transfers that must
never lose or invent money, no matter when the power fails.

    python examples/crash_recovery.py

This is the workload the WHISPER suite's transactional applications
motivate: each "transaction" moves an amount between two accounts (a
read-modify-write pair).  Without whole-system persistence, a failure
between the debit and the credit corrupts the ledger; LightWSP's
region-level redo buffering makes every region all-or-nothing, and the
checkpointed live-out registers let execution resume exactly at the last
persisted region boundary.

The example (1) sweeps a power failure across *every* instruction of the
run and checks the invariant each time, and (2) injects a random schedule
of multiple failures.
"""

import random

from repro.compiler import FunctionBuilder, Program, compile_program
from repro.config import CompilerConfig
from repro.core import PersistentMachine, reference_pm, run_with_crashes

N_ACCOUNTS = 32
N_TRANSFERS = 40
INITIAL_BALANCE = 100


def build_ledger() -> Program:
    prog = Program("ledger")
    accounts = prog.array("accounts", N_ACCOUNTS)
    fb = FunctionBuilder(prog, "main")
    fb.block("entry")
    # fund the accounts
    fb.const("r1", 0)
    fb.br("fund")
    fb.block("fund")
    fb.const("r2", INITIAL_BALANCE)
    fb.store("r2", "r1", base=accounts)
    fb.add("r1", "r1", 1)
    fb.lt("r3", "r1", N_ACCOUNTS)
    fb.cbr("r3", "fund", "transfers")
    # run the transfer loop: src = hash(i), dst = hash(i+1), amount = i%7
    fb.block("transfers")
    fb.const("r1", 0)
    fb.br("txn")
    fb.block("txn")
    fb.mul("r4", "r1", 2654435761)
    fb.shr("r4", "r4", 8)
    fb.mod("r4", "r4", N_ACCOUNTS)       # src account
    fb.add("r5", "r4", 7)
    fb.mod("r5", "r5", N_ACCOUNTS)       # dst account
    fb.mod("r6", "r1", 7)                # amount
    fb.load("r7", "r4", base=accounts)
    fb.sub("r7", "r7", "r6")
    fb.store("r7", "r4", base=accounts)  # debit
    fb.load("r7", "r5", base=accounts)
    fb.add("r7", "r7", "r6")
    fb.store("r7", "r5", base=accounts)  # credit
    fb.add("r1", "r1", 1)
    fb.lt("r3", "r1", N_TRANSFERS)
    fb.cbr("r3", "txn", "exit")
    fb.block("exit")
    fb.ret()
    fb.build()
    return prog


def total_balance(image, base) -> int:
    return sum(image.get(base + i, 0) for i in range(N_ACCOUNTS))


def main() -> None:
    prog = build_ledger()
    accounts = prog.base_of("accounts")
    compiled = compile_program(prog, CompilerConfig(store_threshold=8))
    print("ledger compiled: %d boundaries, %d checkpoints"
          % (compiled.stats.boundaries, compiled.stats.checkpoint_stores))

    reference = reference_pm(compiled)
    expected_total = N_ACCOUNTS * INITIAL_BALANCE
    assert total_balance(reference, accounts) == expected_total

    probe = PersistentMachine(compiled)
    probe.run()
    total_steps = probe.stats.steps
    print("failure-free run: %d instructions, %d regions committed"
          % (total_steps, probe.stats.commits))

    # -- exhaustive single-failure sweep -------------------------------
    divergent = 0
    for point in range(1, total_steps + 1):
        image, _ = run_with_crashes(compiled, [point])
        if image != reference:
            divergent += 1
    print("single-failure sweep over all %d instructions: %d divergences"
          % (total_steps, divergent))
    assert divergent == 0

    # -- random multi-failure schedules --------------------------------
    rng = random.Random(42)
    for trial in range(10):
        k = rng.randint(2, 5)
        points = sorted(rng.randint(1, total_steps) for _ in range(k))
        image, stats = run_with_crashes(compiled, points)
        conserved = total_balance(image, accounts) == expected_total
        exact = image == reference
        print("  trial %2d: %d failures at %s -> balance %s, image %s"
              % (trial, stats.crashes, points,
                 "conserved" if conserved else "CORRUPT",
                 "exact" if exact else "DIVERGED"))
        assert conserved and exact
    print("all multi-failure schedules recovered: OK")


if __name__ == "__main__":
    main()
