#!/usr/bin/env python
"""Reproduce the paper's evaluation at a chosen scale.

    python examples/reproduce_paper.py                 # quick subset
    python examples/reproduce_paper.py --full          # all 38 apps
    python examples/reproduce_paper.py --scale 0.3     # bigger traces
    python examples/reproduce_paper.py --figures 7 9   # selected figures

Prints every table and figure of §V with the same rows/series the paper
reports; EXPERIMENTS.md records a full run next to the paper's numbers.
"""

import argparse
import time

from repro.analysis import (
    ExperimentContext,
    ablation_compiler,
    ablation_lrpo,
    fig7_slowdown,
    fig8_efficiency,
    fig9_psp_vs_wsp,
    fig10_cwsp,
    fig11_wpq_size,
    fig12_threshold,
    fig13_victim_policy,
    fig14_miss_rate,
    fig15_bandwidth,
    fig16_threads,
    fig17_cxl,
    fig18_wpq_hits,
    format_figure,
    format_mapping,
    table1_config,
    table2_conflict_rate,
    table3_cxl,
    vg2_cam_latency,
    vg3_region_stats,
    vg4_hw_cost,
)

#: a suite-representative subset for quick runs
QUICK_SUBSET = [
    "lbm", "libquan", "mcf", "namd",          # CPU2006
    "dsjeng", "xz",                            # CPU2017
    "vacation", "ssca2",                       # STAMP
    "cg", "ft",                                # NPB
    "radix", "barnes",                         # SPLASH3
    "rb", "tpcc",                              # WHISPER
]

FIGURES = {
    "7": ("Fig. 7  slowdown vs baseline", fig7_slowdown),
    "8": ("Fig. 8  persistence efficiency", fig8_efficiency),
    "9": ("Fig. 9  ideal PSP vs WSP", fig9_psp_vs_wsp),
    "10": ("Fig. 10 LightWSP vs cWSP", fig10_cwsp),
    "11": ("Fig. 11 WPQ size", fig11_wpq_size),
    "12": ("Fig. 12 store threshold", fig12_threshold),
    "13": ("Fig. 13 victim policies", fig13_victim_policy),
    "14": ("Fig. 14 miss rates", fig14_miss_rate),
    "15": ("Fig. 15 persist bandwidth", fig15_bandwidth),
    "16": ("Fig. 16 thread counts", fig16_threads),
    "17": ("Fig. 17 CXL devices", fig17_cxl),
    "18": ("Fig. 18 WPQ hit rate", fig18_wpq_hits),
    "t2": ("Table II conflict rate", table2_conflict_rate),
    "g3": ("§V-G3 region statistics", vg3_region_stats),
    "lrpo": ("Ablation: LRPO", ablation_lrpo),
    "passes": ("Ablation: compiler passes", ablation_compiler),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="all 38 apps")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--figures", nargs="*", default=None,
                        help="subset of %s" % ", ".join(FIGURES))
    args = parser.parse_args()

    print(format_mapping("Table I — system configuration", table1_config()))
    print()
    print(format_mapping("§V-G2 — CAM search latency", vg2_cam_latency()))
    print()
    print(format_mapping("§V-G4 — hardware cost", vg4_hw_cost()))
    print()
    print(format_figure(table3_cxl()))
    print()

    benchmarks = None if args.full else QUICK_SUBSET
    ctx = ExperimentContext(scale=args.scale, benchmarks=benchmarks)
    wanted = args.figures or list(FIGURES)
    for key in wanted:
        title, driver = FIGURES[key]
        t0 = time.time()
        figure = driver(ctx)
        print(format_figure(figure))
        print("[%s in %.1fs]\n" % (title, time.time() - t0))


if __name__ == "__main__":
    main()
