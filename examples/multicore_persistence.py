#!/usr/bin/env python
"""Multi-core whole-system persistence: lazy region-level persist
ordering (LRPO), happens-before across threads, and the WPQ-overflow
deadlock fallback.

    python examples/multicore_persistence.py

Demonstrates the pieces §III-D/§IV-B..D add on top of the single-core
design:

* eight threads hammer a lock-striped shared table; the compiler's
  boundaries at every lock/unlock make the global region-ID order encode
  the happens-before order, so conflicting stores persist in order even
  though the two memory controllers see them at NUMA-skewed times;
* the timing engine shows LRPO's effect: zero boundary stalls while the
  commit pipeline trails execution in the background;
* shrinking the WPQ provokes the §IV-D deadlock, resolved by undo-logged
  overflow — and a power failure right after it still recovers.
"""

from dataclasses import replace

from repro.compiler import compile_program, run_threads
from repro.config import SystemConfig
from repro.core import PersistentMachine
from repro.core.lightwsp import LIGHTWSP
from repro.baselines import MEMORY_MODE
from repro.sim import simulate
from repro.workloads.archetypes import transactional

N_THREADS = 8


def main() -> None:
    config = SystemConfig()
    prog = transactional(
        n_threads=N_THREADS, txns_per_thread=60, table_words=4096,
        writes_per_txn=4, n_locks=4,
    )
    entries = [("worker", (t,)) for t in range(N_THREADS)]
    compiled = compile_program(prog, config.compiler)

    # -- timing: LRPO on 8 cores / 2 MCs -------------------------------
    base_events, _ = run_threads(prog, entries, max_steps=12_000_000)
    lw_events, _ = run_threads(compiled.program, entries, max_steps=12_000_000)
    base = simulate(base_events, config, MEMORY_MODE)
    lw = simulate(lw_events, config, LIGHTWSP)
    print("8-thread transactional workload on 2 memory controllers")
    print("  baseline : %10.0f cycles" % base.cycles)
    print("  LightWSP : %10.0f cycles (%.1f%% overhead)"
          % (lw.cycles, (lw.cycles / base.cycles - 1) * 100))
    print("  regions: %d, boundary stalls: %.0f (LRPO), "
          "front-end stalls: %.0f cycles"
          % (lw.regions, lw.boundary_stall, lw.fe_stall))
    print("  WPQ deadlock fallbacks: %d\n" % lw.deadlock_events)

    # -- functional: happens-before persist order ----------------------
    machine = PersistentMachine(compiled, entries=entries, config=config)
    machine.run()
    table = prog.base_of("table")
    total = sum(v for w, v in machine.pm_data().items() if w >= table)
    expected = N_THREADS * 60 * 4
    print("functional machine: %d lock-ordered increments persisted "
          "(expected %d): %s" % (total, expected,
                                 "OK" if total == expected else "CORRUPT"))
    print("  global region IDs allocated: %d, commits: %d, "
          "max WPQ occupancy: %d/%d"
          % (machine.allocator.allocated, machine.stats.commits,
             machine.stats.max_wpq_occupancy, config.mc.wpq_entries))

    # -- tiny WPQ: force the §IV-D overflow, then crash -----------------
    tiny = replace(config, mc=replace(config.mc, wpq_entries=8))
    machine = PersistentMachine(compiled, entries=entries, config=tiny)
    machine.run(steps=4000)
    print("\n8-entry WPQ stress: %d overflow events, %d undo-logged writes"
          % (machine.stats.overflow_events, machine.stats.undo_writes))
    machine.crash()
    machine.run()
    total = sum(v for w, v in machine.pm_data().items() if w >= table)
    print("power failure after overflow: recovered total %d (%s)"
          % (total, "OK" if total == expected else "CORRUPT"))
    assert total == expected


if __name__ == "__main__":
    main()
